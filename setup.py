"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP 660
editable installs fail; this shim lets ``pip install -e . --no-use-pep517``
take the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
