"""Unit and integration tests for the detection baselines."""

import numpy as np
import pytest

from repro.detect import (
    ChenDetector,
    GlcDetector,
    PopulationSampler,
    RadDetector,
    VariationModel,
    calibrate_detectors,
    evasion_experiment,
    minimum_detectable_overhead,
    population_for,
    region_of,
    state_leakage_factor,
    sweep_additive_overheads,
)
from repro.power import analyze
from repro.trojan import insert_additive_burden


@pytest.fixture(scope="module")
def golden_setup(c499_circuit, library):
    bench = calibrate_detectors(c499_circuit, library, n_golden=30, seed=5)
    return c499_circuit, bench


class TestVariationModel:
    def test_state_leakage_factor_range(self):
        assert state_leakage_factor(0, 2) == pytest.approx(0.55)
        assert state_leakage_factor(2, 2) == pytest.approx(1.45)
        assert state_leakage_factor(0, 0) == 1.0

    def test_region_assignment_stable_and_bounded(self):
        assert region_of("some_net", 4) == region_of("some_net", 4)
        assert 0 <= region_of("x", 4) < 4

    def test_population_statistics(self, c432_circuit, library, rng):
        report = analyze(c432_circuit, library)
        model = VariationModel(leakage_sigma=0.1, dynamic_sigma=0.03)
        sampler = PopulationSampler(c432_circuit, report, model, rng=rng)
        chips = sampler.sample_population(60, rng)
        leaks = np.array([c.total_leakage_uw for c in chips])
        dyns = np.array([c.total_dynamic_uw for c in chips])
        # Population centres on the nominal report...
        assert abs(leaks.mean() - report.leakage_uw) / report.leakage_uw < 0.05
        assert abs(dyns.mean() - report.dynamic_uw) / report.dynamic_uw < 0.02
        # ...and actually varies chip to chip.
        assert leaks.std() > 0
        assert dyns.std() > 0

    def test_regional_measurements_sum_to_total(self, c432_circuit, library, rng):
        report = analyze(c432_circuit, library)
        model = VariationModel(measurement_noise=0.0)
        sampler = PopulationSampler(c432_circuit, report, model, rng=rng)
        chip = sampler.sample_chip(rng)
        assert chip.region_dynamic_uw.sum() == pytest.approx(
            chip.total_dynamic_uw, rel=1e-6
        )

    def test_leakage_vectors_state_dependent(self, c432_circuit, library, rng):
        report = analyze(c432_circuit, library)
        sampler = PopulationSampler(c432_circuit, report, rng=rng)
        chip = sampler.sample_chip(rng)
        assert chip.leakage_by_vector_uw.std() > 0


class TestDetectorMechanics:
    def test_modes_validated(self):
        with pytest.raises(ValueError):
            RadDetector(mode="psychic")
        with pytest.raises(ValueError):
            ChenDetector(mode="psychic")
        with pytest.raises(ValueError):
            GlcDetector(mode="psychic")

    def test_calibration_requires_enough_chips(self):
        with pytest.raises(ValueError):
            RadDetector().calibrate([])

    def test_uncalibrated_statistic_rejected(self, golden_setup):
        _, bench = golden_setup
        fresh = RadDetector()
        with pytest.raises(RuntimeError):
            fresh.statistic(bench.sampler.sample_chip())

    def test_false_positive_rate_low(self, golden_setup, library):
        circuit, bench = golden_setup
        chips, _ = population_for(circuit, library, bench, n_chips=30, seed=99)
        rates = bench.rates(chips)
        assert all(rate <= 0.15 for rate in rates.values()), rates


class TestDetectionOfAdditiveHT:
    def test_large_additive_ht_flagged(self, golden_setup, library):
        circuit, bench = golden_setup
        infected = circuit.copy("fat_ht")
        insert_additive_burden(infected, 24)
        chips, report = population_for(infected, library, bench, n_chips=30, seed=7)
        rates = bench.rates(chips)
        assert rates["rad"] >= 0.9
        assert rates["chen"] >= 0.9

    def test_sweep_monotone_in_overhead(self, golden_setup, library):
        circuit, bench = golden_setup
        points = sweep_additive_overheads(
            circuit, library, bench, gate_counts=(1, 8, 32), n_chips=25
        )
        overheads = [p.dynamic_overhead_pct for p in points]
        assert overheads == sorted(overheads)
        assert points[-1].detection_rates["rad"] >= points[0].detection_rates["rad"]

    def test_minimum_detectable_overhead_query(self, golden_setup, library):
        circuit, bench = golden_setup
        points = sweep_additive_overheads(
            circuit, library, bench, gate_counts=(1, 4, 16), n_chips=25
        )
        hit = minimum_detectable_overhead(points, "rad")
        assert hit is not None
        assert hit.detection_rates["rad"] >= 0.5
        # Rad flags sub-2% dynamic overheads (paper Fig. 3: ~0.3%).
        assert hit.dynamic_overhead_pct < 3.0

    def test_minimum_detectable_none_when_never_detected(self, golden_setup, library):
        circuit, bench = golden_setup
        points = sweep_additive_overheads(
            circuit, library, bench, gate_counts=(1,), n_chips=10
        )
        assert minimum_detectable_overhead(points, "glc", min_rate=1.01) is None


class TestEvasion:
    @pytest.fixture(scope="class")
    def tz_run(self, c499_circuit):
        from repro.core import TrojanZeroPipeline

        pipe = TrojanZeroPipeline.default()
        return pipe.run(c499_circuit.copy(), p_threshold=0.993, counter_bits=3)

    def test_paper_mode_reproduces_claim(self, tz_run, library):
        report = evasion_experiment(
            tz_run.thresholds.circuit,
            tz_run.insertion.infected,
            library,
            additive_gates=16,
            n_chips=25,
            mode="paper",
        )
        assert report.additive_detected()
        assert report.trojanzero_evades()
        assert abs(report.trojanzero_overhead_pct) < 1.5
        assert report.additive_overhead_pct > 2.0

    def test_structural_mode_catches_trojanzero(self, tz_run, library):
        """The ablation: redistribution-aware detectors defeat TrojanZero."""
        report = evasion_experiment(
            tz_run.thresholds.circuit,
            tz_run.insertion.infected,
            library,
            additive_gates=16,
            n_chips=25,
            mode="structural",
        )
        assert report.additive_detected()
        assert not report.trojanzero_evades()
