"""Unit tests for CNF encoding, the DPLL solver, and equivalence checking."""

import itertools

import numpy as np
import pytest

from repro.netlist import Circuit, GateType, tie_net_to_constant
from repro.sim import BitSimulator, exhaustive_patterns
from repro.verify import (
    Cnf,
    EquivalenceStatus,
    SatStatus,
    check_equivalence,
    solve,
    tseitin_encode,
)


class TestCnf:
    def test_variable_allocation(self):
        cnf = Cnf()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.n_vars == 2

    def test_rejects_bad_literals(self):
        cnf = Cnf()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add(0)
        with pytest.raises(ValueError):
            cnf.add(5)
        with pytest.raises(ValueError):
            cnf.add()

    def test_dimacs_output(self):
        cnf = Cnf()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add(a, -b)
        text = cnf.to_dimacs()
        assert "p cnf 2 1" in text
        assert "1 -2 0" in text


class TestSolver:
    def test_trivial_sat(self):
        cnf = Cnf()
        a = cnf.new_var()
        cnf.add(a)
        result = solve(cnf)
        assert result.satisfiable
        assert result.model[a] is True

    def test_trivial_unsat(self):
        cnf = Cnf()
        a = cnf.new_var()
        cnf.add(a)
        cnf.add(-a)
        assert solve(cnf).status is SatStatus.UNSAT

    def test_implication_chain(self):
        cnf = Cnf()
        vs = [cnf.new_var() for _ in range(10)]
        cnf.add(vs[0])
        for x, y in zip(vs, vs[1:]):
            cnf.add(-x, y)
        result = solve(cnf)
        assert result.satisfiable
        assert all(result.model[v] for v in vs)

    def test_pigeonhole_3_into_2_unsat(self):
        """PHP(3,2): classic small UNSAT instance."""
        cnf = Cnf()
        var = {}
        for p in range(3):
            for h in range(2):
                var[(p, h)] = cnf.new_var()
        for p in range(3):
            cnf.add(var[(p, 0)], var[(p, 1)])
        for h in range(2):
            for p1, p2 in itertools.combinations(range(3), 2):
                cnf.add(-var[(p1, h)], -var[(p2, h)])
        assert solve(cnf).status is SatStatus.UNSAT

    def test_assumptions(self):
        cnf = Cnf()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add(-a, b)
        assert solve(cnf, assumptions=[a]).model[b] is True
        assert solve(cnf, assumptions=[a, -b]).status is SatStatus.UNSAT

    def test_decision_limit_reports_unknown(self):
        # A satisfiable random 3-SAT instance with a 1-decision budget.
        rng = np.random.default_rng(0)
        cnf = Cnf()
        vs = [cnf.new_var() for _ in range(30)]
        for _ in range(60):
            picks = rng.choice(30, size=3, replace=False)
            signs = rng.choice([-1, 1], size=3)
            cnf.add(*[int(s * vs[p]) for s, p in zip(signs, picks)])
        result = solve(cnf, max_decisions=1)
        assert result.status in (SatStatus.UNKNOWN, SatStatus.SAT, SatStatus.UNSAT)

    def test_model_satisfies_formula(self):
        rng = np.random.default_rng(7)
        cnf = Cnf()
        vs = [cnf.new_var() for _ in range(20)]
        for _ in range(40):
            picks = rng.choice(20, size=3, replace=False)
            signs = rng.choice([-1, 1], size=3)
            cnf.add(*[int(s * vs[p]) for s, p in zip(signs, picks)])
        result = solve(cnf)
        if result.satisfiable:
            for clause in cnf.clauses:
                assert any(
                    result.model[abs(l)] == (l > 0) for l in clause
                ), clause


class TestTseitin:
    @pytest.mark.parametrize(
        "gate_type,n_inputs",
        [
            (GateType.AND, 2),
            (GateType.AND, 3),
            (GateType.NAND, 2),
            (GateType.OR, 3),
            (GateType.NOR, 2),
            (GateType.XOR, 2),
            (GateType.XOR, 3),
            (GateType.XNOR, 3),
            (GateType.NOT, 1),
            (GateType.BUFF, 1),
            (GateType.MUX, 3),
        ],
    )
    def test_encoding_matches_simulation(self, gate_type, n_inputs):
        """For every PI assignment, CNF + assumptions forces the right output."""
        c = Circuit("one_gate")
        ins = [c.add_input(f"i{k}") for k in range(n_inputs)]
        c.add_gate("out", gate_type, ins)
        c.set_output("out")
        cnf, var = tseitin_encode(c)
        sim = BitSimulator(c)
        for row in exhaustive_patterns(n_inputs):
            expected = int(sim.run(row[np.newaxis, :])[0, 0])
            assumptions = [
                var[pi] if row[k] else -var[pi] for k, pi in enumerate(ins)
            ]
            result = solve(cnf, assumptions=assumptions)
            assert result.satisfiable
            assert result.model[var["out"]] == bool(expected)

    def test_constants_encoded(self):
        c = Circuit("ties")
        c.add_input("a")
        c.add_gate("t0", GateType.TIE0, ())
        c.add_gate("t1", GateType.TIE1, ())
        c.add_gate("out", GateType.MUX, ("t0", "t1", "a"))
        c.set_output("out")
        cnf, var = tseitin_encode(c)
        result = solve(cnf, assumptions=[var["a"]])
        assert result.model[var["out"]] is True

    def test_sequential_rejected(self):
        c = Circuit()
        c.add_input("clk")
        c.add_gate("q", GateType.DFF, ("qn", "clk"))
        c.add_gate("qn", GateType.NOT, ("q",))
        c.set_output("q")
        with pytest.raises(Exception):
            tseitin_encode(c)


class TestEquivalence:
    def test_self_equivalence(self, c17_circuit):
        result = check_equivalence(c17_circuit, c17_circuit.copy(), random_vectors=0)
        assert result.status is EquivalenceStatus.EQUIVALENT
        assert set(result.proven_outputs) == set(c17_circuit.outputs)

    def test_detects_tie_with_witness(self, c17_circuit):
        broken = c17_circuit.copy("broken")
        tie_net_to_constant(broken, "N16", 1)
        result = check_equivalence(c17_circuit, broken, random_vectors=0)
        assert result.status is EquivalenceStatus.DIFFERENT
        # Witness must actually distinguish the circuits.
        vec = np.array(
            [[result.counterexample[pi] for pi in c17_circuit.inputs]], np.uint8
        )
        g = BitSimulator(c17_circuit).run(vec)
        b = BitSimulator(broken).run(vec)
        assert (g != b).any()

    def test_random_phase_shortcut(self, c17_circuit):
        broken = c17_circuit.copy("broken")
        tie_net_to_constant(broken, "N22", 0)
        result = check_equivalence(c17_circuit, broken, random_vectors=64)
        assert result.status is EquivalenceStatus.DIFFERENT

    def test_interface_mismatch(self, c17_circuit, tiny_and_circuit):
        with pytest.raises(ValueError):
            check_equivalence(c17_circuit, tiny_and_circuit)

    def test_rare_difference_found_by_sat_not_random(self, rare_node_circuit):
        """A 2^-9 difference hides from random vectors but not from SAT."""
        modified = rare_node_circuit.copy("mod")
        tie_net_to_constant(modified, "rare", 0)
        result = check_equivalence(rare_node_circuit, modified, random_vectors=32)
        assert result.status is EquivalenceStatus.DIFFERENT
        assert all(
            result.counterexample[f"a{i}"] == 1 for i in range(8)
        )  # the unique exciting assignment

    def test_equivalence_of_folded_circuit(self, c17_circuit):
        from repro.power import optimize_netlist

        tied = c17_circuit.copy("tied")
        tie_net_to_constant(tied, "N10", 1)
        folded = optimize_netlist(tied)
        result = check_equivalence(tied, folded, random_vectors=0)
        assert result.status is EquivalenceStatus.EQUIVALENT


class TestSatSweep:
    def test_sweep_proves_c499_c1355_equivalent(self, c499_circuit):
        from repro.bench import c1355_like
        from repro.verify.sweep import sat_sweep_equivalence

        result = sat_sweep_equivalence(c499_circuit, c1355_like())
        assert result.status is EquivalenceStatus.EQUIVALENT

    def test_sweep_finds_planted_difference(self, c499_circuit):
        from repro.bench import c1355_like
        from repro.verify.sweep import sat_sweep_equivalence

        broken = c1355_like()
        victim = [g.name for g in broken.logic_gates()][50]
        tie_net_to_constant(broken, victim, 1)
        result = sat_sweep_equivalence(c499_circuit, broken)
        # Either a concrete counterexample or (if the tie was redundant)
        # a proof — never a crash; and a witness must be genuine.
        if result.status is EquivalenceStatus.DIFFERENT:
            vec = np.array(
                [[result.counterexample[pi] for pi in c499_circuit.inputs]],
                np.uint8,
            )
            g = BitSimulator(c499_circuit).run(vec)
            col = {n: i for i, n in enumerate(broken.outputs)}
            b = BitSimulator(broken).run(vec)[:, [col[o] for o in c499_circuit.outputs]]
            assert (g != b).any()

    def test_pre_silicon_defense_catches_salvage(self, rare_node_circuit):
        """Fig. 1's pre-silicon equivalence checking defeats Algorithm 1 —
        the structural reason TrojanZero must strike at the foundry."""
        from repro.verify.sweep import sat_sweep_equivalence

        modified = rare_node_circuit.copy("mod")
        tie_net_to_constant(modified, "rare", 0)
        result = sat_sweep_equivalence(rare_node_circuit, modified)
        assert result.status is EquivalenceStatus.DIFFERENT
