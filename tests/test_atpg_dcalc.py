"""Unit tests for the 3-valued D-calculus kernel."""

import itertools

import pytest

from repro.atpg.dcalc import X, d_symbol, evaluate3, v_and, v_mux, v_not, v_or, v_xor
from repro.netlist import GateType


class TestThreeValuedKernels:
    def test_and_zero_dominates_x(self):
        assert v_and([0, X]) == 0
        assert v_and([X, 1]) == X
        assert v_and([1, 1]) == 1

    def test_or_one_dominates_x(self):
        assert v_or([1, X]) == 1
        assert v_or([X, 0]) == X
        assert v_or([0, 0]) == 0

    def test_xor_poisoned_by_x(self):
        assert v_xor([X, 1]) == X
        assert v_xor([1, 1]) == 0
        assert v_xor([1, 0, 1]) == 0

    def test_not(self):
        assert v_not(X) == X
        assert v_not(0) == 1

    def test_mux_select_known(self):
        assert v_mux(0, X, 0) == 0
        assert v_mux(X, 1, 1) == 1

    def test_mux_select_unknown(self):
        assert v_mux(1, 1, X) == 1  # both branches agree
        assert v_mux(0, 1, X) == X
        assert v_mux(X, X, X) == X


class TestEvaluate3:
    @pytest.mark.parametrize(
        "gate_type",
        [GateType.AND, GateType.NAND, GateType.OR, GateType.NOR, GateType.XOR,
         GateType.XNOR],
    )
    def test_agrees_with_binary_on_determined_inputs(self, gate_type):
        from repro.netlist import evaluate_gate

        for bits in itertools.product((0, 1), repeat=3):
            assert evaluate3(gate_type, bits) == evaluate_gate(gate_type, bits)

    def test_constants(self):
        assert evaluate3(GateType.TIE0, []) == 0
        assert evaluate3(GateType.TIE1, []) == 1

    def test_monotone_wrt_information(self):
        """Refining an X input must never flip a determined output."""
        for gate_type in (GateType.AND, GateType.OR, GateType.XOR, GateType.NAND):
            for known in itertools.product((0, 1), repeat=2):
                with_x = evaluate3(gate_type, (known[0], X))
                if with_x == X:
                    continue
                for refinement in (0, 1):
                    refined = evaluate3(gate_type, (known[0], refinement))
                    assert refined == with_x


class TestDSymbols:
    def test_rendering(self):
        assert d_symbol(1, 0) == "D"
        assert d_symbol(0, 1) == "D'"
        assert d_symbol(1, 1) == "1"
        assert d_symbol(X, 0) == "X"
