"""Property-based tests (hypothesis) over randomly generated circuits.

These pin the core invariants of the library:

* bit-parallel simulation agrees with scalar gate evaluation;
* ``.bench`` serialization round-trips;
* constant folding and synthesis cleanup preserve function;
* fault simulation agrees with a brute-force faulty-copy oracle;
* analytic signal probability is exact on fanout-free circuits and always a
  probability; SCOAP measures are sane;
* the binomial trigger tail is a monotone probability.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atpg import FaultSimulator, StuckAtFault, collapse_faults, full_fault_list
from repro.atpg.testability import INFINITY, compute_testability
from repro.bench import parse_bench, write_bench
from repro.netlist import (
    Circuit,
    GateType,
    propagate_constants,
    strip_dead_logic,
    tie_net_to_constant,
)
from repro.power import optimize_netlist
from repro.prob import signal_probabilities
from repro.sim import BitSimulator, compare_on_patterns, pack_patterns, unpack_patterns
from repro.trojan import binomial_tail_at_least

_GATE_CHOICES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUFF,
    GateType.MUX,
]

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_circuits(draw, max_gates=20, fanout_free=False):
    """Random valid combinational circuit."""
    n_inputs = draw(st.integers(min_value=2, max_value=5))
    circuit = Circuit("hyp")
    available = [circuit.add_input(f"i{k}") for k in range(n_inputs)]
    n_gates = draw(st.integers(min_value=1, max_value=max_gates))
    for g in range(n_gates):
        gate_type = draw(st.sampled_from(_GATE_CHOICES))
        if gate_type in (GateType.NOT, GateType.BUFF):
            arity = 1
        elif gate_type is GateType.MUX:
            arity = 3
        else:
            arity = draw(st.integers(min_value=2, max_value=3))
        if fanout_free and len(available) < arity:
            break
        if fanout_free:
            idx = draw(
                st.lists(
                    st.integers(0, len(available) - 1),
                    min_size=arity,
                    max_size=arity,
                    unique=True,
                )
            )
            inputs = [available[i] for i in idx]
            for i in sorted(idx, reverse=True):
                available.pop(i)
        else:
            inputs = [
                available[draw(st.integers(0, len(available) - 1))]
                for _ in range(arity)
            ]
            if gate_type in (GateType.XOR, GateType.XNOR):
                inputs = list(dict.fromkeys(inputs))  # parity cancels dups
                if len(inputs) < 2:
                    gate_type = GateType.NOT if gate_type is GateType.XNOR else GateType.BUFF
                    inputs = inputs[:1]
        name = f"g{g}"
        circuit.add_gate(name, gate_type, inputs)
        available.append(name)
    # Every sink becomes an output so nothing is trivially dead.
    for net in circuit.nets:
        if not circuit.gate(net).is_input and not circuit.fanout(net):
            circuit.set_output(net)
    if not circuit.outputs:
        circuit.set_output(available[-1])
    return circuit


@st.composite
def circuit_and_patterns(draw, **kwargs):
    circuit = draw(random_circuits(**kwargs))
    n = draw(st.integers(min_value=1, max_value=80))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    patterns = (rng.random((n, len(circuit.inputs))) < 0.5).astype(np.uint8)
    return circuit, patterns


class TestSimulationProperties:
    @_SETTINGS
    @given(circuit_and_patterns())
    def test_bitsim_matches_scalar_evaluation(self, case):
        circuit, patterns = case
        fast = BitSimulator(circuit).run(patterns)
        order = circuit.topological_order()
        for row, out in zip(patterns, fast):
            values = {pi: int(row[i]) for i, pi in enumerate(circuit.inputs)}
            for net in order:
                gate = circuit.gate(net)
                if gate.is_input:
                    continue
                values[net] = gate.evaluate([values[s] for s in gate.inputs])
            assert list(out) == [values[o] for o in circuit.outputs]

    @_SETTINGS
    @given(
        st.integers(min_value=1, max_value=150),
        st.integers(min_value=1, max_value=8),
        st.integers(0, 2**31),
    )
    def test_pack_unpack_roundtrip(self, n_patterns, n_signals, seed):
        rng = np.random.default_rng(seed)
        pats = (rng.random((n_patterns, n_signals)) < 0.5).astype(np.uint8)
        assert (unpack_patterns(pack_patterns(pats), n_patterns) == pats).all()


class TestSerializationProperties:
    @_SETTINGS
    @given(circuit_and_patterns())
    def test_bench_roundtrip_equivalent(self, case):
        circuit, patterns = case
        rebuilt = parse_bench(write_bench(circuit), name="rt")
        assert compare_on_patterns(circuit, rebuilt, patterns).equivalent


class TestTransformProperties:
    @_SETTINGS
    @given(circuit_and_patterns(), st.integers(0, 2**31))
    def test_constant_fold_preserves_function(self, case, seed):
        circuit, patterns = case
        rng = np.random.default_rng(seed)
        internal = [g.name for g in circuit.logic_gates()]
        victim = internal[rng.integers(len(internal))]
        value = int(rng.integers(2))
        tied = circuit.copy("tied")
        tie_net_to_constant(tied, victim, value)
        folded = tied.copy("folded")
        propagate_constants(folded)
        strip_dead_logic(folded)
        assert compare_on_patterns(tied, folded, patterns).equivalent

    @_SETTINGS
    @given(circuit_and_patterns())
    def test_optimize_netlist_preserves_function(self, case):
        circuit, patterns = case
        optimized = optimize_netlist(circuit)
        assert compare_on_patterns(circuit, optimized, patterns).equivalent

    @_SETTINGS
    @given(circuit_and_patterns())
    def test_strip_dead_logic_never_touches_live_outputs(self, case):
        circuit, patterns = case
        before = BitSimulator(circuit).run(patterns)
        stripped = circuit.copy("stripped")
        strip_dead_logic(stripped)
        after = BitSimulator(stripped).run(patterns)
        assert (before == after).all()


class TestFaultSimProperties:
    @_SETTINGS
    @given(circuit_and_patterns(max_gates=12), st.integers(0, 2**31))
    def test_fault_sim_matches_faulty_copy(self, case, seed):
        circuit, patterns = case
        rng = np.random.default_rng(seed)
        internal = [g.name for g in circuit.logic_gates()]
        victim = internal[rng.integers(len(internal))]
        fault = StuckAtFault(victim, int(rng.integers(2)))
        outcome = FaultSimulator(circuit).run(patterns, [fault], drop_detected=False)
        faulty = circuit.copy("faulty")
        tie_net_to_constant(faulty, fault.net, fault.value)
        differs = not compare_on_patterns(circuit, faulty, patterns).equivalent
        assert (fault in outcome.detected) == differs


class TestProbabilityProperties:
    @_SETTINGS
    @given(random_circuits())
    def test_probabilities_are_probabilities(self, circuit):
        probs = signal_probabilities(circuit)
        assert all(0.0 <= p <= 1.0 for p in probs.values())

    @_SETTINGS
    @given(random_circuits(max_gates=8, fanout_free=True))
    def test_exact_on_fanout_free_circuits(self, circuit):
        if len(circuit.inputs) > 10:
            return
        probs = signal_probabilities(circuit)
        from repro.sim import exhaustive_patterns

        values = BitSimulator(circuit).run_full(
            exhaustive_patterns(len(circuit.inputs))
        )
        for net, p in probs.items():
            assert p == pytest.approx(values[net].mean(), abs=1e-9), net


class TestTestabilityProperties:
    @_SETTINGS
    @given(random_circuits())
    def test_scoap_measures_sane(self, circuit):
        t = compute_testability(circuit)
        for net in circuit.nets:
            gate = circuit.gate(net)
            if gate.is_input:
                assert t.cc0[net] == 1 and t.cc1[net] == 1
            elif not gate.is_constant:
                assert t.cc0[net] >= 1 or t.cc0[net] >= INFINITY
                assert t.cc1[net] >= 1 or t.cc1[net] >= INFINITY
        for po in circuit.outputs:
            assert t.co[po] == 0

    @_SETTINGS
    @given(random_circuits(max_gates=10))
    def test_collapse_is_a_partition(self, circuit):
        collapsed = collapse_faults(circuit)
        raw = full_fault_list(circuit)
        assert len(collapsed) <= len(raw)
        assert len(set(collapsed)) == len(collapsed)


class TestTriggerMathProperties:
    @_SETTINGS
    @given(
        st.integers(min_value=0, max_value=400),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=40),
    )
    def test_binomial_tail_is_probability(self, n, p, k):
        tail = binomial_tail_at_least(n, p, k)
        assert 0.0 <= tail <= 1.0

    @_SETTINGS
    @given(
        st.integers(min_value=1, max_value=300),
        st.floats(min_value=0.001, max_value=0.999),
    )
    def test_binomial_tail_monotone_in_k(self, n, p):
        tails = [binomial_tail_at_least(n, p, k) for k in range(0, min(n, 12))]
        assert all(a >= b - 1e-12 for a, b in zip(tails, tails[1:]))
