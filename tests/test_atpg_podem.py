"""Unit tests for PODEM: completeness on c17, validity, redundancy, aborts."""

import numpy as np
import pytest

from repro.atpg import (
    FaultSimulator,
    PodemEngine,
    PodemStatus,
    StuckAtFault,
    collapse_faults,
    full_fault_list,
    generate_test,
)
from repro.netlist import Circuit, GateType


class TestPodemOnC17:
    def test_every_fault_testable_and_test_valid(self, c17_circuit):
        """c17 is fully testable; each PODEM vector must really detect."""
        engine = PodemEngine(c17_circuit, backtrack_limit=100)
        simulator = FaultSimulator(c17_circuit)
        for fault in full_fault_list(c17_circuit):
            result = engine.generate(fault)
            assert result.status is PodemStatus.DETECTED, fault
            vector = np.array(
                [[result.test[pi] for pi in c17_circuit.inputs]], dtype=np.uint8
            )
            assert simulator.detects(vector, fault), fault

    def test_collapsed_list_also_covered(self, c17_circuit):
        engine = PodemEngine(c17_circuit)
        for fault in collapse_faults(c17_circuit):
            assert engine.generate(fault).detected


class TestRedundantFaults:
    def test_redundant_fault_untestable(self):
        """out = OR(a, AND(a, b)) absorbs: the AND output sa0 is redundant."""
        c = Circuit("redundant")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("m", GateType.AND, ("a", "b"))
        c.add_gate("out", GateType.OR, ("a", "m"))
        c.set_output("out")
        result = generate_test(c, StuckAtFault("m", 0), backtrack_limit=200)
        assert result.status is PodemStatus.UNTESTABLE

    def test_constant_fed_fault_untestable(self):
        c = Circuit("tied")
        c.add_input("a")
        c.add_gate("one", GateType.TIE1, ())
        c.add_gate("out", GateType.AND, ("a", "one"))
        c.set_output("out")
        # 'one' stuck-at-1 is the existing value: unexcitable.
        result = generate_test(c, StuckAtFault("one", 1))
        assert result.status is PodemStatus.UNTESTABLE

    def test_unobservable_fault_untestable(self):
        c = Circuit("unobs")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("dead", GateType.AND, ("a", "b"))
        c.add_gate("out", GateType.NOT, ("a",))
        c.add_gate("sink", GateType.BUFF, ("dead",))
        c.set_output("out")
        result = generate_test(c, StuckAtFault("dead", 0))
        assert result.status is PodemStatus.UNTESTABLE


class TestBacktrackLimit:
    def test_zero_budget_aborts_conflicted_faults(self):
        """A fault needing backtracks aborts under a zero budget.

        out = AND(XOR(a,b), XNOR(a,b)) is constant 0; exciting it to 1 forces
        contradictory requirements, so the search must backtrack (and with
        limit 0, abort rather than prove redundancy).
        """
        c = Circuit("conflict")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("x1", GateType.XOR, ("a", "b"))
        c.add_gate("x2", GateType.XNOR, ("a", "b"))
        c.add_gate("out", GateType.AND, ("x1", "x2"))
        c.set_output("out")
        result = generate_test(c, StuckAtFault("out", 0), backtrack_limit=0)
        assert result.status is PodemStatus.ABORTED
        # With budget the same fault is proven untestable.
        result = generate_test(c, StuckAtFault("out", 0), backtrack_limit=50)
        assert result.status is PodemStatus.UNTESTABLE

    def test_backtracks_counted(self, c17_circuit):
        engine = PodemEngine(c17_circuit, backtrack_limit=100)
        results = [engine.generate(f) for f in full_fault_list(c17_circuit)]
        assert all(r.backtracks <= 100 for r in results)


class TestPodemValidity:
    def test_test_vector_complete(self, c17_circuit):
        result = generate_test(c17_circuit, StuckAtFault("N22", 1))
        assert result.detected
        assert set(result.test) == set(c17_circuit.inputs)
        assert all(v in (0, 1) for v in result.test.values())

    def test_sequential_rejected(self):
        c = Circuit()
        c.add_input("clk")
        c.add_gate("q", GateType.DFF, ("qn", "clk"))
        c.add_gate("qn", GateType.NOT, ("q",))
        c.set_output("q")
        with pytest.raises(Exception):
            PodemEngine(c)

    def test_unknown_fault_site_rejected(self, c17_circuit):
        engine = PodemEngine(c17_circuit)
        with pytest.raises(Exception):
            engine.generate(StuckAtFault("nope", 0))

    def test_rare_excitation_found_on_wide_and(self, rare_node_circuit):
        """PODEM (unlike random testing) excites a 2^-8 node directly."""
        result = generate_test(rare_node_circuit, StuckAtFault("rare", 0))
        assert result.detected
        assert all(result.test[f"a{i}"] == 1 for i in range(8))
        # Observability through OR requires b = 0.
        assert result.test["b"] == 0

    def test_validity_on_benchmark_sample(self, c432_circuit, rng):
        """On a real-size circuit every claimed detection must be genuine."""
        engine = PodemEngine(c432_circuit, backtrack_limit=30)
        simulator = FaultSimulator(c432_circuit)
        faults = collapse_faults(c432_circuit)
        sample_idx = rng.choice(len(faults), size=40, replace=False)
        for idx in sample_idx:
            fault = faults[int(idx)]
            result = engine.generate(fault)
            if result.status is PodemStatus.DETECTED:
                vector = np.array(
                    [[result.test[pi] for pi in c432_circuit.inputs]], dtype=np.uint8
                )
                assert simulator.detects(vector, fault), fault
