"""Unit tests for the Circuit container."""

import pytest

from repro.netlist import Circuit, GateType, NetlistError


def build_chain():
    c = Circuit("chain")
    c.add_input("a")
    c.add_gate("n1", GateType.NOT, ("a",))
    c.add_gate("n2", GateType.NOT, ("n1",))
    c.set_output("n2")
    return c


class TestConstruction:
    def test_duplicate_net_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.add_input("a")
        with pytest.raises(NetlistError):
            c.add_gate("a", GateType.NOT, ("a",))

    def test_add_gate_rejects_input_type(self):
        c = Circuit()
        with pytest.raises(NetlistError):
            c.add_gate("x", GateType.INPUT)

    def test_set_output_idempotent(self):
        c = build_chain()
        c.set_output("n2")
        assert c.outputs.count("n2") == 1

    def test_unset_output(self):
        c = build_chain()
        c.unset_output("n2")
        assert "n2" not in c.outputs

    def test_len_counts_all_nets(self, tiny_and_circuit):
        assert len(tiny_and_circuit) == 3
        assert tiny_and_circuit.num_logic_gates == 1


class TestQueries:
    def test_gate_lookup_error(self):
        c = Circuit()
        with pytest.raises(NetlistError):
            c.gate("missing")

    def test_fanout(self, c17_circuit):
        assert set(c17_circuit.fanout("N11")) == {"N16", "N19"}
        assert c17_circuit.fanout("N22") == ()

    def test_fanout_reports_undriven_reader(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateType.AND, ("a", "phantom"))
        with pytest.raises(NetlistError):
            c.fanout("a")

    def test_topological_order_respects_edges(self, c17_circuit):
        order = c17_circuit.topological_order()
        pos = {net: i for i, net in enumerate(order)}
        for gate in c17_circuit.gates():
            for src in gate.inputs:
                assert pos[src] < pos[gate.name]

    def test_combinational_cycle_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("x", GateType.AND, ("a", "y"))
        c.add_gate("y", GateType.AND, ("a", "x"))
        with pytest.raises(NetlistError, match="cycle"):
            c.topological_order()

    def test_dff_breaks_cycle(self):
        c = Circuit()
        c.add_input("clk")
        c.add_gate("q", GateType.DFF, ("qn", "clk"))
        c.add_gate("qn", GateType.NOT, ("q",))
        c.set_output("q")
        order = c.topological_order()
        assert set(order) == {"clk", "q", "qn"}
        assert c.is_sequential

    def test_levels_and_depth(self, c17_circuit):
        levels = c17_circuit.levels()
        assert levels["N1"] == 0
        assert levels["N10"] == 1
        assert levels["N16"] == 2
        assert levels["N22"] == 3
        assert c17_circuit.depth() == 3

    def test_fanin_cone(self, c17_circuit):
        cone = c17_circuit.fanin_cone("N22")
        assert cone == {"N22", "N10", "N16", "N1", "N2", "N3", "N6", "N11"}

    def test_fanout_cone(self, c17_circuit):
        cone = c17_circuit.fanout_cone("N11")
        assert cone == {"N11", "N16", "N19", "N22", "N23"}

    def test_stats_histogram(self, c17_circuit):
        stats = c17_circuit.stats()
        assert stats["NAND"] == 6
        assert stats["#inputs"] == 5
        assert stats["#outputs"] == 2


class TestMutation:
    def test_remove_gate_requires_no_fanout(self, c17_circuit):
        with pytest.raises(NetlistError):
            c17_circuit.remove_gate("N11")

    def test_remove_output_requires_unset(self, c17_circuit):
        with pytest.raises(NetlistError):
            c17_circuit.remove_gate("N22")
        c17_circuit.unset_output("N22")
        c17_circuit.remove_gate("N22")
        assert not c17_circuit.has_net("N22")

    def test_replace_gate_preserves_fanout(self, c17_circuit):
        c17_circuit.replace_gate("N10", GateType.TIE0, ())
        assert c17_circuit.gate("N10").gate_type is GateType.TIE0
        assert "N10" in c17_circuit.gate("N22").inputs

    def test_replace_rejects_inputs(self, c17_circuit):
        with pytest.raises(NetlistError):
            c17_circuit.replace_gate("N1", GateType.TIE0, ())

    def test_rewire_input(self, c17_circuit):
        c17_circuit.rewire_input("N22", "N10", "N19")
        assert c17_circuit.gate("N22").inputs == ("N19", "N16")

    def test_rewire_missing_connection(self, c17_circuit):
        with pytest.raises(NetlistError):
            c17_circuit.rewire_input("N22", "N11", "N19")

    def test_rename_net_updates_everything(self, c17_circuit):
        c17_circuit.rename_net("N11", "mid")
        assert c17_circuit.has_net("mid")
        assert not c17_circuit.has_net("N11")
        assert "mid" in c17_circuit.gate("N16").inputs
        assert "mid" in c17_circuit.gate("N19").inputs

    def test_rename_output_net(self, c17_circuit):
        c17_circuit.rename_net("N22", "out_a")
        assert "out_a" in c17_circuit.outputs

    def test_copy_is_independent(self, c17_circuit):
        dup = c17_circuit.copy()
        dup.unset_output("N22")
        dup.remove_gate("N22")
        assert c17_circuit.has_net("N22")
        assert "N22" in c17_circuit.outputs

    def test_mutation_invalidates_caches(self, c17_circuit):
        order_before = c17_circuit.topological_order()
        c17_circuit.unset_output("N23")
        c17_circuit.remove_gate("N23")
        order_after = c17_circuit.topological_order()
        assert "N23" in order_before
        assert "N23" not in order_after
