"""Differential tests: compiled levelized engine vs. the reference interpreters.

The compiled engine (``repro.sim.compiled``) must be bit-exact against the
retained per-gate reference implementations on randomized circuits and on the
bundled ISCAS-like benches, for both plain bit-parallel simulation and
stuck-at fault simulation (single-word fast path, pre-drop hybrid, and the
whole-matrix coverage path).
"""

import numpy as np
import pytest

from repro.atpg import FaultSimulator, full_fault_list
from repro.atpg.faultsim import reference_fault_sim
from repro.bench import c17, c432_like, c499_like, c880_like
from repro.netlist import Circuit, GateType
from repro.sim import (
    BitSimulator,
    compile_circuit,
    pack_patterns,
    reference_run_packed,
    unpack_patterns,
)

_GATE_CHOICES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUFF,
    GateType.MUX,
]


def random_circuit(seed: int, max_gates: int = 24) -> Circuit:
    """Random combinational circuit with constants, MUXes, and fanout."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(f"rand{seed}")
    available = [circuit.add_input(f"i{k}") for k in range(int(rng.integers(2, 6)))]
    circuit.add_gate("tie0", GateType.TIE0, ())
    circuit.add_gate("tie1", GateType.TIE1, ())
    available += ["tie0", "tie1"]
    for g in range(int(rng.integers(1, max_gates + 1))):
        gate_type = _GATE_CHOICES[rng.integers(len(_GATE_CHOICES))]
        if gate_type in (GateType.NOT, GateType.BUFF):
            arity = 1
        elif gate_type is GateType.MUX:
            arity = 3
        else:
            arity = int(rng.integers(2, 4))
        inputs = [available[rng.integers(len(available))] for _ in range(arity)]
        name = f"g{g}"
        circuit.add_gate(name, gate_type, inputs)
        available.append(name)
    for net in circuit.nets:
        if not circuit.gate(net).is_input and not circuit.fanout(net):
            circuit.set_output(net)
    if not circuit.outputs:
        circuit.set_output(available[-1])
    return circuit


def _patterns(circuit: Circuit, n_patterns: int, seed: int = 99) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((n_patterns, len(circuit.inputs))) < 0.5).astype(np.uint8)


def assert_all_nets_match(circuit: Circuit, patterns: np.ndarray) -> None:
    packed = pack_patterns(patterns)
    packed_inputs = {pi: packed[i] for i, pi in enumerate(circuit.inputs)}
    compiled = BitSimulator(circuit).run_packed(packed_inputs)
    reference = reference_run_packed(circuit, packed_inputs)
    assert set(compiled) == set(reference)
    n = patterns.shape[0]
    for net in reference:
        got = unpack_patterns(compiled[net][np.newaxis, :], n)
        want = unpack_patterns(reference[net][np.newaxis, :], n)
        assert (got == want).all(), net


class TestBitSimEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_circuits(self, seed):
        circuit = random_circuit(seed)
        n_patterns = int(np.random.default_rng(seed).integers(1, 150))
        assert_all_nets_match(circuit, _patterns(circuit, n_patterns, seed))

    @pytest.mark.parametrize("build", [c17, c432_like, c499_like, c880_like])
    def test_bundled_benches(self, build):
        circuit = build()
        assert_all_nets_match(circuit, _patterns(circuit, 200))

    def test_run_nets_matches_run_full(self, c17_circuit):
        pats = _patterns(c17_circuit, 100)
        full = BitSimulator(c17_circuit).run_full(pats)
        nets = ["N22", "N10", "N1"]
        selected = BitSimulator(c17_circuit).run_nets(pats, nets)
        for col, net in enumerate(nets):
            assert (selected[:, col] == full[net]).all()


class TestFaultSimEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("n_patterns", [33, 130])
    @pytest.mark.parametrize("drop", [True, False])
    def test_random_circuits(self, seed, n_patterns, drop):
        circuit = random_circuit(seed, max_gates=16)
        faults = full_fault_list(circuit)
        patterns = _patterns(circuit, n_patterns, seed)
        got = FaultSimulator(circuit).run(patterns, faults, drop_detected=drop)
        want = reference_fault_sim(circuit, patterns, faults, drop_detected=drop)
        assert got.detected == want.detected  # same faults AND same first index
        assert got.undetected == want.undetected
        assert got.patterns_applied == want.patterns_applied

    @pytest.mark.parametrize("drop", [True, False])
    def test_bundled_bench(self, c432_circuit, drop):
        faults = full_fault_list(c432_circuit)[::5]
        patterns = _patterns(c432_circuit, 150)
        got = FaultSimulator(c432_circuit).run(patterns, faults, drop_detected=drop)
        want = reference_fault_sim(c432_circuit, patterns, faults, drop_detected=drop)
        assert got.detected == want.detected
        assert set(got.undetected) == set(want.undetected)


class TestPackingVectorized:
    @pytest.mark.parametrize("seed", range(10))
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        n_patterns = int(rng.integers(1, 200))
        n_signals = int(rng.integers(1, 9))
        pats = (rng.random((n_patterns, n_signals)) < 0.5).astype(np.uint8)
        assert (unpack_patterns(pack_patterns(pats), n_patterns) == pats).all()

    def test_bit_order_within_and_across_words(self):
        pats = np.zeros((130, 2), dtype=np.uint8)
        pats[0, 0] = 1
        pats[63, 0] = 1
        pats[64, 1] = 1
        pats[129, 1] = 1
        packed = pack_patterns(pats)
        assert packed.shape == (2, 3)
        assert packed[0, 0] == np.uint64((1 << 63) | 1)
        assert packed[1, 1] == np.uint64(1)
        assert packed[1, 2] == np.uint64(1 << 1)

    def test_empty_pattern_block(self):
        packed = pack_patterns(np.zeros((0, 3), dtype=np.uint8))
        assert packed.shape == (3, 0)
        assert unpack_patterns(packed, 0).shape == (0, 3)


class TestCompilationCache:
    def test_cache_reused_until_mutation(self, c17_circuit):
        first = compile_circuit(c17_circuit)
        assert compile_circuit(c17_circuit) is first
        c17_circuit.add_gate("extra", GateType.NOT, ("N22",))
        second = compile_circuit(c17_circuit)
        assert second is not first
        assert "extra" in second.index

    def test_copies_share_cache_until_mutation(self, c17_circuit):
        original = compile_circuit(c17_circuit)
        clone = c17_circuit.copy("clone")
        assert compile_circuit(clone) is original  # no cold recompile
        clone.add_gate("extra", GateType.NOT, ("N22",))
        diverged = compile_circuit(clone)
        assert diverged is not original
        assert "extra" in diverged.index
        # The original circuit's compiled form is untouched by the clone edit.
        assert compile_circuit(c17_circuit) is original

    def test_schedule_covers_every_logic_gate(self, c880_circuit):
        compiled = compile_circuit(c880_circuit)
        scheduled = sum(group.out_idx.size for group in compiled.schedule)
        constants = compiled.tie0_idx.size + compiled.tie1_idx.size
        assert scheduled + constants == c880_circuit.num_logic_gates
