"""Tests for the declarative experiment API (`repro.api`).

Covers spec/record JSON round-trips, registry resolution, seed determinism,
parallel-vs-serial campaign parity, and JSONL resume bookkeeping.
"""

import json

import pytest

from repro.api import (
    CIRCUITS,
    DETECTORS,
    TROJAN_DESIGNS,
    CampaignRunner,
    CampaignSpec,
    ExperimentRecord,
    ExperimentSpec,
    TABLE1_PARAMETERS,
    canonicalize,
    detect_seed_for,
    execute_experiment,
    load_records,
    resolve_circuit,
    resolve_designs,
    run_campaign,
    run_experiment,
    spec_hash,
)
from repro.core import TableRow
from repro.trojan.library import TrojanDesign


class TestSpecSerialization:
    def test_spec_round_trip(self):
        spec = ExperimentSpec(
            circuit="c432",
            pth=0.975,
            design="counter2",
            seed=7,
            mc_sessions=16,
            detector="paper",
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_spec_json_is_plain_json(self):
        data = json.loads(ExperimentSpec(circuit="c17", pth=0.9).to_json())
        assert data["circuit"] == "c17"
        assert data["design"] is None

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            ExperimentSpec.from_dict({"circuit": "c17", "bogus": 1})

    def test_invalid_pth_rejected(self):
        with pytest.raises(ValueError, match="pth"):
            ExperimentSpec(circuit="c17", pth=0.2)

    def test_cell_id_stable_and_distinct(self):
        a = ExperimentSpec(circuit="c17", pth=0.9)
        assert a.cell_id() == ExperimentSpec(circuit="c17", pth=0.9).cell_id()
        assert a.cell_id() != a.with_(pth=0.95).cell_id()
        assert a.cell_id() != a.with_(seed=1).cell_id()

    def test_campaign_round_trip(self):
        campaign = CampaignSpec.sweep(
            circuits=["c17", "c432"], pths=[0.9, 0.975], seeds=[3]
        )
        assert CampaignSpec.from_json(campaign.to_json()) == campaign

    def test_sweep_expansion_is_circuit_major(self):
        campaign = CampaignSpec.sweep(circuits=["a", "b"], pths=[0.9, 0.95])
        assert len(campaign) == 4
        assert [s.circuit for s in campaign] == ["a", "a", "b", "b"]

    def test_table1_grid(self):
        campaign = CampaignSpec.table1(seed=1)
        assert len(campaign) == 5
        for spec in campaign:
            pth, bits = TABLE1_PARAMETERS[spec.circuit]
            assert spec.pth == pth
            assert spec.design == f"counter{bits}"
            assert spec.seed == 1

    def test_table1_forwards_detector_knobs(self):
        campaign = CampaignSpec.table1(
            detector="paper", detector_chips=11, additive_gates=5
        )
        for spec in campaign:
            assert spec.detector_chips == 11
            assert spec.additive_gates == 5


class TestRegistries:
    def test_all_benchmarks_registered(self):
        for name in ("c17", "c432", "c499", "c880", "c1355", "c1908", "c3540", "c6288"):
            assert name in CIRCUITS

    def test_resolve_circuit_by_name(self):
        assert resolve_circuit("c17").name == "c17"

    def test_resolve_circuit_by_path(self, tmp_path):
        from repro.bench import c17, save_bench

        path = tmp_path / "mine.bench"
        save_bench(c17(), path)
        assert resolve_circuit(str(path)).name == "mine"

    def test_resolve_circuit_unknown(self):
        with pytest.raises(ValueError, match="unknown circuit"):
            resolve_circuit("c9999")

    def test_register_decorator(self):
        @CIRCUITS.register("_test_tmp_circuit")
        def factory():
            from repro.bench import c17

            return c17()

        try:
            assert resolve_circuit("_test_tmp_circuit").name == "c17"
        finally:
            CIRCUITS._entries.pop("_test_tmp_circuit")

    def test_resolve_designs(self):
        assert resolve_designs(None) is None
        (design,) = resolve_designs("counter3")
        assert design == TrojanDesign("counter3", "counter", 3)
        # Parametric fallback beyond the registered library sizes.
        (big,) = resolve_designs("counter7")
        assert big.size == 7 and big.kind == "counter"
        with pytest.raises(ValueError, match="unknown trojan design"):
            resolve_designs("rowhammer")

    def test_default_designs_registered(self):
        assert {"counter2", "counter5", "comb2", "comb4"} <= set(
            TROJAN_DESIGNS.names()
        )

    def test_detector_suites_registered(self):
        assert DETECTORS.names() == ["paper", "structural", "traces"]

    def test_detect_seed_derivation(self):
        assert detect_seed_for(None) == 37  # legacy fixed seed
        assert detect_seed_for(5) == detect_seed_for(5)
        assert detect_seed_for(5) != detect_seed_for(6)


class TestExperimentRecord:
    def test_record_round_trip_c17(self):
        record = run_experiment(ExperimentSpec(circuit="c17", pth=0.9))
        assert record.error is None
        assert record.success is False  # c17 has no salvage budget
        restored = ExperimentRecord.from_json_line(record.to_json_line())
        assert restored.payload_dict() == record.payload_dict()
        assert restored.spec == record.spec

    def test_payload_excludes_runtime(self):
        record = run_experiment(ExperimentSpec(circuit="c17", pth=0.9))
        assert "timings_s" in record.runtime
        assert "runtime" not in record.payload_dict()
        assert "runtime" in record.to_dict()

    def test_record_unknown_keys_rejected(self):
        record = run_experiment(ExperimentSpec(circuit="c17", pth=0.9))
        data = record.to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="unknown keys"):
            ExperimentRecord.from_dict(data)


class TestDeterminismAndReporting:
    @pytest.fixture(scope="class")
    def c432_outcomes(self):
        spec = ExperimentSpec(
            circuit="c432", pth=0.975, design="counter2", seed=5, mc_sessions=8
        )
        return spec, execute_experiment(spec), execute_experiment(spec)

    def test_same_seed_runs_identical(self, c432_outcomes):
        _, first, second = c432_outcomes
        assert first.record.payload_dict() == second.record.payload_dict()

    def test_seed_reaches_monte_carlo(self, c432_outcomes):
        _, first, _ = c432_outcomes
        assert first.record.success
        assert first.record.pft_monte_carlo is not None

    def test_table_row_matches_result_path(self, c432_outcomes):
        _, outcome, _ = c432_outcomes
        assert TableRow.from_record(outcome.record) == TableRow.from_result(
            outcome.result
        )


class TestCampaignRunner:
    @pytest.fixture(scope="class")
    def small_campaign(self):
        return CampaignSpec.of(
            [
                ExperimentSpec(circuit="c17", pth=0.9, seed=3),
                ExperimentSpec(circuit="c17", pth=0.95, seed=3),
                ExperimentSpec(circuit="c432", pth=0.975, design="counter2", seed=3),
            ],
            name="unit",
        )

    def test_parallel_matches_serial(self, small_campaign, tmp_path):
        out = tmp_path / "parallel.jsonl"
        result = run_campaign(small_campaign, jobs=2, out=out)
        assert len(result.records) == len(small_campaign)
        assert not result.errors
        by_id = {r.spec.cell_id(): r for r in load_records(out)}
        for spec in small_campaign:
            serial = run_experiment(spec)
            assert serial.payload_dict() == by_id[spec.cell_id()].payload_dict()

    def test_resume_skips_completed_cells(self, small_campaign, tmp_path):
        out = tmp_path / "resume.jsonl"
        first = run_campaign(small_campaign, jobs=1, out=out)
        assert len(first.records) == 3 and not first.skipped
        again = run_campaign(small_campaign, jobs=1, out=out, resume=True)
        assert len(again.records) == 0
        assert len(again.skipped) == 3
        assert len(load_records(out)) == 3  # nothing re-appended

    def test_resume_runs_only_new_cells(self, small_campaign, tmp_path):
        out = tmp_path / "partial.jsonl"
        run_campaign(small_campaign, jobs=1, out=out)
        extra = CampaignSpec.of(
            list(small_campaign) + [ExperimentSpec(circuit="c17", pth=0.99, seed=3)]
        )
        result = run_campaign(extra, jobs=1, out=out, resume=True)
        assert len(result.records) == 1
        assert result.records[0].spec.pth == 0.99
        assert len(load_records(out)) == 4

    def test_resume_requires_out(self, small_campaign):
        with pytest.raises(ValueError, match="resume"):
            CampaignRunner(small_campaign, resume=True).run()

    def test_bad_cell_becomes_error_record(self, tmp_path):
        campaign = CampaignSpec.of(
            [ExperimentSpec(circuit="/nonexistent/x.bench", pth=0.9)]
        )
        result = run_campaign(campaign)
        (record,) = result.records
        assert record.error is not None and "unknown circuit" in record.error
        assert not record.success
        # Error records serialize like any other.
        restored = ExperimentRecord.from_json_line(record.to_json_line())
        assert restored.error == record.error

    def test_resume_reruns_error_records(self, tmp_path):
        out = tmp_path / "errors.jsonl"
        campaign = CampaignSpec.of(
            [
                ExperimentSpec(circuit="c17", pth=0.9),
                ExperimentSpec(circuit="/nonexistent/x.bench", pth=0.9),
            ]
        )
        first = run_campaign(campaign, jobs=1, out=out)
        assert len(first.errors) == 1
        # An error record is not "done": the failed cell re-runs on resume,
        # the clean cell does not.
        again = run_campaign(campaign, jobs=1, out=out, resume=True)
        assert len(again.skipped) == 1
        assert [r.spec.circuit for r in again.records] == ["/nonexistent/x.bench"]

    def test_resume_after_truncated_line(self, small_campaign, tmp_path):
        # A crash mid-write leaves an unterminated partial line; resume must
        # re-run that cell and keep the appended records parseable.
        out = tmp_path / "truncated.jsonl"
        run_campaign(small_campaign, jobs=1, out=out)
        lines = out.read_text().splitlines()
        out.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        result = run_campaign(small_campaign, jobs=1, out=out, resume=True)
        assert len(result.records) == 1  # only the corrupted cell re-ran
        restored = load_records(out, strict=False)
        assert len(restored) == 3
        assert {r.spec.cell_id() for r in restored} == {
            s.cell_id() for s in small_campaign
        }

    def test_load_records_strict(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = run_experiment(ExperimentSpec(circuit="c17", pth=0.9))
        path.write_text(good.to_json_line() + "\n{not json}\n")
        with pytest.raises(ValueError, match="invalid record"):
            load_records(path)
        assert len(load_records(path, strict=False)) == 1


class TestSpecHash:
    """Canonical spec hashing (`repro.api.spec_hash`).

    The pinned digests below are load-bearing: the fleet service's result
    cache, the columnar store, and `--resume` dedup all key on this hash,
    so a silent change to the canonicalization invalidates every cache
    on disk.  If one of these assertions fails, you changed the hash
    contract — bump the cache/store schema versions rather than repinning
    casually.
    """

    PINNED = {
        "c17": "4711e67ac8dcb44831de6acf84cf1124f8016b3c6922aec9ccbb8dd55bcb9c64",
        "c432": "aac15f69d3f459c2f4cecc54d016dd0480d382b66d9b9786350a134241451907",
        "campaign": "b45e34ef18732d7e9a97824c85b84e6198bdbc7a42e50d1a770b2b81b3a73ff5",
    }

    def test_pinned_digests_are_stable(self):
        s1 = ExperimentSpec(circuit="c17", pth=0.9)
        s2 = ExperimentSpec(
            circuit="c432", pth=0.975, design="counter2", seed=5, mc_sessions=8
        )
        assert spec_hash(s1) == self.PINNED["c17"]
        assert spec_hash(s2) == self.PINNED["c432"]
        assert spec_hash(CampaignSpec.of([s1], name="x")) == self.PINNED["campaign"]

    def test_method_matches_module_function(self):
        spec = ExperimentSpec(circuit="c17", pth=0.9)
        assert spec.spec_hash() == spec_hash(spec) == spec_hash(spec.to_dict())

    def test_numeric_normalization(self):
        # Integral floats hash like ints: 8.0 MC sessions is the same
        # experiment as 8, however the spec was deserialized.
        assert spec_hash({"a": 8.0}) == spec_hash({"a": 8})
        assert spec_hash({"a": 8.5}) != spec_hash({"a": 8})

    def test_sequence_normalization(self):
        # Tuples and lists are the same wire value (JSON has only arrays).
        assert spec_hash({"xs": (1, 2)}) == spec_hash({"xs": [1, 2]})
        assert spec_hash({"xs": [1, 2]}) != spec_hash({"xs": [2, 1]})

    def test_bool_stays_distinct_from_int(self):
        # True == 1 in Python; the canonical form must not conflate them.
        assert spec_hash({"flag": True}) != spec_hash({"flag": 1})
        assert canonicalize({"flag": True}) == {"flag": True}

    def test_key_order_is_irrelevant(self):
        assert spec_hash({"a": 1, "b": 2}) == spec_hash({"b": 2, "a": 1})

    def test_hash_ignores_nothing_semantic(self):
        base = ExperimentSpec(circuit="c17", pth=0.9)
        assert spec_hash(base) != spec_hash(ExperimentSpec(circuit="c17", pth=0.95))
        assert spec_hash(base) != spec_hash(
            ExperimentSpec(circuit="c17", pth=0.9, seed=1)
        )

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError, match="spec_hash"):
            spec_hash([1, 2, 3])

    def test_resume_dedup_keys_on_hash(self, tmp_path):
        # A record written by an older run whose cell_id formatting differed
        # would still dedup, because resume now keys on the canonical hash.
        spec = ExperimentSpec(circuit="c17", pth=0.9)
        record = run_experiment(spec)
        out = tmp_path / "resume.jsonl"
        out.write_text(record.to_json_line() + "\n")
        result = run_campaign(CampaignSpec.of([spec]), out=out, resume=True)
        assert result.records == []
        assert result.skipped == [spec.cell_id()]


class TestConcurrentAppend:
    """Readers must tolerate a writer that is mid-line (satellite c).

    The campaign JSONL is append-only and written with per-record flushes,
    so the only torn state a concurrent reader can observe is a final
    unterminated partial line.  `strict=False` readers (what `--resume`
    uses) must skip exactly that tail and see every completed record.
    """

    def test_reader_skips_writer_midline_tail(self, tmp_path):
        out = tmp_path / "live.jsonl"
        specs = [ExperimentSpec(circuit="c17", pth=p) for p in (0.9, 0.95)]
        records = [run_experiment(s) for s in specs]
        with open(out, "w") as fh:
            fh.write(records[0].to_json_line() + "\n")
            # Writer crashes / is scheduled out halfway through record 2.
            half = records[1].to_json_line()
            fh.write(half[: len(half) // 2])
            fh.flush()
            seen = load_records(out, strict=False)
            assert [r.spec.cell_id() for r in seen] == [specs[0].cell_id()]
            # Writer resumes and finishes the line: reader now sees both.
            fh.write(half[len(half) // 2 :] + "\n")
            fh.flush()
        seen = load_records(out, strict=False)
        assert [r.spec.cell_id() for r in seen] == [s.cell_id() for s in specs]

    def test_threaded_writer_reader_snapshots_are_consistent(self, tmp_path):
        import threading

        out = tmp_path / "race.jsonl"
        out.touch()
        record = run_experiment(ExperimentSpec(circuit="c17", pth=0.9))
        line = record.to_json_line() + "\n"
        n_writes = 50
        stop = threading.Event()

        def writer():
            with open(out, "a") as fh:
                for _ in range(n_writes):
                    # Two syscalls per record maximizes the window in which
                    # a reader can observe a torn line.
                    fh.write(line[: len(line) // 2])
                    fh.flush()
                    fh.write(line[len(line) // 2 :])
                    fh.flush()
            stop.set()

        counts = []
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    counts.append(len(load_records(out, strict=False)))
                except Exception as exc:  # noqa: BLE001 - fail the test below
                    errors.append(exc)

        t_w = threading.Thread(target=writer)
        t_r = threading.Thread(target=reader)
        t_w.start()
        t_r.start()
        t_w.join()
        t_r.join()
        assert not errors
        # Counts only grow (append-only file) and never exceed the total.
        assert counts == sorted(counts)
        assert all(0 <= c <= n_writes for c in counts)
        assert len(load_records(out, strict=False)) == n_writes

    def test_resume_last_record_wins_with_duplicate_hashes(self, tmp_path):
        # Same cell appears three times (two stale errors, one success,
        # interleaved): only the final record decides.
        spec = ExperimentSpec(circuit="c17", pth=0.9)
        good = run_experiment(spec)
        bad = ExperimentRecord.failed(spec, "WorkerCrash: synthetic")
        out = tmp_path / "dups.jsonl"
        out.write_text(
            bad.to_json_line()
            + "\n"
            + good.to_json_line()
            + "\n"
            + bad.to_json_line()
            + "\n"
        )
        result = run_campaign(CampaignSpec.of([spec]), out=out, resume=True)
        assert [r.spec.cell_id() for r in result.records] == [spec.cell_id()]
        assert result.skipped == []
