"""Tests for the declarative experiment API (`repro.api`).

Covers spec/record JSON round-trips, registry resolution, seed determinism,
parallel-vs-serial campaign parity, and JSONL resume bookkeeping.
"""

import json

import pytest

from repro.api import (
    CIRCUITS,
    DETECTORS,
    TROJAN_DESIGNS,
    CampaignRunner,
    CampaignSpec,
    ExperimentRecord,
    ExperimentSpec,
    TABLE1_PARAMETERS,
    detect_seed_for,
    execute_experiment,
    load_records,
    resolve_circuit,
    resolve_designs,
    run_campaign,
    run_experiment,
)
from repro.core import TableRow
from repro.trojan.library import TrojanDesign


class TestSpecSerialization:
    def test_spec_round_trip(self):
        spec = ExperimentSpec(
            circuit="c432",
            pth=0.975,
            design="counter2",
            seed=7,
            mc_sessions=16,
            detector="paper",
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_spec_json_is_plain_json(self):
        data = json.loads(ExperimentSpec(circuit="c17", pth=0.9).to_json())
        assert data["circuit"] == "c17"
        assert data["design"] is None

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            ExperimentSpec.from_dict({"circuit": "c17", "bogus": 1})

    def test_invalid_pth_rejected(self):
        with pytest.raises(ValueError, match="pth"):
            ExperimentSpec(circuit="c17", pth=0.2)

    def test_cell_id_stable_and_distinct(self):
        a = ExperimentSpec(circuit="c17", pth=0.9)
        assert a.cell_id() == ExperimentSpec(circuit="c17", pth=0.9).cell_id()
        assert a.cell_id() != a.with_(pth=0.95).cell_id()
        assert a.cell_id() != a.with_(seed=1).cell_id()

    def test_campaign_round_trip(self):
        campaign = CampaignSpec.sweep(
            circuits=["c17", "c432"], pths=[0.9, 0.975], seeds=[3]
        )
        assert CampaignSpec.from_json(campaign.to_json()) == campaign

    def test_sweep_expansion_is_circuit_major(self):
        campaign = CampaignSpec.sweep(circuits=["a", "b"], pths=[0.9, 0.95])
        assert len(campaign) == 4
        assert [s.circuit for s in campaign] == ["a", "a", "b", "b"]

    def test_table1_grid(self):
        campaign = CampaignSpec.table1(seed=1)
        assert len(campaign) == 5
        for spec in campaign:
            pth, bits = TABLE1_PARAMETERS[spec.circuit]
            assert spec.pth == pth
            assert spec.design == f"counter{bits}"
            assert spec.seed == 1

    def test_table1_forwards_detector_knobs(self):
        campaign = CampaignSpec.table1(
            detector="paper", detector_chips=11, additive_gates=5
        )
        for spec in campaign:
            assert spec.detector_chips == 11
            assert spec.additive_gates == 5


class TestRegistries:
    def test_all_benchmarks_registered(self):
        for name in ("c17", "c432", "c499", "c880", "c1355", "c1908", "c3540", "c6288"):
            assert name in CIRCUITS

    def test_resolve_circuit_by_name(self):
        assert resolve_circuit("c17").name == "c17"

    def test_resolve_circuit_by_path(self, tmp_path):
        from repro.bench import c17, save_bench

        path = tmp_path / "mine.bench"
        save_bench(c17(), path)
        assert resolve_circuit(str(path)).name == "mine"

    def test_resolve_circuit_unknown(self):
        with pytest.raises(ValueError, match="unknown circuit"):
            resolve_circuit("c9999")

    def test_register_decorator(self):
        @CIRCUITS.register("_test_tmp_circuit")
        def factory():
            from repro.bench import c17

            return c17()

        try:
            assert resolve_circuit("_test_tmp_circuit").name == "c17"
        finally:
            CIRCUITS._entries.pop("_test_tmp_circuit")

    def test_resolve_designs(self):
        assert resolve_designs(None) is None
        (design,) = resolve_designs("counter3")
        assert design == TrojanDesign("counter3", "counter", 3)
        # Parametric fallback beyond the registered library sizes.
        (big,) = resolve_designs("counter7")
        assert big.size == 7 and big.kind == "counter"
        with pytest.raises(ValueError, match="unknown trojan design"):
            resolve_designs("rowhammer")

    def test_default_designs_registered(self):
        assert {"counter2", "counter5", "comb2", "comb4"} <= set(
            TROJAN_DESIGNS.names()
        )

    def test_detector_suites_registered(self):
        assert DETECTORS.names() == ["paper", "structural", "traces"]

    def test_detect_seed_derivation(self):
        assert detect_seed_for(None) == 37  # legacy fixed seed
        assert detect_seed_for(5) == detect_seed_for(5)
        assert detect_seed_for(5) != detect_seed_for(6)


class TestExperimentRecord:
    def test_record_round_trip_c17(self):
        record = run_experiment(ExperimentSpec(circuit="c17", pth=0.9))
        assert record.error is None
        assert record.success is False  # c17 has no salvage budget
        restored = ExperimentRecord.from_json_line(record.to_json_line())
        assert restored.payload_dict() == record.payload_dict()
        assert restored.spec == record.spec

    def test_payload_excludes_runtime(self):
        record = run_experiment(ExperimentSpec(circuit="c17", pth=0.9))
        assert "timings_s" in record.runtime
        assert "runtime" not in record.payload_dict()
        assert "runtime" in record.to_dict()

    def test_record_unknown_keys_rejected(self):
        record = run_experiment(ExperimentSpec(circuit="c17", pth=0.9))
        data = record.to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="unknown keys"):
            ExperimentRecord.from_dict(data)


class TestDeterminismAndReporting:
    @pytest.fixture(scope="class")
    def c432_outcomes(self):
        spec = ExperimentSpec(
            circuit="c432", pth=0.975, design="counter2", seed=5, mc_sessions=8
        )
        return spec, execute_experiment(spec), execute_experiment(spec)

    def test_same_seed_runs_identical(self, c432_outcomes):
        _, first, second = c432_outcomes
        assert first.record.payload_dict() == second.record.payload_dict()

    def test_seed_reaches_monte_carlo(self, c432_outcomes):
        _, first, _ = c432_outcomes
        assert first.record.success
        assert first.record.pft_monte_carlo is not None

    def test_table_row_matches_result_path(self, c432_outcomes):
        _, outcome, _ = c432_outcomes
        assert TableRow.from_record(outcome.record) == TableRow.from_result(
            outcome.result
        )


class TestCampaignRunner:
    @pytest.fixture(scope="class")
    def small_campaign(self):
        return CampaignSpec.of(
            [
                ExperimentSpec(circuit="c17", pth=0.9, seed=3),
                ExperimentSpec(circuit="c17", pth=0.95, seed=3),
                ExperimentSpec(circuit="c432", pth=0.975, design="counter2", seed=3),
            ],
            name="unit",
        )

    def test_parallel_matches_serial(self, small_campaign, tmp_path):
        out = tmp_path / "parallel.jsonl"
        result = run_campaign(small_campaign, jobs=2, out=out)
        assert len(result.records) == len(small_campaign)
        assert not result.errors
        by_id = {r.spec.cell_id(): r for r in load_records(out)}
        for spec in small_campaign:
            serial = run_experiment(spec)
            assert serial.payload_dict() == by_id[spec.cell_id()].payload_dict()

    def test_resume_skips_completed_cells(self, small_campaign, tmp_path):
        out = tmp_path / "resume.jsonl"
        first = run_campaign(small_campaign, jobs=1, out=out)
        assert len(first.records) == 3 and not first.skipped
        again = run_campaign(small_campaign, jobs=1, out=out, resume=True)
        assert len(again.records) == 0
        assert len(again.skipped) == 3
        assert len(load_records(out)) == 3  # nothing re-appended

    def test_resume_runs_only_new_cells(self, small_campaign, tmp_path):
        out = tmp_path / "partial.jsonl"
        run_campaign(small_campaign, jobs=1, out=out)
        extra = CampaignSpec.of(
            list(small_campaign) + [ExperimentSpec(circuit="c17", pth=0.99, seed=3)]
        )
        result = run_campaign(extra, jobs=1, out=out, resume=True)
        assert len(result.records) == 1
        assert result.records[0].spec.pth == 0.99
        assert len(load_records(out)) == 4

    def test_resume_requires_out(self, small_campaign):
        with pytest.raises(ValueError, match="resume"):
            CampaignRunner(small_campaign, resume=True).run()

    def test_bad_cell_becomes_error_record(self, tmp_path):
        campaign = CampaignSpec.of(
            [ExperimentSpec(circuit="/nonexistent/x.bench", pth=0.9)]
        )
        result = run_campaign(campaign)
        (record,) = result.records
        assert record.error is not None and "unknown circuit" in record.error
        assert not record.success
        # Error records serialize like any other.
        restored = ExperimentRecord.from_json_line(record.to_json_line())
        assert restored.error == record.error

    def test_resume_reruns_error_records(self, tmp_path):
        out = tmp_path / "errors.jsonl"
        campaign = CampaignSpec.of(
            [
                ExperimentSpec(circuit="c17", pth=0.9),
                ExperimentSpec(circuit="/nonexistent/x.bench", pth=0.9),
            ]
        )
        first = run_campaign(campaign, jobs=1, out=out)
        assert len(first.errors) == 1
        # An error record is not "done": the failed cell re-runs on resume,
        # the clean cell does not.
        again = run_campaign(campaign, jobs=1, out=out, resume=True)
        assert len(again.skipped) == 1
        assert [r.spec.circuit for r in again.records] == ["/nonexistent/x.bench"]

    def test_resume_after_truncated_line(self, small_campaign, tmp_path):
        # A crash mid-write leaves an unterminated partial line; resume must
        # re-run that cell and keep the appended records parseable.
        out = tmp_path / "truncated.jsonl"
        run_campaign(small_campaign, jobs=1, out=out)
        lines = out.read_text().splitlines()
        out.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        result = run_campaign(small_campaign, jobs=1, out=out, resume=True)
        assert len(result.records) == 1  # only the corrupted cell re-ran
        restored = load_records(out, strict=False)
        assert len(restored) == 3
        assert {r.spec.cell_id() for r in restored} == {
            s.cell_id() for s in small_campaign
        }

    def test_load_records_strict(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = run_experiment(ExperimentSpec(circuit="c17", pth=0.9))
        path.write_text(good.to_json_line() + "\n{not json}\n")
        with pytest.raises(ValueError, match="invalid record"):
            load_records(path)
        assert len(load_records(path, strict=False)) == 1
