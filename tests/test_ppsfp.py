"""Differential tests pinning the PPSFP engine bit-exactly.

Three implementations must agree fault-for-fault, index-for-index:

* ``reference_fault_sim`` — the retained per-gate/Python-int oracle,
* ``FaultSimulator.run(mode="single")`` — the compiled per-fault cone path,
* ``FaultSimulator.run(mode="ppsfp")`` — the parallel-pattern parallel-fault
  engine (``repro.atpg.ppsfp``), which packs up to 64 faults into extra
  word-column slices of one widened matrix.

The suite sweeps seeded random circuits, fault-batch sizes on both sides of
the 64-slot word boundary (1, 7, 64, 100+), and pattern counts on both sides
of the 64-bit word boundary (1, 63, 64, 65, 130, 200) — the places where
masking or slot arithmetic would break first.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.atpg import FaultSimulator, StuckAtFault, full_fault_list
from repro.atpg.faultsim import PPSFP_MIN_FAULTS, reference_fault_sim
from repro.atpg.ppsfp import FAULT_BATCH, ppsfp_detections
from repro.bench import c17, c432_like, c880_like
from repro.netlist import Circuit, GateType
from repro.sim.backend import NumpyBackend, available_backends, get_backend
from repro.sim.bitsim import WORD_BITS
from repro.sim.compiled import compile_circuit

_GATE_TYPES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUFF,
]


def random_circuit(seed: int, n_inputs: int = 8, n_gates: int = 60) -> Circuit:
    """Seeded random combinational DAG with reconvergent fan-out.

    Each gate draws its fan-in from *all* earlier nets, so deep cones and
    shared subcones (the hard cases for cone-restricted evaluation) appear
    naturally.  Roughly a third of the gates are made primary outputs, plus
    every sink, so detection visibility varies across faults.
    """
    rng = np.random.default_rng(seed)
    circuit = Circuit(f"rand{seed}")
    nets = [circuit.add_input(f"i{k}") for k in range(n_inputs)]
    for g in range(n_gates):
        gate_type = _GATE_TYPES[rng.integers(len(_GATE_TYPES))]
        fan_in = 1 if gate_type in (GateType.NOT, GateType.BUFF) else int(
            rng.integers(2, min(4, len(nets)) + 1)
        )
        ins = rng.choice(len(nets), size=fan_in, replace=False)
        nets.append(circuit.add_gate(f"g{g}", gate_type, [nets[i] for i in ins]))
    driven = {inp for net in circuit.nets for inp in circuit.gate(net).inputs}
    sinks = [n for n in nets[n_inputs:] if n not in driven]
    chosen = {n for n in nets[n_inputs:] if rng.random() < 0.3}
    for net in sorted(chosen | set(sinks)):
        circuit.set_output(net)
    return circuit


def _patterns(circuit: Circuit, n_patterns: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((n_patterns, len(circuit.inputs))) < 0.5).astype(np.uint8)


def _sample_faults(circuit: Circuit, n: int, seed: int):
    faults = full_fault_list(circuit)
    if len(faults) <= n:
        return faults
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(faults), n, replace=False)
    return [faults[i] for i in sorted(chosen)]


def _assert_same_outcome(circuit, patterns, faults, drop_detected=True):
    """All three engines agree on detections AND first-pattern indices."""
    sim = FaultSimulator(circuit)
    want = reference_fault_sim(circuit, patterns, faults, drop_detected=drop_detected)
    single = sim.run(patterns, faults, drop_detected=drop_detected, mode="single")
    ppsfp = sim.run(patterns, faults, drop_detected=drop_detected, mode="ppsfp")
    assert single.detected == want.detected
    assert ppsfp.detected == want.detected
    assert single.undetected == want.undetected
    assert ppsfp.undetected == want.undetected


class TestRandomCircuitDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_ppsfp_matches_reference_and_single(self, seed):
        circuit = random_circuit(seed)
        patterns = _patterns(circuit, 130, seed + 100)
        faults = _sample_faults(circuit, 100, seed + 200)
        _assert_same_outcome(circuit, patterns, faults)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_no_dropping_mode(self, seed):
        circuit = random_circuit(seed, n_inputs=6, n_gates=40)
        patterns = _patterns(circuit, 200, seed)
        faults = _sample_faults(circuit, 80, seed)
        _assert_same_outcome(circuit, patterns, faults, drop_detected=False)

    @pytest.mark.parametrize("n_faults", [1, 7, 64, 100])
    def test_batch_size_boundaries(self, n_faults):
        """Fault counts straddling the 64-slot batch width."""
        circuit = random_circuit(7)
        patterns = _patterns(circuit, 96, 7)
        faults = _sample_faults(circuit, n_faults, 7)
        _assert_same_outcome(circuit, patterns, faults)

    @pytest.mark.parametrize("n_patterns", [1, 63, 64, 65, 130, 200])
    def test_pattern_tail_boundaries(self, n_patterns):
        """Pattern counts straddling the 64-bit word boundary (tail masks)."""
        circuit = random_circuit(8)
        patterns = _patterns(circuit, n_patterns, 8)
        faults = _sample_faults(circuit, 48, 8)
        _assert_same_outcome(circuit, patterns, faults)

    def test_explicit_batch_size_sweep(self):
        """``ppsfp_detections`` itself at sub-word batch widths."""
        circuit = random_circuit(9)
        compiled = compile_circuit(circuit)
        patterns = _patterns(circuit, 130, 9)
        faults = _sample_faults(circuit, 70, 9)
        want = reference_fault_sim(
            circuit, patterns, faults, drop_detected=False
        ).detected
        for batch_size in (1, 7, 64):
            got = ppsfp_detections(compiled, patterns, faults, batch_size=batch_size)
            assert got == want, f"batch_size={batch_size}"


class TestIscasDifferential:
    def test_c880_bit_exact(self):
        circuit = c880_like()
        patterns = _patterns(circuit, 256, 42)
        faults = _sample_faults(circuit, 128, 42)
        _assert_same_outcome(circuit, patterns, faults)

    def test_c432_undetectable_faults_survive(self):
        """Faults the patterns never excite stay undetected, in caller order."""
        circuit = c432_like()
        patterns = _patterns(circuit, 100, 3)
        faults = _sample_faults(circuit, 120, 3)
        _assert_same_outcome(circuit, patterns, faults, drop_detected=False)


class TestModeDispatch:
    def test_invalid_mode_rejected(self):
        sim = FaultSimulator(c17())
        with pytest.raises(ValueError, match="mode"):
            sim.run(np.zeros((2, 5), dtype=np.uint8), [], mode="turbo")

    def test_auto_uses_ppsfp_for_large_runs(self, monkeypatch):
        circuit = c880_like()
        patterns = _patterns(circuit, 2 * WORD_BITS, 0)
        faults = _sample_faults(circuit, max(PPSFP_MIN_FAULTS, 32), 0)
        calls = []
        import repro.atpg.faultsim as fs

        real = fs.ppsfp_detections
        monkeypatch.setattr(
            fs, "ppsfp_detections", lambda *a, **k: calls.append(1) or real(*a, **k)
        )
        FaultSimulator(circuit).run(patterns, faults, mode="auto")
        assert calls, "auto mode should dispatch to PPSFP at this scale"

    def test_auto_stays_single_word_for_small_runs(self, monkeypatch):
        circuit = c17()
        patterns = _patterns(circuit, WORD_BITS, 0)  # one word: single path
        faults = full_fault_list(circuit)
        import repro.atpg.faultsim as fs

        monkeypatch.setattr(
            fs,
            "ppsfp_detections",
            lambda *a, **k: pytest.fail("PPSFP used for a one-word run"),
        )
        outcome = FaultSimulator(circuit).run(patterns, faults, mode="auto")
        want = reference_fault_sim(circuit, patterns, faults)
        assert outcome.detected == want.detected


class TestBackendParity:
    def test_numpy_env_var_is_byte_identical(self):
        """``REPRO_ARRAY_BACKEND=numpy`` must not perturb a single bit.

        Run the same seeded PPSFP sweep in a subprocess with the env var set
        and compare the full detection map against the in-process default.
        """
        circuit = random_circuit(11)
        patterns = _patterns(circuit, 130, 11)
        faults = _sample_faults(circuit, 90, 11)
        here = FaultSimulator(circuit).run(patterns, faults, mode="ppsfp")
        expected = sorted(
            (f.net, f.value, idx) for f, idx in here.detected.items()
        )

        script = (
            "import json, sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from tests.test_ppsfp import random_circuit, _patterns, _sample_faults\n"
            "from repro.atpg import FaultSimulator\n"
            "circuit = random_circuit(11)\n"
            "patterns = _patterns(circuit, 130, 11)\n"
            "faults = _sample_faults(circuit, 90, 11)\n"
            "out = FaultSimulator(circuit).run(patterns, faults, mode='ppsfp')\n"
            "rows = sorted((f.net, f.value, i) for f, i in out.detected.items())\n"
            "print(json.dumps(rows))\n"
        )
        repo_root = Path(__file__).resolve().parents[1]
        env = dict(os.environ, REPRO_ARRAY_BACKEND="numpy")
        env["PYTHONPATH"] = str(repo_root / "src")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(repo_root)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        import json

        got = [tuple(row) for row in json.loads(proc.stdout)]
        assert got == expected

    def test_explicit_numpy_backend_matches_default(self):
        circuit = random_circuit(12)
        patterns = _patterns(circuit, 96, 12)
        faults = _sample_faults(circuit, 60, 12)
        default = FaultSimulator(circuit).run(patterns, faults, mode="ppsfp")
        explicit = FaultSimulator(circuit, backend=NumpyBackend()).run(
            patterns, faults, mode="ppsfp"
        )
        assert default.detected == explicit.detected
        assert default.undetected == explicit.undetected

    def test_unknown_backend_rejected_with_choices(self):
        with pytest.raises(ValueError, match="numpy"):
            get_backend("tpu")

    def test_cupy_guard(self):
        """Without CuPy installed, selecting it must raise cleanly (no crash)."""
        if "cupy" in available_backends():
            pytest.skip("CuPy present; guard path not reachable")
        with pytest.raises(ValueError, match="cupy"):
            get_backend("cupy")
