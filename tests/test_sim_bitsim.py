"""Unit tests for bit-parallel combinational simulation."""

import itertools

import numpy as np
import pytest

from repro.netlist import Circuit, GateType, NetlistError
from repro.sim import (
    BitSimulator,
    exhaustive_patterns,
    pack_patterns,
    random_patterns,
    simulate,
    unpack_patterns,
)


class TestPacking:
    @pytest.mark.parametrize("n_patterns", [1, 63, 64, 65, 130])
    def test_roundtrip(self, n_patterns, rng):
        pats = (rng.random((n_patterns, 5)) < 0.5).astype(np.uint8)
        assert (unpack_patterns(pack_patterns(pats), n_patterns) == pats).all()

    def test_bit_layout(self):
        pats = np.zeros((70, 1), dtype=np.uint8)
        pats[3, 0] = 1
        pats[64, 0] = 1
        packed = pack_patterns(pats)
        assert packed.shape == (1, 2)
        assert packed[0, 0] == np.uint64(1 << 3)
        assert packed[0, 1] == np.uint64(1)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            pack_patterns(np.zeros(5))


class TestExhaustivePatterns:
    def test_count_and_uniqueness(self):
        pats = exhaustive_patterns(4)
        assert pats.shape == (16, 4)
        as_ints = {int(sum(b << i for i, b in enumerate(row))) for row in pats}
        assert as_ints == set(range(16))

    def test_refuses_huge_spaces(self):
        with pytest.raises(ValueError):
            exhaustive_patterns(30)


class TestSimulation:
    def test_c17_against_scalar_evaluation(self, c17_circuit):
        pats = exhaustive_patterns(5)
        fast = simulate(c17_circuit, pats)
        # Scalar reference: evaluate gate by gate with Python ints.
        order = c17_circuit.topological_order()
        for row, out_row in zip(pats, fast):
            values = {}
            for i, pi in enumerate(c17_circuit.inputs):
                values[pi] = int(row[i])
            for net in order:
                gate = c17_circuit.gate(net)
                if gate.is_input:
                    continue
                values[net] = gate.evaluate([values[s] for s in gate.inputs])
            expected = [values[o] for o in c17_circuit.outputs]
            assert list(out_row) == expected

    def test_all_gate_types(self):
        c = Circuit("alltypes")
        a, b2 = c.add_input("a"), c.add_input("b")
        c.add_gate("t0", GateType.TIE0, ())
        c.add_gate("t1", GateType.TIE1, ())
        c.add_gate("g_and", GateType.AND, ("a", "b"))
        c.add_gate("g_nand", GateType.NAND, ("a", "b"))
        c.add_gate("g_or", GateType.OR, ("a", "b"))
        c.add_gate("g_nor", GateType.NOR, ("a", "b"))
        c.add_gate("g_xor", GateType.XOR, ("a", "b"))
        c.add_gate("g_xnor", GateType.XNOR, ("a", "b"))
        c.add_gate("g_not", GateType.NOT, ("a",))
        c.add_gate("g_buf", GateType.BUFF, ("a",))
        c.add_gate("g_mux", GateType.MUX, ("a", "b", "t1"))
        for net in list(c.nets):
            if not c.gate(net).is_input:
                c.set_output(net)
        out = simulate(c, exhaustive_patterns(2))
        col = {name: i for i, name in enumerate(c.outputs)}
        for row, res in zip(exhaustive_patterns(2), out):
            a_v, b_v = int(row[0]), int(row[1])
            assert res[col["g_and"]] == (a_v & b_v)
            assert res[col["g_nand"]] == 1 - (a_v & b_v)
            assert res[col["g_or"]] == (a_v | b_v)
            assert res[col["g_nor"]] == 1 - (a_v | b_v)
            assert res[col["g_xor"]] == (a_v ^ b_v)
            assert res[col["g_xnor"]] == 1 - (a_v ^ b_v)
            assert res[col["g_not"]] == 1 - a_v
            assert res[col["g_buf"]] == a_v
            assert res[col["g_mux"]] == b_v  # select tied to 1
            assert res[col["t0"]] == 0
            assert res[col["t1"]] == 1

    def test_wrong_input_count_rejected(self, c17_circuit):
        with pytest.raises(ValueError):
            simulate(c17_circuit, np.zeros((4, 3), dtype=np.uint8))

    def test_sequential_circuit_rejected(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("d")
        c.add_gate("q", GateType.DFF, ("d", "clk"))
        c.set_output("q")
        with pytest.raises(NetlistError):
            BitSimulator(c)

    def test_run_full_returns_every_net(self, c17_circuit):
        values = BitSimulator(c17_circuit).run_full(exhaustive_patterns(5))
        assert set(values) == set(c17_circuit.nets)
        assert values["N1"].shape == (32,)

    def test_large_pattern_blocks_cross_word_boundary(self, c17_circuit, rng):
        pats = (rng.random((200, 5)) < 0.5).astype(np.uint8)
        out_all = simulate(c17_circuit, pats)
        out_split = np.concatenate(
            [simulate(c17_circuit, pats[:100]), simulate(c17_circuit, pats[100:])]
        )
        assert (out_all == out_split).all()


class TestRandomPatterns:
    def test_shape_and_values(self, rng):
        pats = random_patterns(100, 7, rng)
        assert pats.shape == (100, 7)
        assert set(np.unique(pats)) <= {0, 1}

    def test_bias(self, rng):
        pats = random_patterns(4000, 3, rng, p_one=0.9)
        assert pats.mean() > 0.85
