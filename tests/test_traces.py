"""Tests for the side-channel trace lab (`repro.traces`).

Covers the toggle kernel shared with Monte-Carlo toggle rates, the
trace-vs-aggregate-power energy consistency invariant, noise-model
determinism, detector calibration/verdicts, the evasion harness, and
serial-vs-parallel campaign payload parity with the ``traces`` suite.
"""

import numpy as np
import pytest

from repro.api import ExperimentSpec, load_records, run_campaign, run_experiment
from repro.bench import c17, c432_like, c499_like
from repro.power import analyze, switching_energy_fj, tech65_library
from repro.prob.montecarlo import mc_toggle_rates
from repro.sim.bitsim import BitSimulator, toggle_matrix
from repro.sim.seqsim import ReferenceSequentialSimulator, SequentialSimulator
from repro.traces import (
    CorrTraceDetector,
    DomTraceDetector,
    GaussianNoise,
    Jitter,
    NoiseChain,
    ProcessVariation,
    Quantization,
    TraceGenerator,
    TraceLabConfig,
    TvlaTraceDetector,
    leakage_assessment,
    trace_evasion_experiment,
    welch_t_statistic,
)
from repro.trojan import insert_counter_trojan


@pytest.fixture(scope="module")
def library():
    return tech65_library()


def random_sequence(circuit, n_vectors, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((n_vectors, len(circuit.inputs))) < 0.5).astype(np.uint8)


# ---------------------------------------------------------------------------
# toggle kernel
# ---------------------------------------------------------------------------
class TestToggleKernel:
    def test_matches_naive_comparison(self):
        rng = np.random.default_rng(3)
        bits = (rng.random((50, 7)) < 0.5).astype(np.uint8)
        want = (bits[1:] != bits[:-1]).astype(np.uint8)
        assert (toggle_matrix(bits, axis=0) == want).all()

    def test_axis_selection(self):
        rng = np.random.default_rng(4)
        bits = (rng.random((3, 20, 5)) < 0.5).astype(np.uint8)
        got = toggle_matrix(bits, axis=1)
        want = (bits[:, 1:, :] != bits[:, :-1, :]).astype(np.uint8)
        assert got.shape == (3, 19, 5)
        assert (got == want).all()

    def test_mc_toggle_rates_match_per_net_reference(self):
        # The batched kernel must reproduce the per-net loop it replaced.
        circuit = c17()
        n = 512
        rates = mc_toggle_rates(circuit, n, np.random.default_rng(9))
        rng = np.random.default_rng(9)
        sequence = (rng.random((n, len(circuit.inputs))) < 0.5).astype(np.uint8)
        values = BitSimulator(circuit).run_full(sequence)
        for net, bits in values.items():
            want = float(np.mean(bits[1:] != bits[:-1]))
            assert rates[net].value == pytest.approx(want, abs=0.0)

    def test_mc_toggle_rates_sequential_circuit(self):
        circuit = c17()
        insert_counter_trojan(circuit, "N22", "N10", n_bits=2)
        rates = mc_toggle_rates(circuit, 256, np.random.default_rng(2))
        assert set(rates) == set(circuit.nets)
        assert all(0.0 <= e.value <= 1.0 for e in rates.values())


# ---------------------------------------------------------------------------
# trace generation
# ---------------------------------------------------------------------------
class TestTraceGenerator:
    def test_combinational_trace_consistent_with_analyze(self, library):
        """Mean per-cycle trace energy == dynamic power / frequency, exactly
        (same sequence, same toggle kernel, same per-net energy table)."""
        circuit = c499_like()
        n = 2048
        gen = TraceGenerator(circuit, library)
        trace = gen.pattern_pair_trace(random_sequence(circuit, n, seed=11))
        rates = mc_toggle_rates(circuit, n, np.random.default_rng(11))
        activity = {net: est.value for net, est in rates.items()}
        report = analyze(circuit, library, activity=activity)
        got_uw = float(trace.mean()) * library.params.frequency_hz * 1e-9
        assert got_uw == pytest.approx(report.dynamic_uw, rel=1e-9)

    def test_sequential_trace_consistent_with_analyze(self, library):
        """Same invariant on a DFF-bearing (Trojan-infected) circuit."""
        circuit = c432_like()
        insert_counter_trojan(
            circuit, victim=circuit.outputs[0],
            clock_source=circuit.internal_nets()[10], n_bits=3,
        )
        n = 2048
        gen = TraceGenerator(circuit, library)
        trace = gen.generate(random_sequence(circuit, n, seed=7)[np.newaxis])[0]
        rates = mc_toggle_rates(circuit, n, np.random.default_rng(7))
        activity = {net: est.value for net, est in rates.items()}
        report = analyze(circuit, library, activity=activity)
        got_uw = float(trace.mean()) * library.params.frequency_hz * 1e-9
        assert got_uw == pytest.approx(report.dynamic_uw, rel=1e-9)

    def test_trace_shapes(self, library):
        circuit = c17()
        gen = TraceGenerator(circuit, library)
        seqs = np.stack([random_sequence(circuit, 9, seed=s) for s in range(4)])
        traces = gen.generate(seqs)
        assert traces.shape == (4, 8)
        assert (traces >= 0.0).all()
        batch = gen.batch(seqs)
        assert batch.n_traces == 4 and batch.n_cycles == 8
        assert batch.nets_watched == len(circuit.nets)

    def test_cone_restriction_is_partial_sum(self, library):
        circuit = c17()
        full = TraceGenerator(circuit, library)
        cone = TraceGenerator(circuit, library, cone_roots=["N10"])
        assert set(cone.nets) < set(full.nets)
        seqs = random_sequence(circuit, 32, seed=1)[np.newaxis]
        t_full = full.generate(seqs)
        t_cone = cone.generate(seqs)
        assert (t_cone <= t_full + 1e-9).all()

    def test_energies_match_power_model(self, library):
        circuit = c17()
        gen = TraceGenerator(circuit, library)
        table = switching_energy_fj(circuit, library)
        for net, e in zip(gen.nets, gen.energies_fj):
            assert e == table[net]

    def test_chip_weights_deterministic_and_clipped(self, library):
        from repro.detect import VariationModel

        gen = TraceGenerator(c17(), library)
        model = VariationModel(dynamic_sigma=0.5)  # large: exercise the clip
        w1 = gen.chip_weights(model, np.random.default_rng(5))
        w2 = gen.chip_weights(model, np.random.default_rng(5))
        assert (w1 == w2).all()
        ratio = w1 / gen.energies_fj
        assert (ratio >= 0.5 - 1e-12).all() and (ratio <= 1.5 + 1e-12).all()


# ---------------------------------------------------------------------------
# noise models
# ---------------------------------------------------------------------------
class TestNoiseModels:
    @pytest.fixture()
    def traces(self):
        rng = np.random.default_rng(0)
        return 100.0 + rng.random((6, 40)) * 10.0

    def test_noise_deterministic_per_seed(self, traces):
        chain = NoiseChain(
            (GaussianNoise(sigma_fj=1.0), Jitter(1), Quantization(bits=10, full_scale_fj=150.0))
        )
        a = chain.apply(traces, np.random.default_rng(42))
        b = chain.apply(traces, np.random.default_rng(42))
        c = chain.apply(traces, np.random.default_rng(43))
        assert (a == b).all()
        assert not (a == c).all()

    def test_gaussian_noise_perturbs(self, traces):
        noisy = GaussianNoise(sigma_fj=1.0).apply(traces, np.random.default_rng(1))
        assert noisy.shape == traces.shape
        assert not np.allclose(noisy, traces)
        # Zero-noise chain is the identity (fresh array, same values).
        clean = GaussianNoise().apply(traces, np.random.default_rng(1))
        assert (clean == traces).all() and clean is not traces

    def test_process_variation_gain_is_chipwide(self, traces):
        model = ProcessVariation()
        out = model.apply(traces, np.random.default_rng(2))
        # One multiplicative gain per acquisition: the ratio field is nearly
        # constant (up to the small per-sample measurement noise).
        ratio = out / traces
        assert ratio.std() < 0.02
        assert abs(ratio.mean() - 1.0) < 0.2

    def test_quantization_snaps_to_grid(self, traces):
        q = Quantization(bits=6, full_scale_fj=128.0)
        out = q.apply(traces, np.random.default_rng(3))
        lsb = 128.0 / 63.0
        steps = out / lsb
        assert np.allclose(steps, np.round(steps))
        assert out.max() <= 128.0 + 1e-9

    def test_jitter_rolls_rows(self, traces):
        out = Jitter(max_shift_cycles=2).apply(traces, np.random.default_rng(4))
        for row_in, row_out in zip(traces, out):
            assert sorted(row_in) == pytest.approx(sorted(row_out))
            shifts = [
                s for s in range(-2, 3)
                if np.allclose(np.roll(row_in, s), row_out)
            ]
            assert shifts, "row was not a bounded circular shift"


# ---------------------------------------------------------------------------
# detectors
# ---------------------------------------------------------------------------
#: Shared nominal trace: every synthetic population measures the same
#: "device design" plus white noise, differing only by the injected shift.
_BASE_TRACE = 50.0 + 5.0 * np.random.default_rng(99).random(64)


def _null_sets(n_sets, n_traces=8, seed=0, shift=0.0, shift_mask=None):
    rng = np.random.default_rng(seed)
    sets = []
    for _ in range(n_sets):
        s = _BASE_TRACE + rng.normal(0.0, 1.0, size=(n_traces, _BASE_TRACE.size))
        if shift and shift_mask is not None:
            s = s + shift * shift_mask[np.newaxis, :]
        sets.append(s)
    return sets


class TestDetectors:
    def test_welch_t_zero_for_identical_means(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, (200, 16))
        b = rng.normal(0, 1, (200, 16))
        t = welch_t_statistic(a, b)
        assert np.abs(t).max() < 5.0

    def test_welch_t_detects_shift(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, (200, 16))
        b = rng.normal(0, 1, (200, 16))
        b[:, 3] += 2.0
        assessment = leakage_assessment(a, b)
        assert assessment.leaks
        assert assessment.n_leaky_cycles >= 1
        t = welch_t_statistic(a, b)
        assert int(np.argmax(np.abs(t))) == 3

    def test_tvla_detector_flags_shifted_population(self):
        golden = _null_sets(12, seed=3)
        mask = np.zeros(64)
        mask[10:14] = 1.0
        bad = _null_sets(6, seed=4, shift=3.0, shift_mask=mask)
        clean = _null_sets(6, seed=5)
        det = TvlaTraceDetector()
        det.calibrate(golden)
        assert det.detection_rate(bad) == 1.0
        assert det.detection_rate(clean) <= 0.2
        assert det.assessment(bad[0]).leaks

    def test_tvla_requires_golden_population(self):
        det = TvlaTraceDetector()
        with pytest.raises(ValueError, match="golden"):
            det.calibrate(_null_sets(3))
        with pytest.raises(RuntimeError, match="calibrate"):
            det.statistic(np.zeros((4, 8)))

    @pytest.mark.parametrize("cls", [DomTraceDetector, CorrTraceDetector])
    def test_keyed_detectors_catch_correlated_injection(self, cls):
        mask = np.zeros(64)
        mask[::8] = 1.0  # hypothesized trigger fires at every 8th sample
        activity = np.stack([mask, np.roll(mask, 3)])
        golden = _null_sets(12, seed=6)
        infected = [s + 4.0 * mask[np.newaxis, :] for s in _null_sets(6, seed=7)]
        clean = _null_sets(6, seed=8)
        det = cls(activity=activity)
        det.calibrate(golden)
        assert det.detection_rate(infected) == 1.0
        assert det.detection_rate(clean) <= 0.2

    def test_keyed_detector_requires_activity(self):
        det = DomTraceDetector()
        with pytest.raises(ValueError, match="activity"):
            det.calibrate(_null_sets(8))


# ---------------------------------------------------------------------------
# evasion harness
# ---------------------------------------------------------------------------
class TestTraceEvasion:
    @pytest.fixture(scope="class")
    def experiment(self):
        library = tech65_library()
        golden = c432_like()
        infected = golden.copy(f"{golden.name}_tz")
        rare = infected.internal_nets()[40]
        insert_counter_trojan(
            infected, victim=infected.outputs[0], clock_source=rare, n_bits=2
        )
        config = TraceLabConfig(n_sequences=12, n_vectors=17, n_repeats=4)
        report = trace_evasion_experiment(
            golden, infected, library, n_chips=10, seed=21, config=config
        )
        return golden, infected, library, config, report

    def test_verdict_schema(self, experiment):
        *_, report = experiment
        for rates in (report.golden_rates, report.additive_rates, report.trojanzero_rates):
            assert set(rates) == {"tvla", "dom", "corr"}
            assert all(0.0 <= r <= 1.0 for r in rates.values())
        assert report.additive_overhead_pct > 0
        assert isinstance(report.trojanzero_evades(), bool)

    def test_additive_ht_is_caught(self, experiment):
        *_, report = experiment
        assert report.additive_detected()

    def test_golden_rarely_flagged(self, experiment):
        *_, report = experiment
        assert all(rate <= 0.34 for rate in report.golden_rates.values())

    def test_diagnostics_populated(self, experiment):
        *_, config, report = experiment
        diag = report.trace_diagnostics
        assert diag["config"]["n_sequences"] == config.n_sequences
        assert diag["nets_watched"]["trojanzero"] > diag["nets_watched"]["golden"]
        assert set(diag["max_statistic"]) == {"golden", "additive", "trojanzero"}
        assert diag["hypothesis_nets"]

    def test_same_seed_is_bit_identical(self, experiment):
        golden, infected, library, config, report = experiment
        again = trace_evasion_experiment(
            golden, infected, library, n_chips=10, seed=21, config=config
        )
        assert again.golden_rates == report.golden_rates
        assert again.additive_rates == report.additive_rates
        assert again.trojanzero_rates == report.trojanzero_rates
        d1, d2 = report.trace_diagnostics, again.trace_diagnostics
        assert d1["max_statistic"] == d2["max_statistic"]
        assert d1["thresholds"] == d2["thresholds"]


# ---------------------------------------------------------------------------
# campaign integration
# ---------------------------------------------------------------------------
class TestCampaignIntegration:
    def test_trace_detector_record_and_parity(self, tmp_path):
        """A campaign cell can request the trace suite by registry name, and
        1-vs-2-worker runs produce bit-identical payloads."""
        from repro.api import CampaignSpec

        specs = [
            ExperimentSpec(
                circuit="c432", pth=0.975, design="counter2", seed=3,
                detector="traces", detector_chips=10,
            ),
            ExperimentSpec(
                circuit="c432", pth=0.95, design="counter2", seed=3,
                detector="traces", detector_chips=10,
            ),
        ]
        campaign = CampaignSpec.of(specs, name="traces-parity")
        out = tmp_path / "records.jsonl"
        result = run_campaign(campaign, jobs=2, out=out)
        assert not result.errors
        by_id = {r.spec.cell_id(): r for r in load_records(out)}
        for spec in specs:
            serial = run_experiment(spec)
            parallel = by_id[spec.cell_id()]
            assert serial.payload_dict() == parallel.payload_dict()
            assert serial.detection is not None
            assert serial.detection["suite"] == "traces"
            assert set(serial.detection["trojanzero_rates"]) == {"tvla", "dom", "corr"}
            # Trace diagnostics ride outside the payload, like runtime.
            assert serial.traces is not None
            assert "traces" not in serial.payload_dict()
            assert "max_statistic" in serial.traces


# ---------------------------------------------------------------------------
# cone-restricted ripple re-settles (deep-counter workload)
# ---------------------------------------------------------------------------
class TestConeRestrictedResettle:
    def test_pi_clocked_counter_matches_reference(self):
        """Worst case for the restricted re-settle: the counter clocks from a
        PI that toggles every other vector, so edges fire constantly."""
        circuit = c17()
        instance = insert_counter_trojan(circuit, "N22", "N1", n_bits=4)
        n_steps = 64
        seqs = np.zeros((3, n_steps, len(circuit.inputs)), dtype=np.uint8)
        seqs[0, :, 0] = np.arange(n_steps) % 2  # deterministic edge pump
        rng = np.random.default_rng(12)
        seqs[1:] = (rng.random((2, n_steps, len(circuit.inputs))) < 0.5).astype(np.uint8)
        watch = list(circuit.nets)
        got = SequentialSimulator(circuit).run_sequences_nets(seqs, watch)
        want = ReferenceSequentialSimulator(circuit).run_sequences_nets(seqs, watch)
        assert (got == want).all()
        # The edge pump must actually saturate the counter.
        trig = watch.index(instance.trigger_net)
        assert got[0, :, trig].any()

    def test_fire_schedule_cache_is_bounded_and_reused(self):
        from repro.sim import compile_circuit

        circuit = c17()
        insert_counter_trojan(circuit, "N22", "N1", n_bits=3)
        compiled = compile_circuit(circuit)
        seqs = np.zeros((1, 40, len(circuit.inputs)), dtype=np.uint8)
        seqs[0, :, 0] = np.arange(40) % 2
        SequentialSimulator(circuit).run_sequences_nets(seqs, [circuit.outputs[0]])
        assert 0 < len(compiled._fire_cache) <= 128
        # Restricted sub-schedules never cover the whole schedule here.
        for groups in compiled._fire_cache.values():
            assert groups is None or len(groups) <= len(compiled.schedule)
