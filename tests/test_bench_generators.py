"""Functional tests for the gate-level building blocks.

Every arithmetic/selection block is verified against its integer semantics
by exhaustive or randomized simulation — these blocks underpin the
benchmark-class circuits, so they must be *correct*, not just well-formed.
"""

import numpy as np
import pytest

from repro.bench.generators import Builder, declare_inputs
from repro.netlist import Circuit, GateType
from repro.sim import BitSimulator, exhaustive_patterns


def fresh(name="blk"):
    c = Circuit(name)
    return c, Builder(c)


def run_block(circuit, outputs, patterns):
    for net in outputs:
        circuit.set_output(net)
    sim = BitSimulator(circuit)
    return sim.run(patterns)


def bits_to_int(rows):
    """(n, k) lsb-first bit rows -> integers."""
    weights = 2 ** np.arange(rows.shape[1], dtype=np.int64)
    return rows.astype(np.int64) @ weights


class TestAdders:
    @pytest.mark.parametrize("nand_mapped", [False, True])
    def test_full_adder_truth_table(self, nand_mapped):
        c, b = fresh()
        a, bb, cin = c.add_input("a"), c.add_input("b"), c.add_input("cin")
        fa = b.full_adder_nand if nand_mapped else b.full_adder
        s, co = fa(a, bb, cin)
        out = run_block(c, [s, co], exhaustive_patterns(3))
        for row, (sv, cv) in zip(exhaustive_patterns(3), out):
            total = int(row.sum())
            assert sv == total % 2
            assert cv == total // 2

    @pytest.mark.parametrize("width,nand_mapped", [(4, False), (4, True), (8, True)])
    def test_ripple_adder_adds(self, width, nand_mapped, rng):
        c, b = fresh()
        xs = declare_inputs(c, "x", width)
        ys = declare_inputs(c, "y", width)
        cin = c.add_input("cin")
        sums, co = b.ripple_adder(xs, ys, cin, nand_mapped=nand_mapped)
        pats = (rng.random((200, 2 * width + 1)) < 0.5).astype(np.uint8)
        out = run_block(c, sums + [co], pats)
        x_val = bits_to_int(pats[:, :width])
        y_val = bits_to_int(pats[:, width : 2 * width])
        expected = x_val + y_val + pats[:, -1]
        got = bits_to_int(out)  # sums plus carry as MSB
        assert (got == expected).all()

    def test_half_adder(self):
        c, b = fresh()
        s, co = b.half_adder(c.add_input("a"), c.add_input("b"))
        out = run_block(c, [s, co], exhaustive_patterns(2))
        assert [tuple(r) for r in out] == [(0, 0), (1, 0), (1, 0), (0, 1)]


class TestSelectionBlocks:
    @pytest.mark.parametrize("nand_mapped", [False, True])
    def test_mux_word(self, nand_mapped, rng):
        c, b = fresh()
        d0 = declare_inputs(c, "p", 4)
        d1 = declare_inputs(c, "q", 4)
        sel = c.add_input("s")
        outs = b.mux_word(d0, d1, sel, nand_mapped=nand_mapped)
        pats = (rng.random((100, 9)) < 0.5).astype(np.uint8)
        res = run_block(c, outs, pats)
        expected = np.where(pats[:, 8:9].astype(bool), pats[:, 4:8], pats[:, 0:4])
        assert (res == expected).all()

    @pytest.mark.parametrize("nand_mapped", [False, True])
    def test_equality(self, nand_mapped):
        c, b = fresh()
        xs = declare_inputs(c, "x", 3)
        ys = declare_inputs(c, "y", 3)
        eq = b.equality(xs, ys, nand_mapped=nand_mapped)
        pats = exhaustive_patterns(6)
        res = run_block(c, [eq], pats)[:, 0]
        expected = (
            bits_to_int(pats[:, :3]) == bits_to_int(pats[:, 3:])
        ).astype(np.uint8)
        assert (res == expected).all()

    @pytest.mark.parametrize("nand_mapped", [False, True])
    def test_decoder_one_hot(self, nand_mapped):
        c, b = fresh()
        sel = declare_inputs(c, "s", 3)
        outs = b.decoder(sel, nand_mapped=nand_mapped)
        pats = exhaustive_patterns(3)
        res = run_block(c, outs, pats)
        for row, minterms in zip(pats, res):
            assert minterms.sum() == 1
            assert minterms[bits_to_int(row[np.newaxis, :])[0]] == 1

    def test_priority_chain(self):
        c, b = fresh()
        reqs = declare_inputs(c, "r", 4)
        grants = b.priority_chain(reqs)
        pats = exhaustive_patterns(4)
        res = run_block(c, grants, pats)
        for row, g in zip(pats, res):
            if row.any():
                first = int(np.argmax(row))
                expected = np.zeros(4, np.uint8)
                expected[first] = 1
                assert (g == expected).all()
            else:
                assert not g.any()

    def test_encoder_onehot(self):
        c, b = fresh()
        hot = declare_inputs(c, "h", 6)
        enc = b.encoder_onehot(hot, width=3)
        pats = np.eye(6, dtype=np.uint8)
        res = run_block(c, enc, pats)
        assert (bits_to_int(res) == np.arange(6)).all()


class TestTrees:
    def test_and_or_trees(self, rng):
        c, b = fresh()
        xs = declare_inputs(c, "x", 9)
        a = b.and_tree(xs)
        o = b.or_tree(xs)
        pats = (rng.random((200, 9)) < 0.5).astype(np.uint8)
        res = run_block(c, [a, o], pats)
        assert (res[:, 0] == pats.all(axis=1)).all()
        assert (res[:, 1] == pats.any(axis=1)).all()

    @pytest.mark.parametrize("builder_name", ["xor_tree", "xor_tree_nand"])
    def test_parity_trees(self, builder_name, rng):
        c, b = fresh()
        xs = declare_inputs(c, "x", 7)
        out = getattr(b, builder_name)(xs)
        pats = (rng.random((200, 7)) < 0.5).astype(np.uint8)
        res = run_block(c, [out], pats)[:, 0]
        assert (res == pats.sum(axis=1) % 2).all()

    def test_tree_rejects_empty(self):
        _, b = fresh()
        with pytest.raises(ValueError):
            b.and_tree([])


class TestNandComposites:
    def test_xor_nand_matches_macro(self):
        c, b = fresh()
        x, y = c.add_input("x"), c.add_input("y")
        lattice = b.xor_nand(x, y)
        macro = b.XOR(x, y)
        res = run_block(c, [lattice, macro], exhaustive_patterns(2))
        assert (res[:, 0] == res[:, 1]).all()

    def test_xnor_nand(self):
        c, b = fresh()
        x, y = c.add_input("x"), c.add_input("y")
        out = b.xnor_nand(x, y)
        res = run_block(c, [out], exhaustive_patterns(2))[:, 0]
        assert list(res) == [1, 0, 0, 1]

    def test_mux2_nand(self):
        c, b = fresh()
        d0, d1, s = c.add_input("d0"), c.add_input("d1"), c.add_input("s")
        out = b.mux2_nand(d0, d1, s)
        res = run_block(c, [out], exhaustive_patterns(3))[:, 0]
        for row, v in zip(exhaustive_patterns(3), res):
            assert v == (row[1] if row[2] else row[0])


class TestBuilderNaming:
    def test_names_are_unique(self):
        c, b = fresh()
        a = c.add_input("a")
        names = {b.NOT(a) for _ in range(50)}
        assert len(names) == 50

    def test_prefix_respected(self):
        c = Circuit()
        b = Builder(c, prefix="zz")
        a = c.add_input("a")
        assert b.NOT(a).startswith("zz")
