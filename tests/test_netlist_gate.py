"""Unit tests for the gate primitives."""

import itertools

import pytest

from repro.netlist.gate import (
    COMBINATIONAL_TYPES,
    FIXED_ARITY,
    Gate,
    GateType,
    SEQUENTIAL_TYPES,
    VARIADIC_TYPES,
    check_arity,
    evaluate_gate,
)


class TestEvaluateGate:
    @pytest.mark.parametrize(
        "gate_type,inputs,expected",
        [
            (GateType.AND, (1, 1, 1), 1),
            (GateType.AND, (1, 0, 1), 0),
            (GateType.NAND, (1, 1), 0),
            (GateType.NAND, (0, 1), 1),
            (GateType.OR, (0, 0, 0), 0),
            (GateType.OR, (0, 1, 0), 1),
            (GateType.NOR, (0, 0), 1),
            (GateType.NOR, (1, 0), 0),
            (GateType.XOR, (1, 1), 0),
            (GateType.XOR, (1, 0), 1),
            (GateType.XOR, (1, 1, 1), 1),
            (GateType.XNOR, (1, 1), 1),
            (GateType.XNOR, (1, 0), 0),
            (GateType.NOT, (0,), 1),
            (GateType.NOT, (1,), 0),
            (GateType.BUFF, (1,), 1),
            (GateType.BUFF, (0,), 0),
            (GateType.TIE0, (), 0),
            (GateType.TIE1, (), 1),
        ],
    )
    def test_truth_values(self, gate_type, inputs, expected):
        assert evaluate_gate(gate_type, inputs) == expected

    @pytest.mark.parametrize("d0,d1,sel", list(itertools.product((0, 1), repeat=3)))
    def test_mux_full_truth_table(self, d0, d1, sel):
        expected = d1 if sel else d0
        assert evaluate_gate(GateType.MUX, (d0, d1, sel)) == expected

    def test_nand_is_inverted_and(self):
        for bits in itertools.product((0, 1), repeat=3):
            assert evaluate_gate(GateType.NAND, bits) == 1 - evaluate_gate(
                GateType.AND, bits
            )

    def test_xor_parity_semantics(self):
        for bits in itertools.product((0, 1), repeat=4):
            assert evaluate_gate(GateType.XOR, bits) == sum(bits) % 2

    def test_sequential_types_have_no_evaluation(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.DFF, (0, 1))

    def test_input_type_has_no_evaluation(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.INPUT, ())


class TestArity:
    def test_fixed_arity_enforced(self):
        with pytest.raises(ValueError):
            check_arity(GateType.NOT, 2)
        with pytest.raises(ValueError):
            check_arity(GateType.MUX, 2)
        with pytest.raises(ValueError):
            check_arity(GateType.TIE0, 1)
        check_arity(GateType.NOT, 1)
        check_arity(GateType.MUX, 3)

    def test_variadic_gates_accept_wide_fanin(self):
        for n in (1, 2, 5, 16):
            check_arity(GateType.AND, n)

    def test_variadic_gates_reject_zero_inputs(self):
        with pytest.raises(ValueError):
            check_arity(GateType.AND, 0)

    def test_dff_takes_data_and_clock(self):
        check_arity(GateType.DFF, 2)
        with pytest.raises(ValueError):
            check_arity(GateType.DFF, 1)


class TestGateRecord:
    def test_construction_validates_arity(self):
        with pytest.raises(ValueError):
            Gate("g", GateType.NOT, ("a", "b"))

    def test_inputs_are_normalized_to_tuple(self):
        g = Gate("g", GateType.AND, ["a", "b"])
        assert g.inputs == ("a", "b")

    def test_with_inputs_creates_new_gate(self):
        g = Gate("g", GateType.AND, ("a", "b"))
        g2 = g.with_inputs(("x", "y"))
        assert g2.inputs == ("x", "y")
        assert g.inputs == ("a", "b")
        assert g2.name == "g"

    def test_classification_flags(self):
        assert Gate("i", GateType.INPUT).is_input
        assert Gate("d", GateType.DFF, ("a", "b")).is_sequential
        assert Gate("t", GateType.TIE1).is_constant
        assert not Gate("g", GateType.AND, ("a", "b")).is_sequential

    def test_evaluate_method_matches_function(self):
        g = Gate("g", GateType.NOR, ("a", "b"))
        assert g.evaluate((0, 0)) == 1
        assert g.evaluate((1, 0)) == 0


class TestTypeSets:
    def test_partitions_are_disjoint(self):
        assert not (COMBINATIONAL_TYPES & SEQUENTIAL_TYPES)

    def test_every_type_classified(self):
        for gt in GateType:
            assert (
                gt in COMBINATIONAL_TYPES
                or gt in SEQUENTIAL_TYPES
                or gt is GateType.INPUT
            )

    def test_variadic_subset_of_combinational(self):
        assert VARIADIC_TYPES <= COMBINATIONAL_TYPES

    def test_fixed_arity_values(self):
        assert FIXED_ARITY[GateType.MUX] == 3
        assert FIXED_ARITY[GateType.DFF] == 2
        assert FIXED_ARITY[GateType.TIE0] == 0
