"""Property-based tests for the verification and timing layers."""

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.power import static_timing, tech65_library
from repro.sim import BitSimulator, exhaustive_patterns
from repro.verify import Cnf, SatStatus, solve, tseitin_encode

from tests.test_properties import random_circuits

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_cnf(draw, max_vars=12, max_clauses=40):
    """Random 3-SAT-ish formula plus its brute-force satisfiability."""
    n_vars = draw(st.integers(min_value=1, max_value=max_vars))
    n_clauses = draw(st.integers(min_value=1, max_value=max_clauses))
    cnf = Cnf()
    vs = [cnf.new_var() for _ in range(n_vars)]
    for _ in range(n_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        lits = []
        for _ in range(width):
            v = vs[draw(st.integers(0, n_vars - 1))]
            sign = draw(st.sampled_from([1, -1]))
            lits.append(sign * v)
        cnf.add(*lits)
    return cnf


def _brute_force_sat(cnf: Cnf) -> bool:
    for bits in itertools.product((False, True), repeat=cnf.n_vars):
        model = {v: bits[v - 1] for v in range(1, cnf.n_vars + 1)}
        if all(any(model[abs(l)] == (l > 0) for l in c) for c in cnf.clauses):
            return True
    return False


class TestSolverProperties:
    @_SETTINGS
    @given(random_cnf())
    def test_solver_agrees_with_brute_force(self, cnf):
        result = solve(cnf, max_decisions=100_000)
        assert result.status is not SatStatus.UNKNOWN
        assert result.satisfiable == _brute_force_sat(cnf)

    @_SETTINGS
    @given(random_cnf())
    def test_model_satisfies_every_clause(self, cnf):
        result = solve(cnf, max_decisions=100_000)
        if result.satisfiable:
            for clause in cnf.clauses:
                assert any(result.model[abs(l)] == (l > 0) for l in clause)


class TestTseitinProperties:
    @_SETTINGS
    @given(random_circuits(max_gates=8))
    def test_encoding_consistent_with_simulation(self, circuit):
        """For every PI assignment of a small random circuit, the CNF under
        those assumptions is SAT with the simulated output values."""
        if len(circuit.inputs) > 6:
            return
        cnf, var = tseitin_encode(circuit)
        sim = BitSimulator(circuit)
        pats = exhaustive_patterns(len(circuit.inputs))
        outs = sim.run(pats)
        for row, out_row in zip(pats[:8], outs[:8]):  # a slice keeps it fast
            assumptions = [
                var[pi] if row[k] else -var[pi]
                for k, pi in enumerate(circuit.inputs)
            ]
            result = solve(cnf, assumptions=assumptions, max_decisions=50_000)
            assert result.satisfiable
            for o, expected in zip(circuit.outputs, out_row):
                assert result.model[var[o]] == bool(expected)


class TestTimingProperties:
    @_SETTINGS
    @given(random_circuits(max_gates=15))
    def test_arrival_monotone_along_edges(self, circuit):
        library = tech65_library()
        report = static_timing(circuit, library)
        for gate in circuit.logic_gates():
            if gate.is_constant or gate.is_sequential:
                continue
            for src in gate.inputs:
                assert report.arrival_ps[gate.name] >= report.arrival_ps[src]

    @_SETTINGS
    @given(random_circuits(max_gates=15))
    def test_critical_path_consistency(self, circuit):
        library = tech65_library()
        report = static_timing(circuit, library)
        assert report.critical_delay_ps >= 0
        if report.critical_path:
            assert report.critical_path[-1] in circuit.outputs
            assert report.critical_delay_ps == pytest.approx(
                max(report.output_arrival_ps.values())
            )
