"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import c17, c432_like, c499_like, c880_like
from repro.netlist import Circuit, GateType
from repro.power import tech65_library


@pytest.fixture(scope="session")
def library():
    return tech65_library()


@pytest.fixture()
def c17_circuit():
    return c17()


@pytest.fixture(scope="session")
def c432_circuit():
    return c432_like()


@pytest.fixture(scope="session")
def c499_circuit():
    return c499_like()


@pytest.fixture(scope="session")
def c880_circuit():
    return c880_like()


@pytest.fixture()
def tiny_and_circuit():
    """out = AND(a, b) — the smallest useful circuit."""
    c = Circuit("tiny_and")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("out", GateType.AND, ("a", "b"))
    c.set_output("out")
    return c


@pytest.fixture()
def rare_node_circuit():
    """A circuit with one engineered rare node and a private fan-in cone.

    ``rare = AND(a0..a7)`` has P(=1) = 2^-8; it feeds output ``y`` through an
    OR so removing it is functionally invisible unless all eight inputs are
    high.  A second output ``z`` keeps the rest of the circuit busy.
    """
    c = Circuit("rare_node")
    for i in range(8):
        c.add_input(f"a{i}")
    c.add_input("b")
    c.add_gate("r1", GateType.AND, ("a0", "a1", "a2", "a3"))
    c.add_gate("r2", GateType.AND, ("a4", "a5", "a6", "a7"))
    c.add_gate("rare", GateType.AND, ("r1", "r2"))
    c.add_gate("y", GateType.OR, ("rare", "b"))
    c.add_gate("z", GateType.XOR, ("a0", "b"))
    c.set_output("y")
    c.set_output("z")
    return c


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
