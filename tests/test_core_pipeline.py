"""Integration tests: the full TrojanZero pipeline on a real benchmark.

These run the complete Fig. 2 flow (thresholds -> Algorithm 1 -> Algorithm 2)
on the c432-class circuit — small enough to finish in seconds — and assert
the paper's structural claims, not specific numbers.
"""

import numpy as np
import pytest

from repro.bench import c432_like
from repro.core import (
    DefenderModel,
    TableRow,
    TrojanZeroPipeline,
    compute_thresholds,
    format_row,
    format_table,
    insert_trojan_zero,
    rank_trigger_sources,
    rank_victims,
    salvage,
)
from repro.sim import functional_test


@pytest.fixture(scope="module")
def c432_result():
    pipe = TrojanZeroPipeline.default()
    return pipe.run(c432_like(), p_threshold=0.975, counter_bits=2)


class TestPipelineInvariants:
    def test_insertion_succeeds(self, c432_result):
        assert c432_result.success

    def test_power_ordering_n_prime_below_n(self, c432_result):
        """N' < N'' <= N (within tolerance): the paper's core invariant."""
        n = c432_result.power_free
        n_prime = c432_result.power_modified
        n_infected = c432_result.power_infected
        assert n_prime.total_uw < n.total_uw
        assert n_prime.area_ge < n.area_ge
        assert n_infected.total_uw <= n.total_uw * 1.01
        assert n_infected.area_ge <= n.area_ge * 1.01
        assert n_infected.total_uw > n_prime.total_uw

    def test_delta_tz_near_zero(self, c432_result):
        """ΔP(TZ) ≈ 0 and ΔA(TZ) ≈ 0 (the zero-footprint claim)."""
        d = c432_result.delta_tz
        n = c432_result.power_free
        assert abs(d.total_uw) <= 0.02 * n.total_uw
        assert abs(d.area_ge) <= 0.02 * n.area_ge

    def test_components_tracked_independently(self, c432_result):
        d = c432_result.delta_tz
        n = c432_result.power_free
        assert abs(d.dynamic_uw) <= 0.02 * max(n.dynamic_uw, 1.0)
        assert abs(d.leakage_uw) <= 0.02 * max(n.leakage_uw, 1.0)

    def test_infected_passes_defender_tests(self, c432_result):
        assert functional_test(
            c432_result.insertion.infected,
            c432_result.thresholds.circuit,
            c432_result.thresholds.pattern_sets,
        )

    def test_attacker_can_fire_the_trigger(self, c432_result):
        """The HT is real: attacker-chosen vectors saturate the counter.

        Random vectors must NOT fire it (that is the stealth property), so we
        emulate the attacker: search for input vectors that drive the clock
        source low and high, then alternate them to pump rising edges.
        """
        infected = c432_result.insertion.infected
        golden = c432_result.thresholds.circuit
        instance = c432_result.insertion.instance
        clock = instance.clock_source
        rng = np.random.default_rng(3)
        from repro.sim import BitSimulator, SequentialSimulator

        probe = (rng.random((4096, len(golden.inputs))) < 0.5).astype(np.uint8)
        values = BitSimulator(golden).run_full(probe)[clock]
        lows = probe[values == 0]
        highs = probe[values == 1]
        assert len(highs) > 0, "clock source unreachable: degenerate trigger"
        edges_needed = instance.states_to_fire
        steps = []
        for k in range(edges_needed + 1):
            steps.append(lows[k % len(lows)])
            steps.append(highs[k % len(highs)])
        seq = np.stack(steps)
        sim = SequentialSimulator(infected)
        traces = sim.run_sequence_tracking(seq, watch=[instance.trigger_net])
        assert traces[instance.trigger_net].any()

    def test_pft_below_paper_bound(self, c432_result):
        assert c432_result.pft is not None
        assert c432_result.pft < 1e-3  # paper claims < 1e-4..1e-3 band

    def test_candidates_and_expendables_positive(self, c432_result):
        assert c432_result.salvage.candidate_count > 0
        assert 0 < c432_result.salvage.expendable_gates

    def test_summary_renders(self, c432_result):
        text = c432_result.summary()
        assert "TrojanZero on c432_like" in text
        assert "N''" in text

    def test_table_row(self, c432_result):
        row = TableRow.from_result(c432_result)
        assert row.circuit == "c432_like"
        assert row.power_infected_uw is not None
        line = format_row(row)
        assert "c432_like" in line
        table = format_table([row])
        assert "Table I" in table


class TestPipelineComponents:
    def test_threshold_report(self, library):
        th = compute_thresholds(c432_like(), library)
        assert th.power.total_uw > 0
        assert th.test_set.n_patterns > 0
        assert th.pattern_sets and th.bespoke_sets
        assert th.n_test_vectors >= th.test_set.n_patterns

    def test_rank_victims_excludes_rare_and_dead(self, c432_circuit):
        victims = rank_victims(c432_circuit, limit=5)
        assert 0 < len(victims) <= 5
        from repro.prob import signal_probabilities

        probs = signal_probabilities(c432_circuit)
        for v in victims:
            assert 0.05 <= probs[v] <= 0.95

    def test_rank_trigger_sources_rare_and_live(self, c432_circuit):
        sources = rank_trigger_sources(
            c432_circuit, rarity=0.95, limit=4, edges_to_fire=3,
            session_vectors=300,
        )
        assert sources
        from repro.prob import signal_probabilities

        probs = signal_probabilities(c432_circuit)
        for s in sources:
            p = probs[s]
            assert max(p, 1 - p) >= 0.95
            assert 0 < p < 1  # never structurally constant

    def test_counter_bits_respected(self, c432_result):
        assert c432_result.insertion.design.size == 2
        assert c432_result.insertion.design.kind == "counter"
