"""Unit tests for the .bench parser/writer."""

import pytest

from repro.bench import BenchParseError, c17, parse_bench, write_bench
from repro.bench.c17 import C17_BENCH
from repro.netlist import GateType
from repro.sim import compare_exhaustive


class TestParse:
    def test_c17_structure(self):
        c = c17()
        assert len(c.inputs) == 5
        assert len(c.outputs) == 2
        assert c.num_logic_gates == 6
        assert all(g.gate_type is GateType.NAND for g in c.logic_gates())

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\nINPUT(a)\n  # indented comment\nOUTPUT(y)\ny = NOT(a)  # trailing\n"
        c = parse_bench(text)
        assert c.inputs == ("a",)
        assert c.gate("y").gate_type is GateType.NOT

    def test_case_insensitive_keywords(self):
        text = "input(a)\noutput(y)\ny = not(a)\n"
        c = parse_bench(text)
        assert c.gate("y").gate_type is GateType.NOT

    def test_aliases(self):
        text = "INPUT(a)\nOUTPUT(y)\nb = BUF(a)\nc = INV(b)\ny = BUFF(c)\n"
        c = parse_bench(text)
        assert c.gate("b").gate_type is GateType.BUFF
        assert c.gate("c").gate_type is GateType.NOT

    def test_forward_references_allowed(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = NOT(m)\nm = BUFF(a)\n"
        c = parse_bench(text)
        assert c.gate("y").inputs == ("m",)

    def test_iscas89_single_arg_dff_gets_clock(self):
        text = "INPUT(d)\nOUTPUT(q)\nq = DFF(d)\n"
        c = parse_bench(text)
        assert "CLK" in c.inputs
        assert c.gate("q").inputs == ("d", "CLK")

    def test_two_arg_dff_kept(self):
        text = "INPUT(d)\nINPUT(ck)\nOUTPUT(q)\nq = DFF(d, ck)\n"
        c = parse_bench(text)
        assert c.gate("q").inputs == ("d", "ck")

    def test_unknown_gate_type(self):
        with pytest.raises(BenchParseError, match="FROB"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_undriven_output(self):
        with pytest.raises(BenchParseError, match="never driven"):
            parse_bench("INPUT(a)\nOUTPUT(nope)\ny = NOT(a)\n")

    def test_duplicate_input(self):
        with pytest.raises(BenchParseError, match="duplicate"):
            parse_bench("INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")

    def test_garbage_line(self):
        with pytest.raises(BenchParseError, match="cannot parse"):
            parse_bench("INPUT(a)\nwat is this\n")

    def test_undriven_fanin_detected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")


class TestRoundTrip:
    def test_c17_roundtrip_is_equivalent(self):
        original = c17()
        rebuilt = parse_bench(write_bench(original), name="c17rt")
        assert compare_exhaustive(original, rebuilt).equivalent

    def test_roundtrip_preserves_interface(self, c432_circuit):
        rebuilt = parse_bench(write_bench(c432_circuit))
        assert rebuilt.inputs == c432_circuit.inputs
        assert set(rebuilt.outputs) == set(c432_circuit.outputs)
        assert rebuilt.num_logic_gates == c432_circuit.num_logic_gates

    def test_writer_emits_topological_order(self):
        text = write_bench(c17())
        lines = [l for l in text.splitlines() if "=" in l]
        seen = set()
        for line in lines:
            name, rhs = line.split("=")
            args = rhs.split("(")[1].rstrip(")").split(",")
            for arg in (a.strip() for a in args):
                if not arg.startswith("N") or arg in seen:
                    continue
                # Any referenced internal net must already be defined.
                assert arg in seen or arg in ("N1", "N2", "N3", "N6", "N7")
            seen.add(name.strip())

    def test_source_text_matches_embedded(self):
        assert "N22 = NAND(N10, N16)" in C17_BENCH
