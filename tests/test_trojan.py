"""Unit tests for the Trojan designs, library, padding, and trigger analysis."""

import math

import numpy as np
import pytest

from repro.netlist import Circuit, GateType, assert_valid
from repro.sim import SequentialSimulator, compare_exhaustive, exhaustive_patterns
from repro.trojan import (
    TrojanDesign,
    analytic_pft,
    binomial_tail_at_least,
    default_trojan_library,
    insert_additive_burden,
    insert_comb_trojan,
    insert_counter_trojan,
    insert_dummy_gates,
    monte_carlo_pft,
    rising_edge_probability,
    trigger_report,
)
from repro.trojan.library import insert_filler_cells


class TestCounterTrojan:
    def test_structure(self, c17_circuit):
        inst = insert_counter_trojan(c17_circuit, "N22", "N10", n_bits=3)
        assert inst.n_bits == 3
        assert inst.states_to_fire == 7
        assert len(inst.state_nets) == 3
        assert c17_circuit.is_sequential
        assert_valid(c17_circuit)

    def test_fires_after_exactly_2n_minus_1_edges(self, c17_circuit):
        inst = insert_counter_trojan(c17_circuit, "N22", "N10", n_bits=2)
        sim = SequentialSimulator(c17_circuit)
        # N10 = NAND(N1, N3): (1,1) -> 0, else 1.  Produce clean edges.
        low = [1, 0, 1, 0, 0]
        high = [0, 0, 0, 0, 0]
        steps = [low]
        for _ in range(5):
            steps.extend([high, low])
        seq = np.array(steps, dtype=np.uint8)
        trace = sim.run_sequence_tracking(seq, watch=[inst.trigger_net])
        fired_at = np.nonzero(trace[inst.trigger_net])[0]
        assert fired_at.size > 0
        # Edges occur at steps 1,3,5,...; the 3rd edge is step 5.
        assert fired_at[0] == 5

    def test_payload_inverts_when_triggered(self, c17_circuit):
        golden = c17_circuit.copy("golden")
        inst = insert_counter_trojan(c17_circuit, "N23", "N10", n_bits=1)
        sim = SequentialSimulator(c17_circuit)
        low = [1, 0, 1, 0, 0]
        high = [0, 0, 0, 0, 0]
        seq = np.array([low, high, high], dtype=np.uint8)
        out = sim.run_sequences(seq[np.newaxis])[0]
        col = {name: i for i, name in enumerate(c17_circuit.outputs)}
        from repro.sim import BitSimulator

        golden_out = BitSimulator(golden).run(seq)
        gcol = {name: i for i, name in enumerate(golden.outputs)}
        # After the first rising edge (step 1) the trigger is high: N23 inverted.
        assert out[1, col["N23"]] != golden_out[1, gcol["N23"]]
        # Unrelated output stays correct.
        assert out[1, col["N22"]] == golden_out[1, gcol["N22"]]

    def test_interface_preserved(self, c17_circuit):
        inputs, outputs = c17_circuit.inputs, set(c17_circuit.outputs)
        insert_counter_trojan(c17_circuit, "N22", "N10", n_bits=2)
        assert c17_circuit.inputs == inputs
        assert set(c17_circuit.outputs) == outputs

    def test_bad_parameters(self, c17_circuit):
        with pytest.raises(ValueError):
            insert_counter_trojan(c17_circuit, "N22", "N10", n_bits=0)
        with pytest.raises(ValueError):
            insert_counter_trojan(c17_circuit, "ghost", "N10", 2)
        with pytest.raises(ValueError):
            insert_counter_trojan(c17_circuit, "N22", "ghost", 2)


class TestCombTrojan:
    def test_trigger_polarity(self, c17_circuit):
        golden = c17_circuit.copy()
        inst = insert_comb_trojan(
            c17_circuit, "N22", ["N1", "N2"], trigger_polarity=[1, 0]
        )
        from repro.sim import BitSimulator

        pats = exhaustive_patterns(5)
        out = BitSimulator(c17_circuit).run(pats)
        gout = BitSimulator(golden).run(pats)
        col = {name: i for i, name in enumerate(c17_circuit.outputs)}
        gcol = {name: i for i, name in enumerate(golden.outputs)}
        fired = (pats[:, 0] == 1) & (pats[:, 1] == 0)
        diff = out[:, col["N22"]] != gout[:, gcol["N22"]]
        assert (diff == fired).all()

    def test_mismatched_polarity_length(self, c17_circuit):
        with pytest.raises(ValueError):
            insert_comb_trojan(c17_circuit, "N22", ["N1"], trigger_polarity=[1, 0])

    def test_additive_burden_chains(self, c432_circuit):
        # Copy: the fixture is session-scoped and must stay HT-free.
        circuit = c432_circuit.copy()
        added = insert_additive_burden(circuit, 8)
        assert len(added) == 8
        assert_valid(circuit)


class TestLibraryAndPadding:
    def test_default_library_ordered_largest_first(self):
        designs = default_trojan_library()
        counters = [d for d in designs if d.kind == "counter"]
        assert [d.size for d in counters] == sorted(
            (d.size for d in counters), reverse=True
        )

    def test_estimated_cost_monotone_in_size(self, library):
        d2 = TrojanDesign("counter2", "counter", 2)
        d5 = TrojanDesign("counter5", "counter", 5)
        a2, l2 = d2.estimated_cost(library)
        a5, l5 = d5.estimated_cost(library)
        assert a5 > a2
        assert l5 > l2

    def test_counter_estimate_close_to_actual(self, c432_circuit, library):
        from repro.power import analyze

        design = TrojanDesign("counter3", "counter", 3)
        # Copy: instantiate() adds DFFs, which must not leak into the
        # session-scoped combinational fixture.
        circuit = c432_circuit.copy()
        before = analyze(circuit, library)
        victim = "g40_g"
        assert circuit.has_net(victim)
        design.instantiate(circuit, victim, [circuit.inputs[0]])
        after = analyze(circuit, library)
        est_area, est_leak = design.estimated_cost(library)
        actual_area = after.area_um2 - before.area_um2
        assert actual_area == pytest.approx(est_area, rel=0.5)

    def test_instantiate_counter_and_comb(self, c17_circuit):
        counter = TrojanDesign("counter2", "counter", 2)
        inst = counter.instantiate(c17_circuit, "N22", ["N10"])
        assert inst.n_bits == 2
        comb = TrojanDesign("comb2", "comb", 2)
        inst2 = comb.instantiate(c17_circuit, "N23", ["N11", "N16"])
        assert inst2.trigger_inputs == ("N11", "N16")

    def test_unknown_kind_rejected(self, c17_circuit):
        with pytest.raises(ValueError):
            TrojanDesign("weird", "quantum", 2).instantiate(c17_circuit, "N22", ["N10"])

    def test_dummy_gates_have_no_fanout_and_add_power(self, c432_circuit, library):
        from repro.power import analyze

        circuit = c432_circuit.copy()
        before = analyze(circuit, library)
        added = insert_dummy_gates(circuit, 5)
        after = analyze(circuit, library)
        assert all(not circuit.fanout(n) for n in added)
        assert after.area_um2 > before.area_um2
        assert after.dynamic_uw > before.dynamic_uw

    def test_dummies_do_not_change_function(self, c17_circuit):
        golden = c17_circuit.copy()
        insert_dummy_gates(c17_circuit, 4)
        assert compare_exhaustive(golden, c17_circuit).equivalent

    def test_filler_cells_add_area_but_no_dynamic(self, c432_circuit, library):
        from repro.power import analyze

        circuit = c432_circuit.copy()
        before = analyze(circuit, library)
        insert_filler_cells(circuit, 6)
        after = analyze(circuit, library)
        assert after.area_um2 > before.area_um2
        assert after.dynamic_uw == pytest.approx(before.dynamic_uw)
        assert after.leakage_uw > before.leakage_uw


class TestTriggerMath:
    def test_binomial_tail_exact_small_cases(self):
        # P[Bin(2, 0.5) >= 1] = 0.75
        assert binomial_tail_at_least(2, 0.5, 1) == pytest.approx(0.75)
        # P[Bin(3, 0.5) >= 3] = 0.125
        assert binomial_tail_at_least(3, 0.5, 3) == pytest.approx(0.125)

    def test_binomial_tail_edges(self):
        assert binomial_tail_at_least(10, 0.3, 0) == 1.0
        assert binomial_tail_at_least(10, 0.0, 1) == 0.0
        assert binomial_tail_at_least(10, 1.0, 10) == 1.0
        assert binomial_tail_at_least(10, 1.0, 11) == 0.0

    def test_tail_decreases_with_k(self):
        values = [binomial_tail_at_least(100, 0.01, k) for k in (1, 3, 7, 15)]
        assert values == sorted(values, reverse=True)

    def test_rising_edge_probability(self, c17_circuit):
        # N10: P(=1) = 0.75 -> edge probability 0.1875.
        assert rising_edge_probability(c17_circuit, "N10") == pytest.approx(0.1875)

    def test_analytic_vs_monte_carlo(self, c17_circuit, rng):
        inst = insert_counter_trojan(c17_circuit, "N22", "N10", n_bits=2)
        analytic = analytic_pft(c17_circuit, inst, n_test_vectors=12)
        mc = monte_carlo_pft(c17_circuit, inst, 12, n_sessions=400, rng=rng)
        # The analytic model assumes temporal independence; agreement within
        # a generous band is what we can demand.
        assert abs(analytic - mc) < 0.25
        assert analytic > 0.1  # N10 edges are common: trigger likely fires

    def test_trigger_report_fields(self, c17_circuit):
        inst = insert_counter_trojan(c17_circuit, "N22", "N10", n_bits=3)
        rep = trigger_report(c17_circuit, inst, n_test_vectors=50)
        assert rep.counter_bits == 3
        assert rep.edges_to_fire == 7
        assert 0 <= rep.pft_analytic <= 1
        assert rep.pft_monte_carlo is None

    def test_pu_equation(self):
        from repro.atpg import untargeted_trigger_probability

        assert untargeted_trigger_probability(4, 5) == pytest.approx(4 / 32)
        assert untargeted_trigger_probability(0, 10) == 0.0
        with pytest.raises(ValueError):
            untargeted_trigger_probability(100, 2)

    def test_count_distinguishing_vectors(self, rare_node_circuit):
        from repro.atpg import count_distinguishing_vectors
        from repro.netlist import tie_net_to_constant

        modified = rare_node_circuit.copy("mod")
        tie_net_to_constant(modified, "rare", 0)
        nu = count_distinguishing_vectors(rare_node_circuit, modified)
        # rare = AND(a0..a7) = 1 on exactly 2 vectors of 2^9 (b free), but the
        # difference reaches output y only when b = 0: exactly 1 vector.
        assert nu == 1
