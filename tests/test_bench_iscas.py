"""Functional and structural tests for the ISCAS85-class benchmark circuits.

These circuits stand in for the historical netlists, so beyond size/interface
checks we verify they *work*: the ECC decoders correct errors, the ALUs add,
the interrupt controller prioritizes.
"""

import numpy as np
import pytest

from repro.bench import (
    BENCHMARKS,
    build_benchmark,
    c432_like,
    c499_like,
    c880_like,
    c1908_like,
    c3540_like,
)
from repro.bench.iscas_like import _c499_signatures, _c1908_signatures
from repro.netlist import assert_valid
from repro.sim import BitSimulator


#: The five Table-I circuits (BENCHMARKS additionally registers the exact
#: c17 and the c1355/c6288 extension circuits).
PAPER_FIVE = ("c432", "c499", "c880", "c1908", "c3540")


class TestRegistry:
    def test_all_benchmarks_present(self):
        assert set(BENCHMARKS) == set(PAPER_FIVE) | {"c17", "c1355", "c6288"}

    def test_build_by_name(self):
        c = build_benchmark("c432")
        assert c.name == "c432_like"

    def test_extras_build_by_name(self):
        # Formerly CLI-private extras, now first-class registry entries.
        assert build_benchmark("c17").name == "c17"
        assert build_benchmark("c6288").name == "c6288_like"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_benchmark("c9999")

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_structural_validity(self, name):
        assert_valid(BENCHMARKS[name]())

    @pytest.mark.parametrize(
        "name,pis,min_gates,max_gates",
        [
            ("c432", 32, 120, 260),
            ("c499", 41, 150, 260),
            ("c880", 60, 280, 470),
            ("c1908", 33, 600, 1000),
            ("c3540", 50, 1100, 1900),
        ],
    )
    def test_sizes_near_paper(self, name, pis, min_gates, max_gates):
        c = BENCHMARKS[name]()
        assert len(c.inputs) == pis
        assert min_gates <= c.num_logic_gates <= max_gates

    def test_determinism(self):
        a, b = c880_like(), c880_like()
        assert a.nets == b.nets
        assert [g.inputs for g in a.gates()] == [g.inputs for g in b.gates()]


def _input_index(circuit):
    return {name: i for i, name in enumerate(circuit.inputs)}


def _output_index(circuit):
    return {name: i for i, name in enumerate(circuit.outputs)}


class TestC432Function:
    def test_priority_encoding(self):
        c = c432_like()
        idx = _input_index(c)
        sim = BitSimulator(c)
        # Enable bank 0 (E0=1, global mask E7=0), raise request 5 only.
        vec = np.zeros((1, 32), dtype=np.uint8)
        vec[0, idx["E0"]] = 1
        vec[0, idx["R5"]] = 1
        out = sim.run(vec)[0]
        out_idx = _output_index(c)
        encoded = [out[out_idx[name]] for name in c.outputs[:5]]
        value = sum(bit << k for k, bit in enumerate(encoded))
        assert value == 5

    def test_lower_index_wins(self):
        c = c432_like()
        idx = _input_index(c)
        sim = BitSimulator(c)
        vec = np.zeros((1, 32), dtype=np.uint8)
        vec[0, idx["E0"]] = 1
        vec[0, idx["R3"]] = 1
        vec[0, idx["R6"]] = 1
        out = sim.run(vec)[0]
        encoded = out[:5]
        assert sum(bit << k for k, bit in enumerate(encoded)) == 3

    def test_global_mask_blocks_everything(self):
        c = c432_like()
        idx = _input_index(c)
        sim = BitSimulator(c)
        vec = np.ones((1, 32), dtype=np.uint8)  # all requests, all enables
        out = sim.run(vec)[0]
        any_request = out[_output_index(c)[c.outputs[5]]]
        assert any_request == 0  # E7 masks all banks


def _c499_checks(data_bits):
    sigs = _c499_signatures()
    checks = np.zeros(8, dtype=np.uint8)
    for j in range(8):
        parity = 0
        for i in range(32):
            if (sigs[i] >> j) & 1:
                parity ^= int(data_bits[i])
        checks[j] = parity
    return checks


class TestC499Function:
    def _decode(self, data, checks, enable=1):
        c = c499_like()
        idx = _input_index(c)
        vec = np.zeros((1, 41), dtype=np.uint8)
        for i in range(32):
            vec[0, idx[f"D{i}"]] = data[i]
        for j in range(8):
            vec[0, idx[f"C{j}"]] = checks[j]
        vec[0, idx["EN"]] = enable
        out = BitSimulator(c).run(vec)[0]
        out_idx = _output_index(c)
        return np.array([out[out_idx[o]] for o in c.outputs], dtype=np.uint8)

    def test_clean_word_passes_through(self, rng):
        data = (rng.random(32) < 0.5).astype(np.uint8)
        decoded = self._decode(data, _c499_checks(data))
        assert (decoded == data).all()

    @pytest.mark.parametrize("flip", [0, 7, 15, 31])
    def test_single_error_corrected(self, flip, rng):
        data = (rng.random(32) < 0.5).astype(np.uint8)
        checks = _c499_checks(data)
        corrupted = data.copy()
        corrupted[flip] ^= 1
        decoded = self._decode(corrupted, checks)
        assert (decoded == data).all()

    def test_correction_disabled_without_enable(self, rng):
        data = (rng.random(32) < 0.5).astype(np.uint8)
        checks = _c499_checks(data)
        corrupted = data.copy()
        corrupted[3] ^= 1
        decoded = self._decode(corrupted, checks, enable=0)
        assert (decoded == corrupted).all()


def _bits(value, width):
    return [(value >> k) & 1 for k in range(width)]


class TestC880Function:
    def _run(self, a, bval, k=0xFF, sel=(0, 0, 0, 0), cin=0):
        c = c880_like()
        idx = _input_index(c)
        vec = np.zeros((1, 60), dtype=np.uint8)
        for i, bit in enumerate(_bits(a, 8)):
            vec[0, idx[f"A{i}"]] = bit
        for i, bit in enumerate(_bits(bval, 8)):
            vec[0, idx[f"B{i}"]] = bit
        for i, bit in enumerate(_bits(k, 8)):
            vec[0, idx[f"K{i}"]] = bit
        for i, bit in enumerate(sel):
            vec[0, idx[f"SEL{i}"]] = bit
        vec[0, idx["CIN"]] = cin
        out = BitSimulator(c).run(vec)[0]
        out_idx = _output_index(c)
        f = sum(out[out_idx[c.outputs[i]]] << i for i in range(8))
        return c, out, out_idx, f

    def test_addition(self):
        _, _, _, f = self._run(100, 55)
        assert f == 155

    def test_addition_with_carry_in(self):
        _, _, _, f = self._run(1, 1, cin=1)
        assert f == 3

    def test_and_operation(self):
        _, _, _, f = self._run(0b11001100, 0b10101010, sel=(0, 0, 1, 0))
        assert f == 0b10001000

    def test_or_operation(self):
        _, _, _, f = self._run(0b11000000, 0b00000011, sel=(0, 0, 0, 1))
        assert f == 0b11000011

    def test_xor_operation(self):
        _, _, _, f = self._run(0b1111, 0b0101, sel=(0, 0, 1, 1))
        assert f == 0b1010

    def test_mask_gates_second_operand(self):
        _, _, _, f = self._run(10, 0xFF, k=0x00)
        assert f == 10  # B fully masked: A + 0

    def test_zero_flag(self):
        c, out, out_idx, f = self._run(0, 0)
        assert f == 0
        zero_flag = c.outputs[17]  # carry at 16, zero at 17
        assert out[out_idx[zero_flag]] == 1

    def test_equality_flag(self):
        c, out, out_idx, _ = self._run(77, 77)
        eq_name = c.outputs[20]
        assert out[out_idx[eq_name]] == 1


class TestC1908Function:
    def _run_vec(self, data, checks, parity, en=1, ctl6=0):
        c = c1908_like()
        idx = _input_index(c)
        vec = np.zeros((1, 33), dtype=np.uint8)
        for i in range(16):
            vec[0, idx[f"D{i}"]] = data[i]
        for j in range(6):
            vec[0, idx[f"C{j}"]] = checks[j]
        vec[0, idx["P"]] = parity
        vec[0, idx["EN"]] = en
        vec[0, idx["CTL6"]] = ctl6
        out = BitSimulator(c).run(vec)[0]
        out_idx = _output_index(c)
        corrected = np.array(
            [out[out_idx[c.outputs[i]]] for i in range(16)], dtype=np.uint8
        )
        return c, out, out_idx, corrected

    @staticmethod
    def _encode(data):
        sigs = _c1908_signatures()
        checks = np.zeros(6, dtype=np.uint8)
        for j in range(6):
            parity = 0
            for i in range(16):
                if (sigs[i] >> j) & 1:
                    parity ^= int(data[i])
            checks[j] = parity
        overall = (int(data.sum()) + int(checks.sum())) % 2
        return checks, overall

    def test_clean_word(self, rng):
        data = (rng.random(16) < 0.5).astype(np.uint8)
        checks, parity = self._encode(data)
        _, _, _, corrected = self._run_vec(data, checks, parity)
        assert (corrected == data).all()

    @pytest.mark.parametrize("flip", [0, 5, 15])
    def test_single_error_corrected_and_flagged(self, flip, rng):
        data = (rng.random(16) < 0.5).astype(np.uint8)
        checks, parity = self._encode(data)
        corrupted = data.copy()
        corrupted[flip] ^= 1
        c, out, out_idx, corrected = self._run_vec(corrupted, checks, parity)
        assert (corrected == data).all()
        single_name = c.outputs[24]
        assert out[out_idx[single_name]] == 1

    def test_double_error_flagged_not_corrected_silently(self, rng):
        data = (rng.random(16) < 0.5).astype(np.uint8)
        checks, parity = self._encode(data)
        corrupted = data.copy()
        corrupted[2] ^= 1
        corrupted[9] ^= 1
        c, out, out_idx, _ = self._run_vec(corrupted, checks, parity)
        double_name = c.outputs[25]
        assert out[out_idx[double_name]] == 1

    def test_crossbar_raw_view(self, rng):
        data = (rng.random(16) < 0.5).astype(np.uint8)
        checks, parity = self._encode(data)
        corrupted = data.copy()
        corrupted[4] ^= 1
        _, _, _, view = self._run_vec(corrupted, checks, parity, ctl6=1)
        assert (view == corrupted).all()  # raw (uncorrected) view selected


class TestC3540Function:
    def _run(self, a, bval, k=0xFF, ctl=0, cin=0, en=(1, 1, 1)):
        c = c3540_like()
        idx = _input_index(c)
        vec = np.zeros((1, 50), dtype=np.uint8)
        for i, bit in enumerate(_bits(a, 8)):
            vec[0, idx[f"A{i}"]] = bit
        for i, bit in enumerate(_bits(bval, 8)):
            vec[0, idx[f"B{i}"]] = bit
        for i, bit in enumerate(_bits(k, 8)):
            vec[0, idx[f"K{i}"]] = bit
        for i, bit in enumerate(_bits(ctl, 8)):
            vec[0, idx[f"CTL{i}"]] = bit
        for i, bit in enumerate(en):
            vec[0, idx[f"EN{i}"]] = bit
        vec[0, idx["CIN"]] = cin
        out = BitSimulator(c).run(vec)[0]
        out_idx = _output_index(c)
        f = sum(out[out_idx[c.outputs[i]]] << i for i in range(8))
        return c, out, out_idx, f

    def test_addition_op(self):
        _, _, _, f = self._run(33, 44, ctl=0)
        assert f == 77

    def test_and_op(self):
        _, _, _, f = self._run(0b1100, 0b1010, ctl=1)
        assert f == 0b1000

    def test_or_op(self):
        _, _, _, f = self._run(0b1100, 0b0011, ctl=2)
        assert f == 0b1111

    def test_xor_op(self):
        _, _, _, f = self._run(0xF0, 0xFF, ctl=3)
        assert f == 0x0F

    def test_multiply_low_byte(self):
        _, _, _, f = self._run(7, 9, ctl=8)
        assert f == 63

    def test_multiply_wraps_modulo_256(self):
        _, _, _, f = self._run(100, 5, ctl=8)
        assert f == (100 * 5) % 256

    def test_comparator_flag(self):
        c, out, out_idx, _ = self._run(200, 100, ctl=0)
        gt_name = c.outputs[22]  # F[8], R[8], then carry/zero/parity/sign/ovf/eq/gt
        assert out[out_idx[gt_name]] == 1
