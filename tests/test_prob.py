"""Unit tests for signal probability, activity, and Monte-Carlo estimation."""

import math

import numpy as np
import pytest

from repro.netlist import Circuit, GateType
from repro.prob import (
    Estimate,
    gate_output_probability,
    mc_signal_probabilities,
    mc_toggle_rates,
    node_probabilities,
    rare_nodes,
    signal_probabilities,
    switching_activity,
    transition_probability,
)


class TestGateTransferFunctions:
    def test_and_product(self):
        assert gate_output_probability(GateType.AND, [0.5, 0.5]) == 0.25
        assert gate_output_probability(GateType.AND, [0.5] * 4) == pytest.approx(1 / 16)

    def test_nand_complement(self):
        assert gate_output_probability(GateType.NAND, [0.5, 0.5]) == 0.75

    def test_or_demorgan(self):
        assert gate_output_probability(GateType.OR, [0.5, 0.5]) == 0.75
        assert gate_output_probability(GateType.NOR, [0.5, 0.5]) == 0.25

    def test_xor_recurrence(self):
        assert gate_output_probability(GateType.XOR, [0.5, 0.5]) == 0.5
        assert gate_output_probability(GateType.XOR, [0.3, 0.3]) == pytest.approx(0.42)

    def test_xor_of_equal_halves_stays_half(self):
        assert gate_output_probability(GateType.XOR, [0.5] * 7) == pytest.approx(0.5)

    def test_not_buff(self):
        assert gate_output_probability(GateType.NOT, [0.2]) == pytest.approx(0.8)
        assert gate_output_probability(GateType.BUFF, [0.2]) == pytest.approx(0.2)

    def test_mux_mixture(self):
        assert gate_output_probability(GateType.MUX, [0.2, 0.8, 0.5]) == pytest.approx(0.5)
        assert gate_output_probability(GateType.MUX, [0.2, 0.8, 0.0]) == pytest.approx(0.2)

    def test_ties(self):
        assert gate_output_probability(GateType.TIE0, []) == 0.0
        assert gate_output_probability(GateType.TIE1, []) == 1.0

    def test_clamping(self):
        # Values may drift past [0,1] by epsilon in long chains; must clamp.
        assert 0.0 <= gate_output_probability(GateType.AND, [1.0000000001, 1.0]) <= 1.0

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            gate_output_probability(GateType.INPUT, [])


class TestPropagation:
    def test_c17_hand_computed(self, c17_circuit):
        probs = signal_probabilities(c17_circuit)
        assert probs["N1"] == 0.5
        assert probs["N10"] == 0.75  # NAND(0.5, 0.5)
        assert probs["N11"] == 0.75
        assert probs["N16"] == pytest.approx(1 - 0.5 * 0.75)  # NAND(N2, N11)
        assert probs["N22"] == pytest.approx(1 - 0.75 * probs["N16"])

    def test_pi_override(self, c17_circuit):
        probs = signal_probabilities(c17_circuit, {"N1": 1.0, "N3": 1.0})
        assert probs["N10"] == 0.0

    def test_exact_on_tree_circuit(self, rng):
        # Fanout-free circuit: analytic result must equal exhaustive truth.
        c = Circuit("tree")
        for i in range(6):
            c.add_input(f"i{i}")
        c.add_gate("a", GateType.AND, ("i0", "i1"))
        c.add_gate("b", GateType.OR, ("i2", "i3"))
        c.add_gate("x", GateType.XOR, ("i4", "i5"))
        c.add_gate("m", GateType.NAND, ("a", "b"))
        c.add_gate("out", GateType.XNOR, ("m", "x"))
        c.set_output("out")
        probs = signal_probabilities(c)
        from repro.sim import exhaustive_patterns, BitSimulator

        values = BitSimulator(c).run_full(exhaustive_patterns(6))
        for net, p in probs.items():
            assert p == pytest.approx(values[net].mean()), net

    def test_dff_fixed_point(self):
        c = Circuit("seq")
        c.add_input("clk")
        c.add_input("d")
        c.add_gate("q", GateType.DFF, ("mix", "clk"))
        c.add_gate("mix", GateType.XOR, ("d", "q"))
        c.set_output("q")
        probs = signal_probabilities(c)
        # XOR with an 0.5 input pins the fixed point at 0.5.
        assert probs["q"] == pytest.approx(0.5)

    def test_node_probability_records(self, c17_circuit):
        nodes = node_probabilities(c17_circuit)
        n10 = nodes["N10"]
        assert n10.p_zero == pytest.approx(0.25)
        assert n10.extremity() == pytest.approx(0.75)


class TestRareNodes:
    def test_detects_engineered_rare_node(self, rare_node_circuit):
        rare = rare_nodes(rare_node_circuit, 0.99)
        names = [net for net, _ in rare]
        assert "rare" in names  # P(=1) = 2^-8

    def test_threshold_bounds(self, rare_node_circuit):
        with pytest.raises(ValueError):
            rare_nodes(rare_node_circuit, 0.4)
        with pytest.raises(ValueError):
            rare_nodes(rare_node_circuit, 1.01)

    def test_sorted_most_extreme_first(self, rare_node_circuit):
        rare = rare_nodes(rare_node_circuit, 0.9)
        extremities = [max(p, 1 - p) for _, p in rare]
        assert extremities == sorted(extremities, reverse=True)

    def test_inputs_excluded_by_default(self, rare_node_circuit):
        rare = rare_nodes(rare_node_circuit, 0.9, pi_probabilities={"b": 0.999})
        assert all(net != "b" for net, _ in rare)

    def test_constants_never_candidates(self, tiny_and_circuit):
        tiny_and_circuit.add_gate("one", GateType.TIE1, ())
        tiny_and_circuit.set_output("one")
        rare = rare_nodes(tiny_and_circuit, 0.9)
        assert all(net != "one" for net, _ in rare)


class TestActivity:
    def test_transition_probability_peak_at_half(self):
        assert transition_probability(0.5) == 0.5
        assert transition_probability(0.0) == 0.0
        assert transition_probability(1.0) == 0.0
        assert transition_probability(0.1) == pytest.approx(0.18)

    def test_activity_of_c17(self, c17_circuit):
        act = switching_activity(c17_circuit)
        assert act["N1"] == 0.5
        assert act["N10"] == pytest.approx(2 * 0.75 * 0.25)

    def test_constant_nets_never_switch(self, tiny_and_circuit):
        tiny_and_circuit.add_gate("one", GateType.TIE1, ())
        tiny_and_circuit.set_output("one")
        act = switching_activity(tiny_and_circuit)
        assert act["one"] == 0.0

    def test_ripple_counter_activity_halves(self):
        c = Circuit("ripple")
        c.add_input("clk")
        clock = "clk"
        for k in range(3):
            c.add_gate(f"q{k}", GateType.DFF, (f"qn{k}", clock))
            c.add_gate(f"qn{k}", GateType.NOT, (f"q{k}",))
            clock = f"qn{k}"
        c.set_output("q2")
        act = switching_activity(c)
        assert act["q0"] == pytest.approx(0.5 * act["clk"])
        assert act["q1"] == pytest.approx(0.5 * act["qn0"])
        assert act["q1"] < act["q0"]


class TestMonteCarlo:
    def test_mc_matches_analytic_on_tree(self, rng):
        c = Circuit("tree")
        for i in range(4):
            c.add_input(f"i{i}")
        c.add_gate("a", GateType.AND, ("i0", "i1"))
        c.add_gate("o", GateType.OR, ("i2", "i3"))
        c.add_gate("out", GateType.XOR, ("a", "o"))
        c.set_output("out")
        analytic = signal_probabilities(c)
        estimates = mc_signal_probabilities(c, n_samples=8192, rng=rng)
        for net, est in estimates.items():
            # 2x the 95% half-width: a tolerance, not a flaky 1-in-20 gate.
            assert abs(est.value - analytic[net]) <= 2 * est.half_width, net

    def test_estimate_interval(self):
        est = Estimate(0.5, 0.05, 1000)
        lo, hi = est.interval()
        assert lo == pytest.approx(0.45)
        assert hi == pytest.approx(0.55)
        assert est.contains(0.52)
        assert not est.contains(0.6)

    def test_toggle_rates_near_analytic(self, c17_circuit, rng):
        rates = mc_toggle_rates(c17_circuit, n_vectors=8192, rng=rng)
        analytic = switching_activity(c17_circuit)
        for net in ("N1", "N10", "N22"):
            assert abs(rates[net].value - analytic[net]) < 0.03

    def test_toggle_rates_sequential(self, rng):
        c = Circuit("tff")
        c.add_input("clk")
        c.add_gate("q", GateType.DFF, ("qn", "clk"))
        c.add_gate("qn", GateType.NOT, ("q",))
        c.set_output("q")
        rates = mc_toggle_rates(c, n_vectors=2048, rng=rng)
        # Toggle FF flips on each rising edge: about a quarter of steps.
        assert 0.15 < rates["q"].value < 0.35
