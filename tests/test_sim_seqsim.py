"""Unit tests for the sequential (DFF) simulator — the counter Trojan substrate."""

import numpy as np
import pytest

from repro.netlist import Circuit, GateType
from repro.sim import SequentialSimulator
from repro.trojan import insert_counter_trojan


def toggle_ff_circuit():
    """Single toggle FF clocked by primary input ``clk``; q is the output."""
    c = Circuit("tff")
    c.add_input("clk")
    c.add_gate("q", GateType.DFF, ("qn", "clk"))
    c.add_gate("qn", GateType.NOT, ("q",))
    c.set_output("q")
    return c


def ripple_counter_circuit(n_bits):
    """n-bit asynchronous up counter clocked by input ``clk``."""
    c = Circuit(f"ripple{n_bits}")
    c.add_input("clk")
    clock = "clk"
    for k in range(n_bits):
        c.add_gate(f"q{k}", GateType.DFF, (f"qn{k}", clock))
        c.add_gate(f"qn{k}", GateType.NOT, (f"q{k}",))
        c.set_output(f"q{k}")
        clock = f"qn{k}"
    return c


def clock_sequence(edges, idle=1):
    """Input sequence producing ``edges`` rising edges on one input."""
    steps = []
    for _ in range(edges):
        steps.extend([[0]] * idle + [[1]])
    steps.append([0])
    return np.array(steps, dtype=np.uint8)


class TestToggleFF:
    def test_toggles_once_per_rising_edge(self):
        c = toggle_ff_circuit()
        sim = SequentialSimulator(c)
        seq = clock_sequence(edges=3)
        out = sim.run_sequences(seq[np.newaxis, :, :])[0][:, 0]
        # Value after each applied vector: edges at the '1' steps.
        expected_toggle_count = 3
        assert int(out[-1]) == expected_toggle_count % 2

    def test_no_edge_no_toggle(self):
        c = toggle_ff_circuit()
        sim = SequentialSimulator(c)
        seq = np.zeros((10, 1), dtype=np.uint8)
        out = sim.run_sequences(seq[np.newaxis, :, :])[0][:, 0]
        assert not out.any()

    def test_held_high_clock_is_single_edge(self):
        c = toggle_ff_circuit()
        sim = SequentialSimulator(c)
        seq = np.array([[0], [1], [1], [1]], dtype=np.uint8)
        out = sim.run_sequences(seq[np.newaxis, :, :])[0][:, 0]
        assert list(out) == [0, 1, 1, 1]


class TestRippleCounter:
    @pytest.mark.parametrize("n_bits", [1, 2, 3])
    def test_counts_rising_edges(self, n_bits):
        c = ripple_counter_circuit(n_bits)
        sim = SequentialSimulator(c)
        edges = 5
        seq = clock_sequence(edges=edges)
        out = sim.run_sequences(seq[np.newaxis, :, :])[0]
        final = out[-1]
        value = sum(int(final[k]) << k for k in range(n_bits))
        assert value == edges % (1 << n_bits)

    def test_wraps_at_modulus(self):
        c = ripple_counter_circuit(2)
        sim = SequentialSimulator(c)
        seq = clock_sequence(edges=4)  # full wrap of a 2-bit counter
        out = sim.run_sequences(seq[np.newaxis, :, :])[0]
        assert not out[-1].any()

    def test_parallel_sequences_are_independent(self, rng):
        c = ripple_counter_circuit(3)
        sim = SequentialSimulator(c)
        seqs = (rng.random((80, 40, 1)) < 0.4).astype(np.uint8)
        batched = sim.run_sequences(seqs)
        for s in (0, 17, 79):
            solo = SequentialSimulator(c).run_sequences(seqs[s : s + 1])
            assert (solo[0] == batched[s]).all()

    def test_reset_clears_state(self):
        c = ripple_counter_circuit(2)
        sim = SequentialSimulator(c)
        seq = clock_sequence(edges=3)
        first = sim.run_sequences(seq[np.newaxis, :, :])[0]
        second = sim.run_sequences(seq[np.newaxis, :, :])[0]
        assert (first == second).all()


class TestCombinationalPassThrough:
    def test_combinational_circuit_works(self, c17_circuit, rng):
        from repro.sim import BitSimulator

        pats = (rng.random((30, 5)) < 0.5).astype(np.uint8)
        seq_out = SequentialSimulator(c17_circuit).run_sequences(pats[np.newaxis])[0]
        comb_out = BitSimulator(c17_circuit).run(pats)
        assert (seq_out == comb_out).all()


class TestTrackedSimulation:
    def test_tracking_matches_outputs(self, rng):
        c = ripple_counter_circuit(2)
        seq = clock_sequence(edges=3)
        sim = SequentialSimulator(c)
        traces = sim.run_sequence_tracking(seq, watch=["q0", "q1"])
        out = SequentialSimulator(c).run_sequences(seq[np.newaxis])[0]
        assert (traces["q0"] == out[:, 0]).all()
        assert (traces["q1"] == out[:, 1]).all()

    def test_trojan_trigger_trace(self, c17_circuit):
        instance = insert_counter_trojan(c17_circuit, "N22", "N10", n_bits=2)
        sim = SequentialSimulator(c17_circuit)
        # Toggle N1/N3 so N10 = NAND(N1, N3) produces rising edges.
        steps = []
        for _ in range(6):
            steps.append([1, 0, 1, 0, 0])  # N10 = 0
            steps.append([0, 0, 0, 0, 0])  # N10 = 1 (rising edge)
        seq = np.array(steps, dtype=np.uint8)
        traces = sim.run_sequence_tracking(seq, watch=[instance.trigger_net])
        assert traces[instance.trigger_net].any()  # 3 edges reached (2-bit: fires at 3)
