"""Fixture-based self-tests for ``repro.lint``.

Every rule is asserted twice: it fires on a minimal seeded violation with
the right code, and it stays silent on the idiomatic form the codebase
actually uses (the ``if rng is None`` good case, the backend boundary
module, the ``runtime=`` sink, ...).  The suite ends with the acceptance
property: the shipped ``src/`` tree lints clean with an empty allowlist.
"""

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    Allowlist,
    RULES,
    lint_paths,
    lint_source,
    run_lint,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


def codes(findings):
    return [f.code for f in findings]


# -- R1: seed discipline ---------------------------------------------------


class TestSeedDiscipline:
    def test_legacy_np_random_fires(self):
        fs = lint_source(
            "import numpy as np\nx = np.random.rand(4)\n",
            module="repro.core.example",
        )
        assert codes(fs) == ["RPR101"]
        assert "default_rng" in fs[0].message  # fix-it names the idiom

    def test_np_random_seed_fires(self):
        fs = lint_source(
            "import numpy as np\nnp.random.seed(1234)\n",
            module="repro.core.example",
        )
        assert codes(fs) == ["RPR101"]

    def test_seeded_default_rng_is_silent(self):
        fs = lint_source(
            "import numpy as np\n"
            "rng = np.random.default_rng(derive_seed(seed, 3))\n",
            module="repro.core.example",
        )
        assert fs == []

    def test_seed_sequence_is_silent(self):
        fs = lint_source(
            "import numpy as np\n"
            "rng = np.random.default_rng(np.random.SeedSequence([s, 4]))\n",
            module="repro.api.example",
        )
        assert fs == []

    def test_argless_default_rng_fires(self):
        fs = lint_source(
            "import numpy as np\nrng = np.random.default_rng()\n",
            module="repro.core.example",
        )
        assert codes(fs) == ["RPR102"]

    def test_stdlib_random_import_fires(self):
        assert codes(
            lint_source("import random\n", module="repro.core.example")
        ) == ["RPR102"]
        assert codes(
            lint_source("from random import choice\n", module="repro.core.example")
        ) == ["RPR102"]

    def test_rng_truthiness_or_fires(self):
        fs = lint_source(
            "def f(rng=None):\n    rng = rng or make_rng()\n    return rng\n",
            module="repro.sim.example",
        )
        assert codes(fs) == ["RPR103"]
        assert "is None" in fs[0].message

    def test_rng_truthiness_if_and_ifexp_fire(self):
        fs = lint_source(
            "def f(trigger_rng=None):\n"
            "    if not trigger_rng:\n"
            "        pass\n"
            "    x = 1 if trigger_rng else 2\n",
            module="repro.trojan.example",
        )
        assert codes(fs) == ["RPR103", "RPR103"]

    def test_if_rng_is_none_good_case_is_silent(self):
        fs = lint_source(
            "import numpy as np\n"
            "def f(rng=None):\n"
            "    if rng is None:\n"
            "        rng = np.random.default_rng(0)\n"
            "    return rng\n",
            module="repro.sim.example",
        )
        assert fs == []

    def test_non_rng_truthiness_is_silent(self):
        fs = lint_source(
            "def f(runtime=None):\n    runtime = runtime or {}\n",
            module="repro.api.example",
        )
        assert fs == []


# -- R2: payload purity ----------------------------------------------------


class TestPayloadPurity:
    def test_direct_time_in_payload_field_fires(self):
        fs = lint_source(
            "import time\n"
            "def f(spec):\n"
            "    return ExperimentRecord(spec=spec, trigger={'t': time.time()})\n",
            module="repro.api.example",
        )
        assert codes(fs) == ["RPR201"]

    def test_one_hop_taint_fires(self):
        fs = lint_source(
            "import time\n"
            "def f(spec):\n"
            "    t0 = time.perf_counter()\n"
            "    return ExperimentRecord(spec=spec, detection={'dt': t0})\n",
            module="repro.api.example",
        )
        assert codes(fs) == ["RPR201"]

    def test_env_probe_fires(self):
        fs = lint_source(
            "import os\n"
            "def f(spec):\n"
            "    return ExperimentRecord.failed(spec, os.environ['HOST'])\n",
            module="repro.api.example",
        )
        assert codes(fs) == ["RPR201"]

    def test_runtime_sink_is_silent(self):
        fs = lint_source(
            "import time\n"
            "def f(spec):\n"
            "    t0 = time.perf_counter()\n"
            "    runtime = {'total': time.perf_counter() - t0}\n"
            "    return ExperimentRecord(spec=spec, runtime=runtime)\n",
            module="repro.api.example",
        )
        assert fs == []

    def test_from_run_positional_runtime_is_silent(self):
        # Mirrors runner.execute_experiment: tainted dict passed as the
        # 4th positional (runtime) argument of from_run.
        fs = lint_source(
            "import time\n"
            "def f(spec, result, evasion):\n"
            "    t0 = time.perf_counter()\n"
            "    runtime = {'timings': {'total': time.perf_counter() - t0}}\n"
            "    return ExperimentRecord.from_run(spec, result, evasion, runtime)\n",
            module="repro.api.example",
        )
        assert fs == []

    def test_runtime_readback_fires(self):
        fs = lint_source(
            "def f(spec, rec):\n"
            "    return ExperimentRecord(spec=spec, detection=rec.runtime['x'])\n",
            module="repro.api.example",
        )
        assert "RPR202" in codes(fs)

    def test_runtime_get_readback_fires(self):
        fs = lint_source(
            "def f(spec, d):\n"
            "    return ExperimentRecord(spec=spec, trigger=d.get('runtime'))\n",
            module="repro.api.example",
        )
        assert "RPR202" in codes(fs)

    def test_module_without_record_construction_is_out_of_scope(self):
        fs = lint_source(
            "import time\nNOW = time.time()\n",
            module="repro.power.example",
        )
        assert fs == []


# -- R3: backend discipline ------------------------------------------------


class TestBackendDiscipline:
    def test_from_numpy_import_fires_in_kernel(self):
        fs = lint_source(
            "from numpy import packbits\n", module="repro.sim.example"
        )
        assert codes(fs) == ["RPR301"]

    def test_bare_and_aliased_numpy_imports_fire(self):
        assert codes(
            lint_source("import numpy\n", module="repro.atpg.example")
        ) == ["RPR301"]
        assert codes(
            lint_source("import numpy as xp\n", module="repro.traces.example")
        ) == ["RPR301"]

    def test_import_numpy_as_np_is_silent(self):
        assert lint_source(
            "import numpy as np\n", module="repro.sim.example"
        ) == []

    def test_device_compute_fires_in_kernel(self):
        fs = lint_source(
            "import numpy as np\ndef f(a, w):\n    return np.matmul(a, w)\n",
            module="repro.traces.example",
        )
        assert codes(fs) == ["RPR302"]
        assert "backend" in fs[0].message

    def test_host_side_surface_is_silent(self):
        fs = lint_source(
            "import numpy as np\n"
            "def f(bits):\n"
            "    packed = np.packbits(np.asarray(bits, dtype=np.uint8))\n"
            "    return np.zeros(4, dtype=np.uint64), packed\n",
            module="repro.sim.example",
        )
        assert fs == []

    def test_backend_boundary_module_is_exempt(self):
        # The allowlisted boundary path: repro.sim.backend IS the numpy shim.
        fs = lint_source(
            "import numpy as np\nx = np.matmul(a, b)\n",
            module="repro.sim.backend",
        )
        assert fs == []

    def test_non_kernel_packages_are_out_of_scope(self):
        fs = lint_source(
            "import numpy as np\nx = np.linalg.norm(v)\n",
            module="repro.detect.example",
        )
        assert fs == []


# -- R4: service hygiene ---------------------------------------------------


class TestServiceHygiene:
    def test_third_party_import_fires(self):
        fs = lint_source(
            "import requests\n", module="repro.service.example"
        )
        assert codes(fs) == ["RPR401"]

    def test_numpy_in_server_fires_but_store_is_boundary(self):
        assert codes(
            lint_source("import numpy as np\n", module="repro.service.server")
        ) == ["RPR401"]
        assert lint_source(
            "import numpy as np\n", module="repro.service.store"
        ) == []

    def test_stdlib_and_repro_imports_are_silent(self):
        fs = lint_source(
            "import json\nimport threading\n"
            "from ..api.spec import CampaignSpec\n"
            "from repro.api.runner import ExperimentRecord\n",
            module="repro.service.example",
        )
        assert fs == []

    LOCKED = (
        "import threading\n"
        "class Server:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.jobs = {}\n"
        "        self.n_errors = 0\n"
        "    def guarded(self, k, v):\n"
        "        with self._lock:\n"
        "            self.jobs[k] = v\n"
        "            self.n_errors += 1\n"
    )

    def test_unguarded_store_fires(self):
        fs = lint_source(
            self.LOCKED
            + "    def bad(self):\n"
            + "        self.n_errors = 0\n",
            module="repro.service.example",
        )
        assert codes(fs) == ["RPR402"]
        assert "n_errors" in fs[0].message

    def test_unguarded_subscript_and_mutating_call_fire(self):
        fs = lint_source(
            self.LOCKED
            + "    def bad(self, k, v):\n"
            + "        self.jobs[k] = v\n"
            + "        self.jobs.update({k: v})\n",
            module="repro.service.example",
        )
        assert codes(fs) == ["RPR402", "RPR402"]

    def test_init_is_exempt_and_guarded_mutations_are_silent(self):
        assert lint_source(self.LOCKED, module="repro.service.example") == []

    def test_unrelated_attributes_are_silent(self):
        fs = lint_source(
            self.LOCKED
            + "    def fine(self):\n"
            + "        self.started = True\n",  # never lock-guarded
            module="repro.service.example",
        )
        assert fs == []

    def test_module_without_locks_is_out_of_scope(self):
        fs = lint_source(
            "class Plain:\n"
            "    def set(self, v):\n"
            "        self.value = v\n",
            module="repro.api.example",
        )
        assert fs == []


# -- allowlist / suppression ----------------------------------------------


class TestAllowlist:
    VIOLATION = "import numpy as np\nrng = np.random.default_rng()\n"

    def test_allowlist_file_suppresses(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "example.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(self.VIOLATION)
        raw, _ = lint_paths([tmp_path])
        assert codes(raw) == ["RPR102"]
        allow = tmp_path / "allow.txt"
        allow.write_text("# comment\nrepro/core/example.py:RPR102\n")
        filtered, _ = lint_paths(
            [tmp_path], allowlist=Allowlist.from_file(allow)
        )
        assert filtered == []

    def test_line_pinned_allowlist_entry(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "example.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(self.VIOLATION)
        wrong_line = Allowlist({("repro/core/example.py", "RPR102", 99)})
        assert codes(lint_paths([tmp_path], allowlist=wrong_line)[0]) == ["RPR102"]
        right_line = Allowlist({("repro/core/example.py", "RPR102", 2)})
        assert lint_paths([tmp_path], allowlist=right_line)[0] == []

    def test_inline_comment_suppresses(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "example.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import numpy as np\n"
            "rng = np.random.default_rng()  # lint: allow[RPR102]\n"
        )
        assert lint_paths([tmp_path])[0] == []

    def test_inline_comment_is_code_specific(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "example.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import numpy as np\n"
            "rng = np.random.default_rng()  # lint: allow[RPR999]\n"
        )
        assert codes(lint_paths([tmp_path])[0]) == ["RPR102"]


# -- CLI / reporting -------------------------------------------------------


class TestCli:
    def test_unparseable_file_is_a_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings, n = lint_paths([tmp_path])
        assert n == 1
        assert codes(findings) == ["RPR000"]

    def test_run_lint_exit_codes_and_format(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "example.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        buf = io.StringIO()
        assert run_lint([str(tmp_path)], out=buf) == 1
        text = buf.getvalue()
        assert "RPR102" in text and "example.py:1:" in text
        ok = io.StringIO()
        bad.write_text("import json\n")
        assert run_lint([str(tmp_path)], out=ok) == 0
        assert "0 finding(s)" in ok.getvalue()

    def test_json_mode_shape(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "example.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        buf = io.StringIO()
        assert run_lint([str(tmp_path)], as_json=True, out=buf) == 1
        doc = json.loads(buf.getvalue())
        assert doc["version"] == 1 and doc["checked_files"] == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "RPR102"
        assert finding["line"] == 1
        assert finding["snippet"] == "import random"
        assert finding["path"].endswith("example.py")

    def test_select_filters_rules(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "example.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nfrom numpy import zeros\n")
        assert codes(lint_paths([tmp_path])[0]) == ["RPR102", "RPR301"]
        only_301, _ = lint_paths([tmp_path], select=["RPR301"])
        assert codes(only_301) == ["RPR301"]

    def test_unknown_select_code_errors(self):
        assert run_lint(["src"], select="RPR999", out=io.StringIO()) == 2

    def test_missing_path_errors(self):
        assert run_lint(["no/such/dir"], out=io.StringIO()) == 2

    def test_repro_cli_subcommand(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "example.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        env_src = str(SRC_ROOT)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(tmp_path)],
            capture_output=True, text=True,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "RPR102" in proc.stdout

    def test_rule_registry_is_complete(self):
        expected = {
            "RPR101", "RPR102", "RPR103",
            "RPR201", "RPR202",
            "RPR301", "RPR302",
            "RPR401", "RPR402",
        }
        assert set(RULES) == expected
        for rl in RULES.values():
            assert rl.rationale  # every rule names the guarantee it protects


# -- acceptance: the shipped tree is clean ---------------------------------


def test_shipped_tree_lints_clean_with_empty_allowlist():
    assert SRC_ROOT.is_dir()
    findings, n_files = lint_paths([SRC_ROOT], allowlist=Allowlist())
    assert n_files > 80  # the whole source tree was actually walked
    assert findings == [], [f.format() for f in findings]


def test_seeded_violation_makes_cli_exit_nonzero(tmp_path):
    bad = tmp_path / "repro" / "api" / "example.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import time\n"
        "def f(spec):\n"
        "    return ExperimentRecord(spec=spec, trigger={'t': time.time()})\n"
    )
    buf = io.StringIO()
    assert run_lint([str(tmp_path)], out=buf) == 1
    assert "RPR201" in buf.getvalue()
