"""Unit tests for Algorithm 2 internals: thresholds, padding, placement."""

import numpy as np
import pytest

from repro.core.insertion import (
    InsertionConfig,
    _exceeds,
    _pad_with_dummies,
    insert_trojan_zero,
)
from repro.core.salvage import salvage
from repro.core.thresholds import compute_thresholds
from repro.power import analyze
from repro.power.analysis import PowerDelta
from repro.trojan.library import TrojanDesign


def _delta(total=0.0, dynamic=0.0, leakage=0.0, area_ge=0.0):
    return PowerDelta(
        total_uw=total,
        dynamic_uw=dynamic,
        leakage_uw=leakage,
        area_ge=area_ge,
        area_um2=area_ge * 1.44,
    )


class TestThresholdChecks:
    @pytest.fixture()
    def baseline(self, c432_circuit, library):
        return analyze(c432_circuit, library)

    def test_within_tolerance_passes(self, baseline):
        delta = _delta(total=0.01, dynamic=0.01, leakage=0.001, area_ge=0.5)
        assert not _exceeds(delta, baseline, 0.01, 0.01)

    def test_total_power_violation(self, baseline):
        # N'' above N by 5% of total (delta = N - N'' strongly negative).
        delta = _delta(total=-0.05 * baseline.total_uw)
        assert _exceeds(delta, baseline, 0.01, 0.01)

    def test_component_violation_even_when_total_fits(self, baseline):
        """Paper II-C.2: each component is checked independently."""
        delta = _delta(total=0.0, leakage=-0.5 * baseline.leakage_uw)
        assert _exceeds(delta, baseline, 0.01, 0.01)

    def test_area_violation(self, baseline):
        delta = _delta(area_ge=-0.05 * baseline.area_ge)
        assert _exceeds(delta, baseline, 0.01, 0.01)

    def test_negative_differential_is_allowed_by_exceeds(self, baseline):
        # Being far *under* threshold is not an excess (padding handles it).
        delta = _delta(total=5.0, dynamic=4.0, leakage=1.0, area_ge=30.0)
        assert not _exceeds(delta, baseline, 0.01, 0.01)


class TestDummyPadding:
    def test_padding_closes_area_gap_without_busting_power(
        self, c432_circuit, library
    ):
        # Fabricate a deficit: strip a chunk of logic (dead-end gates).
        from repro.netlist import strip_dead_logic, tie_net_to_constant
        from repro.prob import rare_nodes

        baseline = analyze(c432_circuit, library)
        shrunk = c432_circuit.copy("shrunk")
        for net, p_one in rare_nodes(shrunk, 0.97)[:6]:
            if shrunk.has_net(net) and not shrunk.gate(net).is_constant:
                tie_net_to_constant(shrunk, net, 1 if p_one >= 0.5 else 0)
        strip_dead_logic(shrunk)
        config = InsertionConfig(padding_target_ge=2.0)
        report, delta, added = _pad_with_dummies(shrunk, baseline, library, config)
        assert added, "padding should have inserted something"
        assert not _exceeds(delta, baseline, config.rel_power_tolerance,
                            config.rel_area_tolerance)
        # The gap must have shrunk versus the unpadded circuit.
        unpadded = baseline.delta(analyze(c432_circuit.copy("ref"), library))
        assert delta.area_ge <= baseline.delta(report).area_ge + 1e-9

    def test_padding_noop_when_already_at_threshold(self, c432_circuit, library):
        baseline = analyze(c432_circuit, library)
        work = c432_circuit.copy("work")
        config = InsertionConfig(padding_target_ge=4.0)
        report, delta, added = _pad_with_dummies(work, baseline, library, config)
        assert added == []
        assert abs(delta.area_ge) < 1e-6


class TestInsertionSearch:
    def test_failure_reports_attempts(self, c432_circuit, library):
        """With zero salvage budget every counter design must be skipped or
        rejected, and the attempt log must say why."""
        th = compute_thresholds(c432_circuit, library)
        # Pth high enough that nothing is salvaged -> no budget.
        result_salvage = salvage(
            th.circuit, th.pattern_sets, library, 0.99999, power_before=th.power
        )
        assert result_salvage.expendable_gates == 0
        outcome = insert_trojan_zero(
            result_salvage,
            th.circuit,
            th.pattern_sets,
            th.power,
            library,
            designs=[TrojanDesign("counter5", "counter", 5)],
        )
        assert not outcome.success
        assert outcome.attempts
        assert any("budget" in a.outcome or "exceeds" in a.outcome
                   for a in outcome.attempts)

    def test_session_vectors_affect_trigger_choice(self, c432_circuit, library):
        from repro.core.insertion import rank_trigger_sources

        short = rank_trigger_sources(
            c432_circuit, 0.95, 4, edges_to_fire=3, session_vectors=50
        )
        long = rank_trigger_sources(
            c432_circuit, 0.95, 4, edges_to_fire=3, session_vectors=5000
        )
        assert short and long
        # A longer defender session forces (weakly) rarer clock choices.
        from repro.prob import signal_probabilities

        probs = signal_probabilities(c432_circuit)

        def edge(net):
            p = probs[net]
            return p * (1 - p)

        assert edge(long[0]) <= edge(short[0]) + 1e-12


class TestReportFormatting:
    def test_failed_run_renders_dashes(self, c432_circuit, library):
        from repro.core import TableRow, TrojanZeroPipeline, format_row

        pipe = TrojanZeroPipeline.default()
        result = pipe.run(
            c432_circuit.copy(), p_threshold=0.99999, counter_bits=5
        )
        assert not result.success
        row = TableRow.from_result(result)
        line = format_row(row)
        assert "-" in line
        assert result.summary()  # must not raise on failure either
