"""Unit tests for the structural lint."""

import pytest

from repro.netlist import Circuit, GateType, NetlistError, assert_valid, validate


def test_clean_circuit_passes(c17_circuit):
    assert validate(c17_circuit) == []
    assert_valid(c17_circuit)


def test_missing_outputs_flagged(tiny_and_circuit):
    tiny_and_circuit.unset_output("out")
    problems = validate(tiny_and_circuit)
    assert any("output" in p for p in problems)
    # But the relaxed mode allows it (useful for building blocks).
    assert validate(tiny_and_circuit, require_outputs=False) == []


def test_undriven_net_flagged():
    c = Circuit()
    c.add_input("a")
    c.add_gate("g", GateType.AND, ("a", "phantom"))
    c.set_output("g")
    problems = validate(c)
    assert any("phantom" in p for p in problems)


def test_empty_circuit_flagged():
    problems = validate(Circuit())
    assert problems  # no inputs, no outputs


def test_duplicate_parity_inputs_flagged():
    c = Circuit()
    c.add_input("a")
    c.add_gate("g", GateType.XOR, ("a", "a"))
    c.set_output("g")
    problems = validate(c)
    assert any("duplicate" in p for p in problems)


def test_assert_valid_raises_with_summary():
    c = Circuit("broken")
    c.add_input("a")
    c.add_gate("g", GateType.AND, ("a", "phantom"))
    c.set_output("g")
    with pytest.raises(NetlistError, match="broken"):
        assert_valid(c)


def test_cycle_reported_not_raised():
    c = Circuit()
    c.add_input("a")
    c.add_gate("x", GateType.AND, ("a", "y"))
    c.add_gate("y", GateType.AND, ("a", "x"))
    c.set_output("x")
    problems = validate(c)
    assert any("cycle" in p for p in problems)
