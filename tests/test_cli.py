"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_circuit_message(self, capsys):
        with pytest.raises(SystemExit):
            main(["power", "c9999"])


class TestCommands:
    def test_power(self, capsys):
        assert main(["power", "c17"]) == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert "GE" in out

    def test_power_with_synthesis(self, capsys):
        assert main(["power", "c432", "--synthesize"]) == 0
        assert "c432_like" in capsys.readouterr().out

    def test_prob(self, capsys):
        assert main(["prob", "c432", "--pth", "0.975", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "candidate nodes" in out

    def test_atpg(self, capsys):
        assert main(["atpg", "c432"]) == 0
        out = capsys.readouterr().out
        assert "coverage:" in out

    def test_equiv_same_circuit(self, capsys, tmp_path):
        from repro.bench import c17, save_bench

        path = tmp_path / "c17.bench"
        save_bench(c17(), path)
        assert main(["equiv", "c17", str(path)]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_attack_writes_netlist(self, capsys, tmp_path):
        out_path = tmp_path / "infected.bench"
        code = main(
            [
                "attack",
                "c432",
                "--pth",
                "0.975",
                "--counter-bits",
                "2",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        assert out_path.exists()
        from repro.bench import load_bench

        infected = load_bench(out_path)
        assert infected.is_sequential  # the counter HT survived the round trip

    def test_bench_file_input(self, capsys, tmp_path):
        from repro.bench import c17, save_bench

        path = tmp_path / "mine.bench"
        save_bench(c17(), path)
        assert main(["power", str(path)]) == 0
        assert "mine" in capsys.readouterr().out
