"""Tests for the command-line interface."""

import json

import pytest

from repro.api import ExperimentRecord, load_records
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_circuit_message(self, capsys):
        with pytest.raises(SystemExit):
            main(["power", "c9999"])


class TestCommands:
    def test_power(self, capsys):
        assert main(["power", "c17"]) == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert "GE" in out

    def test_power_with_synthesis(self, capsys):
        assert main(["power", "c432", "--synthesize"]) == 0
        assert "c432_like" in capsys.readouterr().out

    def test_prob(self, capsys):
        assert main(["prob", "c432", "--pth", "0.975", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "candidate nodes" in out

    def test_atpg(self, capsys):
        assert main(["atpg", "c432"]) == 0
        out = capsys.readouterr().out
        assert "coverage:" in out

    def test_equiv_same_circuit(self, capsys, tmp_path):
        from repro.bench import c17, save_bench

        path = tmp_path / "c17.bench"
        save_bench(c17(), path)
        assert main(["equiv", "c17", str(path)]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_attack_writes_netlist(self, capsys, tmp_path):
        out_path = tmp_path / "infected.bench"
        code = main(
            [
                "attack",
                "c432",
                "--pth",
                "0.975",
                "--counter-bits",
                "2",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        assert out_path.exists()
        from repro.bench import load_bench

        infected = load_bench(out_path)
        assert infected.is_sequential  # the counter HT survived the round trip

    def test_bench_file_input(self, capsys, tmp_path):
        from repro.bench import c17, save_bench

        path = tmp_path / "mine.bench"
        save_bench(c17(), path)
        assert main(["power", str(path)]) == 0
        assert "mine" in capsys.readouterr().out

    def test_extra_benchmarks_resolve(self, capsys):
        # c17/c1355/c6288 used to live in a CLI-private dict; they must now
        # resolve through the shared repro.bench registry.
        assert main(["power", "c1355"]) == 0
        assert "c1355_like" in capsys.readouterr().out

    def test_attack_json_record(self, capsys):
        code = main(
            ["attack", "c432", "--pth", "0.975", "--counter-bits", "2",
             "--seed", "11", "--mc-sessions", "8", "--json"]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["success"] is True
        assert record["spec"]["seed"] == 11
        assert record["trigger"]["pft_monte_carlo"] is not None
        # The JSON line must satisfy the record schema.
        ExperimentRecord.from_dict(record)


class TestCampaignCommand:
    def test_campaign_jsonl_and_exit_code(self, capsys, tmp_path):
        out = tmp_path / "r.jsonl"
        code = main(
            ["campaign", "--circuits", "c17", "--pths", "0.9,0.95",
             "--jobs", "2", "--out", str(out), "--json"]
        )
        assert code == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2
        for data in records:
            ExperimentRecord.from_dict(data)  # schema-valid
        assert len(load_records(out)) == 2

    def test_campaign_resume_reruns_nothing(self, capsys, tmp_path):
        out = tmp_path / "r.jsonl"
        argv = ["campaign", "--circuits", "c17", "--pths", "0.9,0.95",
                "--out", str(out)]
        assert main(argv) == 0
        assert main(argv + ["--resume"]) == 0
        assert "skipped (resume)" in capsys.readouterr().out
        assert len(load_records(out)) == 2  # no duplicate records appended

    def test_campaign_requires_circuits(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--pths", "0.9"])

    def test_campaign_rejects_unknown_circuit(self):
        with pytest.raises(SystemExit, match="unknown circuit"):
            main(["campaign", "--circuits", "c9999"])

    def test_campaign_rejects_unknown_detector(self):
        with pytest.raises(SystemExit, match="detector"):
            main(["campaign", "--circuits", "c17", "--detector", "bogus"])

    def test_campaign_resume_requires_out(self):
        with pytest.raises(SystemExit, match="--resume"):
            main(["campaign", "--circuits", "c17", "--resume"])

    def test_campaign_rejects_invalid_pth_cleanly(self):
        with pytest.raises(SystemExit, match="pth"):
            main(["campaign", "--circuits", "c17", "--pths", "0.4"])

    def test_campaign_table1_conflicts_with_grid_flags(self):
        with pytest.raises(SystemExit, match="table1"):
            main(["campaign", "--table1", "--circuits", "c17"])
        with pytest.raises(SystemExit, match="table1"):
            main(["campaign", "--table1", "--pths", "0.9"])


class TestSpecValidationErrors:
    def test_attack_invalid_pth_is_clean_error(self):
        with pytest.raises(SystemExit, match="pth"):
            main(["attack", "c432", "--pth", "0.4"])

    def test_attack_invalid_mc_sessions_is_clean_error(self):
        with pytest.raises(SystemExit, match="mc_sessions"):
            main(["attack", "c432", "--mc-sessions", "-1"])

    def test_detect_json_on_failed_insertion_is_json(self, capsys):
        # c17 has no salvage budget, so insertion fails; --json must still
        # emit the structured record (success: false), exit code 1.
        code = main(["detect", "c17", "--pth", "0.9", "--json"])
        assert code == 1
        record = json.loads(capsys.readouterr().out)
        assert record["success"] is False
