"""Fault-tolerance tests for the supervised campaign layer (`repro.api.fleet`).

Covers the error taxonomy, seeded retry backoff, the chaos harness
(`repro.api.chaos`), and the integration guarantees: a campaign survives a
SIGKILL-ed worker and a timed-out cell with every payload bit-identical to
an undisturbed serial run, resumes over a chaos-truncated JSONL, trips the
``max_errors`` circuit breaker while still finalizing the sink, and
degrades to serial execution after repeated pool collapse.
"""

from __future__ import annotations

import pytest

from repro.api import (
    CampaignSpec,
    CellSupervisor,
    ChaosConfigError,
    ChaosSpec,
    ExperimentRecord,
    ExperimentSpec,
    FaultInjector,
    FleetPolicy,
    RetryPolicy,
    TransientChaosError,
    classify_error,
    load_records,
    retry_delay_s,
    run_campaign,
    run_experiment,
)
from repro.api.fleet import CellTimeout


def _c17_specs(*pths, seed=3):
    return [ExperimentSpec(circuit="c17", pth=p, seed=seed) for p in pths]


def _campaign(specs, name="fleet-unit"):
    return CampaignSpec.of(specs, name=name)


class TestErrorTaxonomy:
    def test_classification(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify_error(BrokenProcessPool("x")) == "worker-death"
        assert classify_error(CellTimeout("x")) == "timeout"
        assert classify_error(TimeoutError("x")) == "timeout"
        assert classify_error(TransientChaosError("x")) == "chaos-transient"
        assert classify_error(OSError("x")) == "transient-io"
        assert classify_error(ValueError("x")) == "deterministic"
        assert classify_error(RuntimeError("x")) == "deterministic"

    def test_deterministic_errors_never_retry(self):
        # A bad circuit ref raises ValueError inside the cell: exactly one
        # attempt, no retry history, straight to an error record.
        campaign = _campaign([ExperimentSpec(circuit="/nonexistent/x.bench", pth=0.9)])
        result = run_campaign(
            campaign, policy=FleetPolicy(retry=RetryPolicy(max_retries=5))
        )
        (record,) = result.records
        assert record.error is not None and "unknown circuit" in record.error
        assert record.runtime["attempts"] == 1
        assert record.runtime["retry_history"] == []


class TestRetryBackoff:
    def test_delay_deterministic_for_fixed_spec(self):
        policy = RetryPolicy(backoff_s=0.5, jitter=0.25)
        spec = ExperimentSpec(circuit="c432", pth=0.975, seed=7)
        assert retry_delay_s(policy, spec, 1) == retry_delay_s(policy, spec, 1)
        assert retry_delay_s(policy, spec, 1) != retry_delay_s(policy, spec, 2)
        # Different cells get decorrelated jitter even with the same seed.
        other = spec.with_(pth=0.992)
        assert retry_delay_s(policy, spec, 1) != retry_delay_s(policy, other, 1)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_s=0.1, backoff_mult=2.0, backoff_max_s=0.5, jitter=0.0
        )
        spec = ExperimentSpec(circuit="c17", pth=0.9, seed=0)
        delays = [retry_delay_s(policy, spec, a) for a in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_mult=1.0, jitter=0.25)
        for seed in range(20):
            spec = ExperimentSpec(circuit="c17", pth=0.9, seed=seed)
            delay = retry_delay_s(policy, spec, 1)
            assert 1.0 <= delay <= 1.25

    def test_seedless_spec_still_deterministic(self):
        policy = RetryPolicy(backoff_s=0.25, jitter=0.5)
        spec = ExperimentSpec(circuit="c17", pth=0.9)  # seed=None
        assert retry_delay_s(policy, spec, 1) == retry_delay_s(policy, spec, 1)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_mult"):
            RetryPolicy(backoff_mult=0.5)
        with pytest.raises(ValueError, match="timeout_s"):
            FleetPolicy(timeout_s=0.0)
        with pytest.raises(ValueError, match="max_errors"):
            FleetPolicy(max_errors=0)

    def test_fleet_policy_round_trip(self):
        policy = FleetPolicy(
            timeout_s=12.5,
            retry=RetryPolicy(max_retries=4, backoff_s=0.1),
            max_errors=7,
        )
        assert FleetPolicy.from_dict(policy.to_dict()) == policy


class TestChaosSpec:
    def test_round_trip(self):
        spec = ChaosSpec(
            seed=3, kill_cells=("pth=0.9|",), error_prob=0.5, hang_s=2.0
        )
        assert ChaosSpec.from_dict(spec.to_dict()) == spec
        assert ChaosSpec.from_json(spec.to_json()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            ChaosSpec.from_dict({"bogus": 1})

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert ChaosSpec.from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", '{"seed": 5, "kill_cells": ["c17"]}')
        spec = ChaosSpec.from_env()
        assert spec.seed == 5 and spec.kill_cells == ("c17",)
        monkeypatch.setenv("REPRO_CHAOS", "{broken")
        with pytest.raises(ValueError, match="REPRO_CHAOS"):
            ChaosSpec.from_env()

    def test_from_env_malformed_json_is_one_line_config_error(self, monkeypatch):
        # A typo'd REPRO_CHAOS must fail with a single-line configuration
        # error that names the variable, the JSON problem, and the raw
        # value — not a bare json.JSONDecodeError traceback.
        monkeypatch.setenv("REPRO_CHAOS", '{"seed": 5,}')
        with pytest.raises(ChaosConfigError) as exc_info:
            ChaosSpec.from_env()
        message = str(exc_info.value)
        assert "\n" not in message
        assert "REPRO_CHAOS" in message
        assert "not valid JSON" in message
        assert '{"seed": 5,}' in message
        assert exc_info.value.__cause__ is None  # chained traceback suppressed

    def test_from_env_non_dict_payload(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "[1, 2]")
        with pytest.raises(ChaosConfigError, match="JSON object"):
            ChaosSpec.from_env()

    def test_from_env_bad_field_names_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", '{"bogus": 1}')
        with pytest.raises(ChaosConfigError) as exc_info:
            ChaosSpec.from_env()
        message = str(exc_info.value)
        assert "\n" not in message
        assert message.startswith("REPRO_CHAOS")
        assert "unknown keys" in message

    def test_config_error_is_value_error(self):
        # Callers that predate the dedicated type still catch it.
        assert issubclass(ChaosConfigError, ValueError)

    def test_selector_and_attempt_gating(self):
        injector = FaultInjector(ChaosSpec(error_cells=("pth=0.9|",), max_attempt=2))
        cell = "circuit=c17|pth=0.9|seed=3"
        assert injector.should_fire("error", cell, attempt=1)
        assert injector.should_fire("error", cell, attempt=2)
        assert not injector.should_fire("error", cell, attempt=3)
        assert not injector.should_fire("error", "circuit=c17|pth=0.95|seed=3")
        assert not injector.should_fire("kill", cell)

    def test_probabilistic_selection_is_seeded(self):
        spec = ChaosSpec(seed=11, error_prob=0.5)
        a = FaultInjector(spec)
        b = FaultInjector(spec)
        cells = [f"circuit=c17|pth=0.{i}|" for i in range(10, 60)]
        plan_a = [a.should_fire("error", c) for c in cells]
        plan_b = [b.should_fire("error", c) for c in cells]
        assert plan_a == plan_b
        assert any(plan_a) and not all(plan_a)  # p=0.5 over 50 cells
        # A different chaos seed produces a different plan.
        other = [
            FaultInjector(ChaosSpec(seed=12, error_prob=0.5)).should_fire("error", c)
            for c in cells
        ]
        assert plan_a != other

    def test_serial_downgrade(self):
        injector = FaultInjector(ChaosSpec(kill_cells=("c17",)), serial=True)
        with pytest.raises(TransientChaosError, match="serial downgrade"):
            injector.fire("circuit=c17|pth=0.9", attempt=1)
        injector = FaultInjector(ChaosSpec(hang_cells=("c17",)), serial=True)
        with pytest.raises(TransientChaosError, match="serial downgrade"):
            injector.fire("circuit=c17|pth=0.9", attempt=1)


class TestSerialSupervision:
    def test_transient_error_retries_then_succeeds(self):
        (spec,) = _c17_specs(0.9)
        chaos = ChaosSpec(error_cells=("circuit=c17",), max_attempt=2)
        policy = FleetPolicy(retry=RetryPolicy(max_retries=3, backoff_s=0.01))
        result = run_campaign(_campaign([spec]), policy=policy, chaos=chaos)
        (record,) = result.records
        assert record.error is None
        assert record.runtime["attempts"] == 3
        kinds = [h["kind"] for h in record.runtime["retry_history"]]
        assert kinds == ["chaos-transient", "chaos-transient"]
        assert result.fleet["retries"] == 2

    def test_retry_exhaustion_becomes_error_record(self):
        (spec,) = _c17_specs(0.9)
        chaos = ChaosSpec(error_cells=("circuit=c17",), max_attempt=99)
        policy = FleetPolicy(retry=RetryPolicy(max_retries=2, backoff_s=0.01))
        result = run_campaign(_campaign([spec]), policy=policy, chaos=chaos)
        (record,) = result.records
        assert record.error is not None and "chaos transient" in record.error
        assert record.runtime["attempts"] == 3  # 1 + 2 retries
        assert len(record.runtime["retry_history"]) == 3
        # Error records still serialize strictly.
        restored = ExperimentRecord.from_json_line(record.to_json_line())
        assert restored.runtime["retry_history"] == record.runtime["retry_history"]

    def test_retry_history_deterministic_for_fixed_seed(self):
        specs = _c17_specs(0.9, 0.95, seed=11)
        chaos = ChaosSpec(seed=2, error_cells=("pth=0.9|",), max_attempt=2)
        policy = FleetPolicy(retry=RetryPolicy(max_retries=3, backoff_s=0.01))

        def histories():
            result = run_campaign(_campaign(specs), policy=policy, chaos=chaos)
            assert not result.errors
            return {
                r.spec.cell_id(): r.runtime["retry_history"] for r in result.records
            }

        first, second = histories(), histories()
        assert first == second
        chaotic = [h for h in first.values() if h]
        assert chaotic and all(h[0]["delay_s"] > 0 for h in chaotic)

    def test_circuit_breaker_stops_submission_and_finalizes_sink(self, tmp_path):
        bad = [
            ExperimentSpec(circuit=f"/nonexistent/{i}.bench", pth=0.9)
            for i in range(3)
        ]
        campaign = _campaign(bad + _c17_specs(0.9), name="breaker")
        out = tmp_path / "breaker.jsonl"
        result = run_campaign(
            campaign, out=out, policy=FleetPolicy(max_errors=2)
        )
        assert len(result.records) == 2
        assert result.aborted is not None and "circuit breaker" in result.aborted
        # The sink is flushed and strictly parseable despite the abort.
        assert len(load_records(out)) == 2

    def test_breaker_disabled_by_default(self):
        bad = [
            ExperimentSpec(circuit=f"/nonexistent/{i}.bench", pth=0.9)
            for i in range(3)
        ]
        result = run_campaign(_campaign(bad))
        assert len(result.records) == 3
        assert result.aborted is None


class TestPoolChaos:
    """Integration: real worker pools, real SIGKILLs, real wedged workers."""

    def test_worker_kill_mid_campaign_completes_with_parity(self):
        specs = _c17_specs(0.9, 0.92, 0.95, 0.975)
        chaos = ChaosSpec(seed=0, kill_cells=("pth=0.9|",))
        policy = FleetPolicy(retry=RetryPolicy(max_retries=2, backoff_s=0.05))
        result = run_campaign(
            _campaign(specs, "kill"), jobs=2, policy=policy, chaos=chaos
        )
        assert len(result.records) == len(specs)
        assert not result.errors
        assert result.fleet["pool_rebuilds"] >= 1
        assert result.fleet["worker_deaths"] >= 1
        by_id = {r.spec.cell_id(): r for r in result.records}
        killed = by_id[specs[0].cell_id()]
        assert killed.runtime["attempts"] >= 2
        assert killed.runtime["retry_history"][0]["kind"] == "worker-death"
        # Payloads are bit-identical to an undisturbed serial run.
        for spec in specs:
            serial = run_experiment(spec)
            assert serial.payload_dict() == by_id[spec.cell_id()].payload_dict()

    def test_timeout_recycles_pool_and_records_error(self, tmp_path):
        specs = _c17_specs(0.9, 0.92, 0.95)
        chaos = ChaosSpec(hang_cells=("pth=0.95|",), hang_s=60.0, max_attempt=99)
        policy = FleetPolicy(timeout_s=2.0, retry=RetryPolicy(max_retries=0))
        out = tmp_path / "timeout.jsonl"
        result = run_campaign(
            _campaign(specs, "hang"), jobs=2, out=out, policy=policy, chaos=chaos
        )
        assert len(result.records) == len(specs)
        by_id = {r.spec.cell_id(): r for r in result.records}
        hung = by_id[specs[2].cell_id()]
        assert hung.error is not None and "CellTimeout" in hung.error
        assert hung.runtime["worker_recycles"] >= 1
        assert result.fleet["timeouts"] >= 1
        assert result.fleet["pool_rebuilds"] >= 1
        # The healthy cells completed with clean payloads...
        for spec in specs[:2]:
            record = by_id[spec.cell_id()]
            assert record.error is None
            assert run_experiment(spec).payload_dict() == record.payload_dict()
        # ...and the JSONL parses strictly (timeouts never corrupt the sink).
        assert len(load_records(out)) == len(specs)

    def test_degrades_to_serial_after_repeated_pool_collapse(self):
        specs = _c17_specs(0.9, 0.92, 0.95, 0.975)
        # The kill chaos fires on the first three attempts; with only one
        # pool rebuild allowed the supervisor must fall back to in-process
        # execution (where kills downgrade to retryable chaos errors).
        chaos = ChaosSpec(seed=0, kill_cells=("pth=0.9|",), max_attempt=3)
        policy = FleetPolicy(
            retry=RetryPolicy(max_retries=4, backoff_s=0.02), max_pool_rebuilds=1
        )
        result = run_campaign(
            _campaign(specs, "degrade"), jobs=2, policy=policy, chaos=chaos
        )
        assert result.fleet["degraded_to_serial"] is True
        assert result.fleet["pool_rebuilds"] == 2
        assert len(result.records) == len(specs)
        assert not result.errors
        for record in result.records:
            assert run_experiment(record.spec).payload_dict() == record.payload_dict()

    def test_resume_over_chaos_truncated_jsonl(self, tmp_path):
        specs = _c17_specs(0.9, 0.92, 0.95)
        out = tmp_path / "trunc.jsonl"
        chaos = ChaosSpec(truncate_cells=("pth=0.95|",))
        first = run_campaign(_campaign(specs, "trunc"), out=out, chaos=chaos)
        assert len(first.records) == len(specs)
        # The chaos chopped the last record mid-line: it is gone from disk.
        assert len(load_records(out, strict=False)) == len(specs) - 1
        with pytest.raises(ValueError, match="invalid record"):
            load_records(out, strict=True)
        # Resume trims the partial tail, re-runs exactly the corrupted cell,
        # and the healed file parses strictly.
        again = run_campaign(_campaign(specs, "trunc"), out=out, resume=True)
        assert [r.spec.pth for r in again.records] == [0.95]
        assert len(again.skipped) == 2
        restored = load_records(out, strict=True)
        assert {r.spec.cell_id() for r in restored} == {
            s.cell_id() for s in specs
        }
        assert all(r.error is None for r in restored)

    def test_supervised_pool_matches_bare_parallel_semantics(self, tmp_path):
        # No chaos, no faults: the supervised path must behave exactly like
        # the old bare-pool path (one record per cell, streamed JSONL,
        # payload parity with serial).
        specs = _c17_specs(0.9, 0.95) + [
            ExperimentSpec(circuit="c432", pth=0.975, design="counter2", seed=3)
        ]
        out = tmp_path / "clean.jsonl"
        result = run_campaign(_campaign(specs, "clean"), jobs=2, out=out)
        assert len(result.records) == len(specs)
        assert not result.errors
        assert result.fleet["pool_rebuilds"] == 0
        assert result.fleet["retries"] == 0
        for record in load_records(out):
            assert record.runtime["attempts"] == 1
            assert record.runtime["retry_history"] == []
            assert (
                run_experiment(record.spec).payload_dict()
                == record.payload_dict()
            )


class TestResumeDedup:
    def test_done_ids_last_record_wins(self, tmp_path):
        # A cell can appear twice in a resume file (error record from a
        # crashed run, then a clean retry).  Only the *latest* record
        # decides whether the cell re-runs.
        (spec,) = _c17_specs(0.9)
        good = run_experiment(spec)
        bad = ExperimentRecord.failed(spec, "TimeoutError: synthetic")

        out = tmp_path / "err_then_ok.jsonl"
        out.write_text(bad.to_json_line() + "\n" + good.to_json_line() + "\n")
        result = run_campaign(_campaign([spec]), out=out, resume=True)
        assert result.records == [] and result.skipped == [spec.cell_id()]

        out2 = tmp_path / "ok_then_err.jsonl"
        out2.write_text(good.to_json_line() + "\n" + bad.to_json_line() + "\n")
        result2 = run_campaign(_campaign([spec]), out=out2, resume=True)
        assert [r.spec.cell_id() for r in result2.records] == [spec.cell_id()]
        assert result2.skipped == []


class TestSupervisorDirect:
    def test_iter_records_streams_in_order_serially(self):
        specs = _c17_specs(0.9, 0.92, 0.95)
        supervisor = CellSupervisor(specs, jobs=1)
        pths = [r.spec.pth for r in supervisor.iter_records()]
        assert pths == [0.9, 0.92, 0.95]
        assert supervisor.stats.errors == 0
