"""Tests for the MERO-style N-detect logic-testing defense."""

import numpy as np
import pytest

from repro.atpg.mero import generate_mero_tests, mero_trigger_exposure
from repro.sim import BitSimulator
from repro.trojan import insert_counter_trojan


class TestGeneration:
    def test_rare_nodes_excited_n_times(self, rare_node_circuit):
        mero = generate_mero_tests(
            rare_node_circuit, rare_threshold=0.95, n_target=3, pool_size=8192
        )
        # 'rare' needs all 8 inputs high: P = 2^-8, pool of 8192 has ~32 hits.
        assert mero.excitations.get("rare", 0) >= 3
        assert mero.satisfied()

    def test_counts_verified_by_simulation(self, rare_node_circuit):
        mero = generate_mero_tests(
            rare_node_circuit, rare_threshold=0.95, n_target=2, pool_size=8192
        )
        values = BitSimulator(rare_node_circuit).run_full(mero.patterns)
        for net, p_one in mero.rare_node_list:
            if net in mero.unreached:
                continue
            rare_value = 1 if p_one < 0.5 else 0
            assert int((values[net] == rare_value).sum()) == mero.excitations[net]

    def test_compact_relative_to_pool(self, c432_circuit):
        mero = generate_mero_tests(c432_circuit, 0.95, n_target=2, pool_size=2048)
        assert 0 < mero.n_patterns < 200

    def test_no_rare_nodes_empty_set(self, c17_circuit):
        mero = generate_mero_tests(c17_circuit, rare_threshold=0.999)
        assert mero.n_patterns == 0
        assert mero.satisfied()

    def test_unreachable_nodes_reported(self, tiny_and_circuit):
        from repro.netlist import GateType

        # A contradiction net: AND(a, NOT(a)) can never be 1.
        tiny_and_circuit.add_gate("na", GateType.NOT, ("a",))
        tiny_and_circuit.add_gate("never", GateType.AND, ("a", "na"))
        tiny_and_circuit.set_output("never")
        mero = generate_mero_tests(
            tiny_and_circuit, rare_threshold=0.7, pool_size=512
        )
        assert "never" in mero.unreached

    def test_max_kept_cap(self, c432_circuit):
        mero = generate_mero_tests(
            c432_circuit, 0.95, n_target=10, pool_size=2048, max_kept=5
        )
        assert mero.n_patterns <= 5

    def test_deterministic(self, c432_circuit):
        a = generate_mero_tests(c432_circuit, 0.95, seed=3)
        b = generate_mero_tests(c432_circuit, 0.95, seed=3)
        assert (a.patterns == b.patterns).all()


class TestTriggerExposure:
    def test_mero_pumps_a_small_counter(self, rare_node_circuit):
        """A 1-bit counter clocked by the rare node fires under MERO vectors
        (which excite 'rare' repeatedly) even though random testing would not."""
        infected = rare_node_circuit.copy("infected")
        inst = insert_counter_trojan(infected, "y", "rare", n_bits=1)
        mero = generate_mero_tests(
            rare_node_circuit, rare_threshold=0.95, n_target=4, pool_size=8192
        )
        exposure = mero_trigger_exposure(
            infected, inst.clock_source, inst.trigger_net, mero, shuffles=8
        )
        assert exposure > 0.5

    def test_wide_counter_resists_mero(self, rare_node_circuit):
        """The attacker's counter-width lever: a 4-bit counter needs 15 rare
        edges, more than the compact MERO set delivers."""
        infected = rare_node_circuit.copy("infected")
        inst = insert_counter_trojan(infected, "y", "rare", n_bits=4)
        mero = generate_mero_tests(
            rare_node_circuit, rare_threshold=0.95, n_target=2, pool_size=8192
        )
        exposure = mero_trigger_exposure(
            infected, inst.clock_source, inst.trigger_net, mero, shuffles=8
        )
        assert exposure < 0.5

    def test_empty_set_zero_exposure(self, c17_circuit):
        infected = c17_circuit.copy()
        inst = insert_counter_trojan(infected, "N22", "N10", n_bits=2)
        mero = generate_mero_tests(c17_circuit, rare_threshold=0.999)
        assert mero_trigger_exposure(
            infected, inst.clock_source, inst.trigger_net, mero
        ) == 0.0
