"""Unit tests for fault simulation, validated against a brute-force oracle."""

import numpy as np
import pytest

from repro.atpg import FaultSimulator, StuckAtFault, fault_coverage, full_fault_list
from repro.netlist import Circuit, GateType, tie_net_to_constant
from repro.sim import BitSimulator, exhaustive_patterns


def brute_force_detects(circuit, pattern, fault):
    """Oracle: simulate the faulty circuit built by tying the net."""
    faulty = circuit.copy("faulty")
    if faulty.gate(fault.net).is_input:
        # Model a stuck input by inserting a tie and rewiring readers.
        faulty.add_gate("__stuck", GateType.TIE1 if fault.value else GateType.TIE0, ())
        for reader in list(faulty.fanout(fault.net)):
            faulty.rewire_input(reader, fault.net, "__stuck")
        if fault.net in faulty.outputs:
            faulty.unset_output(fault.net)
            faulty.set_output("__stuck")
    else:
        tie_net_to_constant(faulty, fault.net, fault.value)
    good = BitSimulator(circuit).run(np.atleast_2d(pattern))
    col = {name: i for i, name in enumerate(faulty.outputs)}
    bad_raw = BitSimulator(faulty).run(np.atleast_2d(pattern))
    order = [col[o] if o in col else col["__stuck"] for o in circuit.outputs]
    bad = bad_raw[:, order]
    return bool((good != bad).any())


class TestAgainstBruteForce:
    def test_c17_exhaustive_agreement(self, c17_circuit):
        faults = full_fault_list(c17_circuit)
        pats = exhaustive_patterns(5)
        sim = FaultSimulator(c17_circuit)
        outcome = sim.run(pats, faults, drop_detected=False)
        for fault in faults:
            expected = any(
                brute_force_detects(c17_circuit, pats[k], fault)
                for k in range(pats.shape[0])
            )
            assert (fault in outcome.detected) == expected, fault

    def test_first_detecting_pattern_index(self, c17_circuit):
        faults = [StuckAtFault("N22", 1)]
        pats = exhaustive_patterns(5)
        sim = FaultSimulator(c17_circuit)
        outcome = sim.run(pats, faults)
        idx = outcome.detected[faults[0]]
        assert brute_force_detects(c17_circuit, pats[idx], faults[0])
        for k in range(idx):
            assert not brute_force_detects(c17_circuit, pats[k], faults[0])


class TestFaultDropping:
    def test_dropping_stops_resimulation(self, c17_circuit):
        faults = full_fault_list(c17_circuit)
        pats = exhaustive_patterns(5)
        sim = FaultSimulator(c17_circuit)
        dropped = sim.run(pats, faults, drop_detected=True)
        kept = sim.run(pats, faults, drop_detected=False)
        assert set(dropped.detected) == set(kept.detected)

    def test_coverage_metric(self, c17_circuit):
        pats = exhaustive_patterns(5)
        cov = fault_coverage(c17_circuit, pats, full_fault_list(c17_circuit))
        assert cov == 1.0  # c17 is fully testable

    def test_zero_patterns(self, c17_circuit):
        sim = FaultSimulator(c17_circuit)
        outcome = sim.run(
            np.zeros((0, 5), dtype=np.uint8), full_fault_list(c17_circuit)
        )
        assert not outcome.detected
        assert outcome.coverage == 0.0


class TestConeRestriction:
    def test_fault_outside_output_cone_never_detected(self):
        c = Circuit("deadend")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("live", GateType.NOT, ("a",))
        c.add_gate("dead", GateType.AND, ("a", "b"))
        c.set_output("live")
        sim = FaultSimulator(c)
        outcome = sim.run(exhaustive_patterns(2), [StuckAtFault("dead", 0)])
        assert not outcome.detected

    def test_multiword_blocks(self, c432_circuit, rng):
        """Detection results identical whether patterns arrive in one call
        or split across block boundaries."""
        faults = full_fault_list(c432_circuit)[:60]
        pats = (rng.random((130, 32)) < 0.5).astype(np.uint8)
        sim = FaultSimulator(c432_circuit)
        whole = set(sim.run(pats, faults, drop_detected=False).detected)
        first = set(sim.run(pats[:64], faults, drop_detected=False).detected)
        second = set(sim.run(pats[64:], faults, drop_detected=False).detected)
        assert whole == first | second
