"""Unit tests for the full ATPG flow (the defender model)."""

import numpy as np
import pytest

from repro.atpg import (
    AtpgConfig,
    FaultSimulator,
    collapse_faults,
    generate_test_set,
    uncovered_faults,
)
from repro.atpg.testability import compute_testability
from repro.netlist import Circuit, GateType


class TestFlowOnC17:
    def test_full_coverage(self, c17_circuit):
        ts = generate_test_set(c17_circuit)
        assert ts.coverage == 1.0
        assert not ts.aborted
        assert not ts.untestable
        assert ts.n_patterns >= 1

    def test_coverage_claim_verified_by_simulation(self, c17_circuit):
        ts = generate_test_set(c17_circuit)
        sim = FaultSimulator(c17_circuit)
        outcome = sim.run(ts.patterns, collapse_faults(c17_circuit))
        assert len(outcome.detected) == ts.detected_faults

    def test_compaction_never_loses_coverage(self, c17_circuit):
        with_c = generate_test_set(c17_circuit, AtpgConfig(compaction=True))
        without = generate_test_set(c17_circuit, AtpgConfig(compaction=False))
        assert with_c.detected_faults == without.detected_faults
        assert with_c.n_patterns <= without.n_patterns

    def test_deterministic_given_seed(self, c17_circuit):
        a = generate_test_set(c17_circuit, AtpgConfig(seed=5))
        b = generate_test_set(c17_circuit, AtpgConfig(seed=5))
        assert (a.patterns == b.patterns).all()


class TestBudgets:
    def test_coverage_target_stops_early(self, c432_circuit):
        full = generate_test_set(c432_circuit, AtpgConfig(target_coverage=1.0,
                                                          backtrack_limit=20))
        capped = generate_test_set(c432_circuit, AtpgConfig(target_coverage=0.9,
                                                            backtrack_limit=20))
        assert capped.coverage <= full.coverage
        assert len(capped.not_attempted) >= len(full.not_attempted)

    def test_pattern_budget_truncates(self, c432_circuit):
        capped = generate_test_set(
            c432_circuit, AtpgConfig(max_patterns=10, backtrack_limit=20)
        )
        assert capped.n_patterns <= 10

    def test_testability_ordering_leaves_hard_faults(self, rare_node_circuit):
        """With SCOAP ordering and a tight coverage target, the rare-node
        faults (hardest) are exactly the unattempted ones."""
        ts = generate_test_set(
            rare_node_circuit,
            AtpgConfig(target_coverage=0.80, random_blocks=1, block_size=16),
        )
        hard = uncovered_faults(ts, collapse_faults(rare_node_circuit))
        measures = compute_testability(rare_node_circuit)
        if hard:
            easiest_uncovered = min(measures.fault_difficulty(f) for f in hard)
            covered = [f for f in collapse_faults(rare_node_circuit) if ts.covers(f)]
            median_covered = sorted(
                measures.fault_difficulty(f) for f in covered
            )[len(covered) // 2]
            assert easiest_uncovered >= median_covered


class TestUncoveredFaults:
    def test_uncovered_subset(self, c432_circuit):
        ts = generate_test_set(
            c432_circuit, AtpgConfig(target_coverage=0.9, backtrack_limit=10)
        )
        faults = collapse_faults(c432_circuit)
        unc = uncovered_faults(ts, faults)
        assert all(f not in ts.covered for f in unc)
        assert len(unc) + ts.detected_faults == len(faults)


class TestScoap:
    def test_primary_input_costs(self, c17_circuit):
        t = compute_testability(c17_circuit)
        assert t.cc0["N1"] == 1
        assert t.cc1["N1"] == 1

    def test_nand_controllability(self, c17_circuit):
        t = compute_testability(c17_circuit)
        # N10 = NAND(N1, N3): CC0 = CC1(N1)+CC1(N3)+1 = 3, CC1 = min CC0 + 1 = 2.
        assert t.cc0["N10"] == 3
        assert t.cc1["N10"] == 2

    def test_output_observability_zero(self, c17_circuit):
        t = compute_testability(c17_circuit)
        assert t.co["N22"] == 0
        assert t.co["N23"] == 0

    def test_deeper_nets_harder(self, rare_node_circuit):
        t = compute_testability(rare_node_circuit)
        # Setting the 8-wide AND to 1 costs all eight inputs.
        assert t.cc1["rare"] > t.cc1["r1"] > t.cc1["a0"]

    def test_tie_cells(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("one", GateType.TIE1, ())
        c.add_gate("out", GateType.AND, ("a", "one"))
        c.set_output("out")
        t = compute_testability(c)
        assert t.cc1["one"] == 0
        assert t.cc0["one"] >= 10**9  # unreachable

    def test_fault_difficulty_combines_both(self, rare_node_circuit):
        t = compute_testability(rare_node_circuit)
        from repro.atpg import StuckAtFault

        hard = t.fault_difficulty(StuckAtFault("rare", 0))  # excite to 1: hard
        easy = t.fault_difficulty(StuckAtFault("rare", 1))  # excite to 0: easy
        assert hard > easy

    def test_xor_controllability(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        c.add_gate("x", GateType.XOR, ("a", "b"))
        c.set_output("x")
        t = compute_testability(c)
        assert t.cc0["x"] == 3  # both-same: min(1+1, 1+1) + 1
        assert t.cc1["x"] == 3

    def test_mux_observability(self):
        c = Circuit()
        c.add_input("d0")
        c.add_input("d1")
        c.add_input("s")
        c.add_gate("m", GateType.MUX, ("d0", "d1", "s"))
        c.set_output("m")
        t = compute_testability(c)
        # d0 observable when s=0: CO = 0 + CC0(s) + 1 = 2.
        assert t.co["d0"] == 2
        assert t.co["d1"] == 2
        assert t.co["s"] == 3  # data must differ: min cross cost 2, +1
