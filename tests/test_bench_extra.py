"""Tests for the extension benchmarks (c1355-class, c6288-class)."""

import numpy as np
import pytest

from repro.bench import c499_like, c1355_like, c6288_like
from repro.netlist import GateType, assert_valid
from repro.sim import BitSimulator, compare_on_patterns


class TestC1355:
    def test_structure(self):
        c = c1355_like()
        assert_valid(c)
        assert len(c.inputs) == 41
        assert len(c.outputs) == 32
        # NAND-dominated, like the historical c1355.
        stats = c.stats()
        assert stats.get("NAND", 0) > stats.get("XOR", 0)
        assert 400 <= c.num_logic_gates <= 800  # real: 546

    def test_equivalent_to_c499(self, rng):
        """The defining property of the historical pair."""
        pats = (rng.random((512, 41)) < 0.5).astype(np.uint8)
        assert compare_on_patterns(c499_like(), c1355_like(), pats).equivalent

    def test_corrects_single_errors(self, rng):
        from repro.bench.iscas_like import _c499_signatures

        c = c1355_like()
        idx = {name: i for i, name in enumerate(c.inputs)}
        sigs = _c499_signatures()
        data = (rng.random(32) < 0.5).astype(np.uint8)
        checks = np.zeros(8, dtype=np.uint8)
        for j in range(8):
            for i in range(32):
                if (sigs[i] >> j) & 1:
                    checks[j] ^= data[i]
        vec = np.zeros((1, 41), dtype=np.uint8)
        for i in range(32):
            vec[0, idx[f"D{i}"]] = data[i]
        vec[0, idx["D9"]] ^= 1  # inject error
        for j in range(8):
            vec[0, idx[f"C{j}"]] = checks[j]
        vec[0, idx["EN"]] = 1
        out = BitSimulator(c).run(vec)[0]
        out_idx = {name: i for i, name in enumerate(c.outputs)}
        decoded = np.array([out[out_idx[f"O{i}"]] for i in range(32)], np.uint8)
        assert (decoded == data).all()


class TestC6288:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_multiplies(self, width, rng):
        c = c6288_like(width)
        assert_valid(c)
        pats = (rng.random((128, 2 * width)) < 0.5).astype(np.uint8)
        out = BitSimulator(c).run(pats)
        weights_in = 2 ** np.arange(width, dtype=np.int64)
        weights_out = 2 ** np.arange(2 * width, dtype=np.int64)
        a = pats[:, :width].astype(np.int64) @ weights_in
        b = pats[:, width:].astype(np.int64) @ weights_in
        p = out.astype(np.int64) @ weights_out
        assert (p == a * b).all()

    def test_exhaustive_4x4(self):
        from repro.sim import exhaustive_patterns

        c = c6288_like(4)
        pats = exhaustive_patterns(8)
        out = BitSimulator(c).run(pats)
        w4 = 2 ** np.arange(4, dtype=np.int64)
        w8 = 2 ** np.arange(8, dtype=np.int64)
        a = pats[:, :4].astype(np.int64) @ w4
        b = pats[:, 4:].astype(np.int64) @ w4
        assert (out.astype(np.int64) @ w8 == a * b).all()

    def test_full_size_matches_historical_class(self):
        c = c6288_like()
        assert len(c.inputs) == 32
        assert len(c.outputs) == 32
        assert 2000 <= c.num_logic_gates <= 3500  # real: 2406

    def test_width_validation(self):
        with pytest.raises(ValueError):
            c6288_like(1)
