"""Unit tests for netlist transforms, with functional-preservation checks."""

import numpy as np
import pytest

from repro.netlist import (
    Circuit,
    GateType,
    collapse_buffers,
    collapse_inverter_pairs,
    insert_mux_on_net,
    propagate_constants,
    strip_dead_logic,
    tie_net_to_constant,
)
from repro.sim import compare_exhaustive, exhaustive_patterns, simulate


class TestTieNetToConstant:
    def test_tie_to_one(self, tiny_and_circuit):
        tie_net_to_constant(tiny_and_circuit, "out", 1)
        assert tiny_and_circuit.gate("out").gate_type is GateType.TIE1

    def test_tie_to_zero(self, tiny_and_circuit):
        tie_net_to_constant(tiny_and_circuit, "out", 0)
        out = simulate(tiny_and_circuit, exhaustive_patterns(2))
        assert not out.any()

    def test_invalid_constant_rejected(self, tiny_and_circuit):
        with pytest.raises(ValueError):
            tie_net_to_constant(tiny_and_circuit, "out", 2)


class TestStripDeadLogic:
    def test_strips_unreachable_cone(self, rare_node_circuit):
        tie_net_to_constant(rare_node_circuit, "rare", 0)
        removed = strip_dead_logic(rare_node_circuit)
        # r1 and r2 fed only the tied node; both must go.
        assert set(removed) == {"r1", "r2"}
        assert not rare_node_circuit.has_net("r1")

    def test_keeps_live_logic(self, c17_circuit):
        assert strip_dead_logic(c17_circuit) == []

    def test_protect_list(self, rare_node_circuit):
        tie_net_to_constant(rare_node_circuit, "rare", 0)
        removed = strip_dead_logic(rare_node_circuit, protect=["r1"])
        assert "r1" not in removed
        assert "r2" in removed

    def test_never_removes_inputs(self, rare_node_circuit):
        rare_node_circuit.unset_output("z")
        strip_dead_logic(rare_node_circuit)
        assert rare_node_circuit.has_net("b")  # input b only fed z


class TestPropagateConstants:
    def _folded(self, circuit):
        propagate_constants(circuit)
        return circuit

    def test_and_with_zero_folds_to_tie0(self, tiny_and_circuit):
        tie = tiny_and_circuit.add_gate("zero", GateType.TIE0, ())
        tiny_and_circuit.replace_gate("out", GateType.AND, ("a", "zero"))
        self._folded(tiny_and_circuit)
        assert tiny_and_circuit.gate("out").gate_type is GateType.TIE0

    def test_and_with_one_drops_input(self, tiny_and_circuit):
        tiny_and_circuit.add_gate("one", GateType.TIE1, ())
        tiny_and_circuit.replace_gate("out", GateType.AND, ("a", "b", "one"))
        self._folded(tiny_and_circuit)
        gate = tiny_and_circuit.gate("out")
        assert gate.gate_type is GateType.AND
        assert set(gate.inputs) == {"a", "b"}

    def test_nand_single_remaining_becomes_not(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("one", GateType.TIE1, ())
        c.add_gate("out", GateType.NAND, ("a", "one"))
        c.set_output("out")
        propagate_constants(c)
        assert c.gate("out").gate_type is GateType.NOT

    def test_xor_parity_absorbs_constants(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("one", GateType.TIE1, ())
        c.add_gate("out", GateType.XOR, ("a", "one"))
        c.set_output("out")
        propagate_constants(c)
        assert c.gate("out").gate_type is GateType.NOT

    def test_mux_constant_select(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        c.add_gate("one", GateType.TIE1, ())
        c.add_gate("out", GateType.MUX, ("a", "b", "one"))
        c.set_output("out")
        propagate_constants(c)
        gate = c.gate("out")
        assert gate.gate_type is GateType.BUFF
        assert gate.inputs == ("b",)

    def test_mux_constant_data_becomes_select_function(self):
        c = Circuit()
        c.add_input("s")
        c.add_gate("zero", GateType.TIE0, ())
        c.add_gate("one", GateType.TIE1, ())
        c.add_gate("out", GateType.MUX, ("one", "zero", "s"))
        c.set_output("out")
        propagate_constants(c)
        assert c.gate("out").gate_type is GateType.NOT

    def test_chain_folds_transitively(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("zero", GateType.TIE0, ())
        c.add_gate("m", GateType.OR, ("zero", "zero"))
        c.add_gate("out", GateType.AND, ("a", "m"))
        c.set_output("out")
        propagate_constants(c)
        assert c.gate("out").gate_type is GateType.TIE0

    def test_fold_preserves_function_on_c17_with_tie(self, c17_circuit):
        # Tie an internal net and check folding agrees with the tied circuit.
        tied = c17_circuit.copy("tied")
        tie_net_to_constant(tied, "N10", 1)
        folded = tied.copy("folded")
        propagate_constants(folded)
        assert compare_exhaustive(tied, folded).equivalent


class TestCollapsePasses:
    def test_collapse_buffers(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("buf", GateType.BUFF, ("a",))
        c.add_gate("out", GateType.NOT, ("buf",))
        c.set_output("out")
        assert collapse_buffers(c) == 1
        assert c.gate("out").inputs == ("a",)

    def test_buffer_driving_output_kept(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("buf", GateType.BUFF, ("a",))
        c.set_output("buf")
        assert collapse_buffers(c) == 0

    def test_collapse_inverter_pairs(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("n1", GateType.NOT, ("a",))
        c.add_gate("n2", GateType.NOT, ("n1",))
        c.add_gate("out", GateType.AND, ("n2", "a"))
        c.set_output("out")
        before = simulate(c.copy(), exhaustive_patterns(1))
        assert collapse_inverter_pairs(c) == 1
        after = simulate(c, exhaustive_patterns(1))
        assert (before == after).all()
        assert c.gate("out").inputs == ("a", "a")


class TestInsertMux:
    def test_splice_redirects_readers(self, c17_circuit):
        c17_circuit.add_input("sel")
        c17_circuit.add_input("alt")
        mux = insert_mux_on_net(c17_circuit, "N11", "alt", "sel")
        assert mux in c17_circuit.gate("N16").inputs
        assert mux in c17_circuit.gate("N19").inputs
        assert c17_circuit.gate(mux).inputs == ("N11", "alt", "sel")

    def test_splice_on_primary_output_keeps_pad_name(self, c17_circuit):
        c17_circuit.add_input("sel")
        c17_circuit.add_input("alt")
        mux = insert_mux_on_net(c17_circuit, "N22", "alt", "sel")
        # The chip interface is unchanged: the output is still called N22,
        # now driven by the payload MUX; the old driver became N22_pre.
        assert mux == "N22"
        assert "N22" in c17_circuit.outputs
        assert c17_circuit.gate("N22").gate_type is GateType.MUX
        assert c17_circuit.has_net("N22_pre")

    def test_inverting_payload_does_not_create_cycle(self, c17_circuit):
        c17_circuit.add_input("sel")
        c17_circuit.add_gate("alt", GateType.NOT, ("N11",))
        insert_mux_on_net(c17_circuit, "N11", "alt", "sel")
        c17_circuit.topological_order()  # must not raise

    def test_select_in_fanout_does_not_create_cycle(self, c17_circuit):
        # Select derived from the victim itself: the classic trap.
        c17_circuit.add_input("alt")
        c17_circuit.add_gate("sel", GateType.BUFF, ("N11",))
        insert_mux_on_net(c17_circuit, "N11", "alt", "sel")
        c17_circuit.topological_order()

    def test_functional_transparency_when_select_low(self, c17_circuit):
        golden = c17_circuit.copy("golden")
        c17_circuit.add_input("sel")
        c17_circuit.add_gate("alt", GateType.NOT, ("N11",))
        insert_mux_on_net(c17_circuit, "N11", "alt", "sel")
        pats = exhaustive_patterns(5)
        golden_out = simulate(golden, pats)
        # Same patterns with sel stuck at 0 (appended as the 6th input).
        pats6 = np.concatenate([pats, np.zeros((pats.shape[0], 1), np.uint8)], axis=1)
        infected_out = simulate(c17_circuit, pats6)
        assert (golden_out == infected_out).all()
