"""Differential tests: compiled sequential engine vs. the reference dict engine.

The compiled sequential schedule (DFF outputs as source rows, vectorized
edge-driven state update) must be bit-exact against the retained per-gate
dict engine (``reference_step_packed`` / ``ReferenceSequentialSimulator``)
on Trojan-infected N'/N'' circuits: counter triggers, asynchronous ripple
edges, multi-word sequence batches, and the pure-combinational degenerate
case.  Also covers the structural-fingerprint compile cache and the patched
(tie/strip) compiles that salvage's edit/revert loop relies on.
"""

import numpy as np
import pytest

from repro.atpg import FaultSimulator, full_fault_list
from repro.atpg.faultsim import reference_fault_sim
from repro.bench import c17, c432_like, c880_like
from repro.netlist import Circuit, GateType
from repro.netlist.transform import strip_dead_logic, tie_net_to_constant
from repro.prob.montecarlo import mc_signal_probabilities, mc_toggle_rates
from repro.sim import BitSimulator, compile_circuit
from repro.sim.compiled import COMPILE_STATS, CompiledCircuit
from repro.sim.seqsim import ReferenceSequentialSimulator, SequentialSimulator
from repro.trojan import insert_counter_trojan
from repro.trojan.trigger import monte_carlo_pft


def infected_c17(n_bits=2):
    c = c17()
    instance = insert_counter_trojan(c, "N22", "N10", n_bits=n_bits)
    return c, instance


def infected_c880(n_bits=3):
    c = c880_like()
    instance = insert_counter_trojan(
        c, victim=c.outputs[1], clock_source=c.internal_nets()[40], n_bits=n_bits
    )
    return c, instance


def ripple_counter_circuit(n_bits):
    c = Circuit(f"ripple{n_bits}")
    c.add_input("clk")
    clock = "clk"
    for k in range(n_bits):
        c.add_gate(f"q{k}", GateType.DFF, (f"qn{k}", clock))
        c.add_gate(f"qn{k}", GateType.NOT, (f"q{k}",))
        c.set_output(f"q{k}")
        clock = f"qn{k}"
    return c


def random_sequences(circuit, n_seqs, n_steps, seed=0, p_one=0.5):
    rng = np.random.default_rng(seed)
    return (rng.random((n_seqs, n_steps, len(circuit.inputs))) < p_one).astype(
        np.uint8
    )


def assert_sequences_match(circuit, sequences, watch=None):
    """Compiled and reference engines agree on every watched net, every step."""
    watch = list(watch) if watch is not None else list(circuit.nets)
    got = SequentialSimulator(circuit).run_sequences_nets(sequences, watch)
    want = ReferenceSequentialSimulator(circuit).run_sequences_nets(sequences, watch)
    assert got.shape == want.shape
    assert (got == want).all()


class TestInfectedCircuits:
    @pytest.mark.parametrize("n_bits", [1, 2, 3])
    def test_counter_trigger_all_nets(self, n_bits):
        circuit, instance = infected_c17(n_bits)
        seqs = random_sequences(circuit, 40, 30, seed=n_bits)
        assert_sequences_match(circuit, seqs)

    def test_counter_trigger_fires_identically(self):
        circuit, instance = infected_c17(2)
        # Deterministic edge pump: N10 = NAND(N1, N3) rises on the 0-vector.
        steps = []
        for _ in range(6):
            steps.append([1, 0, 1, 0, 0])
            steps.append([0, 0, 0, 0, 0])
        seqs = np.array(steps, dtype=np.uint8)[np.newaxis]
        watch = [instance.trigger_net, *instance.state_nets]
        got = SequentialSimulator(circuit).run_sequences_nets(seqs, watch)
        want = ReferenceSequentialSimulator(circuit).run_sequences_nets(seqs, watch)
        assert (got == want).all()
        assert got[0, :, 0].any()  # the trigger actually fires in this pump

    def test_infected_c880_outputs_and_trigger(self):
        circuit, instance = infected_c880(3)
        seqs = random_sequences(circuit, 70, 25, seed=7)
        watch = [*circuit.outputs, instance.trigger_net, *instance.state_nets]
        assert_sequences_match(circuit, seqs, watch)


class TestRippleEdges:
    @pytest.mark.parametrize("n_bits", [1, 3, 5])
    def test_async_ripple_chain(self, n_bits):
        circuit = ripple_counter_circuit(n_bits)
        seqs = random_sequences(circuit, 64, 60, seed=n_bits, p_one=0.4)
        assert_sequences_match(circuit, seqs)

    def test_held_high_clock_single_edge(self):
        circuit = ripple_counter_circuit(2)
        seqs = np.array([[[0], [1], [1], [1], [0], [1]]], dtype=np.uint8)
        assert_sequences_match(circuit, seqs)


class TestMultiWordSequences:
    def test_batches_crossing_word_boundaries(self):
        circuit, _ = infected_c17(2)
        for n_seqs in (1, 63, 64, 65, 130):
            seqs = random_sequences(circuit, n_seqs, 12, seed=n_seqs)
            assert_sequences_match(circuit, seqs)

    def test_chunked_extraction_matches_unchunked(self, monkeypatch):
        circuit, instance = infected_c17(2)
        seqs = random_sequences(circuit, 10, 40, seed=3)
        watch = list(circuit.nets)
        want = SequentialSimulator(circuit).run_sequences_nets(seqs, watch)
        monkeypatch.setattr("repro.sim.seqsim._CHUNK_WORD_BUDGET", 4)
        got = SequentialSimulator(circuit).run_sequences_nets(seqs, watch)
        assert (got == want).all()


class TestCombinationalDegenerate:
    def test_pure_combinational_circuit(self, c17_circuit):
        seqs = random_sequences(c17_circuit, 50, 10, seed=9)
        assert_sequences_match(c17_circuit, seqs)

    def test_matches_bitsimulator(self, c17_circuit):
        pats = random_sequences(c17_circuit, 30, 1, seed=5)[:, 0, :]
        seq_out = SequentialSimulator(c17_circuit).run_sequences(pats[np.newaxis])[0]
        comb_out = BitSimulator(c17_circuit).run(pats)
        assert (seq_out == comb_out).all()


class TestConsumerBitIdentity:
    """monte_carlo_pft / mc_* give bit-identical results on either engine."""

    def test_monte_carlo_pft(self, monkeypatch):
        circuit, instance = infected_c17(2)
        got = monte_carlo_pft(
            circuit, instance, n_test_vectors=40, n_sessions=96,
            rng=np.random.default_rng(11),
        )
        monkeypatch.setattr(
            "repro.trojan.trigger.SequentialSimulator", ReferenceSequentialSimulator
        )
        want = monte_carlo_pft(
            circuit, instance, n_test_vectors=40, n_sessions=96,
            rng=np.random.default_rng(11),
        )
        assert got == want

    def test_mc_toggle_rates_sequential(self, monkeypatch):
        circuit, _ = infected_c17(2)
        got = mc_toggle_rates(circuit, n_vectors=256, rng=np.random.default_rng(4))
        monkeypatch.setattr(
            "repro.prob.montecarlo.SequentialSimulator", ReferenceSequentialSimulator
        )
        want = mc_toggle_rates(circuit, n_vectors=256, rng=np.random.default_rng(4))
        assert set(got) == set(want)
        for net in got:
            assert got[net].value == want[net].value, net

    def test_mc_signal_probabilities_sequential(self, monkeypatch):
        circuit, _ = infected_c17(3)
        got = mc_signal_probabilities(
            circuit, n_samples=256, rng=np.random.default_rng(8)
        )
        monkeypatch.setattr(
            "repro.prob.montecarlo.SequentialSimulator", ReferenceSequentialSimulator
        )
        want = mc_signal_probabilities(
            circuit, n_samples=256, rng=np.random.default_rng(8)
        )
        assert set(got) == set(want)
        for net in got:
            assert got[net].value == want[net].value, net

    def test_tracking_batched_unpack(self):
        circuit, instance = infected_c17(2)
        seq = random_sequences(circuit, 1, 35, seed=2)[0]
        watch = [instance.trigger_net, *instance.state_nets, "N22"]
        got = SequentialSimulator(circuit).run_sequence_tracking(seq, watch)
        want = ReferenceSequentialSimulator(circuit).run_sequence_tracking(seq, watch)
        for net in watch:
            assert (got[net] == want[net]).all(), net


class TestStructuralCompileCache:
    def test_fingerprint_stable_across_copies_and_names(self, c17_circuit):
        clone = c17_circuit.copy("other_name")
        assert clone.structural_fingerprint() == c17_circuit.structural_fingerprint()

    def test_fingerprint_changes_on_mutation(self, c17_circuit):
        before = c17_circuit.structural_fingerprint()
        c17_circuit.add_gate("extra", GateType.NOT, ("N22",))
        assert c17_circuit.structural_fingerprint() != before

    def test_edit_revert_round_trip_hits_fingerprint_cache(self, c432_circuit):
        work = c432_circuit.copy("work")
        compile_circuit(work)
        # Edit on a throwaway copy, then "revert" by rebuilding the same
        # structure as another fresh copy: must not recompile in full.
        victim = work.internal_nets()[10]
        trial = work.copy("trial")
        tie_net_to_constant(trial, victim, 0)
        strip_dead_logic(trial)
        compile_circuit(trial)
        before = COMPILE_STATS.snapshot()
        reverted = c432_circuit.copy("reverted")
        compile_circuit(reverted)
        delta = COMPILE_STATS.delta_since(before)
        assert delta["full_compiles"] == 0
        assert delta["patched_compiles"] == 0

    def test_tie_strip_trial_compiles_by_patching(self, c432_circuit):
        work = c432_circuit.copy("work")
        compile_circuit(work)
        trial = work.copy("trial")
        tie_net_to_constant(trial, work.internal_nets()[25], 1)
        stripped = strip_dead_logic(trial)
        before = COMPILE_STATS.snapshot()
        compiled = compile_circuit(trial)
        delta = COMPILE_STATS.delta_since(before)
        assert delta["patched_compiles"] == 1
        assert delta["full_compiles"] == 0
        # Patched form answers for the trial circuit, dead rows included.
        assert compiled.n_nets >= len(trial)

    def test_patched_compile_is_bit_exact(self, c432_circuit):
        rng = np.random.default_rng(21)
        pats = (rng.random((130, len(c432_circuit.inputs))) < 0.5).astype(np.uint8)
        work = c432_circuit.copy("work")
        compile_circuit(work)
        trial = work.copy("trial")
        tie_net_to_constant(trial, work.internal_nets()[25], 1)
        strip_dead_logic(trial)
        patched = compile_circuit(trial)
        got = BitSimulator(trial).run(pats)
        # Fresh full compile of the identical structure (new object, cleared
        # caches) is the ground truth.
        fresh = CompiledCircuit(trial)
        baseline = trial.copy("baseline")
        baseline._compiled_cache = fresh
        want = BitSimulator(baseline).run(pats)
        assert (got == want).all()
        # run_full hides the dead-stripped rows the patched matrix carries.
        full = BitSimulator(trial).run_full(pats)
        assert set(full) == set(trial.nets)

    def test_fault_sim_on_patched_compile(self, c432_circuit):
        work = c432_circuit.copy("work")
        compile_circuit(work)
        trial = work.copy("trial")
        tie_net_to_constant(trial, work.internal_nets()[25], 1)
        strip_dead_logic(trial)
        assert compile_circuit(trial).n_nets > len(trial)  # really patched
        faults = full_fault_list(trial)[::7]
        rng = np.random.default_rng(3)
        pats = (rng.random((96, len(trial.inputs))) < 0.5).astype(np.uint8)
        got = FaultSimulator(trial).run(pats, faults, drop_detected=False)
        want = reference_fault_sim(trial, pats, faults, drop_detected=False)
        assert got.detected == want.detected
        assert got.undetected == want.undetected

    def test_sequential_compile_shared_across_simulators(self):
        circuit, _ = infected_c17(2)
        first = SequentialSimulator(circuit)
        second = SequentialSimulator(circuit.copy("copy"))
        assert first._compiled is second._compiled
