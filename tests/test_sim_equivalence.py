"""Unit tests for functional comparison (the ModelSim substitute)."""

import numpy as np
import pytest

from repro.netlist import GateType, tie_net_to_constant
from repro.sim import (
    compare_exhaustive,
    compare_on_patterns,
    compare_sequential_on_patterns,
    exhaustive_patterns,
    functional_test,
)
from repro.trojan import insert_counter_trojan


class TestCompareOnPatterns:
    def test_identical_circuits_match(self, c17_circuit):
        result = compare_exhaustive(c17_circuit, c17_circuit.copy())
        assert result.equivalent
        assert result.mismatches == 0
        assert bool(result)

    def test_detects_difference_and_witnesses(self, c17_circuit):
        broken = c17_circuit.copy("broken")
        tie_net_to_constant(broken, "N22", 0)
        result = compare_exhaustive(c17_circuit, broken)
        assert not result.equivalent
        assert result.mismatches > 0
        assert all(name == "N22" for _, name in result.witnesses)

    def test_rare_difference_not_seen_on_miss_patterns(self, rare_node_circuit):
        modified = rare_node_circuit.copy("mod")
        tie_net_to_constant(modified, "rare", 0)
        # Patterns that never drive all of a0..a7 high cannot tell the two apart.
        pats = exhaustive_patterns(9)
        missing_rare = pats[~(pats[:, :8].all(axis=1))]
        assert compare_on_patterns(rare_node_circuit, modified, missing_rare).equivalent
        # But the full space distinguishes them.
        assert not compare_exhaustive(rare_node_circuit, modified).equivalent

    def test_interface_mismatch_rejected(self, c17_circuit, tiny_and_circuit):
        with pytest.raises(ValueError):
            compare_on_patterns(c17_circuit, tiny_and_circuit, exhaustive_patterns(5))

    def test_output_order_insensitive(self, c17_circuit):
        shuffled = c17_circuit.copy("shuffled")
        shuffled.unset_output("N22")
        shuffled.unset_output("N23")
        shuffled.set_output("N23")
        shuffled.set_output("N22")
        assert compare_exhaustive(c17_circuit, shuffled).equivalent


class TestSequentialComparison:
    def test_untriggered_trojan_passes(self, c17_circuit, rng):
        golden = c17_circuit.copy("golden")
        infected = c17_circuit.copy("infected")
        # 4-bit counter on a NAND output: needs 15 rising edges to fire.
        insert_counter_trojan(infected, "N22", "N10", n_bits=4)
        pats = (rng.random((10, 5)) < 0.5).astype(np.uint8)
        result = compare_sequential_on_patterns(golden, infected, pats)
        assert result.equivalent

    def test_triggered_trojan_fails(self, c17_circuit):
        golden = c17_circuit.copy("golden")
        infected = c17_circuit.copy("infected")
        insert_counter_trojan(infected, "N22", "N10", n_bits=1)
        # Force rising edges on N10 = NAND(N1, N3): alternate (1,1) -> (0,0).
        steps = []
        for _ in range(4):
            steps.append([1, 1, 1, 1, 1])
            steps.append([0, 0, 0, 0, 0])
        pats = np.array(steps, dtype=np.uint8)
        result = compare_sequential_on_patterns(golden, infected, pats)
        assert not result.equivalent


class TestFunctionalTest:
    def test_all_sets_must_pass(self, c17_circuit, rng):
        golden = c17_circuit.copy()
        candidate = c17_circuit.copy()
        sets = [
            (rng.random((16, 5)) < 0.5).astype(np.uint8),
            exhaustive_patterns(5),
        ]
        assert functional_test(candidate, golden, sets)

    def test_failure_in_any_set_fails(self, c17_circuit):
        broken = c17_circuit.copy("broken")
        tie_net_to_constant(broken, "N16", 1)
        sets = [exhaustive_patterns(5)]
        assert not functional_test(broken, c17_circuit, sets)
