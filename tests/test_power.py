"""Unit tests for the cell library, synthesis-lite, and power/area analysis."""

import pytest

from repro.netlist import Circuit, GateType
from repro.power import (
    CellLibrary,
    LibraryParams,
    MAX_FANIN,
    analyze,
    map_circuit,
    optimize_netlist,
    tech65_library,
)
from repro.sim import compare_exhaustive


class TestCellLibrary:
    def test_reference_nand2_defines_ge(self, library):
        assert library.ge_area_um2 == pytest.approx(
            library.cell(GateType.NAND, 2, 1).area_um2
        )

    def test_drive_strengths_scale_up(self, library):
        x1 = library.cell(GateType.NAND, 2, 1)
        x2 = library.cell(GateType.NAND, 2, 2)
        x4 = library.cell(GateType.NAND, 2, 4)
        assert x1.area_um2 < x2.area_um2 < x4.area_um2
        assert x1.leakage_nw < x2.leakage_nw < x4.leakage_nw
        assert x1.max_load_ff < x2.max_load_ff < x4.max_load_ff

    def test_wider_gates_cost_more(self, library):
        assert (
            library.cell(GateType.AND, 2, 1).area_um2
            < library.cell(GateType.AND, 4, 1).area_um2
        )

    def test_inverter_smaller_than_nand(self, library):
        assert (
            library.cell(GateType.NOT, 1, 1).area_um2
            < library.cell(GateType.NAND, 2, 1).area_um2
        )

    def test_dff_is_expensive(self, library):
        dff = library.cell(GateType.DFF, 2, 1)
        assert dff.area_um2 / library.ge_area_um2 > 3.0

    def test_wide_gate_decomposition(self, library):
        cells = library.cells_for_gate(GateType.AND, 10, 1)
        assert len(cells) > 1
        # Decomposition must cover all 10 leaves.
        total_leaves = sum(c.n_inputs for c in cells) - (len(cells) - 1)
        assert total_leaves == 10
        # Root cell implements the requested function type.
        assert cells[-1].gate_type is GateType.AND

    def test_inverting_wide_gate_keeps_polarity_at_root(self, library):
        cells = library.cells_for_gate(GateType.NAND, 9, 1)
        assert cells[-1].gate_type is GateType.NAND
        assert all(c.gate_type is GateType.AND for c in cells[:-1])

    def test_select_drive_covers_load(self, library):
        assert library.select_drive(GateType.NAND, 2, 5.0) == 1
        assert library.select_drive(GateType.NAND, 2, 20.0) == 2
        assert library.select_drive(GateType.NAND, 2, 40.0) == 4
        # Saturates at the largest drive.
        assert library.select_drive(GateType.NAND, 2, 500.0) == 4

    def test_singleton_shared(self):
        assert tech65_library() is tech65_library()


class TestMapping:
    def test_every_logic_gate_mapped(self, c432_circuit, library):
        mapped = map_circuit(c432_circuit, library)
        assert set(mapped.cells) == {g.name for g in c432_circuit.logic_gates()}

    def test_high_fanout_gets_bigger_drive(self, library):
        c = Circuit("fanout")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("src", GateType.AND, ("a", "b"))
        for k in range(20):
            c.add_gate(f"r{k}", GateType.NOT, ("src",))
            c.set_output(f"r{k}")
        mapped = map_circuit(c, library)
        assert mapped.drive_of["src"] > 1
        assert mapped.drive_of["r0"] == 1


class TestOptimize:
    def test_preserves_function(self, c17_circuit):
        opt = optimize_netlist(c17_circuit)
        assert compare_exhaustive(c17_circuit, opt).equivalent

    def test_folds_tie_fed_logic(self):
        c = Circuit("foldme")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("zero", GateType.TIE0, ())
        c.add_gate("half", GateType.XOR, ("a", "zero"))  # == a
        c.add_gate("out", GateType.AND, ("half", "b"))
        c.set_output("out")
        opt = optimize_netlist(c)
        assert compare_exhaustive(c, opt).equivalent
        # The XOR with a constant must have been folded away or reduced.
        assert opt.num_logic_gates < c.num_logic_gates

    def test_strips_dead_logic(self, rare_node_circuit):
        rare_node_circuit.unset_output("y")  # strands rare/r1/r2
        opt = optimize_netlist(rare_node_circuit)
        assert not opt.has_net("rare")

    def test_idempotent(self, c880_circuit):
        once = optimize_netlist(c880_circuit)
        twice = optimize_netlist(once)
        assert once.num_logic_gates == twice.num_logic_gates


class TestAnalysis:
    def test_report_components_consistent(self, c432_circuit, library):
        report = analyze(c432_circuit, library)
        assert report.total_uw == pytest.approx(report.dynamic_uw + report.leakage_uw)
        assert report.area_ge == pytest.approx(report.area_um2 / library.ge_area_um2)
        assert report.dynamic_uw > 0
        assert report.leakage_uw > 0

    def test_breakdowns_sum_to_totals(self, c432_circuit, library):
        report = analyze(c432_circuit, library)
        assert sum(report.dynamic_by_net.values()) == pytest.approx(report.dynamic_uw)
        assert sum(report.leakage_by_gate.values()) == pytest.approx(report.leakage_uw)
        assert sum(report.area_by_gate.values()) == pytest.approx(report.area_um2)

    def test_adding_a_gate_increases_everything(self, c432_circuit, library):
        before = analyze(c432_circuit, library)
        bigger = c432_circuit.copy("bigger")
        bigger.add_gate("extra", GateType.XOR, (bigger.inputs[0], bigger.inputs[1]))
        after = analyze(bigger, library)
        assert after.area_um2 > before.area_um2
        assert after.leakage_uw > before.leakage_uw
        assert after.dynamic_uw > before.dynamic_uw

    def test_constant_nets_consume_no_dynamic(self, library):
        c = Circuit("quiet")
        c.add_input("a")
        c.add_gate("one", GateType.TIE1, ())
        c.add_gate("buf", GateType.BUFF, ("one",))
        c.add_gate("out", GateType.AND, ("a", "buf"))
        c.set_output("out")
        report = analyze(c, library)
        assert report.dynamic_by_net["one"] == 0.0
        assert report.dynamic_by_net["buf"] == 0.0

    def test_frequency_scales_dynamic_only(self, c432_circuit, library):
        slow = analyze(c432_circuit, library, frequency_hz=50e6)
        fast = analyze(c432_circuit, library, frequency_hz=100e6)
        assert fast.dynamic_uw == pytest.approx(2 * slow.dynamic_uw)
        assert fast.leakage_uw == pytest.approx(slow.leakage_uw)

    def test_delta_and_within(self, c432_circuit, library):
        a = analyze(c432_circuit, library)
        smaller = c432_circuit.copy("smaller")
        victim = next(
            g.name
            for g in smaller.logic_gates()
            if not smaller.fanout(g.name) and g.name not in smaller.outputs
        ) if any(
            not smaller.fanout(g.name) and g.name not in smaller.outputs
            for g in smaller.logic_gates()
        ) else None
        delta = a.delta(a)
        assert delta.total_uw == 0
        assert delta.within(0.01, 0.01)

    def test_calibration_magnitudes(self, c880_circuit, library):
        """The 65nm-class calibration lands in Table I's order of magnitude."""
        report = analyze(optimize_netlist(c880_circuit), library)
        assert 20 < report.total_uw < 300       # paper: 77.2 uW
        assert 150 < report.area_ge < 1200      # paper: 365.4 GE
        assert report.dynamic_uw > report.leakage_uw  # dynamic-dominated node
