"""Unit tests for the stuck-at fault model and collapsing."""

import pytest

from repro.atpg import StuckAtFault, collapse_faults, full_fault_list
from repro.atpg.fault import representative_of
from repro.netlist import Circuit, GateType


class TestStuckAtFault:
    def test_value_validation(self):
        with pytest.raises(ValueError):
            StuckAtFault("n", 2)

    def test_string_form(self):
        assert str(StuckAtFault("N10", 1)) == "N10/sa1"

    def test_hashable_and_ordered(self):
        faults = {StuckAtFault("a", 0), StuckAtFault("a", 0), StuckAtFault("a", 1)}
        assert len(faults) == 2
        assert sorted(faults)[0] == StuckAtFault("a", 0)


class TestFullFaultList:
    def test_two_per_net(self, c17_circuit):
        faults = full_fault_list(c17_circuit)
        assert len(faults) == 2 * len(c17_circuit.nets)

    def test_inputs_optional(self, c17_circuit):
        faults = full_fault_list(c17_circuit, include_inputs=False)
        assert len(faults) == 2 * c17_circuit.num_logic_gates

    def test_constants_excluded(self, tiny_and_circuit):
        tiny_and_circuit.add_gate("one", GateType.TIE1, ())
        tiny_and_circuit.set_output("one")
        faults = full_fault_list(tiny_and_circuit)
        assert all(f.net != "one" for f in faults)


class TestCollapse:
    def test_inverter_chain_collapses(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("n1", GateType.NOT, ("a",))
        c.add_gate("n2", GateType.NOT, ("n1",))
        c.set_output("n2")
        collapsed = collapse_faults(c)
        # 6 raw faults (a, n1, n2 x 2) collapse into 2 classes.
        assert len(collapsed) == 2

    def test_and_gate_collapse_count(self, tiny_and_circuit):
        # AND2: raw faults = 6.  Equivalences: a/sa0 == b/sa0 == out/sa0.
        # Classes: {a0,b0,out0}, {a1}, {b1}, {out1} -> 4.
        collapsed = collapse_faults(tiny_and_circuit)
        assert len(collapsed) == 4

    def test_fanout_stems_not_collapsed(self, c17_circuit):
        # N11 feeds two gates; its faults must stay distinct from gate-input
        # equivalences at either reader.
        collapsed = collapse_faults(c17_circuit)
        nets = {f.net for f in collapsed}
        assert "N11" in nets

    def test_representative_chosen_downstream(self, tiny_and_circuit):
        collapsed = collapse_faults(tiny_and_circuit)
        zero_class_rep = [f for f in collapsed if f.value == 0]
        # The sa0 class representative should be the gate output (level 1),
        # not a primary input.
        assert zero_class_rep == [StuckAtFault("out", 0)]

    def test_representative_of_maps_member_to_class(self, tiny_and_circuit):
        collapsed = collapse_faults(tiny_and_circuit)
        rep = representative_of(tiny_and_circuit, StuckAtFault("a", 0), collapsed)
        assert rep == StuckAtFault("out", 0)

    def test_collapse_preserves_detection_semantics(self, c17_circuit, rng):
        """A test set detects a fault iff it detects its representative."""
        import numpy as np

        from repro.atpg import FaultSimulator

        collapsed = collapse_faults(c17_circuit)
        raw = full_fault_list(c17_circuit)
        pats = (rng.random((20, 5)) < 0.5).astype(np.uint8)
        sim = FaultSimulator(c17_circuit)
        detected_raw = set(sim.run(pats, raw, drop_detected=False).detected)
        for fault in raw:
            rep = representative_of(c17_circuit, fault, collapsed)
            if rep is None:
                continue
            assert (fault in detected_raw) == (rep in detected_raw), (fault, rep)
