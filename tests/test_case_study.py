"""Section III case study: intruding the 8-bit ALU (c880-class) with TrojanZero.

Asserts the qualitative structure of the paper's walkthrough:
* candidate segments of AND/OR gates at P ≈ 0.997+ exist (Fig. 5);
* Algorithm 1 salvages a two-digit number of gates;
* a 3-bit counter HT lands with ≈ zero power/area differential;
* Pft stays below the paper's 1e-4 bound.
"""

import pytest

from repro.bench import c880_like
from repro.core import TrojanZeroPipeline
from repro.netlist import GateType
from repro.prob import rare_nodes


@pytest.fixture(scope="module")
def case_study():
    pipe = TrojanZeroPipeline.default()
    return pipe.run(c880_like(), p_threshold=0.992, counter_bits=3)


class TestCaseStudyC880:
    def test_fig5_style_candidate_segments_exist(self, c880_circuit):
        """AND gates whose output probability is beyond 0.992 (segment A)."""
        rare = rare_nodes(c880_circuit, 0.992)
        and_candidates = [
            net
            for net, _ in rare
            if c880_circuit.gate(net).gate_type in (GateType.AND, GateType.NOR,
                                                    GateType.OR)
        ]
        assert len(and_candidates) >= 4

    def test_candidate_count_double_digit(self, case_study):
        # Paper: |C| = 27 on c880 at Pth = 0.992.
        assert 10 <= case_study.salvage.candidate_count <= 90

    def test_expendable_gates_double_digit(self, case_study):
        # Paper: 11 gates salvaged.
        assert 5 <= case_study.salvage.expendable_gates <= 60

    def test_salvaged_budget_covers_a_3bit_counter(self, case_study, library):
        delta = case_study.salvage.delta
        assert delta.area_ge > 10  # paper: 35.7 GE salvaged
        assert delta.total_uw > 0  # paper: 7 uW salvaged

    def test_inserted_design_is_3bit_counter(self, case_study):
        assert case_study.success
        assert case_study.insertion.design.kind == "counter"
        assert case_study.insertion.design.size == 3

    def test_zero_footprint(self, case_study):
        d = case_study.delta_tz
        n = case_study.power_free
        # Paper: dTZ = 0.8 uW / 2.6 GE on 77.2 uW / 365 GE (~1%).
        assert abs(d.total_uw) <= 0.015 * n.total_uw
        assert abs(d.area_ge) <= 0.015 * n.area_ge

    def test_pft_below_bound(self, case_study):
        assert case_study.pft < 1e-4

    def test_trigger_clock_is_a_rare_host_node(self, case_study):
        instance = case_study.insertion.instance
        from repro.prob import signal_probabilities

        probs = signal_probabilities(case_study.insertion.infected)
        p = probs[instance.clock_source]
        assert max(p, 1 - p) >= 0.95
