"""Tests for the campaign fleet service (`repro.service`).

Covers the four layers end to end: the spec-hash result cache (soundness,
hit marking, refusal of error records), the columnar store (ingest /
compaction / last-record-wins dedup / query + aggregation), the job-queue
server (submit, stream, status, heartbeats, cancel, graceful shutdown, the
HTTP error envelope), and the typed client — including the headline
acceptance property: resubmitting a campaign computes zero cells, and
service records are payload-bit-identical to direct `run_experiment` runs.

The server under test runs in-process (ephemeral port, `jobs=1`, so cells
execute in the server's threads and test-registered circuits resolve); a
pool-mode submission is exercised separately by the CI service smoke.
"""

import json
import math
import threading
import time

import pytest

from repro.api import (
    CIRCUITS,
    CampaignSpec,
    ExperimentRecord,
    ExperimentSpec,
    run_experiment,
)
from repro.service import (
    FleetClient,
    FleetServer,
    FleetServiceError,
    ResultCache,
    ResultStore,
)
from repro.service.store import EVADES_NO, EVADES_UNKNOWN, EVADES_YES


def _spec(pth=0.9, seed=0, circuit="c17", **kw):
    return ExperimentSpec(circuit=circuit, pth=pth, seed=seed, **kw)


def _fake_record(spec, success=True, evades=None, error=None, pft=None):
    """A synthetic record: store/cache tests must not pay pipeline runs."""
    detection = None
    if evades is not None:
        detection = {
            "suite": "paper",
            "evades": evades,
            "trojanzero_rates": {"chen": 0.0 if evades else 1.0},
            "golden_rates": {},
            "additive_rates": {},
        }
    trigger = {"pft_analytic": pft} if pft is not None else None
    return ExperimentRecord(
        spec=spec,
        success=success,
        benchmark=spec.circuit,
        gates=10,
        detection=detection,
        trigger=trigger,
        error=error,
        runtime={"timings_s": {"total": 0.01}},
    )


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_miss_then_hit_marks_runtime(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        assert cache.get(spec) is None
        record = _fake_record(spec)
        assert cache.put(record)
        hit = cache.get(spec)
        assert hit is not None
        assert hit.runtime["cache"] == "hit"
        # The deterministic payload is untouched by the hit marker.
        assert hit.payload_dict() == record.payload_dict()
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_error_records_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        assert not cache.put(ExperimentRecord.failed(spec, "boom"))
        assert cache.get(spec) is None

    def test_first_write_wins(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        assert cache.put(_fake_record(spec, pft=1.0))
        assert not cache.put(_fake_record(spec, pft=2.0))
        assert cache.get(spec).trigger["pft_analytic"] == 1.0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        cache.put(_fake_record(spec))
        cache.path_for(cache.key(spec)).write_text("{torn write")
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1

    def test_key_is_canonical_spec_hash(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        cache.put(_fake_record(spec))
        # A dict round-trip (tuples -> lists, floats re-parsed) still hits.
        same = ExperimentSpec.from_dict(json.loads(spec.to_json()))
        assert cache.get(same) is not None

    def test_len_and_iter(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = [_spec(pth=p) for p in (0.9, 0.92, 0.95)]
        for s in specs:
            cache.put(_fake_record(s))
        assert len(cache) == 3
        assert set(cache.iter_hashes()) == {s.spec_hash() for s in specs}


# ---------------------------------------------------------------------------
# Columnar store
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_ingest_compact_query(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.ingest(_fake_record(_spec(pth=0.9), evades=False, pft=1e-9))
        store.ingest(_fake_record(_spec(pth=0.95), evades=True, pft=1e-7))
        store.ingest(
            _fake_record(_spec(pth=0.9, circuit="c432"), success=False)
        )
        stats = store.compact()
        assert stats.rows == 3 and stats.ingested == 3 and stats.skipped == 0
        assert len(store) == 3
        hit = store.query(circuit="c17", columns=("pth", "evades"))
        assert sorted(hit["pth"].tolist()) == [0.9, 0.95]
        assert set(hit["evades"].tolist()) == {EVADES_NO, EVADES_YES}
        only_c432 = store.query(circuit="c432")
        assert only_c432["evades"].tolist() == [EVADES_UNKNOWN]
        assert not only_c432["success"][0]

    def test_query_filters(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for pth in (0.9, 0.92, 0.95):
            store.ingest(_fake_record(_spec(pth=pth), pft=pth))
        # Membership and callable filters.
        two = store.query(pth=[0.9, 0.95], columns=("pth",))
        assert sorted(two["pth"].tolist()) == [0.9, 0.95]
        high = store.query(pth=lambda p: p > 0.91, columns=("pth",))
        assert sorted(high["pth"].tolist()) == [0.92, 0.95]

    def test_unknown_column_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.ingest(_fake_record(_spec()))
        with pytest.raises(KeyError, match="unknown column"):
            store.query(columns=("bogus",))
        with pytest.raises(KeyError, match="unknown column"):
            store.column("bogus")

    def test_last_record_wins_dedup(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = _spec()
        store.ingest(_fake_record(spec, error="boom", success=False))
        store.ingest(_fake_record(spec, success=True))
        stats = store.compact()
        assert stats.rows == 1 and stats.superseded == 1
        assert store.query()["has_error"].tolist() == [False]
        # ... across compactions too: a later ingest supersedes stored rows.
        store.ingest(_fake_record(spec, success=False))
        stats = store.compact()
        assert stats.rows == 1 and stats.superseded == 1
        assert store.query()["success"].tolist() == [False]

    def test_auto_compaction_on_query(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.ingest(_fake_record(_spec()))
        assert store.pending_ingest
        assert len(store) == 1  # implicit compact
        assert not store.pending_ingest

    def test_corrupt_ingest_line_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.ingest(_fake_record(_spec()))
        with open(store._ingest_path, "a", encoding="utf-8") as f:
            f.write('{"torn": ')  # crash-truncated tail
        stats = store.compact()
        assert stats.rows == 1 and stats.skipped == 1

    def test_detection_rate_aggregate(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.ingest(_fake_record(_spec(pth=0.9), evades=False))
        store.ingest(_fake_record(_spec(pth=0.92), evades=False))
        store.ingest(_fake_record(_spec(pth=0.95), evades=True))
        store.ingest(
            _fake_record(_spec(circuit="c432", pth=0.9), evades=False)
        )
        store.ingest(_fake_record(_spec(circuit="c432", pth=0.95)))  # no verdict
        rates = store.detection_rate(by="circuit")
        assert rates["c17"] == pytest.approx(2 / 3)
        assert rates["c432"] == 1.0  # the verdict-less cell is excluded
        only_c17 = store.detection_rate(by="circuit", circuit="c17")
        assert set(only_c17) == {"c17"}

    def test_nan_for_missing_floats(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.ingest(_fake_record(_spec()))  # no trigger, no deltas
        row = store.query()
        assert math.isnan(row["pft_analytic"][0])
        assert math.isnan(row["delta_tz_total_uw"][0])

    def test_schema_version_guard(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.ingest(_fake_record(_spec()))
        store.compact()
        manifest = json.loads(store._manifest_path.read_text())
        manifest["version"] = 999
        store._manifest_path.write_text(json.dumps(manifest))
        fresh = ResultStore(tmp_path / "store")
        with pytest.raises(ValueError, match="schema version"):
            len(fresh)

    def test_real_record_round_trip(self, tmp_path):
        # One real pipeline record exercises every extractor against the
        # genuine schema (trigger/power dicts present, detection absent).
        record = run_experiment(_spec())
        store = ResultStore(tmp_path / "store")
        store.ingest(record)
        row = store.query()
        assert row["spec_hash"].tolist() == [record.spec.spec_hash()]
        assert row["circuit"].tolist() == ["c17"]
        assert row["gates"][0] == record.gates


# ---------------------------------------------------------------------------
# Server + client
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    srv = FleetServer(
        port=0, data_dir=tmp_path_factory.mktemp("fleet"), jobs=1
    ).start()
    yield srv
    srv.close()


@pytest.fixture(scope="module")
def client(server):
    c = FleetClient(server.url, poll_s=0.05)
    c.wait_ready(timeout_s=10)
    return c


def _campaign(*pths, seed=0, name="svc"):
    return CampaignSpec.of(
        [_spec(pth=p, seed=seed) for p in pths], name=name
    )


class TestFleetService:
    def test_submit_stream_status(self, client):
        job_id = client.submit(_campaign(0.9, 0.95))
        records = client.poll(job_id, timeout_s=120)
        assert len(records) == 2
        assert {r.spec.pth for r in records} == {0.9, 0.95}
        status = client.status(job_id)
        assert status.state == "done"
        assert status.n_records == status.n_cells == 2
        assert status.n_errors == 0
        assert status.finished_at is not None

    def test_resubmit_hits_cache_zero_recompute(self, client, server):
        campaign = _campaign(0.9, 0.95, seed=1, name="cached")
        first = client.poll(client.submit(campaign), timeout_s=120)
        puts_before = server.cache.stats.puts
        job_id = client.submit(campaign)
        second = client.poll(job_id, timeout_s=120)
        status = client.status(job_id)
        # Zero recomputed cells: every record served from the cache, and
        # nothing new was published to it.
        assert status.n_cached == len(campaign) == len(second)
        assert server.cache.stats.puts == puts_before
        assert all(r.runtime.get("cache") == "hit" for r in second)
        by_id = {r.spec.cell_id(): r for r in first}
        for rec in second:
            assert rec.payload_dict() == by_id[rec.spec.cell_id()].payload_dict()

    def test_service_records_match_direct_run(self, client):
        spec = _spec(pth=0.92, seed=3)
        job_id = client.submit(spec)  # single-spec submit wraps to a campaign
        (record,) = client.poll(job_id, timeout_s=120)
        assert record.payload_dict() == run_experiment(spec).payload_dict()

    def test_records_land_in_store(self, client, server):
        spec = _spec(pth=0.93, seed=4)
        client.poll(client.submit(spec), timeout_s=120)
        row = server.store.query(
            spec_hash=spec.spec_hash(), columns=("circuit", "pth")
        )
        assert row["circuit"].tolist() == ["c17"]
        assert row["pth"].tolist() == [0.93]

    def test_error_cells_become_error_records(self, client):
        spec = ExperimentSpec(circuit="/nonexistent/x.bench", pth=0.9)
        job_id = client.submit(spec)
        (record,) = client.poll(job_id, timeout_s=120)
        assert record.error is not None and "unknown circuit" in record.error
        status = client.status(job_id)
        assert status.state == "done" and status.n_errors == 1

    def test_error_records_not_served_from_cache(self, client):
        spec = ExperimentSpec(circuit="/nonexistent/y.bench", pth=0.9)
        client.poll(client.submit(spec), timeout_s=120)
        job_id = client.submit(spec)
        client.poll(job_id, timeout_s=120)
        assert client.status(job_id).n_cached == 0  # errors re-run

    def test_records_pagination(self, client):
        job_id = client.submit(_campaign(0.9, 0.92, 0.95, seed=5))
        client.wait(job_id, timeout_s=120)
        page1 = client.records(job_id, since=0)
        assert page1.done and page1.next == 3
        page2 = client.records(job_id, since=2)
        assert len(page2.records) == 1 and page2.next == 3
        tail = client.records(job_id, since=3)
        assert tail.records == [] and tail.next == 3

    def test_health_and_jobs_listing(self, client):
        health = client.health()
        assert health["ok"] and health["protocol"] == 1
        assert "hits" in health["cache"]
        listed = client.jobs()
        assert any(j.state == "done" for j in listed)

    def test_unknown_job_404(self, client):
        with pytest.raises(FleetServiceError) as err:
            client.status("job-9999")
        assert err.value.status == 404

    def test_bad_submit_400(self, client):
        with pytest.raises(FleetServiceError) as err:
            client._request("POST", "/jobs", {"nonsense": True})
        assert err.value.status == 400
        with pytest.raises(FleetServiceError) as err:
            client._request(
                "POST", "/jobs", {"campaign": {"name": "x", "experiments": []}}
            )
        assert err.value.status == 400

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(FleetServiceError) as err:
            client._request("GET", "/bogus")
        assert err.value.status == 404

    def test_unreachable_server_raises(self):
        bad = FleetClient("http://127.0.0.1:1", timeout_s=0.5)
        with pytest.raises(FleetServiceError, match="cannot reach"):
            bad.health()

    def test_cancel_running_job_at_cell_boundary(self, client, server):
        name = "_svc_slow_cell"
        if name not in CIRCUITS:
            @CIRCUITS.register(name)
            def _slow():
                time.sleep(0.8)
                from repro.bench import c17

                return c17()

        try:
            cells = [
                ExperimentSpec(circuit=name, pth=0.9, seed=s)
                for s in range(30)
            ]
            job_id = client.submit(CampaignSpec.of(cells, name="slow"))
            # Wait for the job to actually start producing, then cancel.
            deadline = time.monotonic() + 60
            while client.status(job_id).n_records == 0:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            client.cancel(job_id)
            status = client.wait(job_id, timeout_s=120)
            assert status.state == "cancelled"
            assert 0 < status.n_records < len(cells)
            # Already-produced records remain streamable after cancel.
            page = client.records(job_id, since=0)
            assert page.done and len(page.records) == status.n_records
        finally:
            CIRCUITS._entries.pop(name, None)

    def test_heartbeat_ticks_during_long_cell(self, client, server):
        name = "_svc_glacial_cell"
        if name not in CIRCUITS:
            @CIRCUITS.register(name)
            def _glacial():
                time.sleep(3.0)
                from repro.bench import c17

                return c17()

        try:
            spec = ExperimentSpec(circuit=name, pth=0.9, seed=0)
            job_id = client.submit(spec)
            deadline = time.monotonic() + 30
            while client.status(job_id).state == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.05)
            time.sleep(2.0)  # deep inside the 3 s cell
            status = client.status(job_id)
            if status.state == "running":
                # The 1 s heartbeat tick must have fired since job start.
                assert status.heartbeat_age_s is not None
                assert status.heartbeat_age_s < 2.0
            client.wait(job_id, timeout_s=120)
        finally:
            CIRCUITS._entries.pop(name, None)


class TestGracefulShutdown:
    def test_close_cancels_queued_jobs_and_compacts(self, tmp_path):
        server = FleetServer(port=0, data_dir=tmp_path, jobs=1).start()
        client = FleetClient(server.url, poll_s=0.05)
        client.wait_ready(timeout_s=10)
        done_id = client.submit(_spec(pth=0.9, seed=9))
        client.wait(done_id, timeout_s=120)
        server.close()
        # Completed work survived shutdown: store compacted, cache populated.
        assert not server.store.pending_ingest
        assert len(server.store) == 1
        # The listener is really down.
        with pytest.raises(FleetServiceError):
            client.health()

    def test_submit_after_close_refused(self, tmp_path):
        server = FleetServer(port=0, data_dir=tmp_path, jobs=1).start()
        server.close()
        with pytest.raises(ValueError, match="shutting down"):
            server.submit({"campaign": _campaign(0.9).to_dict()})
