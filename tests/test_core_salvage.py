"""Unit tests for Algorithm 1 (salvaging power and area)."""

import numpy as np
import pytest

from repro.core import salvage
from repro.sim import compare_on_patterns, exhaustive_patterns
from repro.power import analyze


class TestSalvageOnEngineeredCircuit:
    def _patterns_missing_rare(self):
        """A defender TP set that never drives all of a0..a7 high."""
        pats = exhaustive_patterns(9)
        return [pats[~(pats[:, :8].all(axis=1))][:64]]

    def test_rare_node_removed_when_tests_blind(self, rare_node_circuit, library):
        result = salvage(
            rare_node_circuit, self._patterns_missing_rare(), library, 0.99
        )
        accepted = {r.net for r in result.accepted_removals()}
        assert "rare" in accepted
        # The private fan-in cone was harvested too.
        assert result.expendable_gates >= 3
        assert not result.modified.has_net("r1")

    def test_rare_node_kept_when_tests_see_it(self, rare_node_circuit, library):
        pats = exhaustive_patterns(9)  # includes the exciting vectors
        result = salvage(rare_node_circuit, [pats], library, 0.99)
        rejected = [r for r in result.removals if not r.accepted]
        assert any(r.net == "rare" for r in rejected)
        assert result.modified.has_net("r1")

    def test_modified_circuit_passes_defender_tests(self, rare_node_circuit, library):
        pattern_sets = self._patterns_missing_rare()
        result = salvage(rare_node_circuit, pattern_sets, library, 0.99)
        for pats in pattern_sets:
            assert compare_on_patterns(
                rare_node_circuit, result.modified, pats
            ).equivalent

    def test_budget_is_positive_after_removal(self, rare_node_circuit, library):
        result = salvage(
            rare_node_circuit, self._patterns_missing_rare(), library, 0.99
        )
        delta = result.delta
        assert delta.total_uw > 0
        assert delta.area_ge > 0

    def test_original_untouched(self, rare_node_circuit, library):
        before = rare_node_circuit.num_logic_gates
        salvage(rare_node_circuit, self._patterns_missing_rare(), library, 0.99)
        assert rare_node_circuit.num_logic_gates == before

    def test_max_candidates_cap(self, rare_node_circuit, library):
        result = salvage(
            rare_node_circuit,
            self._patterns_missing_rare(),
            library,
            0.99,
            max_candidates=1,
        )
        assert len(result.removals) <= 1

    def test_tied_polarity_matches_probability(self, rare_node_circuit, library):
        result = salvage(
            rare_node_circuit, self._patterns_missing_rare(), library, 0.99
        )
        for record in result.accepted_removals():
            if record.p_one < 0.5:
                assert record.tied_value == 0
            else:
                assert record.tied_value == 1

    def test_power_before_passthrough(self, rare_node_circuit, library):
        precomputed = analyze(rare_node_circuit, library)
        result = salvage(
            rare_node_circuit,
            self._patterns_missing_rare(),
            library,
            0.99,
            power_before=precomputed,
        )
        assert result.power_before is precomputed


class TestSalvageAccounting:
    def test_expendable_counts_stripped_and_tied(self, rare_node_circuit, library):
        pats = exhaustive_patterns(9)
        blind = [pats[~(pats[:, :8].all(axis=1))][:64]]
        result = salvage(rare_node_circuit, blind, library, 0.99)
        # 'rare' tied (1) + r1, r2 stripped (2) = 3 expendable gates minimum.
        stripped = sum(len(r.stripped_gates) for r in result.accepted_removals())
        tied = len(result.accepted_removals())
        assert result.expendable_gates == stripped + tied

    def test_no_candidates_when_threshold_too_high(self, c17_circuit, library):
        result = salvage(c17_circuit, [exhaustive_patterns(5)], library, 0.999)
        assert result.candidate_count == 0
        assert result.expendable_gates == 0
        assert result.power_after.total_uw == pytest.approx(
            result.power_before.total_uw
        )
