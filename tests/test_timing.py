"""Tests for static timing analysis and the delay side-channel extension."""

import pytest

from repro.netlist import Circuit, GateType
from repro.power import tech65_library
from repro.power.timing import DelayDetector, static_timing
from repro.trojan import insert_counter_trojan
from repro.trojan.payload import splice_inverting_payload


class TestStaticTiming:
    def test_chain_delay_accumulates(self, library):
        c = Circuit("chain")
        c.add_input("a")
        prev = "a"
        for k in range(5):
            c.add_gate(f"n{k}", GateType.NOT, (prev,))
            prev = f"n{k}"
        c.set_output(prev)
        report = static_timing(c, library)
        arrivals = [report.arrival_ps[f"n{k}"] for k in range(5)]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_critical_path_is_a_real_path(self, c432_circuit, library):
        report = static_timing(c432_circuit, library)
        path = report.critical_path
        assert path[-1] in c432_circuit.outputs
        assert c432_circuit.gate(path[0]).is_input or c432_circuit.gate(
            path[0]
        ).is_constant
        for src, dst in zip(path, path[1:]):
            assert src in c432_circuit.gate(dst).inputs

    def test_critical_delay_is_max_output_arrival(self, c432_circuit, library):
        report = static_timing(c432_circuit, library)
        assert report.critical_delay_ps == pytest.approx(
            max(report.output_arrival_ps.values())
        )

    def test_deeper_circuit_slower(self, library, c432_circuit, c880_circuit):
        shallow = static_timing(c432_circuit, library)
        assert shallow.critical_delay_ps > 0

    def test_constants_have_zero_arrival(self, library):
        c = Circuit("tie")
        c.add_input("a")
        c.add_gate("one", GateType.TIE1, ())
        c.add_gate("out", GateType.AND, ("a", "one"))
        c.set_output("out")
        report = static_timing(c, library)
        assert report.arrival_ps["one"] == 0.0

    def test_fanout_load_increases_delay(self, library):
        def chain_with_fanout(n_readers):
            c = Circuit("f")
            c.add_input("a")
            c.add_input("b")
            c.add_gate("src", GateType.AND, ("a", "b"))
            for k in range(n_readers):
                c.add_gate(f"r{k}", GateType.NOT, ("src",))
                c.set_output(f"r{k}")
            return static_timing(c, library).arrival_ps["src"]

        assert chain_with_fanout(8) > chain_with_fanout(1)


class TestDelaySideChannel:
    def test_payload_on_critical_path_is_visible(self, c880_circuit, library):
        """The MUX payload adds serial delay TrojanZero cannot salvage away —
        the delay side channel the paper leaves to future detection work."""
        golden_report = static_timing(c880_circuit, library)
        victim = golden_report.critical_path[len(golden_report.critical_path) // 2]

        infected = c880_circuit.copy("infected")
        infected.add_input("trigger_stub")
        splice_inverting_payload(infected, victim, "trigger_stub")
        infected_report = static_timing(infected, library)
        assert infected_report.critical_delay_ps > golden_report.critical_delay_ps

        detector = DelayDetector()
        detector.calibrate(golden_report, n_chips=40)
        rate = detector.detection_rate(infected_report, n_chips=40)
        assert rate > 0.5  # a critical-path payload is caught by delay testing

    def test_off_critical_payload_may_hide_in_slack(self, c880_circuit, library):
        golden_report = static_timing(c880_circuit, library)
        # Choose the fastest output's driver: maximal slack.
        fast_out = min(
            golden_report.output_arrival_ps, key=golden_report.output_arrival_ps.get
        )
        detector = DelayDetector()
        detector.calibrate(golden_report, n_chips=40)
        # Golden chips themselves should rarely alarm.
        assert detector.detection_rate(golden_report, n_chips=40, seed=91) < 0.2

    def test_uncalibrated_rejected(self, c432_circuit, library):
        import numpy as np

        detector = DelayDetector()
        with pytest.raises(RuntimeError):
            detector.statistic(np.zeros(3))
