"""Gate-level characterization via leakage fitting, after Potkonjak et al. [11].

The defender applies characterization vectors, measures leakage under each,
and fits per-gate-group scaling factors against the *known HT-free netlist
model*: ``m_v = sum_g alpha_g · L_g · f(g, v)``.  On a clean die the fit is
tight (alphas absorb process variation); extra malicious gates leak power the
model cannot attribute, leaving a systematic residual.  The statistic is the
relative residual norm, thresholded on the golden population.

Gates are pooled into groups (type x layout region) so the least-squares
system stays overdetermined with a practical number of measurements — the
same compression the original paper achieves through segmentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..power.analysis import PowerReport
from .variation import ChipMeasurements, PopulationSampler, region_of


@dataclass
class GlcDetector:
    """Leakage gate-level-characterization detector.

    Modes:

    * ``"paper"`` (default) — the abstraction the TrojanZero paper evaluates
      against: GLC estimates total leakage precisely, so the statistic is a
      one-sided z-score on total leakage with a strict threshold (Fig. 3
      places [11] as needing a larger leakage increase than [12]).
    * ``"structural"`` — the full model-fitting variant: fit per-group
      scaling factors against the known HT-free netlist and flag on the
      relative residual norm.  Sees removals as well as additions; used by
      the ablation study (TrojanZero does not evade it).
    """

    mode: str = "paper"
    calibration_quantile: float = 0.9995
    n_region_groups: int = 4
    _design: Optional[np.ndarray] = None  # (n_vectors, n_groups) model matrix
    _total_mean: float = 0.0
    _total_std: float = 1.0
    _threshold: float = 0.0
    _calibrated: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("paper", "structural"):
            raise ValueError(f"unknown mode {self.mode!r}")

    def build_model(self, circuit: Circuit, sampler: PopulationSampler) -> None:
        """Assemble the defender's leakage model from the HT-free netlist.

        Uses the sampler's characterization vectors and nominal leakage so
        the model matches what an honest fab would produce.
        """
        gate_names = sampler._gate_names
        nominal = sampler._leak_nominal
        factors = sampler._state_factors  # (n_vectors, n_gates)

        groups: Dict[Tuple[str, int], int] = {}
        col_of_gate = np.zeros(len(gate_names), dtype=np.int64)
        for idx, name in enumerate(gate_names):
            gate = circuit.gate(name)
            key = (gate.gate_type.value, region_of(name, self.n_region_groups))
            col = groups.setdefault(key, len(groups))
            col_of_gate[idx] = col

        n_vectors = factors.shape[0]
        design = np.zeros((n_vectors, len(groups)))
        weighted = factors * nominal[np.newaxis, :]
        for idx in range(len(gate_names)):
            design[:, col_of_gate[idx]] += weighted[:, idx]
        self._design = design

    def statistic(self, chip: ChipMeasurements) -> float:
        if not self._calibrated:
            raise RuntimeError("calibrate() first")
        if self.mode == "paper":
            return (chip.total_leakage_uw - self._total_mean) / self._total_std
        if self._design is None:
            raise RuntimeError("build_model() first")
        y = chip.leakage_by_vector_uw
        coeffs, *_ = np.linalg.lstsq(self._design, y, rcond=None)
        residual = y - self._design @ coeffs
        return float(np.linalg.norm(residual) / max(np.linalg.norm(y), 1e-12))

    def calibrate(self, golden: Sequence[ChipMeasurements]) -> None:
        if len(golden) < 8:
            raise ValueError("need at least 8 golden chips to calibrate")
        totals = np.array([c.total_leakage_uw for c in golden])
        self._total_mean = float(totals.mean())
        self._total_std = float(max(totals.std(ddof=1), 1e-12))
        self._calibrated = True
        stats = [self.statistic(c) for c in golden]
        self._threshold = float(np.quantile(stats, self.calibration_quantile))

    def flags(self, chip: ChipMeasurements) -> bool:
        return self.statistic(chip) > self._threshold

    def detection_rate(self, chips: Sequence[ChipMeasurements]) -> float:
        return float(np.mean([self.flags(c) for c in chips]))
