"""Process-variation and measurement model for side-channel detection.

Power-based HT detection works against a *population* of fabricated chips:
every die realizes the same netlist with per-gate parameter variation, and
the tester measures power through noisy instruments.  This module samples
such populations from a circuit's :class:`~repro.power.analysis.PowerReport`:

* per-gate leakage multipliers — log-normal (threshold-voltage variation has
  an exponential effect on subthreshold leakage);
* per-net dynamic multipliers — Gaussian with small sigma (capacitance and
  slew variation);
* additive relative measurement noise on every observed quantity.

Leakage is *state-dependent* (a real effect the gate-level-characterization
detector [11] exploits): each gate's leakage is scaled by a deterministic
factor of its input state, so applying different vectors yields linearly
independent leakage measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..netlist.circuit import Circuit
from ..power.analysis import PowerReport
from ..sim.bitsim import pack_patterns, unpack_patterns
from ..sim.compiled import compile_circuit


@dataclass(frozen=True)
class VariationModel:
    """Technology-corner spread used to sample chip populations."""

    #: Sigma of the log-normal per-gate leakage multiplier.
    leakage_sigma: float = 0.10
    #: Sigma of the Gaussian per-net dynamic multiplier.
    dynamic_sigma: float = 0.03
    #: Relative sigma of additive measurement noise.
    measurement_noise: float = 0.003
    #: Number of power regions/ports for regional dynamic measurements [10].
    n_regions: int = 4


@dataclass
class ChipMeasurements:
    """Everything the tester observes from one fabricated die."""

    total_dynamic_uw: float
    total_leakage_uw: float
    #: Regional dynamic power (µW), one entry per power port.
    region_dynamic_uw: np.ndarray
    #: Leakage measured under each characterization vector (µW).
    leakage_by_vector_uw: np.ndarray

    @property
    def total_power_uw(self) -> float:
        return self.total_dynamic_uw + self.total_leakage_uw


def state_leakage_factor(gate_inputs_high: int, n_inputs: int) -> float:
    """Deterministic leakage scaling vs. input state.

    Subthreshold leakage depends on which transistors are off; modelled as
    0.55x (all inputs low) up to 1.45x (all inputs high) of nominal.
    """
    if n_inputs <= 0:
        return 1.0
    return 0.55 + 0.9 * (gate_inputs_high / n_inputs)


def region_of(net: str, n_regions: int) -> int:
    """Deterministic layout-region assignment for a net (stable hash)."""
    acc = 0
    for ch in net:
        acc = (acc * 131 + ord(ch)) & 0x7FFFFFFF
    return acc % n_regions


class PopulationSampler:
    """Samples chip populations for one circuit under one variation model.

    The expensive pieces (nominal power report, state-factor table per
    characterization vector) are computed once; each chip then only needs
    random multipliers.
    """

    def __init__(
        self,
        circuit: Circuit,
        report: PowerReport,
        model: Optional[VariationModel] = None,
        characterization_vectors: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.circuit = circuit
        self.report = report
        self.model = model or VariationModel()
        self._rng = rng if rng is not None else np.random.default_rng(42)

        self._gate_names: List[str] = sorted(report.leakage_by_gate)
        self._leak_nominal = np.array(
            [report.leakage_by_gate[g] for g in self._gate_names]
        )
        self._net_names: List[str] = sorted(report.dynamic_by_net)
        self._dyn_nominal = np.array([report.dynamic_by_net[n] for n in self._net_names])
        self._region_index = np.array(
            [region_of(n, self.model.n_regions) for n in self._net_names]
        )

        if characterization_vectors is None:
            characterization_vectors = (
                self._rng.random((24, len(circuit.inputs))) < 0.5
            ).astype(np.uint8)
        self.characterization_vectors = np.atleast_2d(characterization_vectors)
        self._state_factors = self._compute_state_factors()

    def _compute_state_factors(self) -> np.ndarray:
        """(n_vectors, n_gates) leakage state factors from logic simulation.

        Leakage characterization holds the chip quiescent: flip-flops sit in
        their reset (zero) state.  The compiled sequential schedule models
        exactly that — DFF outputs are source rows that
        :meth:`~repro.sim.compiled.CompiledCircuit.new_matrix` pre-loads with
        zeros — so one settle of the shared compiled form suffices; no
        quiescent copy, no DFF→TIE0 rewrite, no per-sampler recompile.
        """
        n_vectors = self.characterization_vectors.shape[0]
        factors = np.ones((n_vectors, len(self._gate_names)))
        circuit = self.circuit
        # DFF cells keep their nominal leakage (factor 1.0): their state is
        # the reset state regardless of the applied characterization vector.
        gate_inputs = [
            (col, () if circuit.gate(name).is_sequential else circuit.gate(name).inputs)
            for col, name in enumerate(self._gate_names)
        ]
        source_nets = sorted({src for _, ins in gate_inputs for src in ins})
        if not source_nets:
            return factors
        # One settle of the compiled schedule; unpack only the read nets.
        compiled = compile_circuit(circuit)
        matrix = compiled.simulate_packed(
            pack_patterns(self.characterization_vectors)
        )
        rows = np.array([compiled.index[net] for net in source_nets], dtype=np.intp)
        values = unpack_patterns(matrix[rows], n_vectors).astype(np.float64)
        position = {net: j for j, net in enumerate(source_nets)}
        for col, ins in gate_inputs:
            if not ins:
                continue
            columns = [position[src] for src in ins]
            factors[:, col] = 0.55 + 0.9 * (values[:, columns].sum(axis=1) / len(ins))
        return factors

    # ------------------------------------------------------------------
    def sample_chip(self, rng: Optional[np.random.Generator] = None) -> ChipMeasurements:
        """Fabricate one die and measure it."""
        if rng is None:
            rng = self._rng
        m = self.model
        leak_mult = rng.lognormal(mean=0.0, sigma=m.leakage_sigma, size=self._leak_nominal.shape)
        dyn_mult = rng.normal(loc=1.0, scale=m.dynamic_sigma, size=self._dyn_nominal.shape)

        gate_leak = self._leak_nominal * leak_mult
        net_dyn = self._dyn_nominal * np.clip(dyn_mult, 0.5, 1.5)

        total_leak = float(gate_leak.sum())
        total_dyn = float(net_dyn.sum())
        regions = np.zeros(m.n_regions)
        for r in range(m.n_regions):
            regions[r] = net_dyn[self._region_index == r].sum()

        leak_vectors = self._state_factors @ gate_leak

        def noisy(x: np.ndarray) -> np.ndarray:
            return x * (1.0 + rng.normal(0.0, m.measurement_noise, size=np.shape(x)))

        return ChipMeasurements(
            total_dynamic_uw=float(noisy(np.array(total_dyn))),
            total_leakage_uw=float(noisy(np.array(total_leak))),
            region_dynamic_uw=noisy(regions),
            leakage_by_vector_uw=noisy(leak_vectors),
        )

    def sample_population(
        self, n_chips: int, rng: Optional[np.random.Generator] = None
    ) -> List[ChipMeasurements]:
        if rng is None:
            rng = self._rng
        return [self.sample_chip(rng) for _ in range(n_chips)]
