"""Power-based HT detection baselines [10][11][12] and evaluation harness."""

from .chen import ChenDetector
from .evaluate import (
    DetectorBench,
    EvasionReport,
    OverheadPoint,
    calibrate_detectors,
    evasion_experiment,
    minimum_detectable_overhead,
    population_for,
    sweep_additive_overheads,
)
from .potkonjak import GlcDetector
from .rad import RadDetector
from .variation import (
    ChipMeasurements,
    PopulationSampler,
    VariationModel,
    region_of,
    state_leakage_factor,
)

__all__ = [
    "VariationModel",
    "ChipMeasurements",
    "PopulationSampler",
    "region_of",
    "state_leakage_factor",
    "RadDetector",
    "GlcDetector",
    "ChenDetector",
    "DetectorBench",
    "calibrate_detectors",
    "population_for",
    "OverheadPoint",
    "sweep_additive_overheads",
    "minimum_detectable_overhead",
    "EvasionReport",
    "evasion_experiment",
]
