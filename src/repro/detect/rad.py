"""Multi-port dynamic-power outlier detection, after Rad et al. [10].

The defender measures transient (dynamic) power on a population of golden
chips, learns its statistics, and flags a device under test that deviates
beyond what process variation explains.  Fig. 3 of the TrojanZero paper
characterizes this method by its minimum detectable *increase* in dynamic
power (~0.27% on c499).

Two statistic modes:

* ``"paper"`` (default) — the abstraction the TrojanZero paper evaluates
  against: a one-sided z-test on the port-summed (total) dynamic power.  An
  HT is assumed additive, so only an increase raises the alarm.
* ``"structural"`` — a stronger variant using the maximum absolute regional
  z-score.  This sees power *redistribution*, not just totals, and is part
  of this reproduction's ablation: TrojanZero does **not** evade it (see
  EXPERIMENTS.md), supporting the paper's closing call for new detection
  methodologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .variation import ChipMeasurements


@dataclass
class RadDetector:
    """Dynamic-power statistical test (total in ``paper`` mode, regional in
    ``structural`` mode)."""

    mode: str = "paper"
    #: Quantile of the calibration statistic used as the alarm threshold.
    calibration_quantile: float = 0.995
    _total_mean: float = 0.0
    _total_std: float = 1.0
    _region_mean: Optional[np.ndarray] = None
    _region_std: Optional[np.ndarray] = None
    _threshold: float = 0.0
    _calibrated: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("paper", "structural"):
            raise ValueError(f"unknown mode {self.mode!r}")

    def calibrate(self, golden: Sequence[ChipMeasurements]) -> None:
        """Learn dynamic-power statistics from trusted (golden) chips."""
        if len(golden) < 8:
            raise ValueError("need at least 8 golden chips to calibrate")
        totals = np.array([c.total_dynamic_uw for c in golden])
        self._total_mean = float(totals.mean())
        self._total_std = float(max(totals.std(ddof=1), 1e-12))
        regions = np.stack([c.region_dynamic_uw for c in golden])
        self._region_mean = regions.mean(axis=0)
        self._region_std = np.maximum(regions.std(axis=0, ddof=1), 1e-12)
        self._calibrated = True
        stats = [self.statistic(c) for c in golden]
        self._threshold = float(np.quantile(stats, self.calibration_quantile))

    def statistic(self, chip: ChipMeasurements) -> float:
        if not self._calibrated:
            raise RuntimeError("calibrate() first")
        if self.mode == "paper":
            # One-sided: additive HTs increase dynamic power.
            return (chip.total_dynamic_uw - self._total_mean) / self._total_std
        z = (chip.region_dynamic_uw - self._region_mean) / self._region_std
        return float(np.max(np.abs(z)))

    def flags(self, chip: ChipMeasurements) -> bool:
        """True when the chip looks Trojan-infected."""
        return self.statistic(chip) > self._threshold

    def detection_rate(self, chips: Sequence[ChipMeasurements]) -> float:
        return float(np.mean([self.flags(c) for c in chips]))
