"""Detection experiments: Fig. 3 thresholds and the TrojanZero evasion claim.

Two experiment families:

* :func:`minimum_detectable_overhead` — sweep *additive* HT sizes on a
  circuit, fabricate chip populations, and find the smallest power/area
  overhead each detector reliably flags.  This regenerates Fig. 3 (the
  overheads the state-of-the-art methods rely on).
* :func:`evasion_experiment` — fabricate populations of the HT-free,
  additive-HT, and TZ-infected circuits and report each detector's detection
  rate.  TrojanZero's claim is that the additive HT is flagged while the
  TZ-infected population is indistinguishable from golden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..power.analysis import PowerReport, analyze
from ..power.library import CellLibrary
from ..trojan.combinational import insert_additive_burden
from .chen import ChenDetector
from .potkonjak import GlcDetector
from .rad import RadDetector
from .variation import ChipMeasurements, PopulationSampler, VariationModel


@dataclass
class DetectorBench:
    """All three baseline detectors calibrated on one golden population."""

    rad: RadDetector
    glc: GlcDetector
    chen: ChenDetector
    golden_report: PowerReport
    sampler: PopulationSampler

    def rates(self, chips: Sequence[ChipMeasurements]) -> Dict[str, float]:
        return {
            "rad": self.rad.detection_rate(chips),
            "glc": self.glc.detection_rate(chips),
            "chen": self.chen.detection_rate(chips),
        }


def calibrate_detectors(
    circuit: Circuit,
    library: CellLibrary,
    model: Optional[VariationModel] = None,
    n_golden: int = 40,
    seed: int = 11,
    mode: str = "paper",
) -> DetectorBench:
    """Fabricate golden chips and calibrate all three detectors on them.

    ``mode`` selects the detector abstraction: ``"paper"`` for the
    total-increase tests the TrojanZero paper evaluates against (Fig. 3), or
    ``"structural"`` for the stronger redistribution-sensitive variants used
    in the ablation study.
    """
    model = model or VariationModel()
    rng = np.random.default_rng(seed)
    report = analyze(circuit, library)
    sampler = PopulationSampler(circuit, report, model, rng=rng)
    golden = sampler.sample_population(n_golden, rng)

    rad = RadDetector(mode=mode)
    rad.calibrate(golden)
    glc = GlcDetector(mode=mode, n_region_groups=model.n_regions)
    glc.build_model(circuit, sampler)
    glc.calibrate(golden)
    chen = ChenDetector(mode=mode)
    chen.calibrate(golden)
    return DetectorBench(rad=rad, glc=glc, chen=chen, golden_report=report, sampler=sampler)


def population_for(
    circuit: Circuit,
    library: CellLibrary,
    bench: DetectorBench,
    n_chips: int = 40,
    seed: int = 23,
) -> Tuple[List[ChipMeasurements], PowerReport]:
    """Fabricate a test population of ``circuit`` measured like the golden one.

    The same characterization vectors are applied (the defender's procedure
    is fixed), but the dies realize whatever netlist the foundry produced.
    """
    model = bench.sampler.model
    rng = np.random.default_rng(seed)
    report = analyze(circuit, library)
    sampler = PopulationSampler(
        circuit,
        report,
        model,
        characterization_vectors=bench.sampler.characterization_vectors,
        rng=rng,
    )
    return sampler.sample_population(n_chips, rng), report


@dataclass(frozen=True)
class OverheadPoint:
    """One point of the Fig. 3 sweep."""

    n_extra_gates: int
    dynamic_overhead_pct: float
    leakage_overhead_pct: float
    area_overhead_pct: float
    detection_rates: Dict[str, float]


def sweep_additive_overheads(
    circuit: Circuit,
    library: CellLibrary,
    bench: DetectorBench,
    gate_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    n_chips: int = 40,
    seed: int = 29,
) -> List[OverheadPoint]:
    """Detection rate of each baseline vs. additive-HT size."""
    base = bench.golden_report
    points: List[OverheadPoint] = []
    for k in gate_counts:
        infected = circuit.copy(f"{circuit.name}_add{k}")
        insert_additive_burden(infected, k)
        chips, report = population_for(infected, library, bench, n_chips, seed + k)
        points.append(
            OverheadPoint(
                n_extra_gates=k,
                dynamic_overhead_pct=100.0
                * (report.dynamic_uw - base.dynamic_uw)
                / base.dynamic_uw,
                leakage_overhead_pct=100.0
                * (report.leakage_uw - base.leakage_uw)
                / base.leakage_uw,
                area_overhead_pct=100.0 * (report.area_ge - base.area_ge) / base.area_ge,
                detection_rates=bench.rates(chips),
            )
        )
    return points


def minimum_detectable_overhead(
    points: Sequence[OverheadPoint],
    detector: str,
    min_rate: float = 0.5,
) -> Optional[OverheadPoint]:
    """Smallest-overhead sweep point the named detector flags reliably."""
    hits = [p for p in points if p.detection_rates[detector] >= min_rate]
    if not hits:
        return None
    return min(hits, key=lambda p: p.n_extra_gates)


@dataclass
class EvasionReport:
    """Detection rates for golden / additive / TrojanZero populations."""

    golden_rates: Dict[str, float]
    additive_rates: Dict[str, float]
    trojanzero_rates: Dict[str, float]
    additive_overhead_pct: float
    trojanzero_overhead_pct: float

    def trojanzero_evades(self, margin: float = 0.15) -> bool:
        """TZ-infected flagged no more often than golden chips (+margin)."""
        return all(
            self.trojanzero_rates[d] <= self.golden_rates[d] + margin
            for d in self.trojanzero_rates
        )

    def additive_detected(self, min_rate: float = 0.5) -> bool:
        return any(rate >= min_rate for rate in self.additive_rates.values())


def evasion_experiment(
    golden_circuit: Circuit,
    trojanzero_circuit: Circuit,
    library: CellLibrary,
    additive_gates: int = 16,
    model: Optional[VariationModel] = None,
    n_chips: int = 40,
    seed: int = 37,
    mode: str = "paper",
) -> EvasionReport:
    """The paper's headline experiment (Sec. IV): additive HT caught, TZ not."""
    bench = calibrate_detectors(
        golden_circuit, library, model, n_golden=n_chips, seed=seed, mode=mode
    )
    golden_chips, _ = population_for(golden_circuit, library, bench, n_chips, seed + 1)

    additive = golden_circuit.copy(f"{golden_circuit.name}_additive")
    insert_additive_burden(additive, additive_gates)
    additive_chips, additive_report = population_for(
        additive, library, bench, n_chips, seed + 2
    )
    tz_chips, tz_report = population_for(
        trojanzero_circuit, library, bench, n_chips, seed + 3
    )
    base_total = bench.golden_report.total_uw
    return EvasionReport(
        golden_rates=bench.rates(golden_chips),
        additive_rates=bench.rates(additive_chips),
        trojanzero_rates=bench.rates(tz_chips),
        additive_overhead_pct=100.0 * (additive_report.total_uw - base_total) / base_total,
        trojanzero_overhead_pct=100.0 * (tz_report.total_uw - base_total) / base_total,
    )
