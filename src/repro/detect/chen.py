"""Statistical-learning leakage classifier, after Chen et al. [12].

A one-class model over leakage feature vectors: the defender trains on
golden chips only (statistics of the leakage measured under each
characterization vector), and flags outliers.  This captures the essence of
the statistical-learning approach the paper cites: it detects the *increase
in leakage power* an additive HT causes.

Modes:

* ``"paper"`` (default) — the abstraction the TrojanZero paper evaluates
  against: one-sided mean leakage-increase z-score across the feature
  vector.  Additive gates leak everywhere; removals push the score negative
  and TrojanZero's balanced edit keeps it near zero.
* ``"structural"`` — two-sided RMS z-score, which also reacts to leakage
  *redistribution*; used by the ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .variation import ChipMeasurements


def _features(chip: ChipMeasurements) -> np.ndarray:
    return np.concatenate(
        (chip.leakage_by_vector_uw, [chip.total_leakage_uw])
    )


@dataclass
class ChenDetector:
    """One-class Gaussian leakage classifier."""

    mode: str = "paper"
    calibration_quantile: float = 0.995
    _mean: Optional[np.ndarray] = None
    _std: Optional[np.ndarray] = None
    _threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("paper", "structural"):
            raise ValueError(f"unknown mode {self.mode!r}")

    def calibrate(self, golden: Sequence[ChipMeasurements]) -> None:
        if len(golden) < 8:
            raise ValueError("need at least 8 golden chips to calibrate")
        data = np.stack([_features(c) for c in golden])
        self._mean = data.mean(axis=0)
        self._std = np.maximum(data.std(axis=0, ddof=1), 1e-12)
        stats = [self.statistic(c) for c in golden]
        self._threshold = float(np.quantile(stats, self.calibration_quantile))

    def statistic(self, chip: ChipMeasurements) -> float:
        if self._mean is None:
            raise RuntimeError("calibrate() first")
        z = (_features(chip) - self._mean) / self._std
        if self.mode == "paper":
            # Signed mean: broad leakage increase — the additive signature.
            return float(np.mean(z))
        return float(np.sqrt(np.mean(z * z)))

    def flags(self, chip: ChipMeasurements) -> bool:
        return self.statistic(chip) > self._threshold

    def detection_rate(self, chips: Sequence[ChipMeasurements]) -> float:
        return float(np.mean([self.flags(c) for c in chips]))
