"""Seeded fault injection for campaign execution.

The fault-tolerance layer in :mod:`repro.api.fleet` is only trustworthy if
real failures can be produced on demand, deterministically, in tests and CI.
:class:`FaultInjector` drives four fault kinds from a frozen, serializable
:class:`ChaosSpec`:

``kill``
    ``SIGKILL`` the worker process before the cell runs — the parent sees a
    ``BrokenProcessPool`` exactly as with an OOM-killed or segfaulted worker.
``hang``
    Sleep ``hang_s`` seconds before the cell runs — wedges the worker past
    any per-cell timeout.
``error``
    Raise :class:`TransientChaosError` — a retryable in-cell failure.
``truncate``
    Parent-side: after the matching cell's JSONL record is written, chop the
    file mid-line, emulating a crash during the write.  Truncating a
    non-final record makes the partial line merge with the next append; both
    affected cells simply re-run on ``resume`` (strict=False parsing skips
    the garbage line).

Cells are selected either explicitly (``*_cells`` substring selectors
matched against :meth:`ExperimentSpec.cell_id`) or probabilistically
(``*_prob``); the probabilistic draw is seeded per ``(seed, kind, cell)``
so the injection plan is a pure function of the spec — independent of
worker scheduling or completion order.  Faults fire only on attempts
``<= max_attempt`` so a killed cell's retry can succeed (set ``max_attempt``
high to fault every attempt and drive a cell to retry exhaustion).

In *serial* (in-process) execution, ``kill`` and ``hang`` are downgraded to
:class:`TransientChaosError`: a real ``SIGKILL`` would take the campaign
(and the test runner) down with it, and an in-process hang could never be
preempted.

The ``REPRO_CHAOS`` environment variable holds a JSON :class:`ChaosSpec`
and is read by :class:`~repro.api.runner.CampaignRunner` at ``run()`` time,
so CI smoke tests can chaos-test the real CLI without new flags::

    REPRO_CHAOS='{"seed": 0, "kill_cells": ["pth=0.9|"]}' \\
        python -m repro campaign --circuits c17 --pths 0.9,0.95 --jobs 2 ...
"""

from __future__ import annotations

import json
import os
import signal
import time
import zlib
from dataclasses import asdict, dataclass
from typing import Optional, Tuple

import numpy as np

from .spec import _check_known_keys

#: Environment variable holding a JSON-encoded :class:`ChaosSpec`.
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Stable sub-stream index per fault kind for the seeded selection draw.
_KIND_INDEX = {"kill": 0, "hang": 1, "error": 2, "truncate": 3}


class TransientChaosError(Exception):
    """Injected retryable failure (also the serial downgrade of kill/hang)."""


class ChaosConfigError(ValueError):
    """A malformed ``REPRO_CHAOS`` value — a *configuration* mistake.

    Raised before any pool or campaign machinery spins up, and rendered by
    the CLI as a one-line error instead of a traceback: a typo in an env
    var must read like a usage error, not like a crash deep inside pool
    startup."""


def _cell_key(cell_id: str) -> int:
    """Stable 32-bit key for a cell id (seeds must be ints)."""
    return zlib.crc32(cell_id.encode("utf-8"))


@dataclass(frozen=True)
class ChaosSpec:
    """Declarative, seeded fault-injection plan (JSON round-trippable).

    ``*_cells`` are substring selectors matched against the target cell id
    (e.g. ``"pth=0.9|"`` or ``"circuit=c432"``); ``*_prob`` add seeded
    per-cell random selection on top.
    """

    seed: int = 0
    kill_cells: Tuple[str, ...] = ()
    hang_cells: Tuple[str, ...] = ()
    error_cells: Tuple[str, ...] = ()
    truncate_cells: Tuple[str, ...] = ()
    kill_prob: float = 0.0
    hang_prob: float = 0.0
    error_prob: float = 0.0
    #: Seconds a ``hang`` fault sleeps (pick well past the cell timeout; the
    #: sleeping worker is hard-killed on pool recycle, never waited out).
    hang_s: float = 30.0
    #: Faults fire only on attempts ``<= max_attempt``.
    max_attempt: int = 1

    def __post_init__(self) -> None:
        for name in ("kill_prob", "hang_prob", "error_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s}")
        if self.max_attempt < 1:
            raise ValueError(f"max_attempt must be >= 1, got {self.max_attempt}")
        # JSON round-trips lists; selectors are canonically tuples.
        for name in ("kill_cells", "hang_cells", "error_cells", "truncate_cells"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        data = asdict(self)
        for name in ("kill_cells", "hang_cells", "error_cells", "truncate_cells"):
            data[name] = list(data[name])
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        _check_known_keys(cls, data)
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_env(cls, env_var: str = CHAOS_ENV_VAR) -> Optional["ChaosSpec"]:
        """The spec in ``$REPRO_CHAOS``, or ``None`` when unset/empty.

        A malformed value raises :class:`ChaosConfigError` with a single
        self-contained line (what was wrong, and the offending text) —
        ``from None`` so the JSON machinery's internal frames never reach
        the user."""
        raw = os.environ.get(env_var, "").strip()
        if not raw:
            return None
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ChaosConfigError(
                f"{env_var} is not valid JSON ({exc.msg} at column "
                f"{exc.colno}): {raw!r}"
            ) from None
        if not isinstance(data, dict):
            raise ChaosConfigError(
                f"{env_var} must be a JSON object of ChaosSpec fields, "
                f"got {type(data).__name__}: {raw!r}"
            )
        try:
            return cls.from_dict(data)
        except (TypeError, ValueError) as exc:
            raise ChaosConfigError(f"{env_var}: {exc} (in {raw!r})") from None


class FaultInjector:
    """Executes a :class:`ChaosSpec` against campaign cells.

    One injector lives in the supervisor parent (truncation faults) and one
    is rebuilt per worker invocation from the serialized spec (kill / hang /
    error faults); both derive every decision from the spec alone, so the
    plan is identical everywhere.
    """

    def __init__(self, spec: ChaosSpec, serial: bool = False):
        self.spec = spec
        self.serial = serial
        self._truncated = set()

    def should_fire(self, kind: str, cell_id: str, attempt: int = 1) -> bool:
        """Deterministic: does ``kind`` fire for this cell/attempt?"""
        if attempt > self.spec.max_attempt:
            return False
        if any(sel in cell_id for sel in getattr(self.spec, f"{kind}_cells")):
            return True
        prob = getattr(self.spec, f"{kind}_prob", 0.0)
        if prob <= 0.0:
            return False
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [self.spec.seed, _KIND_INDEX[kind], _cell_key(cell_id)]
            )
        )
        return bool(rng.random() < prob)

    def fire(self, cell_id: str, attempt: int) -> None:
        """Execute worker-side faults (kill / hang / error) for this cell.

        Called at the top of the worker entry point, before the cell runs.
        """
        if self.should_fire("kill", cell_id, attempt):
            if self.serial:
                raise TransientChaosError(
                    f"chaos kill (serial downgrade) attempt {attempt}"
                )
            os.kill(os.getpid(), signal.SIGKILL)
        if self.should_fire("hang", cell_id, attempt):
            if self.serial:
                raise TransientChaosError(
                    f"chaos hang (serial downgrade) attempt {attempt}"
                )
            time.sleep(self.spec.hang_s)
        if self.should_fire("error", cell_id, attempt):
            raise TransientChaosError(f"chaos transient error attempt {attempt}")

    def take_truncate(self, cell_id: str) -> bool:
        """True exactly once per matching cell: the caller should chop the
        just-written JSONL record mid-line (crash-during-write emulation)."""
        if cell_id in self._truncated:
            return False
        if not self.should_fire("truncate", cell_id, attempt=1):
            return False
        self._truncated.add(cell_id)
        return True


def truncate_jsonl_tail(path, keep_back: int) -> None:
    """Chop the last ``keep_back`` bytes off a JSONL file (crash emulation).

    Byte-level so it works regardless of the text-mode handle still holding
    the file open in append mode (``O_APPEND`` writes land at the true end
    of file even after an external truncate).
    """
    with open(path, "rb+") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        handle.truncate(max(0, size - keep_back))
