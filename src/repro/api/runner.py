"""Experiment execution: specs in, structured serializable records out.

:func:`run_experiment` evaluates one :class:`~repro.api.spec.ExperimentSpec`
into an :class:`ExperimentRecord` — a JSON-native result carrying the power
triple (N / N' / N''), salvage and zero-footprint deltas, Pft (analytic and
Monte-Carlo), detector verdicts, and timings.  :class:`CampaignRunner`
executes a :class:`~repro.api.spec.CampaignSpec` serially or across a
``ProcessPoolExecutor``, streaming records to a JSONL file as cells finish
and skipping already-recorded cells on ``resume``.

Determinism and parity
----------------------
Everything that lands in :meth:`ExperimentRecord.payload_dict` is a pure
function of the spec: two runs of the same spec — in one process or sharded
across workers — produce bit-identical payloads.  Execution artifacts that
legitimately differ between runs (wall-clock timings, structural
compile-cache counters, worker id) live under :attr:`ExperimentRecord.
runtime` and are excluded from the payload.

This split is machine-enforced: ``repro lint`` flags nondeterministic
expressions (``time.*``, ``os.environ``, ``platform.*``, ...) flowing into
record payload fields (RPR201) and ``runtime``/``traces`` values read back
into them (RPR202) — only the ``runtime=`` sinks accept tainted values.

Cells are dispatched circuit-major, so same-benchmark cells drain through
the pool together and each worker reuses its process-global structural
compile cache of :mod:`repro.sim.compiled` — a worker compiles a given
circuit at most once per campaign instead of cold per cell.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from ..core.pipeline import (
    SEED_DETECT,
    TrojanZeroPipeline,
    TrojanZeroResult,
    derive_seed,
)
from ..detect import EvasionReport
from ..power.analysis import PowerDelta, PowerReport
from .chaos import ChaosSpec, FaultInjector, truncate_jsonl_tail
from .registry import DETECTORS, resolve_circuit, resolve_designs
from .spec import CampaignSpec, ExperimentSpec, FleetPolicy, _check_known_keys

#: Bump when ExperimentRecord's serialized layout changes incompatibly.
RECORD_SCHEMA_VERSION = 1


def _power_dict(report: Optional[PowerReport]) -> Optional[Dict[str, float]]:
    if report is None:
        return None
    return {
        "total_uw": report.total_uw,
        "dynamic_uw": report.dynamic_uw,
        "leakage_uw": report.leakage_uw,
        "area_um2": report.area_um2,
        "area_ge": report.area_ge,
    }


def _delta_dict(delta: Optional[PowerDelta]) -> Optional[Dict[str, float]]:
    if delta is None:
        return None
    return {
        "total_uw": delta.total_uw,
        "dynamic_uw": delta.dynamic_uw,
        "leakage_uw": delta.leakage_uw,
        "area_ge": delta.area_ge,
        "area_um2": delta.area_um2,
    }


@dataclass(frozen=True)
class ExperimentRecord:
    """Fully serializable result of one experiment cell.

    The *payload* (everything except :attr:`runtime`) is deterministic given
    the spec; :attr:`runtime` holds execution artifacts (timings, compile
    cache counters) that may differ between otherwise identical runs.
    """

    spec: ExperimentSpec
    schema: int = RECORD_SCHEMA_VERSION
    benchmark: str = ""
    success: bool = False
    gates: int = 0
    inputs: int = 0
    candidates: int = 0
    expendable: int = 0
    accepted_edits: int = 0
    design: Optional[str] = None
    victim: Optional[str] = None
    #: ``{"free": {...}, "modified": {...}, "infected": {...}|None}`` power/
    #: area characterizations of N, N', N''.
    power: Dict[str, Optional[Dict[str, float]]] = field(default_factory=dict)
    #: Salvaged budget ΔP/ΔA = N − N'.
    delta_salvage: Optional[Dict[str, float]] = None
    #: Zero-footprint differential ΔP(TZ)/ΔA(TZ) = N − N''.
    delta_tz: Optional[Dict[str, float]] = None
    #: Trigger characterization (clock source, p_edge, Pft analytic + MC).
    trigger: Optional[Dict[str, Any]] = None
    #: Detector verdicts when the spec names a detector suite.
    detection: Optional[Dict[str, Any]] = None
    #: Set when the cell raised instead of completing; payload fields above
    #: are then defaults.
    error: Optional[str] = None
    #: Side-channel trace-lab diagnostics (acquisition config, per-population
    #: statistics, timings) when the detector suite is trace-based — like
    #: :attr:`runtime`, excluded from :meth:`payload_dict` (it carries wall
    #: times); the deterministic verdicts live in :attr:`detection`.
    traces: Optional[Dict[str, Any]] = None
    #: Execution artifacts — excluded from :meth:`payload_dict`.
    runtime: Dict[str, Any] = field(default_factory=dict)

    # -- convenience ---------------------------------------------------
    @property
    def pft(self) -> Optional[float]:
        return self.trigger.get("pft_analytic") if self.trigger else None

    @property
    def pft_monte_carlo(self) -> Optional[float]:
        return self.trigger.get("pft_monte_carlo") if self.trigger else None

    def evades(self) -> Optional[bool]:
        return self.detection.get("evades") if self.detection else None

    # -- construction --------------------------------------------------
    @classmethod
    def from_run(
        cls,
        spec: ExperimentSpec,
        result: TrojanZeroResult,
        evasion: Optional[EvasionReport] = None,
        runtime: Optional[Dict[str, Any]] = None,
    ) -> "ExperimentRecord":
        """Flatten a live pipeline result (and optional detection report)
        into the serializable record."""
        trigger = None
        if result.trigger is not None:
            t = result.trigger
            trigger = {
                "clock_source": t.clock_source,
                "p_edge": t.p_edge,
                "counter_bits": t.counter_bits,
                "edges_to_fire": t.edges_to_fire,
                "test_vectors": t.test_vectors,
                "pft_analytic": t.pft_analytic,
                "pft_monte_carlo": t.pft_monte_carlo,
            }
        detection = None
        if evasion is not None:
            detection = {
                "suite": spec.detector,
                "golden_rates": dict(evasion.golden_rates),
                "additive_rates": dict(evasion.additive_rates),
                "trojanzero_rates": dict(evasion.trojanzero_rates),
                "additive_overhead_pct": evasion.additive_overhead_pct,
                "trojanzero_overhead_pct": evasion.trojanzero_overhead_pct,
                "evades": evasion.trojanzero_evades(),
                "additive_detected": evasion.additive_detected(),
            }
        run_stats = dict(runtime or {})
        run_stats["compile_stats"] = dict(result.salvage.compile_stats)
        return cls(
            spec=spec,
            benchmark=result.benchmark,
            success=result.success,
            gates=result.salvage.original.num_logic_gates,
            inputs=len(result.thresholds.circuit.inputs),
            candidates=result.salvage.candidate_count,
            expendable=result.salvage.expendable_gates,
            accepted_edits=len(result.salvage.accepted_removals()),
            design=result.insertion.design.name if result.success else None,
            victim=result.insertion.victim if result.success else None,
            power={
                "free": _power_dict(result.power_free),
                "modified": _power_dict(result.power_modified),
                "infected": _power_dict(result.power_infected),
            },
            delta_salvage=_delta_dict(result.salvage.delta),
            delta_tz=_delta_dict(result.delta_tz),
            trigger=trigger,
            detection=detection,
            traces=getattr(evasion, "trace_diagnostics", None),
            runtime=run_stats,
        )

    @classmethod
    def failed(cls, spec: ExperimentSpec, error: str) -> "ExperimentRecord":
        return cls(spec=spec, error=error)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        data = asdict(self)
        data["spec"] = self.spec.to_dict()
        return data

    def payload_dict(self) -> dict:
        """The deterministic portion of the record (no execution artifacts)."""
        data = self.to_dict()
        data.pop("runtime")
        data.pop("traces")
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentRecord":
        _check_known_keys(cls, data)
        if "spec" not in data:
            raise ValueError("ExperimentRecord: missing required key 'spec'")
        payload = dict(data)
        payload["spec"] = ExperimentSpec.from_dict(payload["spec"])
        return cls(**payload)

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json_line(cls, line: str) -> "ExperimentRecord":
        return cls.from_dict(json.loads(line))


@dataclass
class ExperimentOutcome:
    """In-memory outcome: the record plus the live (non-serializable)
    pipeline result, for callers that need circuits (CLI ``--output``,
    report printing, detection post-mortems)."""

    record: ExperimentRecord
    result: TrojanZeroResult
    evasion: Optional[EvasionReport] = None


def detect_seed_for(seed: Optional[int]) -> int:
    """Detector-suite seed derived from a master experiment seed (legacy
    fixed seed when the spec has none)."""
    return 37 if seed is None else derive_seed(seed, SEED_DETECT)


def execute_experiment(
    spec: ExperimentSpec,
    pipeline: Optional[TrojanZeroPipeline] = None,
) -> ExperimentOutcome:
    """Run one cell, returning the record *and* the live pipeline result."""
    pipeline = pipeline or TrojanZeroPipeline.default()
    circuit = resolve_circuit(spec.circuit)
    designs = resolve_designs(spec.design)
    t0 = time.perf_counter()
    result = pipeline.run(
        circuit,
        p_threshold=spec.pth,
        designs=designs,
        max_candidates=spec.max_candidates,
        monte_carlo_sessions=spec.mc_sessions,
        seed=spec.seed,
    )
    t_pipeline = time.perf_counter() - t0
    evasion: Optional[EvasionReport] = None
    t_detect = 0.0
    if spec.detector is not None and result.success:
        suite = DETECTORS.get(spec.detector)
        t1 = time.perf_counter()
        evasion = suite(
            result.thresholds.circuit,
            result.insertion.infected,
            pipeline.library,
            additive_gates=spec.additive_gates,
            n_chips=spec.detector_chips,
            seed=detect_seed_for(spec.seed),
        )
        t_detect = time.perf_counter() - t1
    runtime = {
        "timings_s": {
            "pipeline": round(t_pipeline, 6),
            "detect": round(t_detect, 6),
            "total": round(time.perf_counter() - t0, 6),
        }
    }
    record = ExperimentRecord.from_run(spec, result, evasion, runtime)
    return ExperimentOutcome(record=record, result=result, evasion=evasion)


def run_experiment(
    spec: ExperimentSpec,
    pipeline: Optional[TrojanZeroPipeline] = None,
) -> ExperimentRecord:
    """Run one cell and return its serializable record."""
    return execute_experiment(spec, pipeline=pipeline).record


def _run_cell(spec: ExperimentSpec) -> ExperimentRecord:
    """One campaign cell: never raises — exceptions become error records."""
    try:
        return run_experiment(spec)
    except Exception as exc:  # noqa: BLE001 — a bad cell must not kill the sweep
        return ExperimentRecord.failed(spec, f"{type(exc).__name__}: {exc}")


def _campaign_worker(spec_dict: dict) -> dict:
    """Picklable worker entry: dict in, dict out (specs/records cross the
    process boundary as JSON-native dicts)."""
    return _run_cell(ExperimentSpec.from_dict(spec_dict)).to_dict()


def load_records(
    path: Union[str, Path], strict: bool = True
) -> List[ExperimentRecord]:
    """Parse a JSONL results file; ``strict`` raises on any invalid line,
    otherwise invalid lines are skipped.

    Streams line-by-line from the open handle: resume files grow with the
    campaign grid and must never be slurped whole into memory.
    """
    records: List[ExperimentRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                records.append(ExperimentRecord.from_json_line(line))
            except (ValueError, TypeError, KeyError) as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: invalid record: {exc}"
                    ) from exc
    return records


def iter_records(
    path: Union[str, Path], strict: bool = True
) -> "Iterator[ExperimentRecord]":
    """Streaming variant of :func:`load_records` (one record at a time)."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                yield ExperimentRecord.from_json_line(line)
            except (ValueError, TypeError, KeyError) as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: invalid record: {exc}"
                    ) from exc


def _missing_trailing_newline(path: Path) -> bool:
    try:
        if path.stat().st_size == 0:
            return False
    except OSError:
        return False
    with open(path, "rb") as f:
        f.seek(-1, 2)
        return f.read(1) != b"\n"


def _trim_partial_tail(path: Path) -> None:
    """Drop a crash-truncated partial final line (byte-level, scanning back
    to the last complete newline) so the healed file parses strictly.  The
    partial record's bytes are unrecoverable either way; its cell was never
    counted done and re-runs."""
    with open(path, "rb+") as handle:
        handle.seek(0, 2)
        pos = handle.tell()
        while pos > 0:
            step = min(4096, pos)
            handle.seek(pos - step)
            chunk = handle.read(step)
            cut = chunk.rfind(b"\n")
            if cut != -1:
                handle.truncate(pos - step + cut + 1)
                return
            pos -= step
        handle.truncate(0)


@dataclass
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` call."""

    records: List[ExperimentRecord]
    #: Cell ids skipped because a record already existed (``resume``).
    skipped: List[str] = field(default_factory=list)
    out_path: Optional[str] = None
    #: Set when the ``max_errors`` circuit breaker stopped submission early.
    aborted: Optional[str] = None
    #: Supervisor fault-tolerance counters (pool rebuilds, retries, ...).
    fleet: Optional[Dict[str, Any]] = None

    @property
    def errors(self) -> List[ExperimentRecord]:
        return [r for r in self.records if r.error is not None]

    @property
    def succeeded(self) -> List[ExperimentRecord]:
        return [r for r in self.records if r.error is None and r.success]

    def summary(self) -> str:
        parts = [
            f"{len(self.records)} cells run",
            f"{len(self.succeeded)} insertions succeeded",
            f"{len(self.errors)} errors",
        ]
        if self.skipped:
            parts.append(f"{len(self.skipped)} skipped (resume)")
        if self.fleet and (self.fleet.get("retries") or self.fleet.get("pool_rebuilds")):
            parts.append(
                f"{self.fleet['retries']} retries / "
                f"{self.fleet['pool_rebuilds']} pool rebuilds"
            )
        if self.aborted:
            parts.append(f"ABORTED ({self.aborted})")
        if self.out_path:
            parts.append(f"records -> {self.out_path}")
        return ", ".join(parts)


@dataclass
class CampaignRunner:
    """Execute a :class:`CampaignSpec`, serially or across worker processes.

    All execution routes through the supervised layer of
    :mod:`repro.api.fleet`: worker death and per-cell timeouts recycle the
    pool and requeue in-flight cells, transient failures retry with seeded
    backoff, and a ``max_errors`` circuit breaker stops submission while
    still finalizing the JSONL sink (see :class:`~repro.api.spec.
    FleetPolicy` for the knobs).

    Parameters
    ----------
    jobs:
        Worker processes; ``<= 1`` runs in-process (and preserves campaign
        order in the JSONL output).
    out:
        JSONL path records are appended to as cells complete.
    resume:
        Skip cells whose :meth:`~repro.api.spec.ExperimentSpec.cell_id`
        already appears in ``out``.
    policy:
        Fault-tolerance policy (timeouts, retries, circuit breaker);
        defaults to :class:`~repro.api.spec.FleetPolicy`'s defaults.
    chaos:
        Fault-injection spec for tests/CI; when ``None``, the
        ``REPRO_CHAOS`` environment variable is consulted (see
        :mod:`repro.api.chaos`).
    """

    campaign: CampaignSpec
    jobs: int = 1
    out: Optional[Union[str, Path]] = None
    resume: bool = False
    policy: Optional[FleetPolicy] = None
    chaos: Optional[ChaosSpec] = None

    def run(
        self, progress: Optional[Callable[[ExperimentRecord], None]] = None
    ) -> CampaignResult:
        if self.resume and self.out is None:
            raise ValueError("resume requires an output JSONL path")
        chaos = self.chaos if self.chaos is not None else ChaosSpec.from_env()
        done_ids = set()
        if self.resume and Path(self.out).exists():
            # Last record wins: a cell can legitimately appear twice (error
            # record then successful retry from a later resume).  Error
            # records do not count as done — a cell whose *latest* outcome
            # raised (worker death, transient I/O failure) must re-run,
            # exactly like a crash-truncated line.  Dedup keys on the
            # canonical spec hash (the same fleet-wide key the service cache
            # and columnar store use), so a record written by any producer —
            # this runner, the fleet service, a hand-edited file — dedups
            # identically.
            latest: Dict[str, ExperimentRecord] = {}
            for rec in iter_records(self.out, strict=False):
                latest[rec.spec.spec_hash()] = rec
            done_ids = {
                spec_key for spec_key, rec in latest.items() if rec.error is None
            }
        pending = [
            spec for spec in self.campaign if spec.spec_hash() not in done_ids
        ]
        skipped = [
            spec.cell_id() for spec in self.campaign if spec.spec_hash() in done_ids
        ]

        sink = None
        truncator = FaultInjector(chaos) if chaos is not None else None
        if self.out is not None:
            out_path = Path(self.out)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            if _missing_trailing_newline(out_path):
                # A crash left a partial final line; trim it back to the
                # last complete record so the healed file parses strictly
                # (the partial cell was never counted done and re-runs).
                _trim_partial_tail(out_path)
            sink = open(self.out, "a", encoding="utf-8")
        records: List[ExperimentRecord] = []
        sink_torn = False
        try:
            for record in self._iter_records(pending, chaos):
                records.append(record)
                if sink is not None:
                    if sink_torn:
                        # A chaos truncation chopped the previous record
                        # mid-line; start this one on a fresh line so the
                        # damage stays confined to the record it hit.
                        sink.write("\n")
                        sink_torn = False
                    line = record.to_json_line() + "\n"
                    sink.write(line)
                    sink.flush()
                    if truncator is not None and truncator.take_truncate(
                        record.spec.cell_id()
                    ):
                        # Chaos: emulate a crash mid-write by chopping the
                        # just-written record in half (byte-level; the
                        # append-mode sink keeps writing at the true EOF).
                        truncate_jsonl_tail(self.out, len(line) // 2 + 1)
                        sink_torn = True
                if progress is not None:
                    progress(record)
        finally:
            if sink is not None:
                sink.close()
        supervisor = getattr(self, "_last_supervisor", None)
        return CampaignResult(
            records=records,
            skipped=skipped,
            out_path=str(self.out) if self.out is not None else None,
            aborted=supervisor.stats.aborted if supervisor is not None else None,
            fleet=supervisor.stats.to_dict() if supervisor is not None else None,
        )

    def _iter_records(
        self, pending: List[ExperimentSpec], chaos: Optional[ChaosSpec] = None
    ):
        # Lazy import: fleet builds on this module's primitives.
        from .fleet import CellSupervisor

        if self.jobs <= 1 or len(pending) <= 1:
            ordered = pending  # campaign order preserved in-process
        else:
            # Cells are supervised one future at a time, yielded in
            # completion order, so JSONL streaming / crash resume / progress
            # are per cell and slow cells don't serialize behind a chunk.
            # Submission stays circuit-major: adjacent same-circuit cells
            # drain through the pool while that circuit's compiled schedule
            # is warm in at least one worker (the fingerprint-keyed cache is
            # process-global, so each worker compiles a given circuit at
            # most once per campaign).
            ordered = sorted(pending, key=lambda s: s.circuit)
        supervisor = CellSupervisor(
            ordered, jobs=self.jobs, policy=self.policy, chaos=chaos
        )
        self._last_supervisor = supervisor
        yield from supervisor.iter_records()


def run_campaign(
    campaign: CampaignSpec,
    jobs: int = 1,
    out: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[Callable[[ExperimentRecord], None]] = None,
    policy: Optional[FleetPolicy] = None,
    chaos: Optional[ChaosSpec] = None,
) -> CampaignResult:
    """One-call convenience wrapper around :class:`CampaignRunner`."""
    return CampaignRunner(
        campaign, jobs=jobs, out=out, resume=resume, policy=policy, chaos=chaos
    ).run(progress)
