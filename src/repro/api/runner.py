"""Experiment execution: specs in, structured serializable records out.

:func:`run_experiment` evaluates one :class:`~repro.api.spec.ExperimentSpec`
into an :class:`ExperimentRecord` — a JSON-native result carrying the power
triple (N / N' / N''), salvage and zero-footprint deltas, Pft (analytic and
Monte-Carlo), detector verdicts, and timings.  :class:`CampaignRunner`
executes a :class:`~repro.api.spec.CampaignSpec` serially or across a
``ProcessPoolExecutor``, streaming records to a JSONL file as cells finish
and skipping already-recorded cells on ``resume``.

Determinism and parity
----------------------
Everything that lands in :meth:`ExperimentRecord.payload_dict` is a pure
function of the spec: two runs of the same spec — in one process or sharded
across workers — produce bit-identical payloads.  Execution artifacts that
legitimately differ between runs (wall-clock timings, structural
compile-cache counters, worker id) live under :attr:`ExperimentRecord.
runtime` and are excluded from the payload.

Cells are dispatched circuit-major, so same-benchmark cells drain through
the pool together and each worker reuses its process-global structural
compile cache of :mod:`repro.sim.compiled` — a worker compiles a given
circuit at most once per campaign instead of cold per cell.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..core.pipeline import (
    SEED_DETECT,
    TrojanZeroPipeline,
    TrojanZeroResult,
    derive_seed,
)
from ..detect import EvasionReport
from ..power.analysis import PowerDelta, PowerReport
from .registry import DETECTORS, resolve_circuit, resolve_designs
from .spec import CampaignSpec, ExperimentSpec, _check_known_keys

#: Bump when ExperimentRecord's serialized layout changes incompatibly.
RECORD_SCHEMA_VERSION = 1


def _power_dict(report: Optional[PowerReport]) -> Optional[Dict[str, float]]:
    if report is None:
        return None
    return {
        "total_uw": report.total_uw,
        "dynamic_uw": report.dynamic_uw,
        "leakage_uw": report.leakage_uw,
        "area_um2": report.area_um2,
        "area_ge": report.area_ge,
    }


def _delta_dict(delta: Optional[PowerDelta]) -> Optional[Dict[str, float]]:
    if delta is None:
        return None
    return {
        "total_uw": delta.total_uw,
        "dynamic_uw": delta.dynamic_uw,
        "leakage_uw": delta.leakage_uw,
        "area_ge": delta.area_ge,
        "area_um2": delta.area_um2,
    }


@dataclass(frozen=True)
class ExperimentRecord:
    """Fully serializable result of one experiment cell.

    The *payload* (everything except :attr:`runtime`) is deterministic given
    the spec; :attr:`runtime` holds execution artifacts (timings, compile
    cache counters) that may differ between otherwise identical runs.
    """

    spec: ExperimentSpec
    schema: int = RECORD_SCHEMA_VERSION
    benchmark: str = ""
    success: bool = False
    gates: int = 0
    inputs: int = 0
    candidates: int = 0
    expendable: int = 0
    accepted_edits: int = 0
    design: Optional[str] = None
    victim: Optional[str] = None
    #: ``{"free": {...}, "modified": {...}, "infected": {...}|None}`` power/
    #: area characterizations of N, N', N''.
    power: Dict[str, Optional[Dict[str, float]]] = field(default_factory=dict)
    #: Salvaged budget ΔP/ΔA = N − N'.
    delta_salvage: Optional[Dict[str, float]] = None
    #: Zero-footprint differential ΔP(TZ)/ΔA(TZ) = N − N''.
    delta_tz: Optional[Dict[str, float]] = None
    #: Trigger characterization (clock source, p_edge, Pft analytic + MC).
    trigger: Optional[Dict[str, Any]] = None
    #: Detector verdicts when the spec names a detector suite.
    detection: Optional[Dict[str, Any]] = None
    #: Set when the cell raised instead of completing; payload fields above
    #: are then defaults.
    error: Optional[str] = None
    #: Side-channel trace-lab diagnostics (acquisition config, per-population
    #: statistics, timings) when the detector suite is trace-based — like
    #: :attr:`runtime`, excluded from :meth:`payload_dict` (it carries wall
    #: times); the deterministic verdicts live in :attr:`detection`.
    traces: Optional[Dict[str, Any]] = None
    #: Execution artifacts — excluded from :meth:`payload_dict`.
    runtime: Dict[str, Any] = field(default_factory=dict)

    # -- convenience ---------------------------------------------------
    @property
    def pft(self) -> Optional[float]:
        return self.trigger.get("pft_analytic") if self.trigger else None

    @property
    def pft_monte_carlo(self) -> Optional[float]:
        return self.trigger.get("pft_monte_carlo") if self.trigger else None

    def evades(self) -> Optional[bool]:
        return self.detection.get("evades") if self.detection else None

    # -- construction --------------------------------------------------
    @classmethod
    def from_run(
        cls,
        spec: ExperimentSpec,
        result: TrojanZeroResult,
        evasion: Optional[EvasionReport] = None,
        runtime: Optional[Dict[str, Any]] = None,
    ) -> "ExperimentRecord":
        """Flatten a live pipeline result (and optional detection report)
        into the serializable record."""
        trigger = None
        if result.trigger is not None:
            t = result.trigger
            trigger = {
                "clock_source": t.clock_source,
                "p_edge": t.p_edge,
                "counter_bits": t.counter_bits,
                "edges_to_fire": t.edges_to_fire,
                "test_vectors": t.test_vectors,
                "pft_analytic": t.pft_analytic,
                "pft_monte_carlo": t.pft_monte_carlo,
            }
        detection = None
        if evasion is not None:
            detection = {
                "suite": spec.detector,
                "golden_rates": dict(evasion.golden_rates),
                "additive_rates": dict(evasion.additive_rates),
                "trojanzero_rates": dict(evasion.trojanzero_rates),
                "additive_overhead_pct": evasion.additive_overhead_pct,
                "trojanzero_overhead_pct": evasion.trojanzero_overhead_pct,
                "evades": evasion.trojanzero_evades(),
                "additive_detected": evasion.additive_detected(),
            }
        run_stats = dict(runtime or {})
        run_stats["compile_stats"] = dict(result.salvage.compile_stats)
        return cls(
            spec=spec,
            benchmark=result.benchmark,
            success=result.success,
            gates=result.salvage.original.num_logic_gates,
            inputs=len(result.thresholds.circuit.inputs),
            candidates=result.salvage.candidate_count,
            expendable=result.salvage.expendable_gates,
            accepted_edits=len(result.salvage.accepted_removals()),
            design=result.insertion.design.name if result.success else None,
            victim=result.insertion.victim if result.success else None,
            power={
                "free": _power_dict(result.power_free),
                "modified": _power_dict(result.power_modified),
                "infected": _power_dict(result.power_infected),
            },
            delta_salvage=_delta_dict(result.salvage.delta),
            delta_tz=_delta_dict(result.delta_tz),
            trigger=trigger,
            detection=detection,
            traces=getattr(evasion, "trace_diagnostics", None),
            runtime=run_stats,
        )

    @classmethod
    def failed(cls, spec: ExperimentSpec, error: str) -> "ExperimentRecord":
        return cls(spec=spec, error=error)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        data = asdict(self)
        data["spec"] = self.spec.to_dict()
        return data

    def payload_dict(self) -> dict:
        """The deterministic portion of the record (no execution artifacts)."""
        data = self.to_dict()
        data.pop("runtime")
        data.pop("traces")
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentRecord":
        _check_known_keys(cls, data)
        if "spec" not in data:
            raise ValueError("ExperimentRecord: missing required key 'spec'")
        payload = dict(data)
        payload["spec"] = ExperimentSpec.from_dict(payload["spec"])
        return cls(**payload)

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json_line(cls, line: str) -> "ExperimentRecord":
        return cls.from_dict(json.loads(line))


@dataclass
class ExperimentOutcome:
    """In-memory outcome: the record plus the live (non-serializable)
    pipeline result, for callers that need circuits (CLI ``--output``,
    report printing, detection post-mortems)."""

    record: ExperimentRecord
    result: TrojanZeroResult
    evasion: Optional[EvasionReport] = None


def detect_seed_for(seed: Optional[int]) -> int:
    """Detector-suite seed derived from a master experiment seed (legacy
    fixed seed when the spec has none)."""
    return 37 if seed is None else derive_seed(seed, SEED_DETECT)


def execute_experiment(
    spec: ExperimentSpec,
    pipeline: Optional[TrojanZeroPipeline] = None,
) -> ExperimentOutcome:
    """Run one cell, returning the record *and* the live pipeline result."""
    pipeline = pipeline or TrojanZeroPipeline.default()
    circuit = resolve_circuit(spec.circuit)
    designs = resolve_designs(spec.design)
    t0 = time.perf_counter()
    result = pipeline.run(
        circuit,
        p_threshold=spec.pth,
        designs=designs,
        max_candidates=spec.max_candidates,
        monte_carlo_sessions=spec.mc_sessions,
        seed=spec.seed,
    )
    t_pipeline = time.perf_counter() - t0
    evasion: Optional[EvasionReport] = None
    t_detect = 0.0
    if spec.detector is not None and result.success:
        suite = DETECTORS.get(spec.detector)
        t1 = time.perf_counter()
        evasion = suite(
            result.thresholds.circuit,
            result.insertion.infected,
            pipeline.library,
            additive_gates=spec.additive_gates,
            n_chips=spec.detector_chips,
            seed=detect_seed_for(spec.seed),
        )
        t_detect = time.perf_counter() - t1
    runtime = {
        "timings_s": {
            "pipeline": round(t_pipeline, 6),
            "detect": round(t_detect, 6),
            "total": round(time.perf_counter() - t0, 6),
        }
    }
    record = ExperimentRecord.from_run(spec, result, evasion, runtime)
    return ExperimentOutcome(record=record, result=result, evasion=evasion)


def run_experiment(
    spec: ExperimentSpec,
    pipeline: Optional[TrojanZeroPipeline] = None,
) -> ExperimentRecord:
    """Run one cell and return its serializable record."""
    return execute_experiment(spec, pipeline=pipeline).record


def _run_cell(spec: ExperimentSpec) -> ExperimentRecord:
    """One campaign cell: never raises — exceptions become error records."""
    try:
        return run_experiment(spec)
    except Exception as exc:  # noqa: BLE001 — a bad cell must not kill the sweep
        return ExperimentRecord.failed(spec, f"{type(exc).__name__}: {exc}")


def _campaign_worker(spec_dict: dict) -> dict:
    """Picklable worker entry: dict in, dict out (specs/records cross the
    process boundary as JSON-native dicts)."""
    return _run_cell(ExperimentSpec.from_dict(spec_dict)).to_dict()


def load_records(
    path: Union[str, Path], strict: bool = True
) -> List[ExperimentRecord]:
    """Parse a JSONL results file; ``strict`` raises on any invalid line,
    otherwise invalid lines are skipped."""
    records: List[ExperimentRecord] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(ExperimentRecord.from_json_line(line))
        except (ValueError, TypeError, KeyError) as exc:
            if strict:
                raise ValueError(f"{path}:{lineno}: invalid record: {exc}") from exc
    return records


def _missing_trailing_newline(path: Path) -> bool:
    try:
        if path.stat().st_size == 0:
            return False
    except OSError:
        return False
    with open(path, "rb") as f:
        f.seek(-1, 2)
        return f.read(1) != b"\n"


@dataclass
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` call."""

    records: List[ExperimentRecord]
    #: Cell ids skipped because a record already existed (``resume``).
    skipped: List[str] = field(default_factory=list)
    out_path: Optional[str] = None

    @property
    def errors(self) -> List[ExperimentRecord]:
        return [r for r in self.records if r.error is not None]

    @property
    def succeeded(self) -> List[ExperimentRecord]:
        return [r for r in self.records if r.error is None and r.success]

    def summary(self) -> str:
        parts = [
            f"{len(self.records)} cells run",
            f"{len(self.succeeded)} insertions succeeded",
            f"{len(self.errors)} errors",
        ]
        if self.skipped:
            parts.append(f"{len(self.skipped)} skipped (resume)")
        if self.out_path:
            parts.append(f"records -> {self.out_path}")
        return ", ".join(parts)


@dataclass
class CampaignRunner:
    """Execute a :class:`CampaignSpec`, serially or across worker processes.

    Parameters
    ----------
    jobs:
        Worker processes; ``<= 1`` runs in-process (and preserves campaign
        order in the JSONL output).
    out:
        JSONL path records are appended to as cells complete.
    resume:
        Skip cells whose :meth:`~repro.api.spec.ExperimentSpec.cell_id`
        already appears in ``out``.
    """

    campaign: CampaignSpec
    jobs: int = 1
    out: Optional[Union[str, Path]] = None
    resume: bool = False

    def run(
        self, progress: Optional[Callable[[ExperimentRecord], None]] = None
    ) -> CampaignResult:
        if self.resume and self.out is None:
            raise ValueError("resume requires an output JSONL path")
        done_ids = set()
        if self.resume and Path(self.out).exists():
            # Error records do not count as done: a cell that raised (worker
            # death, transient I/O failure) must re-run on resume, exactly
            # like a crash-truncated line.
            done_ids = {
                rec.spec.cell_id()
                for rec in load_records(self.out, strict=False)
                if rec.error is None
            }
        pending = [
            spec for spec in self.campaign if spec.cell_id() not in done_ids
        ]
        skipped = [
            spec.cell_id() for spec in self.campaign if spec.cell_id() in done_ids
        ]

        sink = None
        if self.out is not None:
            out_path = Path(self.out)
            out_path.parent.mkdir(parents=True, exist_ok=True)
            sink = open(self.out, "a", encoding="utf-8")
            if _missing_trailing_newline(out_path):
                # A crash-truncated partial line must not swallow the first
                # record this run appends; terminate it so the bad line stays
                # isolated (strict=False parsing skips it, the cell re-runs).
                sink.write("\n")
        records: List[ExperimentRecord] = []
        try:
            for record in self._iter_records(pending):
                records.append(record)
                if sink is not None:
                    sink.write(record.to_json_line() + "\n")
                    sink.flush()
                if progress is not None:
                    progress(record)
        finally:
            if sink is not None:
                sink.close()
        return CampaignResult(
            records=records,
            skipped=skipped,
            out_path=str(self.out) if self.out is not None else None,
        )

    def _iter_records(self, pending: List[ExperimentSpec]):
        if self.jobs <= 1 or len(pending) <= 1:
            for spec in pending:
                yield _run_cell(spec)
            return
        # One future per cell, yielded in completion order, so JSONL
        # streaming / crash resume / progress are per cell and slow cells
        # don't serialize behind a chunk.  Submission stays circuit-major:
        # adjacent same-circuit cells drain through the pool while that
        # circuit's compiled schedule is warm in at least one worker (the
        # fingerprint-keyed cache is process-global, so each worker compiles
        # a given circuit at most once per campaign).
        ordered = sorted(pending, key=lambda s: s.circuit)
        with ProcessPoolExecutor(max_workers=self.jobs) as executor:
            futures = [
                executor.submit(_campaign_worker, spec.to_dict())
                for spec in ordered
            ]
            for future in as_completed(futures):
                yield ExperimentRecord.from_dict(future.result())


def run_campaign(
    campaign: CampaignSpec,
    jobs: int = 1,
    out: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[Callable[[ExperimentRecord], None]] = None,
) -> CampaignResult:
    """One-call convenience wrapper around :class:`CampaignRunner`."""
    return CampaignRunner(campaign, jobs=jobs, out=out, resume=resume).run(progress)
