"""Declarative experiment API — the front door of the reproduction.

Specs (:class:`ExperimentSpec`, :class:`CampaignSpec`) describe *what* to
run; registries (:data:`CIRCUITS`, :data:`TROJAN_DESIGNS`, :data:`DETECTORS`)
resolve names to substrates; the runner (:func:`run_experiment`,
:class:`CampaignRunner`) turns specs into serializable
:class:`ExperimentRecord` s, optionally sharded across worker processes with
JSONL streaming and resume.

Quickstart::

    from repro.api import CampaignSpec, run_campaign

    campaign = CampaignSpec.sweep(
        circuits=["c432", "c880"], pths=[0.975, 0.992], seeds=[0]
    )
    result = run_campaign(campaign, jobs=2, out="results.jsonl")
    for record in result.records:
        print(record.benchmark, record.spec.pth, record.success, record.pft)
"""

from .chaos import (
    CHAOS_ENV_VAR,
    ChaosConfigError,
    ChaosSpec,
    FaultInjector,
    TransientChaosError,
)
from .registry import (
    CIRCUITS,
    DETECTORS,
    TROJAN_DESIGNS,
    Registry,
    resolve_circuit,
    resolve_designs,
)
from .runner import (
    RECORD_SCHEMA_VERSION,
    CampaignResult,
    CampaignRunner,
    ExperimentOutcome,
    ExperimentRecord,
    detect_seed_for,
    execute_experiment,
    iter_records,
    load_records,
    run_campaign,
    run_experiment,
)
from .fleet import (
    CellSupervisor,
    SupervisorStats,
    classify_error,
    retry_delay_s,
)
from .spec import (
    TABLE1_PARAMETERS,
    CampaignSpec,
    ExperimentSpec,
    FleetPolicy,
    RetryPolicy,
    canonicalize,
    spec_hash,
)

__all__ = [
    "Registry",
    "CIRCUITS",
    "TROJAN_DESIGNS",
    "DETECTORS",
    "resolve_circuit",
    "resolve_designs",
    "ExperimentSpec",
    "CampaignSpec",
    "TABLE1_PARAMETERS",
    "spec_hash",
    "canonicalize",
    "FleetPolicy",
    "RetryPolicy",
    "ExperimentRecord",
    "ExperimentOutcome",
    "CampaignRunner",
    "CampaignResult",
    "CellSupervisor",
    "SupervisorStats",
    "ChaosSpec",
    "ChaosConfigError",
    "FaultInjector",
    "TransientChaosError",
    "CHAOS_ENV_VAR",
    "classify_error",
    "retry_delay_s",
    "run_experiment",
    "execute_experiment",
    "run_campaign",
    "load_records",
    "iter_records",
    "detect_seed_for",
    "RECORD_SCHEMA_VERSION",
]
