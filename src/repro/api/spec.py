"""Declarative experiment specifications.

One cell of the paper's evaluation grid — benchmark x Pth x trojan design x
detector mode (Table I, Fig. 3, Fig. 7) — is an :class:`ExperimentSpec`; a
whole sweep is a :class:`CampaignSpec`.  Both are frozen dataclasses that
round-trip losslessly through ``to_dict``/``from_dict`` (JSON-native values
only), so campaigns can be written to disk, shipped to worker processes, and
diffed between runs.  The stable :meth:`ExperimentSpec.cell_id` string keys
resume bookkeeping in :mod:`repro.api.runner`.

References (``circuit``, ``design``, ``detector``) are *names*, resolved at
run time against the registries in :mod:`repro.api.registry` — a spec never
holds a live circuit or detector object.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Iterable, Iterator, Optional, Sequence, Tuple

#: Table I per-benchmark parameters: registry name -> (Pth, counter bits).
TABLE1_PARAMETERS: Dict[str, Tuple[float, int]] = {
    "c432": (0.975, 2),
    "c499": (0.993, 3),
    "c880": (0.992, 3),
    "c1908": (0.9986, 5),
    "c3540": (0.992, 5),
}


def canonicalize(value: Any) -> Any:
    """Normalize a JSON-native value tree for hashing.

    Two values that serialize differently but mean the same spec must hash
    identically: tuples become lists (dataclass fields round-trip through
    JSON as lists), integral floats become ints (``pth=1.0`` == ``pth=1``,
    and JSON readers are free to hand back either), and dict ordering is
    erased by the sorted-keys dump in :func:`spec_hash`.  Non-integral
    floats pass through untouched — ``repr`` round-trips them exactly.
    """
    if isinstance(value, dict):
        return {k: canonicalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, bool):
        # bool is an int subclass; keep True/False distinct from 1/0.
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def spec_hash(spec: Any) -> str:
    """Canonical SHA-256 hex digest of a spec (or any JSON-native dict).

    Accepts an :class:`ExperimentSpec`, a :class:`CampaignSpec`, or a plain
    ``to_dict()``-shaped mapping.  The digest is a pure function of the
    *meaning* of the spec — key order, tuple-vs-list, and int-vs-integral-
    float representation differences all collapse (see :func:`canonicalize`)
    — so it is safe as a fleet-wide primary key: the result cache of
    :mod:`repro.service.cache`, campaign resume dedup, and the columnar
    store of :mod:`repro.service.store` all key on it.  Payload-bit-identical
    records per spec (guaranteed by ``derive_seed``) are what make a single
    fleet-wide entry per hash sound.

    Stability is pinned by ``tests/test_api.py::TestSpecHash`` — changing
    the canonical form invalidates every cache and store in the wild, so it
    must never drift silently.
    """
    if hasattr(spec, "to_dict"):
        spec = spec.to_dict()
    if not isinstance(spec, dict):
        raise TypeError(
            f"spec_hash expects a spec or dict, got {type(spec).__name__}"
        )
    text = json.dumps(
        canonicalize(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _check_known_keys(cls, data: dict) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"{cls.__name__}: unknown keys {unknown}; known keys: {sorted(known)}"
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of the evaluation grid, fully declarative and serializable.

    Attributes
    ----------
    circuit:
        Registry name (``c17`` ... ``c6288``) or a ``.bench`` file path,
        resolved by :func:`repro.api.registry.resolve_circuit`.
    pth:
        Algorithm 1's rare-node threshold Pth.
    design:
        Trojan design reference (e.g. ``counter3``, ``comb2``) resolved by
        :func:`repro.api.registry.resolve_designs`; ``None`` tries the whole
        default HT library, largest design first.
    seed:
        Master seed threaded to *every* RNG draw of the run (ATPG pattern
        fill, bespoke defender vectors, Monte-Carlo Pft sessions, detector
        variation models).  ``None`` keeps the legacy per-module fixed seeds
        (still deterministic, but not independently re-seedable).
    mc_sessions:
        Monte-Carlo Pft validation sessions (0 = analytic Pft only).
    detector:
        Detector-suite reference (``paper`` or ``structural``) resolved by
        :data:`repro.api.registry.DETECTORS`; ``None`` skips the evasion
        experiment.
    """

    circuit: str
    pth: float = 0.992
    design: Optional[str] = None
    seed: Optional[int] = None
    mc_sessions: int = 0
    detector: Optional[str] = None
    detector_chips: int = 30
    additive_gates: int = 16
    max_candidates: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.5 < self.pth <= 1.0:
            raise ValueError(f"pth must be in (0.5, 1.0], got {self.pth}")
        if self.mc_sessions < 0:
            raise ValueError(f"mc_sessions must be >= 0, got {self.mc_sessions}")

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        _check_known_keys(cls, data)
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    # -- identity ------------------------------------------------------
    def cell_id(self) -> str:
        """Stable, human-readable key for resume/dedup bookkeeping."""
        d = self.to_dict()
        return "|".join(f"{k}={d[k]}" for k in sorted(d))

    def spec_hash(self) -> str:
        """Canonical content hash (see module-level :func:`spec_hash`) —
        the fleet-wide primary key for caching and the columnar store."""
        return spec_hash(self.to_dict())

    def with_(self, **changes) -> "ExperimentSpec":
        """A copy with some fields replaced (specs are frozen)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry schedule for *transient* cell failures.

    Transient failures (worker death, per-cell timeout, ``OSError``, injected
    chaos faults — see :func:`repro.api.fleet.classify_error`) are retried up
    to ``max_retries`` times with exponential backoff; deterministic pipeline
    exceptions are never retried (re-running a pure function of the spec
    cannot change the outcome).  The backoff jitter is *seeded*: the delay for
    a given (cell, attempt) is a pure function of the spec, so retry schedules
    reproduce exactly across runs (asserted in ``tests/test_fleet.py``).

    Attributes
    ----------
    max_retries:
        Retries after the first attempt (total attempts = ``max_retries + 1``).
    backoff_s:
        Base delay before the first retry.
    backoff_mult:
        Exponential growth factor per further retry.
    backoff_max_s:
        Delay ceiling before jitter.
    jitter:
        Relative jitter span: the delay is scaled by a seeded uniform draw
        from ``[1, 1 + jitter]``.
    """

    max_retries: int = 2
    backoff_s: float = 0.25
    backoff_mult: float = 2.0
    backoff_max_s: float = 30.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_mult < 1.0:
            raise ValueError(f"backoff_mult must be >= 1, got {self.backoff_mult}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        _check_known_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class FleetPolicy:
    """Fault-tolerance policy for supervised campaign execution.

    Consumed by :class:`repro.api.fleet.CellSupervisor`; every
    :class:`~repro.api.runner.CampaignRunner` run resolves to one of these
    (defaults if none is given).  Like the experiment specs it is frozen and
    JSON round-trippable, so a campaign's fault-tolerance configuration can
    be recorded and replayed.

    Attributes
    ----------
    timeout_s:
        Per-cell wall-clock budget.  A cell past its deadline is treated as
        wedged: its worker pool is recycled (processes hard-killed and
        rebuilt) and the cell is charged a transient ``timeout`` failure.
        ``None`` disables the deadline.  Enforced only in pool mode — a
        single in-process cell cannot be preempted portably.
    retry:
        Transient-failure retry schedule (:class:`RetryPolicy`).
    max_errors:
        Circuit breaker: once this many error *records* have been emitted,
        no further cells are submitted (in-flight cells drain, the JSONL
        sink is flushed and finalized).  ``None`` disables the breaker.
    max_pool_rebuilds:
        Pool collapses tolerated before degrading to serial in-process
        execution for the rest of the campaign.
    """

    timeout_s: Optional[float] = None
    retry: RetryPolicy = RetryPolicy()
    max_errors: Optional[int] = None
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.max_errors is not None and self.max_errors < 1:
            raise ValueError(f"max_errors must be >= 1, got {self.max_errors}")
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    @property
    def max_attempts(self) -> int:
        return self.retry.max_attempts

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FleetPolicy":
        _check_known_keys(cls, data)
        payload = dict(data)
        if isinstance(payload.get("retry"), dict):
            payload["retry"] = RetryPolicy.from_dict(payload["retry"])
        return cls(**payload)


@dataclass(frozen=True)
class CampaignSpec:
    """An ordered list of experiment cells plus expansion helpers."""

    name: str
    experiments: Tuple[ExperimentSpec, ...]

    def __len__(self) -> int:
        return len(self.experiments)

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self.experiments)

    # -- builders ------------------------------------------------------
    @classmethod
    def table1(
        cls,
        seed: Optional[int] = None,
        mc_sessions: int = 0,
        detector: Optional[str] = None,
        detector_chips: int = 30,
        additive_gates: int = 16,
    ) -> "CampaignSpec":
        """The paper's Table I grid: five benchmarks at their published
        (Pth, counter-bits) operating points."""
        cells = tuple(
            ExperimentSpec(
                circuit=name,
                pth=pth,
                design=f"counter{bits}",
                seed=seed,
                mc_sessions=mc_sessions,
                detector=detector,
                detector_chips=detector_chips,
                additive_gates=additive_gates,
            )
            for name, (pth, bits) in TABLE1_PARAMETERS.items()
        )
        return cls(name="table1", experiments=cells)

    @classmethod
    def sweep(
        cls,
        circuits: Sequence[str],
        pths: Sequence[float],
        designs: Sequence[Optional[str]] = (None,),
        seeds: Sequence[Optional[int]] = (None,),
        detectors: Sequence[Optional[str]] = (None,),
        mc_sessions: int = 0,
        detector_chips: int = 30,
        additive_gates: int = 16,
        max_candidates: Optional[int] = None,
        name: str = "sweep",
    ) -> "CampaignSpec":
        """Cartesian-product grid, circuit-major so that consecutive cells
        share a circuit (and thus a warm structural compile cache) within
        each campaign worker."""
        cells = tuple(
            ExperimentSpec(
                circuit=circuit,
                pth=pth,
                design=design,
                seed=seed,
                mc_sessions=mc_sessions,
                detector=detector,
                detector_chips=detector_chips,
                additive_gates=additive_gates,
                max_candidates=max_candidates,
            )
            for circuit, design, detector, seed, pth in itertools.product(
                circuits, designs, detectors, seeds, pths
            )
        )
        return cls(name=name, experiments=cells)

    @classmethod
    def of(cls, experiments: Iterable[ExperimentSpec], name: str = "campaign") -> "CampaignSpec":
        return cls(name=name, experiments=tuple(experiments))

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "experiments": [spec.to_dict() for spec in self.experiments],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        _check_known_keys(cls, data)
        return cls(
            name=data["name"],
            experiments=tuple(
                ExperimentSpec.from_dict(d) for d in data["experiments"]
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))
