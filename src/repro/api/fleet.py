"""Supervised campaign execution: worker death, timeouts, retries, breakers.

The plain ``ProcessPoolExecutor`` path dies wholesale when anything goes
wrong below it: one ``SIGKILL``-ed worker breaks the pool and every future
in it, a wedged cell stalls the campaign forever, and a transient I/O error
burns its cell permanently.  :class:`CellSupervisor` is the layer between
:class:`~repro.api.runner.CampaignRunner` and the pool that makes a
campaign survive all of that:

* **Worker death** — ``BrokenProcessPool``/``BrokenExecutor`` is caught,
  completed-but-unconsumed futures are drained into the record stream (their
  results survive a broken pool), the pool is rebuilt, and in-flight cells
  are requeued.
* **Per-cell timeout** — each submitted cell carries a wall-clock deadline
  (``FleetPolicy.timeout_s``).  An overdue cell is treated as wedged: the
  pool's processes are hard-killed and rebuilt (the only portable way to
  reclaim a worker stuck in native code or ``sleep``), the overdue cell is
  charged a ``timeout`` failure, and innocent in-flight siblings requeue
  uncharged.
* **Retry with seeded backoff** — failures are classified by
  :func:`classify_error`: *transient* kinds (worker death, timeout,
  ``OSError``, injected chaos) retry up to ``RetryPolicy.max_retries`` times
  with exponential backoff and **seeded** jitter (:func:`retry_delay_s`
  derives the delay from the spec via ``numpy.random.SeedSequence``, so
  retry schedules are bit-reproducible); *deterministic* pipeline exceptions
  become error records immediately — re-running a pure function of the spec
  cannot help.
* **Circuit breaker** — after ``FleetPolicy.max_errors`` error records the
  supervisor stops submitting, drains what is in flight, and finalizes
  normally, so the JSONL sink always ends in a consistent state.
* **Graceful degradation** — after ``max_pool_rebuilds`` pool collapses the
  remaining cells run serially in-process (chaos kills/hangs are downgraded
  to retryable exceptions there; see :mod:`repro.api.chaos`).

Everything the supervisor adds to a record lives under
``ExperimentRecord.runtime`` (``attempts`` / ``retry_history`` /
``worker_recycles``), which is excluded from ``payload_dict()`` — so the
parallel == serial payload-bit-parity guarantee survives arbitrary fault
schedules (asserted under chaos in ``tests/test_fleet.py``).
"""

from __future__ import annotations

import time
import zlib
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set

import numpy as np

from .chaos import ChaosSpec, FaultInjector, TransientChaosError
from .runner import ExperimentRecord, run_experiment
from .spec import ExperimentSpec, FleetPolicy, RetryPolicy

#: Sub-seed index for retry-backoff jitter (the pipeline owns indices 0-3;
#: see ``repro.core.pipeline.SEED_ATPG`` .. ``SEED_DETECT``).
SEED_RETRY = 4


class CellTimeout(TimeoutError):
    """A cell exceeded its per-cell wall-clock budget (parent-side)."""


#: Exceptions a worker lets propagate so the supervisor can retry the cell;
#: anything else is a deterministic cell failure and becomes an error record
#: in the worker itself.  ``TimeoutError`` is an ``OSError`` subclass, so
#: this tuple is the transitive transient set.
TRANSIENT_EXCEPTIONS = (OSError, TransientChaosError, BrokenExecutor)


def classify_error(exc: BaseException) -> str:
    """Error taxonomy: map an exception to a retry class.

    ``worker-death`` / ``timeout`` / ``chaos-transient`` / ``transient-io``
    retry under the :class:`~repro.api.spec.RetryPolicy`;
    ``deterministic`` never retries.
    """
    if isinstance(exc, BrokenExecutor):
        return "worker-death"
    if isinstance(exc, (CellTimeout, TimeoutError)):
        return "timeout"
    if isinstance(exc, TransientChaosError):
        return "chaos-transient"
    if isinstance(exc, OSError):
        return "transient-io"
    return "deterministic"


def is_transient(kind: str) -> bool:
    return kind != "deterministic"


def retry_delay_s(policy: RetryPolicy, spec: ExperimentSpec, attempt: int) -> float:
    """Backoff before retrying ``attempt`` (1-based) of ``spec``'s cell.

    Exponential in the attempt number, jittered by a seeded uniform draw —
    a pure function of (spec, attempt), so two runs of the same campaign
    produce bit-identical retry schedules.
    """
    cell_key = zlib.crc32(spec.cell_id().encode("utf-8"))
    base_seed = spec.seed if spec.seed is not None else cell_key
    base = min(
        policy.backoff_max_s,
        policy.backoff_s * policy.backoff_mult ** (attempt - 1),
    )
    if policy.jitter == 0.0 or base == 0.0:
        return base
    rng = np.random.default_rng(
        np.random.SeedSequence([base_seed, SEED_RETRY, cell_key, attempt])
    )
    return base * (1.0 + policy.jitter * float(rng.random()))


def _execute_cell_dict(spec: ExperimentSpec) -> dict:
    """Run one cell; deterministic failures become error-record dicts,
    transient failures propagate for the supervisor to classify and retry."""
    try:
        return run_experiment(spec).to_dict()
    except TRANSIENT_EXCEPTIONS:
        raise
    except Exception as exc:  # noqa: BLE001 — deterministic cell failure
        return ExperimentRecord.failed(spec, f"{type(exc).__name__}: {exc}").to_dict()


def _fleet_worker(
    spec_dict: dict, attempt: int, chaos_dict: Optional[dict] = None
) -> dict:
    """Picklable supervised-worker entry: dict in, dict out.

    Chaos faults (if any) fire before the cell runs, from a spec rebuilt in
    the worker so the injection plan is identical in every process.
    """
    spec = ExperimentSpec.from_dict(spec_dict)
    if chaos_dict is not None:
        FaultInjector(ChaosSpec.from_dict(chaos_dict)).fire(spec.cell_id(), attempt)
    return _execute_cell_dict(spec)


@dataclass
class _CellState:
    """Supervisor-side bookkeeping for one cell across attempts."""

    spec: ExperimentSpec
    #: 1-based attempt number of the current/next execution.
    attempt: int = 1
    #: Monotonic time before which the cell must not be resubmitted.
    ready_at: float = 0.0
    #: Pool recycles that interrupted this cell (charged or not).
    recycles: int = 0
    history: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class SupervisorStats:
    """Aggregate fault-tolerance counters for one supervised run."""

    pool_rebuilds: int = 0
    worker_deaths: int = 0
    timeouts: int = 0
    retries: int = 0
    errors: int = 0
    degraded_to_serial: bool = False
    aborted: Optional[str] = None

    def to_dict(self) -> dict:
        return asdict(self)


class CellSupervisor:
    """Fault-tolerant execution of experiment cells over a worker pool.

    Parameters
    ----------
    specs:
        Cells in submission order (the caller owns ordering concerns such
        as circuit-major compile-cache warmth).
    jobs:
        Worker processes; ``<= 1`` (or a single cell) runs serially
        in-process under the same retry/breaker machinery.
    policy:
        :class:`~repro.api.spec.FleetPolicy` (defaults if ``None``).
    chaos:
        Optional :class:`~repro.api.chaos.ChaosSpec` driving deterministic
        fault injection in the workers.
    """

    def __init__(
        self,
        specs: Sequence[ExperimentSpec],
        jobs: int = 1,
        policy: Optional[FleetPolicy] = None,
        chaos: Optional[ChaosSpec] = None,
    ):
        self.jobs = jobs
        self.policy = policy or FleetPolicy()
        self.chaos = chaos
        self.stats = SupervisorStats()
        self._queue: deque[_CellState] = deque(_CellState(spec=s) for s in specs)

    # -- public --------------------------------------------------------
    def iter_records(self) -> Iterator[ExperimentRecord]:
        """Yield one record per cell as cells finish (or exhaust retries)."""
        if self.jobs <= 1 or len(self._queue) <= 1:
            yield from self._iter_serial()
        else:
            yield from self._iter_pool()

    # -- shared helpers ------------------------------------------------
    def _tripped(self) -> bool:
        return (
            self.policy.max_errors is not None
            and self.stats.errors >= self.policy.max_errors
        )

    def _abort_remaining(self) -> None:
        self.stats.aborted = (
            f"circuit breaker: {self.stats.errors} error records "
            f"(max_errors={self.policy.max_errors}); "
            f"{len(self._queue)} cells not run"
        )
        self._queue.clear()

    def _pop_ready(self, now: float) -> Optional[_CellState]:
        for i, st in enumerate(self._queue):
            if st.ready_at <= now:
                del self._queue[i]
                return st
        return None

    def _finalize(self, rec_dict: dict, st: _CellState) -> ExperimentRecord:
        """Attach supervision artifacts to the (non-payload) runtime section."""
        runtime = dict(rec_dict.get("runtime") or {})
        runtime["attempts"] = st.attempt
        runtime["retry_history"] = list(st.history)
        runtime["worker_recycles"] = st.recycles
        rec_dict = dict(rec_dict)
        rec_dict["runtime"] = runtime
        record = ExperimentRecord.from_dict(rec_dict)
        if record.error is not None:
            self.stats.errors += 1
        return record

    def _final_error(self, st: _CellState, message: str) -> ExperimentRecord:
        return self._finalize(
            ExperimentRecord.failed(st.spec, message).to_dict(), st
        )

    def _charge(
        self, st: _CellState, kind: str, message: str
    ) -> Optional[ExperimentRecord]:
        """Record a failed attempt; requeue with backoff or emit the final
        error record when the retry budget (or taxonomy) says stop."""
        if kind == "worker-death":
            self.stats.worker_deaths += 1
        elif kind == "timeout":
            self.stats.timeouts += 1
        entry: Dict[str, Any] = {"attempt": st.attempt, "kind": kind, "error": message}
        if not is_transient(kind) or st.attempt >= self.policy.max_attempts:
            st.history.append(entry)
            return self._final_error(st, message)
        delay = retry_delay_s(self.policy.retry, st.spec, st.attempt)
        entry["delay_s"] = round(delay, 6)
        st.history.append(entry)
        st.attempt += 1
        st.ready_at = time.monotonic() + delay
        self.stats.retries += 1
        self._queue.append(st)
        return None

    # -- serial path ---------------------------------------------------
    def _iter_serial(self) -> Iterator[ExperimentRecord]:
        injector = (
            FaultInjector(self.chaos, serial=True) if self.chaos is not None else None
        )
        while self._queue:
            if self._tripped():
                self._abort_remaining()
                return
            now = time.monotonic()
            st = self._pop_ready(now)
            if st is None:
                time.sleep(
                    max(0.0, min(s.ready_at for s in self._queue) - now)
                )
                continue
            try:
                if injector is not None:
                    injector.fire(st.spec.cell_id(), st.attempt)
                rec_dict = _execute_cell_dict(st.spec)
            except TRANSIENT_EXCEPTIONS as exc:
                record = self._charge(
                    st, classify_error(exc), f"{type(exc).__name__}: {exc}"
                )
                if record is not None:
                    yield record
                continue
            yield self._finalize(rec_dict, st)

    # -- pool path -----------------------------------------------------
    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.jobs)

    @staticmethod
    def _kill_pool(executor: ProcessPoolExecutor) -> None:
        """Hard-kill every worker and tear the executor down.

        The only portable way to reclaim a worker wedged in native code or
        ``sleep``; ``SIGKILL``-ed processes join promptly, so a blocking
        shutdown is safe.
        """
        for proc in list((getattr(executor, "_processes", None) or {}).values()):
            try:
                proc.kill()
            except Exception:  # noqa: BLE001 — already-dead worker
                pass
        try:
            executor.shutdown(wait=True, cancel_futures=True)
        except Exception:  # noqa: BLE001 — broken pools may raise on shutdown
            pass

    def _consume(
        self, fut: Future, st: _CellState, emit: List[ExperimentRecord]
    ) -> bool:
        """Resolve one completed future; returns True if the pool is broken."""
        exc = fut.exception()
        if exc is None:
            emit.append(self._finalize(fut.result(), st))
            return False
        if isinstance(exc, BrokenExecutor):
            st.recycles += 1
        kind = classify_error(exc)
        record = self._charge(st, kind, f"{type(exc).__name__}: {exc}")
        if record is not None:
            emit.append(record)
        return isinstance(exc, BrokenExecutor)

    def _recycle(
        self,
        executor: ProcessPoolExecutor,
        in_flight: Dict[Future, _CellState],
        deadlines: Dict[Future, float],
        overdue: Set[Future],
        pool_broken: bool,
        emit: List[ExperimentRecord],
    ) -> None:
        """Tear the pool down and requeue/settle every in-flight cell.

        Completed futures are drained first — results computed before the
        collapse are retrievable from a broken pool and must reach the sink
        rather than be recomputed.
        """
        for fut in [f for f in list(in_flight) if f.done()]:
            st = in_flight.pop(fut)
            deadlines.pop(fut, None)
            pool_broken |= self._consume(fut, st, emit)
        self._kill_pool(executor)
        for fut, st in list(in_flight.items()):
            st.recycles += 1
            if fut in overdue:
                record = self._charge(
                    st,
                    "timeout",
                    f"CellTimeout: exceeded {self.policy.timeout_s}s wall clock "
                    f"(attempt {st.attempt})",
                )
                if record is not None:
                    emit.append(record)
            elif pool_broken:
                record = self._charge(
                    st, "worker-death", "BrokenProcessPool: worker died mid-cell"
                )
                if record is not None:
                    emit.append(record)
            else:
                # Collateral of a sibling's timeout: requeue without charging
                # the cell's retry budget.
                self._queue.appendleft(st)
        in_flight.clear()
        deadlines.clear()
        self.stats.pool_rebuilds += 1

    def _wait_timeout(
        self, deadlines: Dict[Future, float], now: float
    ) -> Optional[float]:
        """How long ``wait()`` may block before a deadline or backoff expiry."""
        candidates = [dl - now for dl in deadlines.values()]
        candidates += [
            st.ready_at - now for st in self._queue if st.ready_at > now
        ]
        if not candidates:
            return None
        return max(0.0, min(candidates))

    def _iter_pool(self) -> Iterator[ExperimentRecord]:
        chaos_dict = self.chaos.to_dict() if self.chaos is not None else None
        executor: Optional[ProcessPoolExecutor] = self._new_executor()
        in_flight: Dict[Future, _CellState] = {}
        deadlines: Dict[Future, float] = {}
        try:
            while self._queue or in_flight:
                # Windowed submission (at most ``jobs`` in flight): per-cell
                # deadlines start at submit time, so cells must not sit
                # queued inside the executor behind busy workers.
                submit_broken = False
                if not self._tripped():
                    now = time.monotonic()
                    while len(in_flight) < self.jobs:
                        st = self._pop_ready(now)
                        if st is None:
                            break
                        try:
                            fut = executor.submit(
                                _fleet_worker, st.spec.to_dict(), st.attempt, chaos_dict
                            )
                        except BrokenExecutor:
                            self._queue.appendleft(st)
                            submit_broken = True
                            break
                        in_flight[fut] = st
                        if self.policy.timeout_s is not None:
                            deadlines[fut] = time.monotonic() + self.policy.timeout_s

                emit: List[ExperimentRecord] = []
                pool_broken = submit_broken
                if in_flight:
                    done, _ = wait(
                        set(in_flight),
                        timeout=self._wait_timeout(deadlines, time.monotonic()),
                        return_when=FIRST_COMPLETED,
                    )
                    for fut in done:
                        st = in_flight.pop(fut)
                        deadlines.pop(fut, None)
                        pool_broken |= self._consume(fut, st, emit)
                elif not pool_broken:
                    if self._tripped() or not self._queue:
                        break
                    # Every queued cell is waiting out its retry backoff.
                    time.sleep(
                        max(
                            0.0,
                            min(st.ready_at for st in self._queue)
                            - time.monotonic(),
                        )
                    )
                    continue

                now = time.monotonic()
                overdue = {f for f, dl in deadlines.items() if now >= dl}
                if pool_broken or overdue:
                    self._recycle(
                        executor, in_flight, deadlines, overdue, pool_broken, emit
                    )
                    executor = None
                    for record in emit:
                        yield record
                    if self.stats.pool_rebuilds > self.policy.max_pool_rebuilds:
                        # Repeated collapse: the pool substrate itself is
                        # suspect — finish in-process.
                        self.stats.degraded_to_serial = True
                        yield from self._iter_serial()
                        return
                    executor = self._new_executor()
                else:
                    for record in emit:
                        yield record
            if self._tripped() and self._queue:
                self._abort_remaining()
        finally:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
