"""Named registries for circuits, trojan designs, and detector suites.

A spec references everything by *name*; this module owns the name → object
mapping.  Adding a new benchmark substrate, HT design, or detector suite is
one ``@register`` call instead of CLI surgery::

    from repro.api import CIRCUITS

    @CIRCUITS.register("my_soc")
    def my_soc():
        return build_my_soc_circuit()

:func:`resolve_circuit` is the single resolution path for the whole repo
(library, CLI, and campaign runner alike): built-in benchmark names from
``repro.bench.BENCHMARKS`` — which now includes the former CLI-private
``c17``/``c1355``/``c6288`` extras — plus anything registered here, plus
ISCAS ``.bench`` file paths.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..bench import BENCHMARKS, load_bench
from ..detect import EvasionReport, evasion_experiment
from ..netlist.circuit import Circuit
from ..power.library import CellLibrary
from ..traces.lab import trace_detector_suite
from ..trojan.library import TrojanDesign, default_trojan_library


class Registry:
    """A named collection with a ``@register`` decorator."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, Any] = {}

    def register(self, name: str, obj: Any = None):
        """Register ``obj`` under ``name``; usable as a decorator when ``obj``
        is omitted.  Re-registering a name overwrites it (latest wins)."""
        if obj is not None:
            self._entries[name] = obj
            return obj

        def decorator(value):
            self._entries[name] = value
            return value

        return decorator

    def get(self, name: str) -> Any:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


#: Circuit factories: name -> () -> Circuit.
CIRCUITS = Registry("circuit")

#: Trojan designs: name -> TrojanDesign (or a list of them, tried in order).
TROJAN_DESIGNS = Registry("trojan design")

#: Detector suites: name -> callable(golden, infected, library, *,
#: additive_gates, n_chips, seed) -> EvasionReport.
DETECTORS = Registry("detector suite")


for _name, _factory in BENCHMARKS.items():
    CIRCUITS.register(_name, _factory)

for _design in default_trojan_library():
    TROJAN_DESIGNS.register(_design.name, _design)


def _mode_detector(mode: str):
    def run(
        golden: Circuit,
        infected: Circuit,
        library: CellLibrary,
        *,
        additive_gates: int = 16,
        n_chips: int = 30,
        seed: int = 37,
    ) -> EvasionReport:
        return evasion_experiment(
            golden,
            infected,
            library,
            additive_gates=additive_gates,
            n_chips=n_chips,
            seed=seed,
            mode=mode,
        )

    run.__name__ = f"{mode}_detector_suite"
    return run


DETECTORS.register("paper", _mode_detector("paper"))
DETECTORS.register("structural", _mode_detector("structural"))
#: Per-cycle power-trace suite (TVLA + keyed distinguishers) — the
#: side-channel lab of :mod:`repro.traces`.
DETECTORS.register("traces", trace_detector_suite)


_SIZED_DESIGN = re.compile(r"^(counter|comb)(\d+)$")


def circuit_ref_known(ref: str) -> bool:
    """Cheap existence check (no circuit construction): registered name or
    an existing file path."""
    return ref in CIRCUITS or Path(ref).exists()


def ensure_circuit_ref(ref: str) -> None:
    """Raise the canonical unknown-circuit error unless ``ref`` resolves."""
    if not circuit_ref_known(ref):
        raise ValueError(
            f"unknown circuit {ref!r}: not a registered benchmark "
            f"({', '.join(CIRCUITS.names())}) and no such file"
        )


def resolve_circuit(ref: str) -> Circuit:
    """Resolve a circuit reference: registry name or ``.bench`` file path."""
    ensure_circuit_ref(ref)
    if ref in CIRCUITS:
        return CIRCUITS.get(ref)()
    return load_bench(Path(ref))


def resolve_designs(ref: Optional[str]) -> Optional[List[TrojanDesign]]:
    """Resolve a trojan design reference to the list Algorithm 2 will try.

    ``None`` means "attacker's choice": the full default library, largest
    design first.  Unregistered ``counterN``/``combN`` names instantiate
    parametrically, so e.g. ``counter7`` works without prior registration.
    """
    if ref is None:
        return None
    if ref in TROJAN_DESIGNS:
        entry = TROJAN_DESIGNS.get(ref)
        return list(entry) if isinstance(entry, (list, tuple)) else [entry]
    match = _SIZED_DESIGN.match(ref)
    if match:
        return [TrojanDesign(ref, match.group(1), int(match.group(2)))]
    raise ValueError(
        f"unknown trojan design {ref!r}; registered: {TROJAN_DESIGNS.names()} "
        "(or parametric counterN / combN)"
    )
