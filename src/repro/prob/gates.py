"""Per-gate-type signal-probability transfer functions.

This is the paper's "gate library": *"we develop a library comprising of
basic and complex gates. Each gate computes the probabilities (Pg=0, Pg=1) at
its output node based on the probabilities of signals at its inputs"*
(Sec. II-B.2).  Inputs are assumed statistically independent — the standard
assumption in signal-probability analysis, also made by the paper; the
Monte-Carlo estimator in :mod:`repro.prob.montecarlo` quantifies the error
this introduces on reconvergent circuits.

All functions take/return P(signal = 1); P(= 0) is the complement.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..netlist.gate import GateType


def p_and(p_inputs: Sequence[float]) -> float:
    """P(AND = 1) = product of input one-probabilities."""
    out = 1.0
    for p in p_inputs:
        out *= p
    return out


def p_or(p_inputs: Sequence[float]) -> float:
    """P(OR = 1) = 1 - product of input zero-probabilities."""
    out = 1.0
    for p in p_inputs:
        out *= 1.0 - p
    return 1.0 - out


def p_xor(p_inputs: Sequence[float]) -> float:
    """P(XOR = 1) via the parity recurrence p' = p + q - 2 p q."""
    out = 0.0
    for p in p_inputs:
        out = out + p - 2.0 * out * p
    return out


def p_not(p_inputs: Sequence[float]) -> float:
    return 1.0 - p_inputs[0]


def p_buff(p_inputs: Sequence[float]) -> float:
    return p_inputs[0]


def p_mux(p_inputs: Sequence[float]) -> float:
    """P(MUX = 1) = (1 - Ps) Pd0 + Ps Pd1 for inputs (d0, d1, select)."""
    d0, d1, sel = p_inputs
    return (1.0 - sel) * d0 + sel * d1


TRANSFER: Dict[GateType, Callable[[Sequence[float]], float]] = {
    GateType.AND: p_and,
    GateType.NAND: lambda ps: 1.0 - p_and(ps),
    GateType.OR: p_or,
    GateType.NOR: lambda ps: 1.0 - p_or(ps),
    GateType.XOR: p_xor,
    GateType.XNOR: lambda ps: 1.0 - p_xor(ps),
    GateType.NOT: p_not,
    GateType.BUFF: p_buff,
    GateType.MUX: p_mux,
    GateType.TIE0: lambda ps: 0.0,
    GateType.TIE1: lambda ps: 1.0,
}


def gate_output_probability(gate_type: GateType, p_inputs: Sequence[float]) -> float:
    """P(output = 1) for ``gate_type`` under input independence.

    DFF outputs are handled by the caller (steady-state pass-through of the
    ``d`` probability), because they need circuit context.
    """
    try:
        fn = TRANSFER[gate_type]
    except KeyError:
        raise ValueError(f"no probability transfer function for {gate_type}") from None
    p = fn(p_inputs)
    # Clamp tiny floating excursions so downstream thresholds are robust.
    if p < 0.0:
        return 0.0
    if p > 1.0:
        return 1.0
    return p
