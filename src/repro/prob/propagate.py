"""Topological signal-probability propagation.

Implements the paper's probability computation (Algorithm 1 lines 2-3):
primary inputs are assigned P(=1) = 0.5 ("similar to other approaches in this
field, we also assume that the signal probability at each primary input is
0.5") and every gate's output probability is derived from its inputs via the
gate library in :mod:`repro.prob.gates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from .gates import gate_output_probability

#: Default primary-input one-probability, per the paper.
DEFAULT_PI_PROBABILITY = 0.5


@dataclass(frozen=True)
class NodeProbability:
    """Signal probabilities at one node (paper notation: P(Ni=0), P(Ni=1))."""

    net: str
    p_one: float

    @property
    def p_zero(self) -> float:
        return 1.0 - self.p_one

    def extremity(self) -> float:
        """max(P0, P1) — how close the node sits to a constant."""
        return max(self.p_one, self.p_zero)


def signal_probabilities(
    circuit: Circuit,
    pi_probabilities: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """P(net = 1) for every net, PIs defaulting to 0.5.

    DFF outputs are given their steady-state approximation: for the ripple
    counter the paper uses, each stage divides toggle frequency by two but the
    *level* probability of a counter bit is 0.5 — unless it is never clocked,
    which trigger analysis handles separately.  A fixed point over the
    (possibly cyclic through DFFs) state is computed by iteration.
    """
    overrides = dict(pi_probabilities or {})
    probs: Dict[str, float] = {}
    order = circuit.topological_order()

    dffs = [g.name for g in circuit.gates() if g.gate_type is GateType.DFF]
    # Initial guess for sequential nodes.
    for dff in dffs:
        probs[dff] = 0.5

    def sweep() -> float:
        """One topological pass; returns max change on DFF nodes."""
        for net in order:
            gate = circuit.gate(net)
            if gate.gate_type is GateType.INPUT:
                probs[net] = overrides.get(net, DEFAULT_PI_PROBABILITY)
            elif gate.gate_type is GateType.DFF:
                continue  # updated below from its d input
            else:
                p_in = [probs[i] for i in gate.inputs]
                probs[net] = gate_output_probability(gate.gate_type, p_in)
        delta = 0.0
        for dff in dffs:
            d_net = circuit.gate(dff).inputs[0]
            new = probs.get(d_net, 0.5)
            delta = max(delta, abs(new - probs[dff]))
            probs[dff] = new
        return delta

    if dffs:
        for _ in range(64):
            if sweep() < 1e-12:
                break
    else:
        sweep()
    return probs


def node_probabilities(
    circuit: Circuit,
    pi_probabilities: Optional[Mapping[str, float]] = None,
) -> Dict[str, NodeProbability]:
    """Convenience wrapper returning :class:`NodeProbability` records."""
    return {
        net: NodeProbability(net, p)
        for net, p in signal_probabilities(circuit, pi_probabilities).items()
    }


def rare_nodes(
    circuit: Circuit,
    threshold: float,
    pi_probabilities: Optional[Mapping[str, float]] = None,
    include_inputs: bool = False,
) -> List[Tuple[str, float]]:
    """Nets whose signal probability is ≥ ``threshold`` for either polarity.

    This is the candidate-gate selection of Algorithm 1 lines 4-10: a node
    joins the candidate set C if P(Ni=0) ≥ Pth (set X) or P(Ni=1) ≥ Pth
    (set Y).  Returns ``(net, p_one)`` sorted by extremity, most extreme first.
    """
    if not 0.5 < threshold <= 1.0:
        raise ValueError(f"Pth must be in (0.5, 1.0], got {threshold}")
    probs = signal_probabilities(circuit, pi_probabilities)
    found: List[Tuple[str, float]] = []
    for net, p_one in probs.items():
        gate = circuit.gate(net)
        if gate.is_input and not include_inputs:
            continue
        if gate.is_constant:
            continue
        if p_one >= threshold or (1.0 - p_one) >= threshold:
            found.append((net, p_one))
    found.sort(key=lambda item: -max(item[1], 1.0 - item[1]))
    return found
