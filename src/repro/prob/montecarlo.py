"""Monte-Carlo signal-probability and activity estimation.

Cross-checks the analytic propagation of :mod:`repro.prob.propagate` (which
assumes input independence and is exact only on trees) by direct sampling, and
measures *empirical* toggle rates that feed the dynamic-power model when
simulation-based activity is requested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..sim.bitsim import BitSimulator, random_patterns, toggle_matrix
from ..sim.seqsim import SequentialSimulator


@dataclass(frozen=True)
class Estimate:
    """A sampled probability with its 95% normal-approximation half-width."""

    value: float
    half_width: float
    samples: int

    def contains(self, p: float) -> bool:
        return abs(p - self.value) <= self.half_width

    def interval(self) -> Tuple[float, float]:
        return (max(0.0, self.value - self.half_width), min(1.0, self.value + self.half_width))


def _half_width(p_hat: float, n: int) -> float:
    if n <= 0:
        return 1.0
    return 1.96 * math.sqrt(max(p_hat * (1.0 - p_hat), 1.0 / n) / n)


def _biased_patterns(
    circuit: Circuit,
    n_rows: int,
    rng: np.random.Generator,
    pi_probabilities: Optional[Mapping[str, float]],
) -> np.ndarray:
    """Random 0/1 rows, one column per PI, biased per ``pi_probabilities``.

    All columns come from a single ``rng.random((n_rows, n_in))`` draw — one
    RNG call instead of one per input column.
    """
    overrides = pi_probabilities or {}
    thresholds = np.array(
        [overrides.get(pi, 0.5) for pi in circuit.inputs], dtype=np.float64
    )
    return (rng.random((n_rows, len(circuit.inputs))) < thresholds).astype(np.uint8)


def mc_signal_probabilities(
    circuit: Circuit,
    n_samples: int = 4096,
    rng: Optional[np.random.Generator] = None,
    pi_probabilities: Optional[Mapping[str, float]] = None,
) -> Dict[str, Estimate]:
    """Sampled P(net = 1) for every net of a circuit.

    Combinational circuits are sampled with independent patterns; sequential
    (Trojan-infected) circuits are sampled along one random vector sequence,
    so the flip-flop state evolves as it would in operation.  Both paths run
    on the compiled levelized engine.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    patterns = _biased_patterns(circuit, n_samples, rng, pi_probabilities)
    if circuit.is_sequential:
        watch = list(circuit.nets)
        traces = SequentialSimulator(circuit).run_sequences_nets(
            patterns[np.newaxis], watch
        )[0]
        means = traces.mean(axis=0)
        return {
            net: Estimate(float(means[i]), _half_width(float(means[i]), n_samples), n_samples)
            for i, net in enumerate(watch)
        }
    values = BitSimulator(circuit).run_full(patterns)
    return {
        net: Estimate(float(bits.mean()), _half_width(float(bits.mean()), n_samples), n_samples)
        for net, bits in values.items()
    }


def mc_toggle_rates(
    circuit: Circuit,
    n_vectors: int = 4096,
    rng: Optional[np.random.Generator] = None,
    pi_probabilities: Optional[Mapping[str, float]] = None,
) -> Dict[str, Estimate]:
    """Empirical per-net toggle rate over a random vector *sequence*.

    The toggle rate of net s is P(s changes between consecutive vectors) —
    the α that multiplies C·Vdd²·f in the dynamic-power model.  Works for
    sequential circuits too (DFF state evolves along the sequence).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    sequence = _biased_patterns(circuit, n_vectors, rng, pi_probabilities)

    watch = list(circuit.nets)
    if circuit.is_sequential:
        traces = SequentialSimulator(circuit).run_sequences_nets(
            sequence[np.newaxis], watch
        )[0]  # (n_vectors, n_nets) — one batched unpack, no per-net stepping
    else:
        traces = BitSimulator(circuit).run_nets(sequence, watch)
    if n_vectors > 1:
        # One batched XOR over all watched rows (the shared toggle kernel of
        # repro.traces) instead of a per-net bits[1:] != bits[:-1] loop.
        rates = toggle_matrix(traces, axis=0).mean(axis=0)
    else:
        rates = np.zeros(len(watch))
    return {
        net: Estimate(
            float(rates[i]), _half_width(float(rates[i]), n_vectors - 1), n_vectors - 1
        )
        for i, net in enumerate(watch)
    }
