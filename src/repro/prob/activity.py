"""Switching-activity (transition-density) computation.

TrojanZero is *switching-activity-aware*: both candidate selection and the
dynamic-power model consume per-net transition probabilities.  Under the
standard temporal-independence assumption, the probability that a net toggles
between two consecutive random vectors is::

    alpha(s) = 2 · P(s=1) · P(s=0)

For DFF-based ripple-counter stages the level probability is 0.5 but the
*toggle* rate halves per stage and is bounded by the clock net's own activity;
:func:`switching_activity` handles that case structurally.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from .propagate import signal_probabilities


def transition_probability(p_one: float) -> float:
    """alpha = 2 p (1-p): toggle probability of an independent net per cycle."""
    return 2.0 * p_one * (1.0 - p_one)


def switching_activity(
    circuit: Circuit,
    pi_probabilities: Optional[Mapping[str, float]] = None,
    probabilities: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Per-net toggle probability per applied vector.

    Combinational nets use ``2 p (1-p)``.  DFF outputs use the ripple-counter
    relation: a stage toggles only on a rising edge of its clock net, so its
    activity is half the clock net's activity (a rising edge is half of all
    toggles, and each edge flips the state exactly once for the
    ``d = NOT(q)`` toggle configuration).
    """
    probs = dict(probabilities) if probabilities is not None else signal_probabilities(
        circuit, pi_probabilities
    )
    activity: Dict[str, float] = {}
    order = circuit.topological_order()
    # Two passes so DFF chains clocked by other DFFs settle (ripple counters).
    for _ in range(2):
        for net in order:
            gate = circuit.gate(net)
            if gate.gate_type is GateType.DFF:
                clk = gate.inputs[1]
                clk_activity = activity.get(clk, transition_probability(probs.get(clk, 0.5)))
                activity[net] = 0.5 * clk_activity
            elif gate.gate_type in (GateType.NOT, GateType.BUFF):
                # Inverters/buffers toggle exactly when their input toggles —
                # essential for ripple-counter chains, where the level-based
                # 2p(1-p) estimate would wrongly reset the activity to 0.5.
                src = gate.inputs[0]
                activity[net] = activity.get(
                    src, transition_probability(probs.get(src, 0.5))
                )
            elif gate.is_constant:
                activity[net] = 0.0
            else:
                activity[net] = transition_probability(probs[net])
    return activity
