"""Signal probability, switching activity, and Monte-Carlo estimation."""

from .activity import switching_activity, transition_probability
from .gates import gate_output_probability
from .montecarlo import Estimate, mc_signal_probabilities, mc_toggle_rates
from .propagate import (
    DEFAULT_PI_PROBABILITY,
    NodeProbability,
    node_probabilities,
    rare_nodes,
    signal_probabilities,
)

__all__ = [
    "gate_output_probability",
    "signal_probabilities",
    "node_probabilities",
    "rare_nodes",
    "NodeProbability",
    "DEFAULT_PI_PROBABILITY",
    "switching_activity",
    "transition_probability",
    "Estimate",
    "mc_signal_probabilities",
    "mc_toggle_rates",
]
