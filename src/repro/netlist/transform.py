"""Structural netlist transforms.

These implement the circuit-editing moves the TrojanZero flow relies on:

* :func:`tie_net_to_constant` — the core move of Algorithm 1: replace the
  driver of a net by a TIE0/TIE1 cell ("connect the node to logic 0/1").
* :func:`strip_dead_logic` — remove gates whose output no longer reaches any
  primary output ("each of the previous gates is eliminated safely if its
  output is not connected to any other node of the circuit").
* :func:`propagate_constants` — synthesis-style constant folding, used by the
  light synthesis pass to estimate the power/area the defender's tool would
  report for the modified circuit.
* :func:`collapse_buffers` / :func:`collapse_inverter_pairs` — cleanup passes.

All transforms mutate the circuit they are given; call ``circuit.copy()``
first to preserve the original (Algorithm 1 reverts failed removals this way).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .circuit import Circuit, NetlistError
from .gate import Gate, GateType

#: Identity / dominance behaviour of a constant on each variadic gate type:
#: maps (gate_type, constant_value) -> "dominate0"/"dominate1"/"drop".
_CONST_BEHAVIOUR = {
    (GateType.AND, 0): "dominate0",
    (GateType.AND, 1): "drop",
    (GateType.NAND, 0): "dominate1",
    (GateType.NAND, 1): "drop",
    (GateType.OR, 1): "dominate1",
    (GateType.OR, 0): "drop",
    (GateType.NOR, 1): "dominate0",
    (GateType.NOR, 0): "drop",
}


def tie_net_to_constant(circuit: Circuit, net: str, value: int) -> None:
    """Replace the driver of ``net`` with a TIE0/TIE1 constant cell.

    The fan-in of the original driver is left in place; follow up with
    :func:`strip_dead_logic` to harvest unobservable gates (Algorithm 1 line
    14: "Remove preceding gates and update circuit").
    """
    if value not in (0, 1):
        raise ValueError(f"constant must be 0 or 1, got {value!r}")
    tie = GateType.TIE1 if value else GateType.TIE0
    circuit.replace_gate(net, tie, ())


def strip_dead_logic(circuit: Circuit, protect: Iterable[str] = ()) -> List[str]:
    """Remove every logic gate that cannot reach a primary output.

    Primary inputs are never removed (their pads exist regardless).  Returns
    the names of removed gates in removal order.
    """
    protected: Set[str] = set(protect) | set(circuit.outputs)
    live: Set[str] = set()
    stack = [n for n in protected if circuit.has_net(n)]
    while stack:
        net = stack.pop()
        if net in live:
            continue
        live.add(net)
        stack.extend(circuit.gate(net).inputs)

    removed: List[str] = []
    # Peel dead gates in reverse-topological waves so fanout constraints hold.
    changed = True
    while changed:
        changed = False
        for net in list(circuit.nets):
            gate = circuit.gate(net)
            if gate.is_input or net in live:
                continue
            if circuit.fanout(net):
                continue
            circuit.remove_gate(net)
            removed.append(net)
            changed = True
    return removed


def propagate_constants(circuit: Circuit) -> List[str]:
    """Fold TIE0/TIE1 cells through downstream logic (synthesis-style).

    This is what a power-optimizing synthesis tool does to a netlist with tied
    nets; TrojanZero's *attacker* does **not** run it on the fabricated circuit
    (the tie cells physically remain), but the pass is needed to (a) verify the
    logical effect of a tie and (b) build reduced reference models.

    Returns the list of nets whose drivers were simplified.
    """
    simplified: List[str] = []
    changed = True
    while changed:
        changed = False
        const_nets: Dict[str, int] = {
            g.name: (1 if g.gate_type is GateType.TIE1 else 0)
            for g in circuit.logic_gates()
            if g.is_constant
        }
        if not const_nets:
            break
        for net in circuit.topological_order():
            gate = circuit.gate(net)
            if gate.is_input or gate.is_constant or gate.is_sequential:
                continue
            const_ins = [i for i in gate.inputs if i in const_nets]
            if not const_ins:
                continue
            new_gate = _fold_gate(gate, const_nets)
            if new_gate is not None:
                circuit.replace_gate(net, new_gate[0], new_gate[1])
                simplified.append(net)
                changed = True
    return simplified


def _fold_gate(
    gate: Gate, const_nets: Dict[str, int]
) -> Optional[Tuple[GateType, Tuple[str, ...]]]:
    """Compute the simplified (type, inputs) for a gate with constant inputs.

    Returns ``None`` if no simplification applies.
    """
    gt = gate.gate_type
    if gt in (GateType.NOT, GateType.BUFF):
        src = gate.inputs[0]
        if src in const_nets:
            value = const_nets[src]
            if gt is GateType.NOT:
                value = 1 - value
            return (GateType.TIE1 if value else GateType.TIE0, ())
        return None

    if gt is GateType.MUX:
        d0, d1, sel = gate.inputs
        if sel in const_nets:
            chosen = d1 if const_nets[sel] else d0
            if chosen in const_nets:
                return (GateType.TIE1 if const_nets[chosen] else GateType.TIE0, ())
            return (GateType.BUFF, (chosen,))
        if d0 in const_nets and d1 in const_nets:
            v0, v1 = const_nets[d0], const_nets[d1]
            if v0 == v1:
                return (GateType.TIE1 if v0 else GateType.TIE0, ())
            if v0 == 0 and v1 == 1:
                return (GateType.BUFF, (sel,))
            return (GateType.NOT, (sel,))
        return None

    if gt in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
        remaining: List[str] = []
        for src in gate.inputs:
            if src in const_nets:
                behaviour = _CONST_BEHAVIOUR[(gt, const_nets[src])]
                if behaviour == "dominate0":
                    return (GateType.TIE0, ())
                if behaviour == "dominate1":
                    return (GateType.TIE1, ())
                # "drop": identity element, skip the constant input
            else:
                remaining.append(src)
        if len(remaining) == len(gate.inputs):
            return None
        inverting = gt in (GateType.NAND, GateType.NOR)
        if not remaining:
            # All inputs were identity constants: AND()=1, NAND()=0, OR()=0, NOR()=1.
            base = 1 if gt in (GateType.AND, GateType.NAND) else 0
            value = 1 - base if inverting else base
            return (GateType.TIE1 if value else GateType.TIE0, ())
        if len(remaining) == 1:
            return (GateType.NOT if inverting else GateType.BUFF, (remaining[0],))
        return (gt, tuple(remaining))

    if gt in (GateType.XOR, GateType.XNOR):
        parity = 0
        remaining = []
        for src in gate.inputs:
            if src in const_nets:
                parity ^= const_nets[src]
            else:
                remaining.append(src)
        if len(remaining) == len(gate.inputs):
            return None
        invert = (gt is GateType.XNOR) ^ (parity == 1)
        if not remaining:
            return (GateType.TIE1 if invert else GateType.TIE0, ())
        if len(remaining) == 1:
            return (GateType.NOT if invert else GateType.BUFF, (remaining[0],))
        return (GateType.XNOR if invert else GateType.XOR, tuple(remaining))

    return None


def collapse_buffers(circuit: Circuit) -> int:
    """Bypass BUFF gates whose output is not a primary output.  Returns count."""
    collapsed = 0
    for net in list(circuit.nets):
        if not circuit.has_net(net):
            continue
        gate = circuit.gate(net)
        if gate.gate_type is not GateType.BUFF or net in circuit.outputs:
            continue
        source = gate.inputs[0]
        for reader in list(circuit.fanout(net)):
            circuit.rewire_input(reader, net, source)
        if not circuit.fanout(net):
            circuit.remove_gate(net)
            collapsed += 1
    return collapsed


def collapse_inverter_pairs(circuit: Circuit) -> int:
    """Rewire readers of NOT(NOT(x)) chains directly to x.  Returns count."""
    collapsed = 0
    for net in list(circuit.nets):
        if not circuit.has_net(net):
            continue
        gate = circuit.gate(net)
        if gate.gate_type is not GateType.NOT:
            continue
        inner = circuit.gate(gate.inputs[0])
        if inner.gate_type is not GateType.NOT:
            continue
        source = inner.inputs[0]
        if net in circuit.outputs:
            continue
        for reader in list(circuit.fanout(net)):
            circuit.rewire_input(reader, net, source)
        if not circuit.fanout(net):
            circuit.remove_gate(net)
            collapsed += 1
    return collapsed


def insert_mux_on_net(
    circuit: Circuit,
    victim: str,
    alternate: str,
    select: str,
    mux_name: Optional[str] = None,
) -> str:
    """Splice a 2:1 MUX onto ``victim``: readers see MUX(victim, alternate, select).

    This is the payload mechanism of the Fig. 4 Trojan — when ``select`` is 0
    the circuit behaves normally; when the trigger raises ``select`` the
    corrupted ``alternate`` value drives the victim's fanout.

    Readers inside the fan-in cones of ``alternate`` or ``select`` keep the
    original connection: rewiring them would wrap the MUX's own inputs around
    its output and create a combinational cycle (e.g. the inverting payload's
    ``NOT(victim)`` gate must keep reading the raw victim).

    When the victim is a primary output, the chip's pad keeps its name: the
    original driver is renamed ``<victim>_pre`` and the MUX takes over the
    victim's name, so the circuit interface is unchanged (the defender
    compares outputs by position/name).

    Returns the name of the new MUX net.
    """
    if not circuit.has_net(victim):
        raise NetlistError(f"victim net {victim!r} does not exist")
    renamed_output = False
    if victim in circuit.outputs:
        pre = _fresh_name(circuit, f"{victim}_pre")
        circuit.rename_net(victim, pre)  # also fixes alternate/select references
        alternate = pre if alternate == victim else alternate
        select = pre if select == victim else select
        mux = victim
        victim = pre
        renamed_output = True
    else:
        mux = mux_name or _fresh_name(circuit, f"{victim}_tz_mux")
    excluded = _combinational_fanin(circuit, alternate) | _combinational_fanin(
        circuit, select
    )
    readers = [r for r in circuit.fanout(victim) if r not in excluded]
    circuit.add_gate(mux, GateType.MUX, (victim, alternate, select))
    for reader in readers:
        circuit.rewire_input(reader, victim, mux)
    if renamed_output:
        # rename_net left the pre-MUX net on the output list; the pad belongs
        # to the MUX (which carries the original name).
        circuit.unset_output(victim)
        circuit.set_output(mux)
    return mux


def _combinational_fanin(circuit: Circuit, net: str) -> Set[str]:
    """Fan-in cone of ``net`` that stops at sequential elements.

    Only combinational paths can form illegal cycles; a DFF legitimately
    breaks the loop (the Fig. 4 counter is clocked *by* host logic that the
    payload MUX may feed).
    """
    cone: Set[str] = set()
    stack = [net]
    while stack:
        current = stack.pop()
        if current in cone:
            continue
        cone.add(current)
        gate = circuit.gate(current)
        if gate.is_sequential:
            continue
        stack.extend(gate.inputs)
    return cone


def _fresh_name(circuit: Circuit, base: str) -> str:
    """Return ``base`` or ``base_k`` — the first name not already in use."""
    if not circuit.has_net(base):
        return base
    k = 2
    while circuit.has_net(f"{base}_{k}"):
        k += 1
    return f"{base}_{k}"
