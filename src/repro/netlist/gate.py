"""Gate-level primitives: gate types, logic evaluation, and the Gate record.

The gate vocabulary follows the ISCAS85 ``.bench`` format (AND, NAND, OR, NOR,
XOR, XNOR, NOT, BUFF) extended with the cells TrojanZero needs for Trojan
insertion: constants (TIE0/TIE1), 2:1 multiplexers (MUX), and D flip-flops
(DFF) for the asynchronous counter trigger of Fig. 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple


class GateType(enum.Enum):
    """Primitive gate/cell types understood by every layer of the library."""

    INPUT = "INPUT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUFF = "BUFF"
    MUX = "MUX"  # inputs: (d0, d1, select)
    TIE0 = "TIE0"
    TIE1 = "TIE1"
    DFF = "DFF"  # inputs: (d, clk); output toggles state on rising clk edge

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Gate types whose output is a pure function of current inputs.
COMBINATIONAL_TYPES = frozenset(
    {
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
        GateType.NOT,
        GateType.BUFF,
        GateType.MUX,
        GateType.TIE0,
        GateType.TIE1,
    }
)

#: Gate types that hold state.
SEQUENTIAL_TYPES = frozenset({GateType.DFF})

#: Gate types that accept an arbitrary number (>= 2) of inputs.
VARIADIC_TYPES = frozenset(
    {GateType.AND, GateType.NAND, GateType.OR, GateType.NOR, GateType.XOR, GateType.XNOR}
)

#: Exact input arity for the fixed-arity types.
FIXED_ARITY: Dict[GateType, int] = {
    GateType.INPUT: 0,
    GateType.NOT: 1,
    GateType.BUFF: 1,
    GateType.MUX: 3,
    GateType.TIE0: 0,
    GateType.TIE1: 0,
    GateType.DFF: 2,
}

#: Types whose output inverts the "natural" function (used by probability and
#: D-calculus code to share AND/OR kernels).
INVERTING_TYPES = frozenset({GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT})


def _eval_and(bits: Sequence[int]) -> int:
    out = 1
    for b in bits:
        out &= b
    return out


def _eval_or(bits: Sequence[int]) -> int:
    out = 0
    for b in bits:
        out |= b
    return out


def _eval_xor(bits: Sequence[int]) -> int:
    out = 0
    for b in bits:
        out ^= b
    return out


#: Scalar (single-bit) evaluation functions; values are plain ints 0/1.
_EVAL: Dict[GateType, Callable[[Sequence[int]], int]] = {
    GateType.AND: _eval_and,
    GateType.NAND: lambda bits: 1 - _eval_and(bits),
    GateType.OR: _eval_or,
    GateType.NOR: lambda bits: 1 - _eval_or(bits),
    GateType.XOR: _eval_xor,
    GateType.XNOR: lambda bits: 1 - _eval_xor(bits),
    GateType.NOT: lambda bits: 1 - bits[0],
    GateType.BUFF: lambda bits: bits[0],
    GateType.MUX: lambda bits: bits[1] if bits[2] else bits[0],
    GateType.TIE0: lambda bits: 0,
    GateType.TIE1: lambda bits: 1,
}


def evaluate_gate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate a combinational gate on scalar 0/1 inputs.

    Raises ``ValueError`` for sequential or INPUT types, which have no
    combinational function.
    """
    try:
        fn = _EVAL[gate_type]
    except KeyError:
        raise ValueError(f"{gate_type} has no combinational evaluation") from None
    return fn(inputs)


def check_arity(gate_type: GateType, n_inputs: int) -> None:
    """Raise ``ValueError`` if ``n_inputs`` is illegal for ``gate_type``."""
    if gate_type in FIXED_ARITY:
        expected = FIXED_ARITY[gate_type]
        if n_inputs != expected:
            raise ValueError(
                f"{gate_type} requires exactly {expected} input(s), got {n_inputs}"
            )
    elif gate_type in VARIADIC_TYPES:
        if n_inputs < 1:
            raise ValueError(f"{gate_type} requires at least 1 input, got {n_inputs}")
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown gate type {gate_type}")


@dataclass
class Gate:
    """One gate instance: a named output net driven by ``gate_type`` over ``inputs``.

    The gate's name doubles as the name of the net it drives (standard for
    ISCAS-style netlists, where every net has exactly one driver).
    """

    name: str
    gate_type: GateType
    inputs: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        check_arity(self.gate_type, len(self.inputs))

    @property
    def is_sequential(self) -> bool:
        return self.gate_type in SEQUENTIAL_TYPES

    @property
    def is_input(self) -> bool:
        return self.gate_type is GateType.INPUT

    @property
    def is_constant(self) -> bool:
        return self.gate_type in (GateType.TIE0, GateType.TIE1)

    def evaluate(self, input_values: Sequence[int]) -> int:
        """Scalar combinational evaluation (see :func:`evaluate_gate`)."""
        return evaluate_gate(self.gate_type, input_values)

    def with_inputs(self, new_inputs: Sequence[str]) -> "Gate":
        """Return a copy of this gate reading from ``new_inputs``."""
        return Gate(self.name, self.gate_type, tuple(new_inputs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(self.inputs)
        return f"{self.name} = {self.gate_type}({args})"
