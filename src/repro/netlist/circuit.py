"""The :class:`Circuit` container: a gate-level netlist as a named DAG.

A circuit is a set of :class:`~repro.netlist.gate.Gate` records keyed by the
net they drive, plus declared primary inputs and primary outputs.  Combinational
cycles are illegal; sequential loops through DFFs are allowed (the DFF breaks
the timing loop).

Design notes
------------
* Every net has exactly one driver (the gate of the same name).  Primary
  inputs are gates of type ``INPUT``.
* Fanout maps, topological order, and levels are computed lazily and cached;
  any mutation invalidates the caches.
* The container is deliberately mutable — Algorithm 1 of the paper repeatedly
  edits and reverts the circuit — but :meth:`copy` is cheap and transforms in
  :mod:`repro.netlist.transform` work on copies by default.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .gate import Gate, GateType


class NetlistError(Exception):
    """Raised for structurally invalid netlist operations."""


class Circuit:
    """A gate-level netlist.

    Parameters
    ----------
    name:
        Human-readable circuit name (e.g. ``"c880"``).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._gates: Dict[str, Gate] = {}
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._dirty = True
        self._topo_cache: Optional[List[str]] = None
        self._fanout_cache: Optional[Dict[str, Tuple[str, ...]]] = None
        self._level_cache: Optional[Dict[str, int]] = None
        # Compiled levelized form (repro.sim.compiled); owned by that module,
        # stored here so structural mutations drop it with the other caches.
        self._compiled_cache = None
        self._fingerprint_cache: Optional[str] = None
        # Provenance for incremental recompilation: the circuit this one was
        # copied from.  Mutations do NOT clear it — repro.sim.compiled diffs
        # against the ancestor's gate map to patch schedules instead of
        # recompiling after small edits (salvage's tie/strip trials).
        self._derived_from: Optional["Circuit"] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input net."""
        if name in self._gates:
            raise NetlistError(f"net {name!r} already exists")
        self._gates[name] = Gate(name, GateType.INPUT)
        self._inputs.append(name)
        self._invalidate()
        return name

    def add_gate(self, name: str, gate_type: GateType, inputs: Sequence[str] = ()) -> str:
        """Add a gate driving net ``name``; input nets need not exist yet."""
        if name in self._gates:
            raise NetlistError(f"net {name!r} already exists")
        if gate_type is GateType.INPUT:
            raise NetlistError("use add_input() for primary inputs")
        self._gates[name] = Gate(name, gate_type, tuple(inputs))
        self._invalidate()
        return name

    def set_output(self, name: str) -> None:
        """Mark a net as a primary output (idempotent)."""
        if name not in self._outputs:
            self._outputs.append(name)
        self._invalidate()

    def unset_output(self, name: str) -> None:
        if name in self._outputs:
            self._outputs.remove(name)
        self._invalidate()

    def remove_gate(self, name: str) -> Gate:
        """Remove the gate driving ``name``.  Fails on primary outputs or nets
        that still have fanout."""
        if name not in self._gates:
            raise NetlistError(f"no gate drives {name!r}")
        if name in self._outputs:
            raise NetlistError(f"{name!r} is a primary output; unset it first")
        fanout = self.fanout(name)
        if fanout:
            raise NetlistError(f"{name!r} still feeds {sorted(fanout)}")
        gate = self._gates.pop(name)
        if gate.is_input:
            self._inputs.remove(name)
        self._invalidate()
        return gate

    def replace_gate(self, name: str, gate_type: GateType, inputs: Sequence[str] = ()) -> None:
        """Swap the driver of ``name`` for a new gate (fanout is preserved)."""
        if name not in self._gates:
            raise NetlistError(f"no gate drives {name!r}")
        old = self._gates[name]
        if old.is_input:
            raise NetlistError("cannot replace a primary input; remove it instead")
        if gate_type is GateType.INPUT:
            raise NetlistError("cannot convert an internal net into a primary input")
        self._gates[name] = Gate(name, gate_type, tuple(inputs))
        self._invalidate()

    def rewire_input(self, gate_name: str, old_net: str, new_net: str) -> None:
        """Redirect every occurrence of ``old_net`` in ``gate_name``'s inputs."""
        gate = self.gate(gate_name)
        if old_net not in gate.inputs:
            raise NetlistError(f"{gate_name!r} does not read {old_net!r}")
        new_inputs = tuple(new_net if net == old_net else net for net in gate.inputs)
        self._gates[gate_name] = gate.with_inputs(new_inputs)
        self._invalidate()

    def rename_net(self, old: str, new: str) -> None:
        """Rename a net everywhere (driver, fanout references, PI/PO lists)."""
        if old not in self._gates:
            raise NetlistError(f"no gate drives {old!r}")
        if new in self._gates:
            raise NetlistError(f"net {new!r} already exists")
        gate = self._gates.pop(old)
        self._gates[new] = Gate(new, gate.gate_type, gate.inputs)
        for name, g in list(self._gates.items()):
            if old in g.inputs:
                self._gates[name] = g.with_inputs(
                    tuple(new if net == old else net for net in g.inputs)
                )
        self._inputs = [new if n == old else n for n in self._inputs]
        self._outputs = [new if n == old else n for n in self._outputs]
        self._invalidate()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(self._outputs)

    @property
    def nets(self) -> Tuple[str, ...]:
        return tuple(self._gates)

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise NetlistError(f"no gate drives {name!r}") from None

    def has_net(self, name: str) -> bool:
        return name in self._gates

    def gates(self) -> Iterator[Gate]:
        """All gates, including INPUT pseudo-gates."""
        return iter(self._gates.values())

    def logic_gates(self) -> Iterator[Gate]:
        """Gates that are real logic (not primary inputs)."""
        return (g for g in self._gates.values() if not g.is_input)

    def __len__(self) -> int:
        return len(self._gates)

    @property
    def num_logic_gates(self) -> int:
        return sum(1 for _ in self.logic_gates())

    @property
    def is_sequential(self) -> bool:
        return any(g.is_sequential for g in self._gates.values())

    def fanout(self, net: str) -> Tuple[str, ...]:
        """Names of gates that read ``net``."""
        return self._fanout_map().get(net, ())

    def _fanout_map(self) -> Dict[str, Tuple[str, ...]]:
        if self._fanout_cache is None:
            builder: Dict[str, List[str]] = {name: [] for name in self._gates}
            for gate in self._gates.values():
                for net in gate.inputs:
                    if net not in builder:
                        raise NetlistError(
                            f"gate {gate.name!r} reads undriven net {net!r}"
                        )
                    if gate.name not in builder[net]:
                        builder[net].append(gate.name)
            self._fanout_cache = {k: tuple(v) for k, v in builder.items()}
        return self._fanout_cache

    def topological_order(self) -> List[str]:
        """Net names in topological order (DFF outputs act as sources).

        Raises :class:`NetlistError` if a combinational cycle exists.
        """
        if self._topo_cache is None:
            indegree: Dict[str, int] = {}
            for name, gate in self._gates.items():
                if gate.is_input or gate.is_sequential or gate.is_constant:
                    indegree[name] = 0
                else:
                    indegree[name] = len(set(gate.inputs))
            ready = deque(sorted(n for n, d in indegree.items() if d == 0))
            fanout = self._fanout_map()
            order: List[str] = []
            seen_edge: Set[Tuple[str, str]] = set()
            while ready:
                net = ready.popleft()
                order.append(net)
                for reader in fanout[net]:
                    gate = self._gates[reader]
                    if gate.is_sequential:
                        continue  # DFFs never wait on their inputs
                    key = (net, reader)
                    if key in seen_edge:
                        continue
                    seen_edge.add(key)
                    indegree[reader] -= 1
                    if indegree[reader] == 0:
                        ready.append(reader)
            if len(order) != len(self._gates):
                stuck = sorted(set(self._gates) - set(order))
                raise NetlistError(f"combinational cycle through {stuck[:8]}")
            self._topo_cache = order
        return list(self._topo_cache)

    def levels(self) -> Dict[str, int]:
        """Logic depth of every net (PIs/constants/DFF outputs at level 0)."""
        if self._level_cache is None:
            levels: Dict[str, int] = {}
            for net in self.topological_order():
                gate = self._gates[net]
                if gate.is_input or gate.is_constant or gate.is_sequential:
                    levels[net] = 0
                else:
                    levels[net] = 1 + max(levels[i] for i in gate.inputs)
            self._level_cache = levels
        return dict(self._level_cache)

    def depth(self) -> int:
        """Maximum logic depth of the circuit."""
        lv = self.levels()
        return max(lv.values()) if lv else 0

    def fanin_cone(self, net: str) -> Set[str]:
        """All nets in the transitive fan-in of ``net`` (inclusive)."""
        cone: Set[str] = set()
        stack = [net]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            stack.extend(self.gate(current).inputs)
        return cone

    def fanout_cone(self, net: str) -> Set[str]:
        """All nets in the transitive fan-out of ``net`` (inclusive)."""
        cone: Set[str] = set()
        stack = [net]
        fanout = self._fanout_map()
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            stack.extend(fanout.get(current, ()))
        return cone

    def internal_nets(self) -> List[str]:
        """Nets driven by logic gates (not PIs)."""
        return [g.name for g in self.logic_gates()]

    def structural_fingerprint(self) -> str:
        """Stable hash of the netlist structure (gates + PI/PO interfaces).

        Two circuits with equal fingerprints are structurally identical —
        same gate map, same input order, same output order — regardless of
        their ``name``.  The fingerprint keys the shared compile cache in
        :mod:`repro.sim.compiled`, so unmutated copies (and edit/revert
        round-trips) reuse one compiled schedule.  Cached; any structural
        mutation invalidates it along with the other caches.
        """
        if self._fingerprint_cache is None:
            h = hashlib.blake2b(digest_size=16)
            h.update("|".join(self._inputs).encode())
            h.update(b"\x00")
            h.update("|".join(self._outputs).encode())
            for name in sorted(self._gates):
                gate = self._gates[name]
                h.update(
                    f"\x00{name}\x01{gate.gate_type.value}\x01"
                    f"{','.join(gate.inputs)}".encode()
                )
            self._fingerprint_cache = h.hexdigest()
        return self._fingerprint_cache

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep-enough copy: gates are immutable, so copying the maps suffices.

        Derived caches travel with the copy: the structures they describe are
        identical until either circuit mutates, and mutation invalidates them
        on the mutated side only (caches are replaced wholesale, never edited
        in place).  In particular the compiled simulation schedule is shared,
        so ``BitSimulator(circuit.copy())`` does not recompile cold.
        """
        dup = Circuit(name or self.name)
        dup._gates = dict(self._gates)
        dup._inputs = list(self._inputs)
        dup._outputs = list(self._outputs)
        dup._topo_cache = self._topo_cache
        dup._fanout_cache = self._fanout_cache
        dup._level_cache = self._level_cache
        dup._compiled_cache = self._compiled_cache
        dup._fingerprint_cache = self._fingerprint_cache
        dup._derived_from = self
        return dup

    def _invalidate(self) -> None:
        self._dirty = True
        self._topo_cache = None
        self._fanout_cache = None
        self._level_cache = None
        self._compiled_cache = None
        self._fingerprint_cache = None

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, net: str) -> bool:
        return net in self._gates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}: {len(self._inputs)} PI, {len(self._outputs)} PO, "
            f"{self.num_logic_gates} gates)"
        )

    def stats(self) -> Dict[str, int]:
        """Gate-type histogram plus summary counts."""
        hist: Dict[str, int] = {}
        for gate in self.logic_gates():
            hist[gate.gate_type.value] = hist.get(gate.gate_type.value, 0) + 1
        hist["#inputs"] = len(self._inputs)
        hist["#outputs"] = len(self._outputs)
        hist["#gates"] = self.num_logic_gates
        return hist
