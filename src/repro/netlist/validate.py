"""Structural lint for netlists.

:func:`validate` collects every structural defect it can find instead of
stopping at the first, so test failures and pipeline assertions read well.
"""

from __future__ import annotations

from typing import List

from .circuit import Circuit, NetlistError
from .gate import FIXED_ARITY, GateType, VARIADIC_TYPES


def validate(circuit: Circuit, require_outputs: bool = True) -> List[str]:
    """Return a list of human-readable structural problems (empty = clean)."""
    problems: List[str] = []

    if not circuit.inputs and not any(g.is_constant for g in circuit.gates()):
        problems.append("circuit has no primary inputs and no constant sources")
    if require_outputs and not circuit.outputs:
        problems.append("circuit has no primary outputs")

    known = set(circuit.nets)
    for gate in circuit.gates():
        for net in gate.inputs:
            if net not in known:
                problems.append(f"gate {gate.name!r} reads undriven net {net!r}")
        gt = gate.gate_type
        n = len(gate.inputs)
        if gt in FIXED_ARITY and n != FIXED_ARITY[gt]:
            problems.append(f"gate {gate.name!r}: {gt} arity {n}")
        elif gt in VARIADIC_TYPES and n < 1:
            problems.append(f"gate {gate.name!r}: {gt} has no inputs")
        if gt in VARIADIC_TYPES and len(set(gate.inputs)) != n and gt in (
            GateType.XOR,
            GateType.XNOR,
        ):
            problems.append(
                f"gate {gate.name!r}: duplicate inputs on parity gate "
                "(cancels and is almost certainly a bug)"
            )

    for out in circuit.outputs:
        if out not in known:
            problems.append(f"primary output {out!r} is not driven")

    try:
        circuit.topological_order()
    except NetlistError as exc:
        problems.append(str(exc))

    return problems


def assert_valid(circuit: Circuit, require_outputs: bool = True) -> None:
    """Raise :class:`NetlistError` with all findings if the circuit is invalid."""
    problems = validate(circuit, require_outputs=require_outputs)
    if problems:
        summary = "; ".join(problems[:10])
        raise NetlistError(f"invalid netlist {circuit.name!r}: {summary}")
