"""Gate-level netlist substrate: gates, circuits, transforms, validation."""

from .circuit import Circuit, NetlistError
from .gate import (
    COMBINATIONAL_TYPES,
    FIXED_ARITY,
    Gate,
    GateType,
    SEQUENTIAL_TYPES,
    VARIADIC_TYPES,
    evaluate_gate,
)
from .transform import (
    collapse_buffers,
    collapse_inverter_pairs,
    insert_mux_on_net,
    propagate_constants,
    strip_dead_logic,
    tie_net_to_constant,
)
from .validate import assert_valid, validate

__all__ = [
    "Circuit",
    "NetlistError",
    "Gate",
    "GateType",
    "COMBINATIONAL_TYPES",
    "SEQUENTIAL_TYPES",
    "VARIADIC_TYPES",
    "FIXED_ARITY",
    "evaluate_gate",
    "tie_net_to_constant",
    "strip_dead_logic",
    "propagate_constants",
    "collapse_buffers",
    "collapse_inverter_pairs",
    "insert_mux_on_net",
    "assert_valid",
    "validate",
]
