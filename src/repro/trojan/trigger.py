"""Trigger-probability analysis: the paper's Pft and Pu metrics.

``Pft`` (Table I, last column) is the probability that the inserted
*targeted* HT fires at least once during the defender's random functional
testing.  For the counter Trojan clocked by a host net with per-vector
rising-edge probability ``p_edge``, the counter must collect ``2**n - 1``
rising edges within the test session of ``T`` vectors, so::

    Pft = P[ Binomial(T, p_edge) >= 2**n - 1 ]

Both the analytic tail and a Monte-Carlo estimate over full sequential
simulation are provided; the latter validates the independence assumptions.

``Pu`` (Eq. 1) is the exposure probability of the *untargeted* collateral
modifications introduced by salvaging: ``Pu = Nu / 2**n_inputs``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..netlist.circuit import Circuit
from ..prob.activity import switching_activity
from ..prob.propagate import signal_probabilities
from ..sim.seqsim import SequentialSimulator
from .counter import CounterTrojanInstance


def rising_edge_probability(
    circuit: Circuit,
    net: str,
    probabilities: Optional[Mapping[str, float]] = None,
) -> float:
    """Per-vector probability of a 0→1 transition on ``net``.

    Under temporal independence a rising edge is half of all toggles:
    ``p_edge = P(prev=0) · P(next=1) = p(1-p)`` which equals half the
    transition probability ``2p(1-p)``.
    """
    probs = dict(probabilities) if probabilities is not None else signal_probabilities(circuit)
    p = probs[net]
    return p * (1.0 - p)


def binomial_tail_at_least(n: int, p: float, k: int) -> float:
    """P[Binomial(n, p) >= k] computed stably in log space."""
    if k <= 0:
        return 1.0
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0 if n >= k else 0.0
    total = 0.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    mode = int((n + 1) * p)  # terms increase up to the mode, then decrease
    for i in range(k, n + 1):
        log_term = (
            math.lgamma(n + 1)
            - math.lgamma(i + 1)
            - math.lgamma(n - i + 1)
            + i * log_p
            + (n - i) * log_q
        )
        total += math.exp(log_term)
        if i > mode and log_term < -60:
            break  # past the mode and negligible: remainder cannot matter
    return min(1.0, total)


def analytic_pft(
    circuit: Circuit,
    instance: CounterTrojanInstance,
    n_test_vectors: int,
    probabilities: Optional[Mapping[str, float]] = None,
) -> float:
    """Analytic trigger probability of a counter HT over a test session."""
    p_edge = rising_edge_probability(circuit, instance.clock_source, probabilities)
    return binomial_tail_at_least(n_test_vectors, p_edge, instance.states_to_fire)


def monte_carlo_pft(
    circuit: Circuit,
    instance: CounterTrojanInstance,
    n_test_vectors: int,
    n_sessions: int = 256,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte-Carlo Pft: fraction of simulated random test sessions that fire.

    Runs the full infected circuit sequentially (on the compiled levelized
    engine — sessions packed 64 per word, trigger-net rows batch-unpacked per
    session block), so ripple effects and signal correlations that the
    analytic model ignores are captured.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    n_inputs = len(circuit.inputs)
    sim = SequentialSimulator(circuit)
    fired = 0
    batch = 64
    sessions_done = 0
    while sessions_done < n_sessions:
        count = min(batch, n_sessions - sessions_done)
        sequences = (rng.random((count, n_test_vectors, n_inputs)) < 0.5).astype(np.uint8)
        trig = sim.run_sequences_nets(sequences, [instance.trigger_net])[:, :, 0]
        fired += int(trig.any(axis=1).sum())
        sessions_done += count
    return fired / n_sessions


@dataclass(frozen=True)
class TriggerReport:
    """Pft summary for one inserted counter HT."""

    clock_source: str
    p_edge: float
    counter_bits: int
    edges_to_fire: int
    test_vectors: int
    pft_analytic: float
    pft_monte_carlo: Optional[float] = None


def trigger_report(
    circuit: Circuit,
    instance: CounterTrojanInstance,
    n_test_vectors: int,
    monte_carlo_sessions: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> TriggerReport:
    """Full trigger characterization (analytic, optionally MC-validated)."""
    probs = signal_probabilities(circuit)
    p_edge = rising_edge_probability(circuit, instance.clock_source, probs)
    analytic = binomial_tail_at_least(
        n_test_vectors, p_edge, instance.states_to_fire
    )
    mc = None
    if monte_carlo_sessions > 0:
        mc = monte_carlo_pft(
            circuit, instance, n_test_vectors, monte_carlo_sessions, rng
        )
    return TriggerReport(
        clock_source=instance.clock_source,
        p_edge=p_edge,
        counter_bits=instance.n_bits,
        edges_to_fire=instance.states_to_fire,
        test_vectors=n_test_vectors,
        pft_analytic=analytic,
        pft_monte_carlo=mc,
    )
