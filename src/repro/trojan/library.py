"""The attacker's HT library and dummy-gate padding.

Algorithm 2 draws from "a library of n existing malicious circuits" ordered
so that designs are tried until one fits the salvaged power/area budget.
Each :class:`TrojanDesign` knows its nominal resource footprint (for quick
budget filtering) and how to instantiate itself at a placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from ..netlist.transform import _fresh_name
from ..power.library import CellLibrary
from .combinational import CombTrojanInstance, insert_comb_trojan
from .counter import CounterTrojanInstance, insert_counter_trojan


@dataclass(frozen=True)
class TrojanDesign:
    """One entry of the HT library."""

    name: str
    kind: str  # "counter" | "comb"
    #: Counter width for counter HTs; trigger fan-in for combinational HTs.
    size: int

    def instantiate(
        self,
        circuit: Circuit,
        victim: str,
        trigger_sources: Sequence[str],
        prefix: str = "tz",
    ):
        """Insert this design; returns the instance bookkeeping record."""
        if self.kind == "counter":
            if not trigger_sources:
                raise ValueError("counter HT needs a clock source net")
            return insert_counter_trojan(
                circuit, victim, trigger_sources[0], self.size, prefix=prefix
            )
        if self.kind == "comb":
            if len(trigger_sources) < self.size:
                raise ValueError(
                    f"{self.name} needs {self.size} trigger nets, got "
                    f"{len(trigger_sources)}"
                )
            return insert_comb_trojan(
                circuit, victim, list(trigger_sources[: self.size]), prefix=prefix
            )
        raise ValueError(f"unknown trojan kind {self.kind!r}")

    def estimated_cost(self, library: CellLibrary) -> tuple:
        """(area µm², leakage µW) estimate for budget pre-filtering."""
        area = 0.0
        leak = 0.0
        if self.kind == "counter":
            dff = library.cell(GateType.DFF, 2, 1)
            inv = library.cell(GateType.NOT, 1, 1)
            mux = library.cell(GateType.MUX, 3, 1)
            area += self.size * (dff.area_um2 + inv.area_um2)
            leak += self.size * (dff.leakage_nw + inv.leakage_nw)
            if self.size > 1:
                and_cell = library.cells_for_gate(GateType.AND, self.size, 1)
                area += sum(c.area_um2 for c in and_cell)
                leak += sum(c.leakage_nw for c in and_cell)
            area += mux.area_um2 + inv.area_um2
            leak += mux.leakage_nw + inv.leakage_nw
        else:
            and_cells = library.cells_for_gate(GateType.AND, max(2, self.size), 1)
            mux = library.cell(GateType.MUX, 3, 1)
            inv = library.cell(GateType.NOT, 1, 1)
            area = sum(c.area_um2 for c in and_cells) + mux.area_um2 + inv.area_um2
            leak = sum(c.leakage_nw for c in and_cells) + mux.leakage_nw + inv.leakage_nw
        return area, leak * 1e-3


def default_trojan_library() -> List[TrojanDesign]:
    """The paper's library: counter HTs of 2-5 bits plus small comb triggers.

    Ordered largest-first so Algorithm 2 inserts the biggest design the
    salvaged budget can absorb (maximum attacker capability), falling back to
    smaller ones.
    """
    designs = [TrojanDesign(f"counter{n}", "counter", n) for n in (5, 4, 3, 2)]
    designs += [TrojanDesign(f"comb{k}", "comb", k) for k in (4, 3, 2)]
    return designs


def insert_dummy_gates(
    circuit: Circuit,
    n_gates: int,
    prefix: str = "dummy",
) -> List[str]:
    """Insert ``n_gates`` dummy cells "in parallel to the primary inputs with
    their outputs unconnected" (paper Sec. IV.4).

    Used when HT insertion leaves a *negative* differential — a discernible
    power/area decrease would itself be an anomaly — to pad the modified
    circuit back up to the HT-free thresholds.  These dummies switch with the
    inputs, so they contribute dynamic power, leakage, and area.
    """
    pis = list(circuit.inputs)
    if not pis:
        raise ValueError("circuit has no primary inputs to attach dummies to")
    added: List[str] = []
    for k in range(n_gates):
        name = _fresh_name(circuit, f"{prefix}{k}")
        a = pis[k % len(pis)]
        b = pis[(k + 1) % len(pis)]
        if a == b:
            circuit.add_gate(name, GateType.BUFF, (a,))
        else:
            circuit.add_gate(name, GateType.NAND, (a, b))
        added.append(name)
    return added


def insert_filler_cells(
    circuit: Circuit,
    n_cells: int,
    prefix: str = "fill",
) -> List[str]:
    """Insert ``n_cells`` tie-fed filler cells: area and a sliver of leakage,
    zero switching.

    When the power budget is already at the threshold but area is still
    visibly below it (the paper's observation Z regime), padding must not add
    dynamic power.  Real layouts close such gaps with filler/decap cells;
    here that is modelled as buffers driven by a TIE0 net, whose output never
    toggles.
    """
    added: List[str] = []
    tie = _fresh_name(circuit, f"{prefix}_tie")
    circuit.add_gate(tie, GateType.TIE0, ())
    added.append(tie)
    for k in range(n_cells):
        name = _fresh_name(circuit, f"{prefix}{k}")
        circuit.add_gate(name, GateType.BUFF, (tie,))
        added.append(name)
    return added
