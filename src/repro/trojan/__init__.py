"""Hardware-Trojan designs, library, payloads, and trigger analysis."""

from .combinational import CombTrojanInstance, insert_additive_burden, insert_comb_trojan
from .counter import CounterTrojanInstance, insert_counter_trojan
from .library import TrojanDesign, default_trojan_library, insert_dummy_gates
from .payload import PayloadInstance, splice_inverting_payload, splice_substituting_payload
from .trigger import (
    TriggerReport,
    analytic_pft,
    binomial_tail_at_least,
    monte_carlo_pft,
    rising_edge_probability,
    trigger_report,
)

__all__ = [
    "CounterTrojanInstance",
    "insert_counter_trojan",
    "CombTrojanInstance",
    "insert_comb_trojan",
    "insert_additive_burden",
    "TrojanDesign",
    "default_trojan_library",
    "insert_dummy_gates",
    "PayloadInstance",
    "splice_inverting_payload",
    "splice_substituting_payload",
    "TriggerReport",
    "trigger_report",
    "analytic_pft",
    "monte_carlo_pft",
    "rising_edge_probability",
    "binomial_tail_at_least",
]
