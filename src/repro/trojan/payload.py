"""Trojan payload splicing.

The Fig. 4 payload is a 2:1 multiplexer inserted on a victim net ``S``: with
the trigger ``q`` low the circuit is unchanged; when ``q`` rises, the mux
steers a corrupted value (the inverted signal, or an attacker-chosen net
``y``) into ``S``'s fanout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from ..netlist.transform import _fresh_name, insert_mux_on_net


@dataclass(frozen=True)
class PayloadInstance:
    """Nets created while splicing a payload."""

    victim: str
    mux_net: str
    alternate_net: str
    added_gates: tuple


def splice_inverting_payload(
    circuit: Circuit, victim: str, select: str, prefix: str = "tz"
) -> PayloadInstance:
    """Payload that inverts ``victim`` while ``select`` is high."""
    alt = _fresh_name(circuit, f"{prefix}_alt")
    circuit.add_gate(alt, GateType.NOT, (victim,))
    mux = insert_mux_on_net(circuit, victim, alt, select, _fresh_name(circuit, f"{prefix}_mux"))
    return PayloadInstance(victim, mux, alt, (alt, mux))


def splice_substituting_payload(
    circuit: Circuit, victim: str, alternate: str, select: str, prefix: str = "tz"
) -> PayloadInstance:
    """Payload that replaces ``victim`` with an existing net while selected."""
    mux = insert_mux_on_net(circuit, victim, alternate, select, _fresh_name(circuit, f"{prefix}_mux"))
    return PayloadInstance(victim, mux, alternate, (mux,))
