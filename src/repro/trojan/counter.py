"""The asynchronous counter-based hardware Trojan of Fig. 4 (Liu et al. [14]).

Structure, exactly as the paper describes it:

* an *n*-bit asynchronous ripple counter: toggle flip-flops where stage 0 is
  clocked by a rarely-switching host net and each later stage is clocked by
  the inverted output of the previous stage;
* a trigger ``q`` that goes high when the counter saturates (all ones);
* a MUX payload on the victim net ``S`` selected by ``q``.

Because the clock source is a rare node chosen from the host circuit, the
counter accumulates rising edges across the defender's functional-test
session; with the paper's parameters (2-5 bits on nodes with transition
probability ≪ 1) the trigger probability during testing, Pft, is below 1e-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from ..netlist.transform import _fresh_name
from .payload import PayloadInstance, splice_inverting_payload, splice_substituting_payload


@dataclass(frozen=True)
class CounterTrojanInstance:
    """Bookkeeping for one inserted counter Trojan."""

    n_bits: int
    clock_source: str
    victim: str
    trigger_net: str
    state_nets: Tuple[str, ...]
    payload: PayloadInstance
    added_gates: Tuple[str, ...]

    @property
    def states_to_fire(self) -> int:
        """Rising clock edges needed before the trigger asserts (from reset)."""
        return (1 << self.n_bits) - 1


def insert_counter_trojan(
    circuit: Circuit,
    victim: str,
    clock_source: str,
    n_bits: int,
    alternate: Optional[str] = None,
    prefix: str = "tz",
) -> CounterTrojanInstance:
    """Insert the Fig. 4 Trojan into ``circuit`` (mutating it).

    Parameters
    ----------
    victim:
        Host net whose fanout the payload corrupts when triggered.
    clock_source:
        Host net whose rising edges advance the counter — chosen from
        rarely-activated nodes so functional testing cannot saturate it.
    n_bits:
        Counter width (the paper uses 2-5 bits depending on the benchmark).
    alternate:
        Optional existing net to substitute for the victim when triggered;
        the default payload inverts the victim instead.
    """
    if n_bits < 1:
        raise ValueError(f"counter needs at least 1 bit, got {n_bits}")
    if not circuit.has_net(victim):
        raise ValueError(f"victim net {victim!r} does not exist")
    if not circuit.has_net(clock_source):
        raise ValueError(f"clock source net {clock_source!r} does not exist")

    added: List[str] = []
    state: List[str] = []
    clock = clock_source
    for bit in range(n_bits):
        q = _fresh_name(circuit, f"{prefix}_q{bit}")
        qn = _fresh_name(circuit, f"{prefix}_qn{bit}")
        # Toggle FF: d = NOT(q); asynchronous ripple: next stage clocks on Q̄.
        circuit.add_gate(q, GateType.DFF, (qn, clock))
        circuit.add_gate(qn, GateType.NOT, (q,))
        added.extend((q, qn))
        state.append(q)
        clock = qn

    trigger = _fresh_name(circuit, f"{prefix}_trig")
    if n_bits == 1:
        circuit.add_gate(trigger, GateType.BUFF, (state[0],))
    else:
        circuit.add_gate(trigger, GateType.AND, tuple(state))
    added.append(trigger)

    if alternate is not None:
        payload = splice_substituting_payload(circuit, victim, alternate, trigger, prefix)
    else:
        payload = splice_inverting_payload(circuit, victim, trigger, prefix)
    added.extend(payload.added_gates)

    return CounterTrojanInstance(
        n_bits=n_bits,
        clock_source=clock_source,
        victim=victim,
        trigger_net=trigger,
        state_nets=tuple(state),
        payload=payload,
        added_gates=tuple(added),
    )
