"""Combinational hardware Trojans.

Two roles in the reproduction:

* small rare-AND-trigger Trojans are members of the attacker's HT library
  (Algorithm 2 iterates a library of n designs, not only counters);
* parameterized *additive* Trojans — inserted without any salvaging — are the
  baselines the detection experiments (Fig. 3) flag, demonstrating that the
  detectors work and that TrojanZero specifically evades them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from ..netlist.transform import _fresh_name
from .payload import PayloadInstance, splice_inverting_payload


@dataclass(frozen=True)
class CombTrojanInstance:
    """Bookkeeping for one inserted combinational Trojan."""

    trigger_inputs: Tuple[str, ...]
    trigger_polarity: Tuple[int, ...]
    victim: str
    trigger_net: str
    payload: PayloadInstance
    added_gates: Tuple[str, ...]


def insert_comb_trojan(
    circuit: Circuit,
    victim: str,
    trigger_inputs: Sequence[str],
    trigger_polarity: Optional[Sequence[int]] = None,
    prefix: str = "ct",
) -> CombTrojanInstance:
    """Insert an AND-trigger / inverting-MUX-payload combinational Trojan.

    The trigger fires when every ``trigger_inputs[i]`` equals
    ``trigger_polarity[i]`` (default: all ones).  Choosing rare-polarity host
    nets gives a low-probability trigger; choosing PIs gives the classic
    "cheat code" Trojan.
    """
    polarity = tuple(trigger_polarity) if trigger_polarity is not None else tuple(
        1 for _ in trigger_inputs
    )
    if len(polarity) != len(trigger_inputs):
        raise ValueError("polarity length must match trigger input count")
    if not trigger_inputs:
        raise ValueError("trigger needs at least one input")

    added: List[str] = []
    literals: List[str] = []
    for net, pol in zip(trigger_inputs, polarity):
        if not circuit.has_net(net):
            raise ValueError(f"trigger input {net!r} does not exist")
        if pol == 1:
            literals.append(net)
        else:
            inv = _fresh_name(circuit, f"{prefix}_n")
            circuit.add_gate(inv, GateType.NOT, (net,))
            added.append(inv)
            literals.append(inv)

    trigger = _fresh_name(circuit, f"{prefix}_trig")
    if len(literals) == 1:
        circuit.add_gate(trigger, GateType.BUFF, (literals[0],))
    else:
        circuit.add_gate(trigger, GateType.AND, tuple(literals))
    added.append(trigger)

    payload = splice_inverting_payload(circuit, victim, trigger, prefix)
    added.extend(payload.added_gates)
    return CombTrojanInstance(
        trigger_inputs=tuple(trigger_inputs),
        trigger_polarity=polarity,
        victim=victim,
        trigger_net=trigger,
        payload=payload,
        added_gates=tuple(added),
    )


def insert_additive_burden(
    circuit: Circuit,
    n_gates: int,
    prefix: str = "hb",
) -> List[str]:
    """Insert ``n_gates`` of always-on parasitic logic chained from the PIs.

    This models the *additive* HT burden (extra switching + leaking gates)
    that power-based detectors are calibrated to catch; used by the Fig. 3
    sweep to find each detector's minimum detectable overhead.
    """
    if n_gates < 1:
        raise ValueError("need at least one gate")
    pis = list(circuit.inputs)
    if len(pis) < 2:
        raise ValueError("circuit needs at least two primary inputs")
    added: List[str] = []
    prev = pis[0]
    for k in range(n_gates):
        name = _fresh_name(circuit, f"{prefix}{k}")
        other = pis[(k + 1) % len(pis)]
        circuit.add_gate(name, GateType.XOR, (prev, other))
        added.append(name)
        prev = name
    return added
