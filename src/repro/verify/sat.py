"""A small DPLL SAT solver (queue-based unit propagation, chronological
backtracking).

Built for miter-sized formulas (thousands of variables / clauses), which is
all the pre-silicon equivalence-checking defense needs on ISCAS-scale
circuits.  Propagation is indexed: when a literal becomes false, only the
clauses containing it are re-examined.  A decision limit keeps worst-case
UNSAT proofs bounded; callers treat ``UNKNOWN`` honestly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .cnf import Cnf


class SatStatus(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # resource limit hit


@dataclass
class SatResult:
    status: SatStatus
    #: variable -> bool assignment when SAT.
    model: Optional[Dict[int, bool]] = None
    decisions: int = 0
    propagations: int = 0

    @property
    def satisfiable(self) -> bool:
        return self.status is SatStatus.SAT


class DpllSolver:
    """Iterative DPLL with indexed unit propagation."""

    def __init__(self, cnf: Cnf, max_decisions: int = 200_000) -> None:
        self.cnf = cnf
        self.max_decisions = max_decisions
        # occurs[-lit] lists clauses that may become unit when lit turns true.
        self._occurs: Dict[int, List[int]] = {}
        for idx, clause in enumerate(cnf.clauses):
            for lit in clause:
                self._occurs.setdefault(lit, []).append(idx)
        # Branching order: most-occurring variables first.
        counts: Dict[int, int] = {}
        for clause in cnf.clauses:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        self._branch_order = sorted(
            range(1, cnf.n_vars + 1), key=lambda v: -counts.get(v, 0)
        )

    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        cnf = self.cnf
        n = cnf.n_vars
        assign: List[int] = [0] * (n + 1)  # 0 unknown, 1 true, -1 false
        trail: List[int] = []
        qhead = 0
        decisions: List[List] = []  # [trail mark, literal decided, tried flip]
        n_decisions = 0
        n_props = 0

        def value(lit: int) -> int:
            v = assign[abs(lit)]
            return v if lit > 0 else -v

        def enqueue(lit: int) -> bool:
            v = value(lit)
            if v == 1:
                return True
            if v == -1:
                return False
            assign[abs(lit)] = 1 if lit > 0 else -1
            trail.append(lit)
            return True

        def propagate() -> bool:
            nonlocal qhead, n_props
            while qhead < len(trail):
                lit = trail[qhead]
                qhead += 1
                for idx in self._occurs.get(-lit, ()):  # clauses losing -lit
                    clause = cnf.clauses[idx]
                    unassigned = 0
                    unit = 0
                    satisfied = False
                    for cl in clause:
                        v = value(cl)
                        if v == 1:
                            satisfied = True
                            break
                        if v == 0:
                            unassigned += 1
                            unit = cl
                            if unassigned > 1:
                                break
                    if satisfied or unassigned > 1:
                        continue
                    if unassigned == 0:
                        return False
                    n_props += 1
                    if not enqueue(unit):
                        return False
            return True

        # Seed: assumptions plus clauses that are unit to begin with.
        for lit in assumptions:
            if not enqueue(lit):
                return SatResult(SatStatus.UNSAT)
        for clause in cnf.clauses:
            if len(clause) == 1 and not enqueue(clause[0]):
                return SatResult(SatStatus.UNSAT)
        if not propagate():
            return SatResult(SatStatus.UNSAT)

        def backtrack() -> bool:
            """Undo to the latest un-flipped decision; False if none remain."""
            nonlocal qhead
            while decisions:
                mark, lit, tried = decisions[-1]
                while len(trail) > mark:
                    assign[abs(trail.pop())] = 0
                qhead = min(qhead, len(trail))
                if not tried:
                    decisions[-1][1] = -lit
                    decisions[-1][2] = True
                    enqueue(-lit)
                    return True
                decisions.pop()
            return False

        while True:
            if not propagate():
                if not backtrack():
                    return SatResult(SatStatus.UNSAT, None, n_decisions, n_props)
                continue
            branch = 0
            for v in self._branch_order:
                if assign[v] == 0:
                    branch = v
                    break
            if branch == 0:
                model = {v: assign[v] == 1 for v in range(1, n + 1)}
                return SatResult(SatStatus.SAT, model, n_decisions, n_props)
            n_decisions += 1
            if n_decisions > self.max_decisions:
                return SatResult(SatStatus.UNKNOWN, None, n_decisions, n_props)
            decisions.append([len(trail), branch, False])
            enqueue(branch)


def solve(
    cnf: Cnf, assumptions: Sequence[int] = (), max_decisions: int = 200_000
) -> SatResult:
    """One-shot convenience wrapper."""
    return DpllSolver(cnf, max_decisions).solve(assumptions)
