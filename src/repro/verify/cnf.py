"""CNF formula container and Tseitin encoding of gate-level circuits.

Variables are positive integers; literals are signed ints (DIMACS style).
:func:`tseitin_encode` maps every net of a combinational circuit to a CNF
variable and emits the standard constraint clauses per gate, enabling the
SAT-based equivalence checking used by the pre-silicon defense model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gate import GateType


@dataclass
class Cnf:
    """A CNF formula: a clause list over integer variables."""

    clauses: List[Tuple[int, ...]] = field(default_factory=list)
    n_vars: int = 0

    def new_var(self) -> int:
        self.n_vars += 1
        return self.n_vars

    def add(self, *literals: int) -> None:
        if not literals:
            raise ValueError("empty clause makes the formula trivially UNSAT")
        for lit in literals:
            if lit == 0 or abs(lit) > self.n_vars:
                raise ValueError(f"literal {lit} out of range (n_vars={self.n_vars})")
        self.clauses.append(tuple(literals))

    def add_clause(self, literals: Sequence[int]) -> None:
        self.add(*literals)

    def __len__(self) -> int:
        return len(self.clauses)

    def to_dimacs(self) -> str:
        lines = [f"p cnf {self.n_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"


def _encode_and(cnf: Cnf, out: int, ins: List[int]) -> None:
    # out -> each in;  all ins -> out.
    for lit in ins:
        cnf.add(-out, lit)
    cnf.add(out, *[-lit for lit in ins])


def _encode_or(cnf: Cnf, out: int, ins: List[int]) -> None:
    for lit in ins:
        cnf.add(out, -lit)
    cnf.add(-out, *ins)


def _encode_xor2(cnf: Cnf, out: int, a: int, b: int) -> None:
    cnf.add(-out, a, b)
    cnf.add(-out, -a, -b)
    cnf.add(out, -a, b)
    cnf.add(out, a, -b)


def tseitin_encode(
    circuit: Circuit, cnf: Optional[Cnf] = None
) -> Tuple[Cnf, Dict[str, int]]:
    """Encode a combinational circuit; returns (cnf, net -> variable map).

    Passing an existing ``cnf`` lets two circuits share one formula (miter
    construction): their input variables can then be unified with equality
    clauses or by mapping nets onto the same variables.
    """
    if circuit.is_sequential:
        raise NetlistError("Tseitin encoding covers combinational circuits only")
    cnf = cnf if cnf is not None else Cnf()
    var: Dict[str, int] = {}
    for net in circuit.topological_order():
        var[net] = cnf.new_var()
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        gt = gate.gate_type
        out = var[net]
        ins = [var[src] for src in gate.inputs]
        if gt is GateType.INPUT:
            continue
        if gt is GateType.TIE0:
            cnf.add(-out)
        elif gt is GateType.TIE1:
            cnf.add(out)
        elif gt is GateType.BUFF:
            cnf.add(-out, ins[0])
            cnf.add(out, -ins[0])
        elif gt is GateType.NOT:
            cnf.add(-out, -ins[0])
            cnf.add(out, ins[0])
        elif gt is GateType.AND:
            _encode_and(cnf, out, ins)
        elif gt is GateType.NAND:
            aux = cnf.new_var()
            _encode_and(cnf, aux, ins)
            cnf.add(-out, -aux)
            cnf.add(out, aux)
        elif gt is GateType.OR:
            _encode_or(cnf, out, ins)
        elif gt is GateType.NOR:
            aux = cnf.new_var()
            _encode_or(cnf, aux, ins)
            cnf.add(-out, -aux)
            cnf.add(out, aux)
        elif gt in (GateType.XOR, GateType.XNOR):
            acc = ins[0]
            for nxt in ins[1:-1]:
                aux = cnf.new_var()
                _encode_xor2(cnf, aux, acc, nxt)
                acc = aux  # running parity
            if len(ins) == 1:
                # Degenerate single-input parity: out == in (or inverted).
                target = ins[0]
                if gt is GateType.XOR:
                    cnf.add(-out, target)
                    cnf.add(out, -target)
                else:
                    cnf.add(-out, -target)
                    cnf.add(out, target)
            else:
                if gt is GateType.XOR:
                    _encode_xor2(cnf, out, acc, ins[-1])
                else:
                    aux = cnf.new_var()
                    _encode_xor2(cnf, aux, acc, ins[-1])
                    cnf.add(-out, -aux)
                    cnf.add(out, aux)
        elif gt is GateType.MUX:
            d0, d1, sel = ins
            # out == (sel ? d1 : d0)
            cnf.add(-sel, -d1, out)
            cnf.add(-sel, d1, -out)
            cnf.add(sel, -d0, out)
            cnf.add(sel, d0, -out)
        else:  # pragma: no cover - enum is closed
            raise NetlistError(f"cannot encode gate type {gt}")
    return cnf, var
