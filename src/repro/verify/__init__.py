"""Pre-silicon verification: CNF encoding, DPLL SAT, equivalence checking."""

from .cnf import Cnf, tseitin_encode
from .equivalence import (
    EquivalenceResult,
    EquivalenceStatus,
    build_miter,
    check_equivalence,
)
from .sat import DpllSolver, SatResult, SatStatus, solve
from .sweep import sat_sweep_equivalence

__all__ = [
    "sat_sweep_equivalence",
    "Cnf",
    "tseitin_encode",
    "DpllSolver",
    "SatResult",
    "SatStatus",
    "solve",
    "EquivalenceStatus",
    "EquivalenceResult",
    "build_miter",
    "check_equivalence",
]
