"""SAT sweeping: scalable equivalence checking for structurally-similar pairs.

Plain per-output miters defeat a chronological DPLL on XOR-heavy circuits
(the c499/c1355 pair is the canonical example).  SAT sweeping is the classic
industrial remedy:

1. build a *joint* circuit over shared primary inputs;
2. random-simulate to group internal nets by value signature;
3. bottom-up, prove candidate pairs equivalent with small *windowed* SAT
   calls — logic outside a local fan-in window is treated as free inputs,
   which is sound for merging (equivalence under a cut implies equivalence
   in reality) — and rewire the later net onto the earlier one, so higher
   windows sit on already-merged structure;
4. repeat until no merges happen;
5. compare each output pair — after sweeping, usually the same net already.

Spurious window counterexamples simply block a merge (no unsoundness); real
PI-level counterexamples from the final output proofs are returned as
witnesses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..sim.bitsim import BitSimulator
from .cnf import Cnf, tseitin_encode
from .equivalence import EquivalenceResult, EquivalenceStatus
from .sat import SatStatus, solve


def _build_joint(golden: Circuit, candidate: Circuit) -> Tuple[Circuit, Dict[str, str]]:
    """One circuit containing both netlists over the shared primary inputs."""
    joint = golden.copy("joint")
    for po in list(joint.outputs):
        joint.unset_output(po)
    mapping: Dict[str, str] = {}
    for net in candidate.topological_order():
        gate = candidate.gate(net)
        if gate.is_input:
            mapping[net] = net
            continue
        new_name = f"cand__{net}"
        while joint.has_net(new_name):
            new_name += "_"
        joint.add_gate(
            new_name, gate.gate_type, tuple(mapping[s] for s in gate.inputs)
        )
        mapping[net] = new_name
    return joint, mapping


def _window_subcircuit(
    joint: Circuit,
    roots: List[str],
    max_gates: int,
    levels: Dict[str, int],
    max_depth: int = 4,
) -> Circuit:
    """Local fan-in window of ``roots``: gates within ``max_depth`` of a root
    (up to ``max_gates``), frontier nets become free inputs — a sound cut for
    equivalence proofs.

    Depth-limiting matters: after lower-level merges the two implementations
    read the *same* representative nets, so a shallow window exposes exactly
    that shared cut instead of descending into (and re-freeing) the whole
    fan-in cone.

    ``levels`` may be stale with respect to merges performed this round —
    rewiring a reader onto a lower-level representative only shrinks true
    levels, so sorting by the stale values still yields a producer-before-
    consumer order.
    """
    collected: Set[str] = set()
    queue = deque((root, 0) for root in roots)
    while queue and len(collected) < max_gates:
        net, depth = queue.popleft()
        if net in collected or depth > max_depth:
            continue
        gate = joint.gate(net)
        if gate.is_input:
            continue
        collected.add(net)
        for src in gate.inputs:
            if src not in collected:
                queue.append((src, depth + 1))

    sub = Circuit("window")
    declared: Set[str] = set()
    for net in sorted(collected, key=lambda n: (levels.get(n, 0), n)):
        gate = joint.gate(net)
        for src in gate.inputs:
            if src not in collected and src not in declared:
                sub.add_input(src)
                declared.add(src)
        sub.add_gate(net, gate.gate_type, gate.inputs)
    for root in roots:
        if not sub.has_net(root):  # root was a PI of the joint circuit
            sub.add_input(root)
        sub.set_output(root)
    return sub


def _prove_pair(
    joint: Circuit,
    a: str,
    b: str,
    window_gates: int,
    max_decisions: int,
    levels: Optional[Dict[str, int]] = None,
    max_depth: Optional[int] = None,
) -> Tuple[str, Optional[Dict[str, int]]]:
    """("equal" | "different" | "unknown", witness over the window inputs)."""
    if levels is None:
        levels = joint.levels()
    if max_depth is not None:
        sub = _window_subcircuit(joint, [a, b], window_gates, levels, max_depth)
    else:
        # Shrink the window until its cut is small enough to enumerate;
        # shallow windows sit on merged representatives (2-16 inputs wide).
        sub = None
        for depth in (5, 3, 2, 1):
            trial = _window_subcircuit(joint, [a, b], window_gates, levels, depth)
            sub = trial if sub is None else sub
            if len(trial.inputs) <= 16:
                sub = trial
                break
    if len(sub.inputs) <= 16:
        # Small cut: exhaustive bit-parallel simulation beats SAT outright
        # and gives the same windowed-soundness guarantee.
        from ..sim.bitsim import exhaustive_patterns

        pats = exhaustive_patterns(len(sub.inputs))
        out = BitSimulator(sub).run(pats)
        col = {name: i for i, name in enumerate(sub.outputs)}
        diff = out[:, col[a]] != out[:, col[b]]
        if not diff.any():
            return "equal", None
        row = int(np.argmax(diff))
        witness = {pi: int(pats[row, k]) for k, pi in enumerate(sub.inputs)}
        return "different", witness
    if max_decisions < 10_000:
        # Wide cut + small budget: the pure-Python SAT search would burn
        # seconds per pair for a verdict that is almost always "unknown".
        # Skip — a later round (after more merges) shrinks the window.
        return "unknown", None
    cnf, var = tseitin_encode(sub)
    miter = cnf.new_var()
    va, vb = var[a], var[b]
    cnf.add(-miter, va, vb)
    cnf.add(-miter, -va, -vb)
    cnf.add(miter, -va, vb)
    cnf.add(miter, va, -vb)
    cnf.add(miter)
    result = solve(cnf, max_decisions=max_decisions)
    if result.status is SatStatus.UNSAT:
        return "equal", None
    if result.status is SatStatus.SAT:
        witness = {pi: int(result.model[var[pi]]) for pi in sub.inputs}
        return "different", witness
    return "unknown", None


def sat_sweep_equivalence(
    golden: Circuit,
    candidate: Circuit,
    n_signature_patterns: int = 128,
    window_gates: int = 48,
    pair_decisions: int = 2_000,
    output_window_gates: int = 4_000,
    output_decisions: int = 400_000,
    max_rounds: int = 10,
    seed: int = 0,
) -> EquivalenceResult:
    """SAT-sweeping equivalence check of two combinational circuits."""
    if tuple(golden.inputs) != tuple(candidate.inputs):
        raise ValueError("input interfaces differ")
    if set(golden.outputs) != set(candidate.outputs):
        raise ValueError("output interfaces differ")

    joint, mapping = _build_joint(golden, candidate)
    rng = np.random.default_rng(seed)
    patterns = (
        rng.random((n_signature_patterns, len(joint.inputs))) < 0.5
    ).astype(np.uint8)
    # Rare nets all share the all-zero signature under uniform vectors and
    # would collapse into one useless mega-group; directed rare-excitation
    # vectors (the MERO generator) split them by function.
    from ..atpg.mero import generate_mero_tests

    directed = generate_mero_tests(
        joint, rare_threshold=0.9, n_target=2, pool_size=4096, seed=seed + 1
    )
    if directed.n_patterns:
        patterns = np.concatenate([patterns, directed.patterns], axis=0)

    merged_into: Dict[str, str] = {}

    def resolve(net: str) -> str:
        while net in merged_into:
            net = merged_into[net]
        return net

    for _ in range(max_rounds):
        values = BitSimulator(joint).run_full(patterns)
        levels = joint.levels()
        groups: Dict[bytes, List[str]] = {}
        for net, bits in values.items():
            if joint.gate(net).is_input or net in merged_into:
                continue
            groups.setdefault(bits.tobytes(), []).append(net)

        merges = 0
        attempts = 0
        max_attempts_per_round = 1200
        # Strictly bottom-up across groups: merging low-level pairs first
        # collapses the windows of the pairs above them.
        ordered_groups = sorted(
            (members for members in groups.values() if len(members) >= 2),
            key=lambda members: min(levels[n] for n in members),
        )
        for members in ordered_groups:
            if attempts >= max_attempts_per_round:
                break
            members.sort(key=lambda n: (levels[n], n))
            rep = members[0]
            for other in members[1:60]:  # cap pathological groups
                if other in merged_into or attempts >= max_attempts_per_round:
                    continue
                attempts += 1
                verdict, _ = _prove_pair(
                    joint, rep, other, window_gates, pair_decisions, levels
                )
                if verdict == "equal":
                    for reader in list(joint.fanout(other)):
                        joint.rewire_input(reader, other, rep)
                    merged_into[other] = rep
                    merges += 1
        if merges == 0:
            break

    # Cheap global difference check first: the signature patterns themselves
    # (random + rare-directed) often expose a real functional difference.
    values = BitSimulator(joint).run_full(patterns)
    pi_set = set(golden.inputs)
    for output in golden.outputs:
        diff = values[resolve(output)] != values[resolve(mapping[output])]
        if diff.any():
            row = int(np.argmax(diff))
            witness = {
                pi: int(patterns[row, k]) for k, pi in enumerate(joint.inputs)
            }
            return EquivalenceResult(
                EquivalenceStatus.DIFFERENT, witness, output
            )

    proven: List[str] = []
    undecided: List[str] = []
    for output in golden.outputs:
        g_net = resolve(output)
        c_net = resolve(mapping[output])
        if g_net == c_net:
            proven.append(output)
            continue
        # Exact full-cone proof: every free input of the window is a real PI.
        verdict, witness = _prove_pair(
            joint,
            g_net,
            c_net,
            output_window_gates,
            output_decisions,
            levels=None,
            max_depth=10**9,
        )
        if verdict == "equal":
            proven.append(output)
        elif verdict == "different" and witness is not None:
            non_pi = [k for k in witness if k not in pi_set]
            if non_pi:
                undecided.append(output)  # cut counterexample: inconclusive
                continue
            full = {pi: witness.get(pi, 0) for pi in golden.inputs}
            return EquivalenceResult(
                EquivalenceStatus.DIFFERENT,
                full,
                output,
                proven_outputs=proven,
                undecided_outputs=undecided,
            )
        else:
            undecided.append(output)
    if undecided:
        return EquivalenceResult(
            EquivalenceStatus.UNKNOWN,
            proven_outputs=proven,
            undecided_outputs=undecided,
        )
    return EquivalenceResult(EquivalenceStatus.EQUIVALENT, proven_outputs=proven)
