"""SAT-based combinational equivalence checking (pre-silicon defense model).

The paper's Fig. 1 lists equivalence checking among the pre-silicon detection
techniques with complete coverage — which is exactly why TrojanZero attacks
at the *foundry*, after the netlist handoff.  This module makes that concrete:
given the golden netlist and a returned (possibly modified) netlist, a miter
is built per primary output and solved:

* random simulation first (cheap counterexample search),
* then SAT on the per-output miter (exhaustive within a decision budget).

``check_equivalence`` on an Algorithm-1-modified circuit always finds the
functional difference — demonstrating that TrojanZero is *not* stealthy
against a defender who can compare netlists, only against post-silicon
testing and side channels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..sim.bitsim import BitSimulator
from .cnf import Cnf, tseitin_encode
from .sat import SatStatus, solve


class EquivalenceStatus(enum.Enum):
    EQUIVALENT = "equivalent"
    DIFFERENT = "different"
    UNKNOWN = "unknown"


@dataclass
class EquivalenceResult:
    status: EquivalenceStatus
    #: PI assignment witnessing the difference, when DIFFERENT.
    counterexample: Optional[Dict[str, int]] = None
    #: Output on which the witness differs.
    differing_output: Optional[str] = None
    #: Outputs proven equivalent / left undecided (budget).
    proven_outputs: List[str] = field(default_factory=list)
    undecided_outputs: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.status is EquivalenceStatus.EQUIVALENT


def _random_counterexample(
    golden: Circuit, candidate: Circuit, n_vectors: int, seed: int
) -> Optional[Tuple[Dict[str, int], str]]:
    rng = np.random.default_rng(seed)
    pats = (rng.random((n_vectors, len(golden.inputs))) < 0.5).astype(np.uint8)
    g = BitSimulator(golden).run(pats)
    col = {name: i for i, name in enumerate(candidate.outputs)}
    c = BitSimulator(candidate).run(pats)[:, [col[o] for o in golden.outputs]]
    diff = g != c
    if not diff.any():
        return None
    row, out_col = np.argwhere(diff)[0]
    witness = {pi: int(pats[row, i]) for i, pi in enumerate(golden.inputs)}
    return witness, golden.outputs[int(out_col)]


def build_miter(
    golden: Circuit, candidate: Circuit, output: str
) -> Tuple[Cnf, Dict[str, int], int]:
    """CNF asserting ``golden.output != candidate.output`` for shared inputs.

    Returns (cnf, golden-net -> var map, miter literal already asserted).
    """
    cnf, gvar = tseitin_encode(golden)
    cnf2, cvar = tseitin_encode(candidate, cnf)
    # Unify primary inputs.
    for pi in golden.inputs:
        a, b = gvar[pi], cvar[pi]
        cnf.add(-a, b)
        cnf.add(a, -b)
    # Miter: outputs differ.
    miter = cnf.new_var()
    a, b = gvar[output], cvar[output]
    # miter <-> (a xor b)
    cnf.add(-miter, a, b)
    cnf.add(-miter, -a, -b)
    cnf.add(miter, -a, b)
    cnf.add(miter, a, -b)
    cnf.add(miter)
    return cnf, gvar, miter


def check_equivalence(
    golden: Circuit,
    candidate: Circuit,
    random_vectors: int = 512,
    max_decisions: int = 200_000,
    seed: int = 0,
) -> EquivalenceResult:
    """Prove or refute functional equivalence of two combinational circuits."""
    if tuple(golden.inputs) != tuple(candidate.inputs):
        raise ValueError("input interfaces differ")
    if set(golden.outputs) != set(candidate.outputs):
        raise ValueError("output interfaces differ")

    if random_vectors > 0:
        hit = _random_counterexample(golden, candidate, random_vectors, seed)
        if hit is not None:
            witness, out = hit
            return EquivalenceResult(
                EquivalenceStatus.DIFFERENT, witness, out
            )

    proven: List[str] = []
    undecided: List[str] = []
    for output in golden.outputs:
        cnf, gvar, _ = build_miter(golden, candidate, output)
        result = solve(cnf, max_decisions=max_decisions)
        if result.status is SatStatus.SAT:
            witness = {
                pi: int(result.model[gvar[pi]]) for pi in golden.inputs
            }
            return EquivalenceResult(
                EquivalenceStatus.DIFFERENT,
                witness,
                output,
                proven_outputs=proven,
                undecided_outputs=undecided,
            )
        if result.status is SatStatus.UNSAT:
            proven.append(output)
        else:
            undecided.append(output)
    if undecided:
        return EquivalenceResult(
            EquivalenceStatus.UNKNOWN,
            proven_outputs=proven,
            undecided_outputs=undecided,
        )
    return EquivalenceResult(EquivalenceStatus.EQUIVALENT, proven_outputs=proven)
