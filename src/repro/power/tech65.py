"""The calibrated 65nm-class library instance used throughout the repo.

One shared instance keeps every experiment on the same cost model, the way
the paper scores everything with the same TSMC 65nm library.  The calibration
targets are the magnitudes of Table I: ISCAS85-class circuits land at tens to
hundreds of µW total power (dynamic-dominated at 100 MHz) and hundreds of GE.
"""

from __future__ import annotations

from .library import CellLibrary, LibraryParams

#: Operating/technology point for all experiments (65nm-class, 1.2 V, 100 MHz).
TECH65_PARAMS = LibraryParams(
    name="tech65",
    vdd=1.2,
    frequency_hz=100e6,
    nand2_area_um2=1.44,
    nand2_leakage_nw=14.0,
    base_pin_cap_ff=1.5,
    wire_cap_base_ff=0.8,
    wire_cap_per_fanout_ff=0.5,
    nand2_internal_energy_fj=1.1,
)

_LIBRARY = None


def tech65_library() -> CellLibrary:
    """The shared 65nm-class library (lazily constructed singleton)."""
    global _LIBRARY
    if _LIBRARY is None:
        _LIBRARY = CellLibrary(TECH65_PARAMS)
    return _LIBRARY
