"""Standard-cell library model.

The paper synthesizes with a TSMC 65nm library; that library is proprietary,
so we model a 65nm-class library whose per-cell area, leakage, pin
capacitance, and internal switching energy are calibrated to produce circuit
totals in the same range as Table I (tens-to-hundreds of µW, hundreds of GE
for ISCAS85-size netlists).  What the reproduction actually depends on is that
N, N' and N'' are scored by *one consistent cost model* — exactly the role
Design Compiler plays in the paper's flow (Fig. 6).

Cells are generated parametrically over input count (2..MAX_FANIN) and drive
strength (X1/X2/X4), the way real libraries enumerate NAND2X1, NAND3X2, ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netlist.gate import GateType

#: Largest fan-in a single library cell supports; wider logic gates are costed
#: as a decomposed tree (see :meth:`CellLibrary.cells_for_gate`).
MAX_FANIN = 4


@dataclass(frozen=True)
class Cell:
    """One library cell variant.

    Attributes
    ----------
    area_um2:
        Placed cell area.
    leakage_nw:
        Static power at nominal corner.
    input_cap_ff:
        Capacitance presented by each input pin.
    internal_energy_fj:
        Energy dissipated inside the cell per output transition (short-circuit
        + internal node charging), excluding the load it drives.
    max_load_ff:
        Load the cell can drive before a higher drive strength is required.
    """

    name: str
    gate_type: GateType
    n_inputs: int
    drive: int
    area_um2: float
    leakage_nw: float
    input_cap_ff: float
    internal_energy_fj: float
    max_load_ff: float


@dataclass(frozen=True)
class LibraryParams:
    """Technology/operating parameters for a :class:`CellLibrary`."""

    name: str = "generic65"
    vdd: float = 1.2
    #: Default toggle evaluation frequency (vectors per second), Hz.
    frequency_hz: float = 100e6
    #: Area of the reference NAND2X1 — 1 gate equivalent (GE).
    nand2_area_um2: float = 1.44
    #: Base leakage of a NAND2X1 in nW.
    nand2_leakage_nw: float = 14.0
    #: Pin capacitance of a minimum-size input, fF.
    base_pin_cap_ff: float = 1.5
    #: Fixed wire capacitance per net plus per-fanout increment, fF.
    wire_cap_base_ff: float = 0.8
    wire_cap_per_fanout_ff: float = 0.5
    #: Internal energy of a NAND2X1 per output transition, fJ.
    nand2_internal_energy_fj: float = 1.1


#: Relative complexity multipliers versus NAND2 for area/leakage/energy.
_TYPE_FACTORS: Dict[GateType, float] = {
    GateType.NAND: 1.00,
    GateType.NOR: 1.05,
    GateType.AND: 1.25,   # NAND + output inverter
    GateType.OR: 1.30,
    GateType.XOR: 2.20,
    GateType.XNOR: 2.25,
    GateType.NOT: 0.55,
    GateType.BUFF: 0.70,
    GateType.MUX: 1.90,
    GateType.TIE0: 0.30,
    GateType.TIE1: 0.30,
    GateType.DFF: 4.60,
}

#: Extra area/leakage per input beyond the second, relative to NAND2.
_PER_INPUT_FACTOR = 0.32

#: Drive-strength table: drive -> (area mult, leakage mult, max load fF).
_DRIVES: Dict[int, Tuple[float, float, float]] = {
    1: (1.00, 1.00, 12.0),
    2: (1.45, 1.85, 26.0),
    4: (2.30, 3.50, 56.0),
}


class CellLibrary:
    """A generated 65nm-class cell library."""

    def __init__(self, params: Optional[LibraryParams] = None) -> None:
        self.params = params or LibraryParams()
        self._cells: Dict[Tuple[GateType, int, int], Cell] = {}
        self._build()

    def _build(self) -> None:
        p = self.params
        for gate_type, factor in _TYPE_FACTORS.items():
            arities = self._arities_for(gate_type)
            for n in arities:
                extra = max(0, n - 2) * _PER_INPUT_FACTOR
                size_factor = factor * (1.0 + extra)
                for drive, (a_mult, l_mult, max_load) in _DRIVES.items():
                    cell = Cell(
                        name=f"{gate_type.value}{n}X{drive}",
                        gate_type=gate_type,
                        n_inputs=n,
                        drive=drive,
                        area_um2=p.nand2_area_um2 * size_factor * a_mult,
                        leakage_nw=p.nand2_leakage_nw * size_factor * l_mult,
                        input_cap_ff=p.base_pin_cap_ff * (1.0 + 0.15 * (drive - 1)),
                        internal_energy_fj=p.nand2_internal_energy_fj
                        * size_factor
                        * (1.0 + 0.25 * (drive - 1)),
                        max_load_ff=max_load,
                    )
                    self._cells[(gate_type, n, drive)] = cell

    @staticmethod
    def _arities_for(gate_type: GateType) -> List[int]:
        if gate_type in (GateType.NOT, GateType.BUFF):
            return [1]
        if gate_type is GateType.MUX:
            return [3]
        if gate_type in (GateType.TIE0, GateType.TIE1):
            return [0]
        if gate_type is GateType.DFF:
            return [2]
        if gate_type in (GateType.XOR, GateType.XNOR):
            return [2, 3]
        return list(range(2, MAX_FANIN + 1))

    # ------------------------------------------------------------------
    def cell(self, gate_type: GateType, n_inputs: int, drive: int = 1) -> Cell:
        """Exact cell lookup; raises ``KeyError`` if the variant is not offered."""
        return self._cells[(gate_type, n_inputs, drive)]

    def drives(self) -> Tuple[int, ...]:
        return tuple(sorted(_DRIVES))

    def cells_for_gate(self, gate_type: GateType, n_inputs: int, drive: int = 1) -> List[Cell]:
        """Cells implementing a logical gate, decomposing over-wide fan-ins.

        A 6-input AND, for example, is costed as a balanced tree of 4- and
        3-input cells — mirroring what technology mapping would emit — without
        rewriting the netlist (the extra internal nets are charged at the
        driving gate's activity by the analyzer).
        """
        if gate_type in (GateType.NOT, GateType.BUFF, GateType.MUX, GateType.TIE0,
                         GateType.TIE1, GateType.DFF):
            fixed_arity = self._arities_for(gate_type)[0]
            return [self.cell(gate_type, fixed_arity, drive)]
        max_n = max(self._arities_for(gate_type))
        if n_inputs <= max_n:
            return [self.cell(gate_type, max(2, n_inputs), drive)]
        # Decompose: first level uses the inverting/plain base of the function,
        # later levels combine with the associative core (AND for AND/NAND, ...).
        core = {
            GateType.AND: GateType.AND,
            GateType.NAND: GateType.AND,
            GateType.OR: GateType.OR,
            GateType.NOR: GateType.OR,
            GateType.XOR: GateType.XOR,
            GateType.XNOR: GateType.XOR,
        }[gate_type]
        cells: List[Cell] = []
        remaining = n_inputs
        # Leaves of the tree use the associative core type.
        while remaining > max_n:
            cells.append(self.cell(core, max_n, drive))
            remaining -= max_n - 1
        cells.append(self.cell(gate_type, max(2, remaining), drive))
        return cells

    def select_drive(self, gate_type: GateType, n_inputs: int, load_ff: float) -> int:
        """Smallest drive strength whose max load covers ``load_ff``."""
        for drive in self.drives():
            try:
                cell = self.cells_for_gate(gate_type, n_inputs, drive)[-1]
            except KeyError:  # pragma: no cover - defensive
                continue
            if load_ff <= cell.max_load_ff:
                return drive
        return self.drives()[-1]

    @property
    def ge_area_um2(self) -> float:
        """Area of one gate equivalent (the NAND2X1)."""
        return self.cell(GateType.NAND, 2, 1).area_um2

    def all_cells(self) -> List[Cell]:
        return list(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)
