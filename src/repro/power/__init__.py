"""Technology library, synthesis-lite, and power/area analysis."""

from .analysis import PowerDelta, PowerReport, analyze, switching_energy_fj
from .library import Cell, CellLibrary, LibraryParams, MAX_FANIN
from .synthesis import MappedNetlist, map_circuit, optimize_netlist
from .tech65 import TECH65_PARAMS, tech65_library
from .timing import DelayDetector, TimingReport, static_timing

__all__ = [
    "Cell",
    "CellLibrary",
    "LibraryParams",
    "MAX_FANIN",
    "MappedNetlist",
    "map_circuit",
    "optimize_netlist",
    "PowerReport",
    "PowerDelta",
    "analyze",
    "switching_energy_fj",
    "tech65_library",
    "TECH65_PARAMS",
    "TimingReport",
    "static_timing",
    "DelayDetector",
]
