"""Light synthesis: technology mapping and min-power drive selection.

The paper synthesizes each circuit "using the technology library while
optimizing it for minimum power" (Sec. II-A.2).  This module provides the
part of that flow the cost model needs:

* :func:`optimize_netlist` — netlist cleanup a power-optimizing tool performs
  (buffer collapse, double-inverter collapse).  Constant propagation is *not*
  applied by default: Algorithm 1's tie-to-constant edits are physical edits
  on the fabricated netlist, and the tie cell plus its fanout gates remain.
* :func:`map_circuit` — assign every logic gate a list of library cells
  (decomposing over-wide gates into trees) and pick the smallest drive
  strength that carries the gate's fanout load, iterating because drive
  choices change pin loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from ..netlist.transform import (
    collapse_buffers,
    collapse_inverter_pairs,
    propagate_constants,
    strip_dead_logic,
)
from .library import Cell, CellLibrary


@dataclass
class MappedNetlist:
    """Result of technology mapping: gate name -> implementing cells.

    The last cell in each list is the one driving the gate's output net (and
    therefore the one whose drive strength and pin capacitance matter for the
    output load / input pins respectively).
    """

    circuit_name: str
    cells: Dict[str, List[Cell]] = field(default_factory=dict)
    drive_of: Dict[str, int] = field(default_factory=dict)

    @property
    def cell_count(self) -> int:
        return sum(len(v) for v in self.cells.values())


def optimize_netlist(circuit: Circuit) -> Circuit:
    """Return a min-power-synthesized copy of ``circuit``.

    Mirrors what Design Compiler does before the defender characterizes the
    HT-free circuit: constants are folded through downstream logic, buffer
    and double-inverter chains collapse, and logic that cannot reach an
    output is stripped.  Without this, trivially foldable gates would survive
    into ``N`` and inflate Algorithm 1's salvage numbers dishonestly.
    """
    optimized = circuit.copy()
    # Iterate to a fixed point: each pass can expose work for the others.
    for _ in range(16):
        changed = len(propagate_constants(optimized))
        changed += collapse_buffers(optimized)
        changed += collapse_inverter_pairs(optimized)
        changed += len(strip_dead_logic(optimized))
        if not changed:
            break
    return optimized


def map_circuit(
    circuit: Circuit,
    library: CellLibrary,
    max_iterations: int = 4,
) -> MappedNetlist:
    """Map every logic gate onto library cells with load-driven drive selection."""
    mapped = MappedNetlist(circuit_name=circuit.name)
    # Start everything at X1.
    for gate in circuit.logic_gates():
        mapped.drive_of[gate.name] = 1
        mapped.cells[gate.name] = library.cells_for_gate(
            gate.gate_type, len(gate.inputs), 1
        )

    params = library.params
    for _ in range(max_iterations):
        changed = False
        # Pin load presented by each reading gate, given current drives.
        pin_cap: Dict[str, float] = {
            name: cells[-1].input_cap_ff for name, cells in mapped.cells.items()
        }
        for gate in circuit.logic_gates():
            readers = circuit.fanout(gate.name)
            load = params.wire_cap_base_ff + params.wire_cap_per_fanout_ff * len(readers)
            load += sum(pin_cap.get(r, params.base_pin_cap_ff) for r in readers)
            drive = library.select_drive(gate.gate_type, len(gate.inputs), load)
            if drive != mapped.drive_of[gate.name]:
                mapped.drive_of[gate.name] = drive
                mapped.cells[gate.name] = library.cells_for_gate(
                    gate.gate_type, len(gate.inputs), drive
                )
                changed = True
        if not changed:
            break
    return mapped
