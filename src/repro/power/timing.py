"""Static timing analysis and a path-delay side-channel detector.

The paper's Sec. I-A lists propagation delay among the side channels a
defender can measure.  TrojanZero keeps *power and area* at their HT-free
values, but the Fig. 4 payload inserts a MUX in series with the victim net —
a delay the attacker cannot salvage away.  This module makes that trade-off
measurable:

* :func:`static_timing` — topological arrival-time analysis over a mapped
  netlist with a load-dependent linear delay model per cell;
* :class:`DelayDetector` — a per-output delay signature test in the style of
  the power detectors (calibrated on golden chips with delay variation).

The delay experiments are an *extension* of the paper (it only evaluates
power/area detection); EXPERIMENTS.md reports what they show: the payload
adds a measurable delay on the victim's paths unless the victim has slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from .library import CellLibrary
from .synthesis import MappedNetlist, map_circuit

#: Intrinsic delay of the reference NAND2X1 (ps) and load-dependence (ps/fF).
_BASE_DELAY_PS = 18.0
_LOAD_SLOPE_PS_PER_FF = 2.4

#: Relative delay complexity per gate type (mirrors the area factors).
_DELAY_FACTORS: Dict[GateType, float] = {
    GateType.NAND: 1.00,
    GateType.NOR: 1.10,
    GateType.AND: 1.35,
    GateType.OR: 1.40,
    GateType.XOR: 1.90,
    GateType.XNOR: 1.95,
    GateType.NOT: 0.60,
    GateType.BUFF: 0.75,
    GateType.MUX: 1.70,
    GateType.TIE0: 0.0,
    GateType.TIE1: 0.0,
    GateType.DFF: 2.10,  # clk-to-q
}


@dataclass(frozen=True)
class TimingReport:
    """Arrival times (ps) and the critical path of a combinational circuit."""

    arrival_ps: Dict[str, float]
    output_arrival_ps: Dict[str, float]
    critical_path: Tuple[str, ...]
    critical_delay_ps: float

    def output_delay(self, output: str) -> float:
        return self.output_arrival_ps[output]


def gate_delay_ps(
    circuit: Circuit,
    library: CellLibrary,
    mapped: MappedNetlist,
    net: str,
) -> float:
    """Load-dependent propagation delay of the gate driving ``net``."""
    gate = circuit.gate(net)
    if gate.is_input or gate.is_constant:
        return 0.0
    factor = _DELAY_FACTORS[gate.gate_type]
    cells = mapped.cells[net]
    params = library.params
    readers = circuit.fanout(net)
    load = params.wire_cap_base_ff + params.wire_cap_per_fanout_ff * len(readers)
    for reader in readers:
        reader_cells = mapped.cells.get(reader)
        load += reader_cells[-1].input_cap_ff if reader_cells else params.base_pin_cap_ff
    drive = cells[-1].drive
    slope = _LOAD_SLOPE_PS_PER_FF / drive
    # Decomposed wide gates pay one level per constituent cell.
    stages = len(cells)
    return stages * (_BASE_DELAY_PS * factor) + slope * load


def static_timing(
    circuit: Circuit,
    library: CellLibrary,
    mapped: Optional[MappedNetlist] = None,
) -> TimingReport:
    """Topological arrival-time analysis; DFF outputs launch at t = clk-to-q."""
    if mapped is None:
        mapped = map_circuit(circuit, library)
    arrival: Dict[str, float] = {}
    best_pred: Dict[str, Optional[str]] = {}
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        delay = gate_delay_ps(circuit, library, mapped, net)
        if gate.is_input or gate.is_constant:
            arrival[net] = 0.0
            best_pred[net] = None
        elif gate.is_sequential:
            arrival[net] = delay
            best_pred[net] = None
        else:
            worst_src = max(gate.inputs, key=lambda s: arrival[s])
            arrival[net] = arrival[worst_src] + delay
            best_pred[net] = worst_src
    output_arrival = {po: arrival[po] for po in circuit.outputs}
    if output_arrival:
        critical_out = max(output_arrival, key=output_arrival.__getitem__)
        path: List[str] = []
        node: Optional[str] = critical_out
        while node is not None:
            path.append(node)
            node = best_pred[node]
        path.reverse()
        critical_delay = output_arrival[critical_out]
    else:
        path, critical_delay = [], 0.0
    return TimingReport(
        arrival_ps=arrival,
        output_arrival_ps=output_arrival,
        critical_path=tuple(path),
        critical_delay_ps=critical_delay,
    )


@dataclass
class DelayDetector:
    """Per-output path-delay signature test (side-channel extension).

    Calibrated on golden chips whose per-output delays vary with process
    spread; flags a device whose measured output delays deviate upward beyond
    the calibrated threshold.
    """

    variation_sigma: float = 0.04
    measurement_noise: float = 0.01
    calibration_quantile: float = 0.995
    _mean: Optional[np.ndarray] = None
    _std: Optional[np.ndarray] = None
    _outputs: Tuple[str, ...] = ()
    _threshold: float = 0.0

    def _sample(self, report: TimingReport, rng: np.random.Generator) -> np.ndarray:
        nominal = np.array([report.output_arrival_ps[o] for o in self._outputs])
        chip = nominal * rng.normal(1.0, self.variation_sigma, nominal.shape)
        return chip * (1.0 + rng.normal(0.0, self.measurement_noise, nominal.shape))

    def calibrate(
        self, golden: TimingReport, n_chips: int = 40, seed: int = 17
    ) -> None:
        rng = np.random.default_rng(seed)
        self._outputs = tuple(golden.output_arrival_ps)
        chips = np.stack([self._sample(golden, rng) for _ in range(n_chips)])
        self._mean = chips.mean(axis=0)
        self._std = np.maximum(chips.std(axis=0, ddof=1), 1e-9)
        stats = [float(np.max((c - self._mean) / self._std)) for c in chips]
        self._threshold = float(np.quantile(stats, self.calibration_quantile))

    def statistic(self, measured: np.ndarray) -> float:
        if self._mean is None:
            raise RuntimeError("calibrate() first")
        return float(np.max((measured - self._mean) / self._std))

    def detection_rate(
        self, suspect: TimingReport, n_chips: int = 40, seed: int = 23
    ) -> float:
        """Fraction of suspect-population chips flagged."""
        rng = np.random.default_rng(seed)
        missing = [o for o in self._outputs if o not in suspect.output_arrival_ps]
        if missing:
            raise ValueError(f"suspect circuit lacks outputs {missing[:3]}")
        saved_outputs = self._outputs
        flags = 0
        for _ in range(n_chips):
            nominal = np.array(
                [suspect.output_arrival_ps[o] for o in saved_outputs]
            )
            chip = nominal * rng.normal(1.0, self.variation_sigma, nominal.shape)
            chip *= 1.0 + rng.normal(0.0, self.measurement_noise, nominal.shape)
            flags += int(self.statistic(chip) > self._threshold)
        return flags / n_chips
