"""Power and area analysis of a mapped netlist.

Implements the "Power and Area Computation" boxes of the paper's flow
(Fig. 2): given a circuit, a cell library, and per-net switching activity,
compute

* **area** in µm² and gate equivalents (GE),
* **leakage power** — sum of mapped-cell leakages,
* **dynamic power** — per driving net:
  ``P = alpha · f · (0.5 · C_load · Vdd² + E_internal)`` where ``C_load`` is
  the sum of reader-pin capacitances plus estimated wire capacitance.

The paper stresses that *components* must be tracked independently of the
total ("It is mandatory to analyze individual components of power, i.e.,
dynamic and leakage, independently", Sec. II-C.2); :class:`PowerReport`
carries all three plus area so Algorithm 2's threshold checks can quote any
of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from ..prob.activity import switching_activity
from ..prob.propagate import signal_probabilities
from .library import Cell, CellLibrary
from .synthesis import MappedNetlist, map_circuit


@dataclass(frozen=True)
class PowerReport:
    """Power/area characterization of one circuit under one operating point."""

    circuit_name: str
    total_uw: float
    dynamic_uw: float
    leakage_uw: float
    area_um2: float
    area_ge: float
    frequency_hz: float
    vdd: float
    #: Per-net dynamic contribution (µW), for detector models and debugging.
    dynamic_by_net: Dict[str, float] = field(default_factory=dict, repr=False)
    #: Per-gate leakage contribution (µW).
    leakage_by_gate: Dict[str, float] = field(default_factory=dict, repr=False)
    #: Per-gate area (µm²).
    area_by_gate: Dict[str, float] = field(default_factory=dict, repr=False)

    def delta(self, other: "PowerReport") -> "PowerDelta":
        """``self - other`` in every tracked dimension."""
        return PowerDelta(
            total_uw=self.total_uw - other.total_uw,
            dynamic_uw=self.dynamic_uw - other.dynamic_uw,
            leakage_uw=self.leakage_uw - other.leakage_uw,
            area_ge=self.area_ge - other.area_ge,
            area_um2=self.area_um2 - other.area_um2,
        )


@dataclass(frozen=True)
class PowerDelta:
    """Differential between two :class:`PowerReport` s (paper's ΔP, ΔA)."""

    total_uw: float
    dynamic_uw: float
    leakage_uw: float
    area_ge: float
    area_um2: float

    def within(self, tol_power_uw: float, tol_area_ge: float) -> bool:
        """True when every component fits under the thresholds (≈ 0 check)."""
        return (
            self.total_uw <= tol_power_uw
            and self.dynamic_uw <= tol_power_uw
            and self.leakage_uw <= tol_power_uw
            and self.area_ge <= tol_area_ge
        )


def switching_energy_fj(
    circuit: Circuit,
    library: CellLibrary,
    mapped: Optional[MappedNetlist] = None,
) -> Dict[str, float]:
    """Per-net energy dissipated by one output toggle (fJ).

    ``E = 0.5 · C_load · Vdd² + E_internal`` with ``C_load`` the reader-pin
    capacitances plus estimated wire capacitance — exactly the per-toggle
    energy the dynamic-power model of :func:`analyze` multiplies by
    ``alpha · f``.  The side-channel trace generator
    (:mod:`repro.traces.generator`) weights per-cycle toggle vectors with
    this same table, so traces and aggregate power are scored by one
    consistent cost model.
    """
    params = library.params
    vdd = params.vdd
    if mapped is None:
        mapped = map_circuit(circuit, library)

    fanout_cap: Dict[str, float] = {net: 0.0 for net in circuit.nets}
    for gate in circuit.logic_gates():
        pin_cap = mapped.cells[gate.name][-1].input_cap_ff
        for src in gate.inputs:
            fanout_cap[src] += pin_cap

    energy: Dict[str, float] = {}
    for net in circuit.nets:
        gate = circuit.gate(net)
        n_readers = len(circuit.fanout(net))
        wire_cap = params.wire_cap_base_ff + params.wire_cap_per_fanout_ff * n_readers
        load_ff = fanout_cap[net] + wire_cap
        internal_fj = 0.0
        if not gate.is_input:
            # Decomposed trees switch their internal nets at (approximately)
            # the output activity as well; charge every constituent cell.
            internal_fj = sum(c.internal_energy_fj for c in mapped.cells[gate.name])
        energy[net] = 0.5 * load_ff * vdd * vdd + internal_fj
    return energy


def analyze(
    circuit: Circuit,
    library: CellLibrary,
    activity: Optional[Mapping[str, float]] = None,
    pi_probabilities: Optional[Mapping[str, float]] = None,
    mapped: Optional[MappedNetlist] = None,
    frequency_hz: Optional[float] = None,
) -> PowerReport:
    """Characterize ``circuit``: area, leakage, and activity-driven dynamic power.

    Parameters
    ----------
    activity:
        Per-net toggle probability per vector.  Computed analytically from
        signal probabilities when omitted.
    mapped:
        Pre-computed technology mapping; mapped on the fly when omitted.
    """
    params = library.params
    f = frequency_hz if frequency_hz is not None else params.frequency_hz
    vdd = params.vdd

    if mapped is None:
        mapped = map_circuit(circuit, library)
    if activity is None:
        probs = signal_probabilities(circuit, pi_probabilities)
        activity = switching_activity(circuit, probabilities=probs)

    area_by_gate: Dict[str, float] = {}
    leakage_by_gate: Dict[str, float] = {}
    dynamic_by_net: Dict[str, float] = {}

    for gate in circuit.logic_gates():
        cells = mapped.cells[gate.name]
        area_by_gate[gate.name] = sum(c.area_um2 for c in cells)
        leakage_by_gate[gate.name] = sum(c.leakage_nw for c in cells) * 1e-3  # nW→µW

    # Energy per toggle: 0.5 C V² (fF·V² = fJ) + internal energy — shared
    # with the per-cycle trace generator (repro.traces).
    energy_fj = switching_energy_fj(circuit, library, mapped=mapped)
    for net in circuit.nets:
        alpha = float(activity.get(net, 0.0))
        if alpha <= 0.0:
            dynamic_by_net[net] = 0.0
            continue
        dynamic_by_net[net] = alpha * f * energy_fj[net] * 1e-9  # fJ·Hz → µW

    area_um2 = sum(area_by_gate.values())
    leakage_uw = sum(leakage_by_gate.values())
    dynamic_uw = sum(dynamic_by_net.values())
    return PowerReport(
        circuit_name=circuit.name,
        total_uw=dynamic_uw + leakage_uw,
        dynamic_uw=dynamic_uw,
        leakage_uw=leakage_uw,
        area_um2=area_um2,
        area_ge=area_um2 / library.ge_area_um2,
        frequency_hz=f,
        vdd=vdd,
        dynamic_by_net=dynamic_by_net,
        leakage_by_gate=leakage_by_gate,
        area_by_gate=area_by_gate,
    )
