"""Cycle-accurate sequential simulation for Trojan-infected circuits.

The TrojanZero counter trigger (Fig. 4) is an *asynchronous* ripple counter:
each DFF is clocked by a circuit net (the rare trigger node) or by the
previous stage's output — no global clock is added to the host circuit.  The
simulator therefore works edge-driven per applied input vector:

1. settle the combinational logic with the current flip-flop states,
2. find DFFs whose clock net saw a rising edge (vs. the previous settle),
3. update those states with their settled ``d`` values,
4. repeat — a state change may ripple a new edge into the next stage —
   until no edges remain (bounded by #DFFs + 2 iterations).

Many independent input *sequences* are simulated in parallel, packed 64 per
uint64 word, which makes Monte-Carlo trigger-probability estimation cheap.

Engine
------
:class:`SequentialSimulator` runs on the compiled levelized core of
:mod:`repro.sim.compiled`: the circuit compiles once into a ``(n_nets,
n_words)`` value matrix plus a per-(level, type, arity) group schedule in
which every DFF *output* is a source row alongside the PIs.  A combinational
settle is then a single :meth:`~repro.sim.compiled.CompiledCircuit.run_matrix`
call, and the edge detection / state latch of the ripple loop is a few
vectorized row operations over the ``dff_clk_idx``/``dff_d_idx`` row triples
(:meth:`~repro.sim.compiled.CompiledCircuit.step_sequential`).  The compiled
schedule is cached on the circuit (and in the structural-fingerprint cache),
so every Monte-Carlo session, salvage trial, and functional test over the
same netlist shares one compile.

Batched extraction: :meth:`SequentialSimulator.run_sequences_nets` packs the
whole ``(n_seqs, n_steps, n_inputs)`` sequence block with one
``np.packbits`` call, steps the matrix, gathers only the *watched* net rows
per step, and unpacks them in a handful of chunked ``np.unpackbits`` calls —
no per-net, per-step Python bit extraction anywhere.

The pre-compiled per-gate dict interpreter is retained as
:func:`reference_step_packed` / :class:`ReferenceSequentialSimulator` for
differential testing and before/after benchmarking; production code should
use :class:`SequentialSimulator`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from .bitsim import ALL_ONES, _eval_packed, pack_patterns, unpack_patterns
from .compiled import CompiledCircuit, compile_circuit

#: Word budget for the per-chunk watched-row buffer of
#: :meth:`SequentialSimulator.run_sequences_nets` (bounds peak memory of the
#: final unpack at ~64x this many bytes).
_CHUNK_WORD_BUDGET = 1 << 19


class SequentialSimulator:
    """Edge-driven simulator for circuits that may contain DFFs.

    Pure combinational circuits are handled too (they simply have no state),
    so functional-testing code can treat N, N' and N'' uniformly.
    """

    def __init__(self, circuit: Circuit, backend=None) -> None:
        self.circuit = circuit
        self._compiled: CompiledCircuit = compile_circuit(circuit, backend)
        self._backend = self._compiled.backend
        self._dffs: List[str] = list(self._compiled.dff_names)
        self._state: Optional[np.ndarray] = None
        self._prev_clk: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._n_words = 0

    @property
    def dff_nets(self) -> Tuple[str, ...]:
        return tuple(self._dffs)

    def reset(self, n_sequences: int) -> None:
        """Zero all flip-flop states for ``n_sequences`` parallel sequences."""
        self._n_words = (n_sequences + 63) // 64
        self._state = self._backend.xp.zeros(
            (len(self._dffs), self._n_words), dtype=np.uint64
        )
        self._prev_clk = None
        self._values = self._compiled.new_matrix(self._n_words)

    def _step_matrix(self, packed_pi_words: np.ndarray) -> np.ndarray:
        """One vector step on the reusable matrix; returns the settled matrix.

        ``packed_pi_words`` is ``(n_inputs, n_words)``; PI rows are loaded,
        the combinational schedule settles, and the edge-driven ripple loop
        updates the flip-flop state in place.
        """
        values = self._values
        if self._compiled.input_idx.size:
            values[self._compiled.input_idx] = packed_pi_words
        self._prev_clk = self._compiled.step_sequential(
            values, self._state, self._prev_clk
        )
        return values

    def step_packed(self, packed_inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Apply one input vector (packed across sequences); returns settled nets.

        Compatibility shim around the matrix engine: materializes a
        net-keyed dict (copies, safe to hold across steps).  Batched callers
        should prefer :meth:`run_sequences_nets`.
        """
        if self._state is None:
            if self._dffs:
                raise RuntimeError("call reset() before stepping")
            n_words = len(next(iter(packed_inputs.values()))) if packed_inputs else 1
            self.reset(64 * n_words)
        if self.circuit.inputs:
            packed = np.stack(
                [
                    np.asarray(packed_inputs[pi], dtype=np.uint64)
                    for pi in self.circuit.inputs
                ]
            )
        else:
            packed = np.zeros((0, self._n_words), dtype=np.uint64)
        values = self._backend.to_numpy(self._step_matrix(packed))
        index = self._compiled.index
        return {
            net: values[index[net]].copy()
            for net in self._compiled.order
            if net in self.circuit
        }

    # ------------------------------------------------------------------
    # batched sequence APIs
    # ------------------------------------------------------------------
    def _check_sequences(self, sequences: np.ndarray) -> np.ndarray:
        sequences = np.asarray(sequences)
        if sequences.ndim != 3:
            raise ValueError(f"sequences must be 3-D, got shape {sequences.shape}")
        if sequences.shape[2] != len(self.circuit.inputs):
            raise ValueError(
                f"expected {len(self.circuit.inputs)} inputs, got {sequences.shape[2]}"
            )
        return sequences

    def run_sequences_nets(
        self, sequences: np.ndarray, nets: Sequence[str]
    ) -> np.ndarray:
        """Simulate ``(n_seqs, n_steps, n_inputs)`` watching only ``nets``.

        Returns ``(n_seqs, n_steps, len(nets))`` uint8.  This is the batched
        workhorse behind :meth:`run_sequences`, :meth:`run_sequence_tracking`,
        Monte-Carlo Pft estimation, and empirical toggle rates: input packing
        happens in one vectorized call for the whole block, and the watched
        rows are unpacked in large step-chunks instead of one bit at a time.
        """
        sequences = self._check_sequences(sequences)
        n_seqs, n_steps, n_inputs = sequences.shape
        self.reset(n_seqs)
        n_words = self._n_words
        rows = np.array(
            [self._compiled.index[net] for net in nets], dtype=np.intp
        )
        out = np.zeros((n_seqs, n_steps, len(nets)), dtype=np.uint8)
        if n_steps == 0 or n_seqs == 0:
            return out
        # One packbits pass for the whole block: steps fold into the signal
        # axis, giving (n_steps, n_inputs, n_words) packed PI words.
        packed_steps = pack_patterns(
            sequences.reshape(n_seqs, n_steps * n_inputs)
        ).reshape(n_steps, n_inputs, n_words)

        if rows.size == 0:
            for t in range(n_steps):
                self._step_matrix(packed_steps[t])
            return out
        chunk = max(1, _CHUNK_WORD_BUDGET // (rows.size * max(n_words, 1)))
        buffer = self._backend.xp.empty(
            (min(chunk, n_steps), rows.size, n_words), dtype=np.uint64
        )
        t = 0
        while t < n_steps:
            span = min(chunk, n_steps - t)
            for k in range(span):
                values = self._step_matrix(packed_steps[t + k])
                buffer[k] = values[rows]
            unpacked = unpack_patterns(
                self._backend.to_numpy(
                    buffer[:span].reshape(span * rows.size, n_words)
                ),
                n_seqs,
            )
            out[:, t : t + span, :] = unpacked.reshape(n_seqs, span, rows.size)
            t += span
        return out

    def run_sequences(self, sequences: np.ndarray) -> np.ndarray:
        """Simulate ``(n_seqs, n_steps, n_inputs)``; returns outputs of same rank.

        Returns ``(n_seqs, n_steps, n_outputs)`` uint8.
        """
        return self.run_sequences_nets(sequences, self.circuit.outputs)

    def run_sequence_tracking(
        self, sequence: np.ndarray, watch: List[str]
    ) -> Dict[str, np.ndarray]:
        """Simulate a single ``(n_steps, n_inputs)`` sequence, recording ``watch`` nets.

        Returns net -> ``(n_steps,)`` uint8 trace.  Used for trigger analysis
        and the case-study example.  All watched nets are extracted in one
        batched unpack (via :meth:`run_sequences_nets`), not one bit per net
        per step.
        """
        sequence = np.atleast_2d(np.asarray(sequence))
        traces = self.run_sequences_nets(sequence[np.newaxis], list(watch))[0]
        return {net: traces[:, i].copy() for i, net in enumerate(watch)}


# ----------------------------------------------------------------------
# reference dict engine (pre-compiled implementation, kept for tests)
# ----------------------------------------------------------------------
def _reference_settle(
    circuit: Circuit,
    packed_inputs: Dict[str, np.ndarray],
    state: Dict[str, np.ndarray],
    n_words: int,
) -> Dict[str, np.ndarray]:
    """Evaluate every net one dict-gate at a time (the original engine)."""
    ones = np.full(n_words, ALL_ONES, dtype=np.uint64)
    zeros = np.zeros(n_words, dtype=np.uint64)
    values: Dict[str, np.ndarray] = {}
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        gt = gate.gate_type
        if gt is GateType.INPUT:
            values[net] = packed_inputs[net]
        elif gt is GateType.DFF:
            values[net] = state[net]
        elif gt is GateType.TIE0:
            values[net] = zeros
        elif gt is GateType.TIE1:
            values[net] = ones
        else:
            values[net] = _eval_packed(gt, [values[i] for i in gate.inputs], ones)
    return values


def reference_step_packed(
    circuit: Circuit,
    packed_inputs: Dict[str, np.ndarray],
    state: Dict[str, np.ndarray],
    prev_clk: Optional[Dict[str, np.ndarray]],
    n_words: int,
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """One edge-driven vector step of the per-gate dict engine.

    Pure-functional reference for differential tests: takes the flip-flop
    ``state`` and previous clock snapshot, returns ``(settled values, new
    state, new clock snapshot)``.  Production code should use
    :class:`SequentialSimulator`, which is bit-identical but runs on the
    compiled levelized schedule.
    """
    dffs = [g.name for g in circuit.gates() if g.gate_type is GateType.DFF]
    values = _reference_settle(circuit, packed_inputs, state, n_words)
    state = dict(state)
    if dffs:
        max_ripple = len(dffs) + 2
        for _ in range(max_ripple):
            if prev_clk is None:
                # First vector establishes the clock baseline; no edges fire.
                break
            fired = False
            for dff in dffs:
                d_net, clk_net = circuit.gate(dff).inputs
                edge = (prev_clk[dff] ^ ALL_ONES) & values[clk_net]
                if edge.any():
                    fired = True
                    state[dff] = (state[dff] & (edge ^ ALL_ONES)) | (
                        values[d_net] & edge
                    )
            # Record clocks *before* re-settle so ripple edges are seen next pass.
            prev_clk = {
                dff: values[circuit.gate(dff).inputs[1]].copy() for dff in dffs
            }
            if not fired:
                break
            values = _reference_settle(circuit, packed_inputs, state, n_words)
        prev_clk = {
            dff: values[circuit.gate(dff).inputs[1]].copy() for dff in dffs
        }
    return values, state, prev_clk


class ReferenceSequentialSimulator:
    """The original per-gate dict engine behind the same public API.

    Kept verbatim (modulo the pure-functional step extraction) so the
    differential tests in ``tests/test_seqsim_compiled.py`` and the seqsim
    "before" timings in ``benchmarks/test_perf_sim.py`` can pit the compiled
    engine against it.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._dffs: List[str] = [
            g.name for g in circuit.gates() if g.gate_type is GateType.DFF
        ]
        self._state: Dict[str, np.ndarray] = {}
        self._prev_clk: Optional[Dict[str, np.ndarray]] = None
        self._n_words = 0

    @property
    def dff_nets(self) -> Tuple[str, ...]:
        return tuple(self._dffs)

    def reset(self, n_sequences: int) -> None:
        self._n_words = (n_sequences + 63) // 64
        zeros = np.zeros(self._n_words, dtype=np.uint64)
        self._state = {d: zeros.copy() for d in self._dffs}
        self._prev_clk = None

    def step_packed(self, packed_inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        if not self._state and self._dffs:
            raise RuntimeError("call reset() before stepping")
        values, self._state, self._prev_clk = reference_step_packed(
            self.circuit, packed_inputs, self._state, self._prev_clk, self._n_words
        )
        return values

    def run_sequences_nets(
        self, sequences: np.ndarray, nets: Sequence[str]
    ) -> np.ndarray:
        sequences = np.asarray(sequences)
        n_seqs, n_steps, _ = sequences.shape
        self.reset(n_seqs)
        out = np.zeros((n_seqs, n_steps, len(nets)), dtype=np.uint8)
        for t in range(n_steps):
            packed = pack_patterns(sequences[:, t, :])
            packed_inputs = {pi: packed[i] for i, pi in enumerate(self.circuit.inputs)}
            values = self.step_packed(packed_inputs)
            if nets:
                words = np.stack([values[net] for net in nets])
                out[:, t, :] = unpack_patterns(words, n_seqs)
        return out

    def run_sequences(self, sequences: np.ndarray) -> np.ndarray:
        return self.run_sequences_nets(sequences, self.circuit.outputs)

    def run_sequence_tracking(
        self, sequence: np.ndarray, watch: List[str]
    ) -> Dict[str, np.ndarray]:
        sequence = np.atleast_2d(np.asarray(sequence))
        traces = self.run_sequences_nets(sequence[np.newaxis], list(watch))[0]
        return {net: traces[:, i].copy() for i, net in enumerate(watch)}
