"""Cycle-accurate sequential simulation for Trojan-infected circuits.

The TrojanZero counter trigger (Fig. 4) is an *asynchronous* ripple counter:
each DFF is clocked by a circuit net (the rare trigger node) or by the
previous stage's output — no global clock is added to the host circuit.  The
simulator therefore works edge-driven per applied input vector:

1. settle the combinational logic with the current flip-flop states,
2. find DFFs whose clock net saw a rising edge (vs. the previous settle),
3. update those states with their settled ``d`` values,
4. repeat — a state change may ripple a new edge into the next stage —
   until no edges remain (bounded by #DFFs + 2 iterations).

Many independent input *sequences* are simulated in parallel, packed 64 per
uint64 word, which makes Monte-Carlo trigger-probability estimation cheap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from .bitsim import _eval_packed, pack_patterns, unpack_patterns

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class SequentialSimulator:
    """Edge-driven simulator for circuits that may contain DFFs.

    Pure combinational circuits are handled too (they simply have no state),
    so functional-testing code can treat N, N' and N'' uniformly.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._order = circuit.topological_order()
        self._dffs: List[str] = [
            g.name for g in circuit.gates() if g.gate_type is GateType.DFF
        ]
        self._state: Dict[str, np.ndarray] = {}
        self._prev_clk: Optional[Dict[str, np.ndarray]] = None
        self._n_words = 0

    @property
    def dff_nets(self) -> Tuple[str, ...]:
        return tuple(self._dffs)

    def reset(self, n_sequences: int) -> None:
        """Zero all flip-flop states for ``n_sequences`` parallel sequences."""
        self._n_words = (n_sequences + 63) // 64
        zeros = np.zeros(self._n_words, dtype=np.uint64)
        self._state = {d: zeros.copy() for d in self._dffs}
        self._prev_clk = None

    def _settle(self, packed_inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Evaluate every net given PIs and current DFF states."""
        ones = np.full(self._n_words, _ALL_ONES, dtype=np.uint64)
        zeros = np.zeros(self._n_words, dtype=np.uint64)
        values: Dict[str, np.ndarray] = {}
        for net in self._order:
            gate = self.circuit.gate(net)
            gt = gate.gate_type
            if gt is GateType.INPUT:
                values[net] = packed_inputs[net]
            elif gt is GateType.DFF:
                values[net] = self._state[net]
            elif gt is GateType.TIE0:
                values[net] = zeros
            elif gt is GateType.TIE1:
                values[net] = ones
            else:
                values[net] = _eval_packed(gt, [values[i] for i in gate.inputs], ones)
        return values

    def step_packed(self, packed_inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Apply one input vector (packed across sequences); returns settled nets."""
        if not self._state and self._dffs:
            raise RuntimeError("call reset() before stepping")
        values = self._settle(packed_inputs)
        if self._dffs:
            max_ripple = len(self._dffs) + 2
            for _ in range(max_ripple):
                if self._prev_clk is None:
                    # First vector establishes the clock baseline; no edges fire.
                    break
                fired = False
                for dff in self._dffs:
                    d_net, clk_net = self.circuit.gate(dff).inputs
                    edge = (self._prev_clk[dff] ^ _ALL_ONES) & values[clk_net]
                    if edge.any():
                        fired = True
                        self._state[dff] = (self._state[dff] & (edge ^ _ALL_ONES)) | (
                            values[d_net] & edge
                        )
                # Record clocks *before* re-settle so ripple edges are seen next pass.
                self._prev_clk = {
                    dff: values[self.circuit.gate(dff).inputs[1]].copy()
                    for dff in self._dffs
                }
                if not fired:
                    break
                values = self._settle(packed_inputs)
            self._prev_clk = {
                dff: values[self.circuit.gate(dff).inputs[1]].copy()
                for dff in self._dffs
            }
        return values

    def run_sequences(self, sequences: np.ndarray) -> np.ndarray:
        """Simulate ``(n_seqs, n_steps, n_inputs)``; returns outputs of same rank.

        Returns ``(n_seqs, n_steps, n_outputs)`` uint8.
        """
        sequences = np.asarray(sequences)
        if sequences.ndim != 3:
            raise ValueError(f"sequences must be 3-D, got shape {sequences.shape}")
        n_seqs, n_steps, n_inputs = sequences.shape
        if n_inputs != len(self.circuit.inputs):
            raise ValueError(
                f"expected {len(self.circuit.inputs)} inputs, got {n_inputs}"
            )
        self.reset(n_seqs)
        outputs = np.zeros((n_seqs, n_steps, len(self.circuit.outputs)), dtype=np.uint8)
        for t in range(n_steps):
            packed = pack_patterns(sequences[:, t, :])
            packed_inputs = {pi: packed[i] for i, pi in enumerate(self.circuit.inputs)}
            values = self.step_packed(packed_inputs)
            out_words = np.stack([values[o] for o in self.circuit.outputs])
            outputs[:, t, :] = unpack_patterns(out_words, n_seqs)
        return outputs

    def run_sequence_tracking(
        self, sequence: np.ndarray, watch: List[str]
    ) -> Dict[str, np.ndarray]:
        """Simulate a single ``(n_steps, n_inputs)`` sequence, recording ``watch`` nets.

        Returns net -> ``(n_steps,)`` uint8 trace.  Used for trigger analysis
        and the case-study example.
        """
        sequence = np.atleast_2d(np.asarray(sequence))
        n_steps = sequence.shape[0]
        self.reset(1)
        traces = {net: np.zeros(n_steps, dtype=np.uint8) for net in watch}
        for t in range(n_steps):
            packed = pack_patterns(sequence[t : t + 1, :])
            packed_inputs = {pi: packed[i] for i, pi in enumerate(self.circuit.inputs)}
            values = self.step_packed(packed_inputs)
            for net in watch:
                traces[net][t] = int(values[net][0] & np.uint64(1))
        return traces
