"""Pluggable array backend for the compiled simulation engine.

The compiled form of a circuit is "a ``(n_nets, n_words)`` uint64 matrix plus
a levelized group schedule" — a shape that maps 1:1 onto GPU tensor
libraries.  This module abstracts the array namespace behind a tiny
:class:`ArrayBackend` protocol so one flag moves bit-parallel simulation,
sequential stepping, PPSFP fault batches, toggle tensors, and the
trace-matmul path onto a different array library:

* :class:`NumpyBackend` — the default; every call is a plain NumPy op, so
  the default path is *bit-identical* to the pre-shim engine (asserted by
  the backend-parity tests).
* :class:`CupyBackend` — auto-detected, import-guarded.  Value matrices
  live on the GPU; NumPy's ``__array_ufunc__``/``__array_function__``
  protocols dispatch the group-schedule ufuncs to CuPy kernels, and the
  only host<->device traffic is the packed pattern words in and the packed
  watched rows out (packing/unpacking itself stays on the host, where
  ``np.packbits`` is already memory-bound).

Selection
---------
``get_backend(None)`` resolves, in order: an explicit
``set_default_backend`` call, the ``REPRO_ARRAY_BACKEND`` environment
variable, then ``"numpy"``.  :func:`repro.sim.compiled.compile_circuit`
accepts a ``backend=`` override per compile; everything downstream
(simulators, fault engines, trace generation) inherits the backend of the
compiled form it runs on.

Word-level constants
--------------------
This module is also the single home of the 64-bit word constants that were
historically re-declared per module; :mod:`repro.sim.bitsim` re-exports
them as the stable public import point (``WORD_BITS``, ``ALL_ONES``,
``FULL_MASK``).

Enforcement
-----------
This module is the declared backend boundary for ``repro lint``'s routing
rules (RPR301/RPR302): kernel packages may use ``np.<attr>`` only from the
frozen host-side surface (dtypes, pack/unpack, staging, host stats), and
device compute must reach arrays through this shim.  Inside this file the
whitelist does not apply — it *is* the numpy side of the boundary.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

import numpy as np

#: Patterns per simulation word (one uint64 per 64 patterns).
WORD_BITS = 64

#: All 64 bits set, as the uint64 scalar used in vectorized inversions.
ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: All 64 bits set, as a Python int (for arbitrary-precision word walks).
FULL_MASK = (1 << WORD_BITS) - 1

#: Environment variable naming the process-wide default backend.
ENV_VAR = "REPRO_ARRAY_BACKEND"


class ArrayBackend:
    """Array-namespace + transfer protocol the compiled engine runs on.

    ``xp`` is the numpy-like module (``numpy``/``cupy``); value matrices are
    allocated through it.  ``asarray`` moves host data *to* the backend,
    ``to_numpy`` brings backend data back to host memory.  For the NumPy
    backend both transfers are identity (no copies), which is what keeps the
    default path bit-identical to the pre-shim engine.
    """

    name: str = "abstract"
    xp = None

    def asarray(self, array, dtype=None):
        raise NotImplementedError

    def to_numpy(self, array) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArrayBackend {self.name}>"


class NumpyBackend(ArrayBackend):
    """The default backend: plain NumPy, zero-copy transfers."""

    name = "numpy"
    xp = np

    def asarray(self, array, dtype=None):
        return np.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)


class CupyBackend(ArrayBackend):
    """CuPy-on-GPU backend; constructed only when ``import cupy`` succeeds."""

    name = "cupy"

    def __init__(self) -> None:
        import cupy  # guarded by available_backends() / get_backend()

        self.xp = cupy

    def asarray(self, array, dtype=None):
        return self.xp.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        if isinstance(array, np.ndarray):
            return array
        return self.xp.asnumpy(array)


_BACKENDS: Dict[str, ArrayBackend] = {}
_DEFAULT: Optional[ArrayBackend] = None


def _cupy_importable() -> bool:
    try:
        import cupy  # noqa: F401
    except Exception:  # ImportError, and CUDA driver failures at import time
        return False
    return True


def available_backends() -> List[str]:
    """Names accepted by :func:`get_backend` on this machine."""
    names = ["numpy"]
    if _cupy_importable():
        names.append("cupy")
    return names


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """Resolve a backend by name (``None`` = the process default).

    Unknown or unavailable names raise ``ValueError`` with the available
    choices, so a missing CuPy install fails loudly at selection time rather
    than deep inside a simulation.
    """
    if name is None:
        return get_default_backend()
    cached = _BACKENDS.get(name)
    if cached is not None:
        return cached
    if name == "numpy":
        backend: ArrayBackend = NumpyBackend()
    elif name == "cupy":
        if not _cupy_importable():
            raise ValueError(
                "array backend 'cupy' requested but cupy is not importable "
                f"here; available: {available_backends()}"
            )
        backend = CupyBackend()
    else:
        raise ValueError(
            f"unknown array backend {name!r}; available: {available_backends()}"
        )
    _BACKENDS[name] = backend
    return backend


def get_default_backend() -> ArrayBackend:
    """The process-wide default: ``set_default_backend`` > env var > numpy."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = get_backend(os.environ.get(ENV_VAR) or "numpy")
    return _DEFAULT


def set_default_backend(backend: Union[str, ArrayBackend, None]) -> None:
    """Override the process default (``None`` re-reads the environment)."""
    global _DEFAULT
    if backend is None or isinstance(backend, ArrayBackend):
        _DEFAULT = backend
    else:
        _DEFAULT = get_backend(backend)


def resolve_backend(
    backend: Union[str, ArrayBackend, None]
) -> ArrayBackend:
    """Normalize a ``backend=`` argument: name, instance, or None (default)."""
    if backend is None:
        return get_default_backend()
    if isinstance(backend, ArrayBackend):
        return backend
    return get_backend(backend)
