"""Bit-parallel combinational logic simulation.

Patterns are packed 64 per ``uint64`` word, so one pass over the netlist in
topological order simulates 64 input vectors at once.  This is the workhorse
behind functional testing (ModelSim substitute), fault simulation, Monte-Carlo
probability estimation, and trigger-probability measurement.

The public entry points accept/return numpy arrays:

* ``patterns``: ``(num_patterns, num_inputs)`` array of 0/1 (any integer dtype)
* results: dict net -> packed words, or ``(num_patterns, num_outputs)`` array
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gate import GateType
from .backend import ALL_ONES, FULL_MASK, WORD_BITS
from .compiled import CompiledCircuit, compile_circuit

# Single home of the 64-bit word constants (defined in ``repro.sim.backend``
# beside the array namespace, re-exported here as the stable import point
# for the rest of the package).
__all__ = [
    "ALL_ONES",
    "FULL_MASK",
    "WORD_BITS",
    "BitSimulator",
    "pack_patterns",
    "unpack_patterns",
    "toggle_matrix",
    "tail_mask",
    "reference_run_packed",
    "simulate",
    "random_patterns",
    "exhaustive_patterns",
]

_LITTLE_ENDIAN = sys.byteorder == "little"


def pack_patterns(patterns: np.ndarray) -> np.ndarray:
    """Pack ``(n_patterns, n_signals)`` 0/1 rows into ``(n_signals, n_words)`` uint64.

    Bit ``k`` of word ``w`` for signal ``s`` holds pattern ``w*64 + k``.
    """
    patterns = np.asarray(patterns)
    if patterns.ndim != 2:
        raise ValueError(f"patterns must be 2-D, got shape {patterns.shape}")
    n_patterns, n_signals = patterns.shape
    n_words = (n_patterns + WORD_BITS - 1) // WORD_BITS
    bits = np.zeros((n_signals, n_words * WORD_BITS), dtype=np.uint8)
    if n_patterns:
        bits[:, :n_patterns] = (patterns != 0).T
    packed_bytes = np.packbits(bits, axis=-1, bitorder="little")
    if _LITTLE_ENDIAN:
        return packed_bytes.view(np.uint64)
    # Big-endian fallback: assemble words explicitly (byte b is bits 8b..8b+7).
    words = packed_bytes.astype(np.uint64).reshape(n_signals, n_words, 8)
    shifts = (np.uint64(8) * np.arange(8, dtype=np.uint64))[np.newaxis, np.newaxis, :]
    return np.bitwise_or.reduce(words << shifts, axis=-1)


def unpack_patterns(packed: np.ndarray, n_patterns: int) -> np.ndarray:
    """Inverse of :func:`pack_patterns`: returns ``(n_patterns, n_signals)`` uint8."""
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    n_signals, n_words = packed.shape
    if _LITTLE_ENDIAN:
        as_bytes = packed.view(np.uint8)
    else:
        shifts = (np.uint64(8) * np.arange(8, dtype=np.uint64))[np.newaxis, np.newaxis, :]
        as_bytes = (
            ((packed[:, :, np.newaxis] >> shifts) & np.uint64(0xFF))
            .astype(np.uint8)
            .reshape(n_signals, n_words * 8)
        )
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[:, :n_patterns].T.copy()


def toggle_matrix(values: np.ndarray, axis: int = 0) -> np.ndarray:
    """XOR of consecutive entries of a 0/1 array along ``axis``.

    The shared toggle kernel behind empirical toggle-rate estimation
    (:func:`repro.prob.montecarlo.mc_toggle_rates`) and the side-channel
    trace generator (:mod:`repro.traces.generator`): one batched pass over
    *all* watched signals at once instead of a per-net Python loop.  For an
    axis of length ``n`` the result has length ``n - 1`` — entry ``t`` is 1
    where the signal changed between steps ``t`` and ``t + 1``.
    """
    values = np.asarray(values)
    ahead = [slice(None)] * values.ndim
    behind = [slice(None)] * values.ndim
    ahead[axis] = slice(1, None)
    behind[axis] = slice(None, -1)
    return np.bitwise_xor(values[tuple(ahead)], values[tuple(behind)])


def tail_mask(n_patterns: int) -> np.ndarray:
    """Per-word masks selecting only the valid pattern bits."""
    n_words = (n_patterns + WORD_BITS - 1) // WORD_BITS
    masks = np.full(n_words, ALL_ONES, dtype=np.uint64)
    rem = n_patterns % WORD_BITS
    if rem:
        masks[-1] = np.uint64((1 << rem) - 1)
    return masks


class BitSimulator:
    """Reusable bit-parallel simulator for a (combinational view of a) circuit.

    Sequential gates are not allowed here; use :class:`repro.sim.seqsim` for
    Trojan-infected (DFF-bearing) circuits.

    Internally this is a thin facade over the compiled levelized engine of
    :mod:`repro.sim.compiled`; the compiled schedule is cached on the circuit,
    so constructing many simulators for the same circuit is cheap.
    """

    def __init__(self, circuit: Circuit, backend=None) -> None:
        if circuit.is_sequential:
            raise NetlistError(
                f"{circuit.name!r} contains DFFs; use SequentialSimulator"
            )
        self.circuit = circuit
        self._compiled: CompiledCircuit = compile_circuit(circuit, backend)
        self._backend = self._compiled.backend
        self._order = self._compiled.order

    def run_packed(self, packed_inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Simulate on packed words.  ``packed_inputs`` maps PI name -> words."""
        missing = [pi for pi in self.circuit.inputs if pi not in packed_inputs]
        if missing:
            raise ValueError(f"missing input values for {missing[:5]}")
        n_words = len(next(iter(packed_inputs.values()))) if packed_inputs else 1
        values = self._compiled.new_matrix(n_words)
        for i, pi in enumerate(self.circuit.inputs):
            values[self._compiled.input_idx[i]] = self._backend.asarray(
                packed_inputs[pi], dtype=np.uint64
            )
        self._compiled.run_matrix(values)
        values = self._backend.to_numpy(values)
        # A patched/shared compiled form may carry rows for dead-stripped
        # nets; report only nets the circuit actually has.
        return {
            net: values[i]
            for i, net in enumerate(self._order)
            if net in self.circuit
        }

    def _run_matrix(self, patterns: np.ndarray) -> np.ndarray:
        """Pack ``patterns`` and evaluate; returns the full value matrix."""
        return self._compiled.simulate_packed(pack_patterns(patterns))

    def run(self, patterns: np.ndarray) -> np.ndarray:
        """Simulate ``(n_patterns, n_inputs)`` rows; returns ``(n_patterns, n_outputs)``.

        Input columns follow ``circuit.inputs`` order; output columns follow
        ``circuit.outputs`` order.
        """
        patterns = np.atleast_2d(np.asarray(patterns))
        n_patterns = patterns.shape[0]
        if patterns.shape[1] != len(self.circuit.inputs):
            raise ValueError(
                f"expected {len(self.circuit.inputs)} input columns, "
                f"got {patterns.shape[1]}"
            )
        values = self._run_matrix(patterns)
        return unpack_patterns(
            self._backend.to_numpy(values[self._compiled.output_idx]), n_patterns
        )

    def run_full(self, patterns: np.ndarray) -> Dict[str, np.ndarray]:
        """Like :meth:`run` but returns every net, unpacked, keyed by name."""
        patterns = np.atleast_2d(np.asarray(patterns))
        n_patterns = patterns.shape[0]
        values = self._run_matrix(patterns)
        unpacked = unpack_patterns(self._backend.to_numpy(values), n_patterns)
        return {
            net: unpacked[:, i]
            for i, net in enumerate(self._order)
            if net in self.circuit
        }

    def run_nets(self, patterns: np.ndarray, nets: Sequence[str]) -> np.ndarray:
        """Simulate and unpack only ``nets``: returns ``(n_patterns, len(nets))``.

        Cheaper than :meth:`run_full` when only a few of the circuit's nets
        are of interest (rare-node hit counting, leakage state factors, ...).
        """
        patterns = np.atleast_2d(np.asarray(patterns))
        n_patterns = patterns.shape[0]
        values = self._run_matrix(patterns)
        rows = np.array([self._compiled.index[net] for net in nets], dtype=np.intp)
        return unpack_patterns(self._backend.to_numpy(values[rows]), n_patterns)


def _eval_packed(
    gate_type: GateType, inputs: List[np.ndarray], ones: np.ndarray
) -> np.ndarray:
    """Evaluate one gate on packed uint64 vectors."""
    if gate_type is GateType.AND or gate_type is GateType.NAND:
        acc = inputs[0].copy()
        for word in inputs[1:]:
            acc &= word
        return (acc ^ ones) if gate_type is GateType.NAND else acc
    if gate_type is GateType.OR or gate_type is GateType.NOR:
        acc = inputs[0].copy()
        for word in inputs[1:]:
            acc |= word
        return (acc ^ ones) if gate_type is GateType.NOR else acc
    if gate_type is GateType.XOR or gate_type is GateType.XNOR:
        acc = inputs[0].copy()
        for word in inputs[1:]:
            acc ^= word
        return (acc ^ ones) if gate_type is GateType.XNOR else acc
    if gate_type is GateType.NOT:
        return inputs[0] ^ ones
    if gate_type is GateType.BUFF:
        return inputs[0].copy()
    if gate_type is GateType.MUX:
        d0, d1, sel = inputs
        return (d0 & (sel ^ ones)) | (d1 & sel)
    raise NetlistError(f"cannot bit-simulate gate type {gate_type}")


def reference_run_packed(
    circuit: Circuit, packed_inputs: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Per-gate interpreter (the pre-compiled engine), kept as a reference.

    Walks the netlist dict one gate at a time.  Used by the differential
    tests in ``tests/test_sim_compiled.py`` and as the "before" measurement
    in ``benchmarks/test_perf_sim.py``; production code should go through
    :class:`BitSimulator` instead.
    """
    n_words = len(next(iter(packed_inputs.values()))) if packed_inputs else 1
    values: Dict[str, np.ndarray] = {}
    ones = np.full(n_words, ALL_ONES, dtype=np.uint64)
    zeros = np.zeros(n_words, dtype=np.uint64)
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        gt = gate.gate_type
        if gt is GateType.INPUT:
            values[net] = np.asarray(packed_inputs[net], dtype=np.uint64)
        elif gt is GateType.TIE0:
            values[net] = zeros
        elif gt is GateType.TIE1:
            values[net] = ones
        else:
            values[net] = _eval_packed(gt, [values[i] for i in gate.inputs], ones)
    return values


def simulate(circuit: Circuit, patterns: np.ndarray) -> np.ndarray:
    """One-shot convenience wrapper around :class:`BitSimulator`."""
    return BitSimulator(circuit).run(patterns)


def random_patterns(
    n_patterns: int,
    n_inputs: int,
    rng: Optional[np.random.Generator] = None,
    p_one: float = 0.5,
) -> np.ndarray:
    """Random 0/1 pattern block, optionally biased toward 1 with ``p_one``.

    With no ``rng`` the block is drawn from a fixed-seed generator — library
    code never draws fresh OS entropy (seed discipline, ``repro lint``
    RPR102); pass a seeded Generator for independent draws.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    return (rng.random((n_patterns, n_inputs)) < p_one).astype(np.uint8)


def exhaustive_patterns(n_inputs: int) -> np.ndarray:
    """All ``2**n_inputs`` patterns (careful: exponential; for small blocks)."""
    if n_inputs > 22:
        raise ValueError(f"exhaustive simulation of {n_inputs} inputs is infeasible")
    if n_inputs == 0:
        return np.zeros((1, 0), dtype=np.uint8)  # one empty assignment
    count = 1 << n_inputs
    idx = np.arange(count, dtype=np.uint64)
    cols = [(idx >> np.uint64(b)) & np.uint64(1) for b in range(n_inputs)]
    return np.stack(cols, axis=1).astype(np.uint8)
