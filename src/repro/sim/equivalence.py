"""Vector-based functional comparison of two circuits.

This is the defender's "functional testing" step (ModelSim in the paper's
flow, Fig. 6): apply test patterns to both circuits and compare primary
outputs.  It is also used internally by Algorithm 1 to accept or revert a
candidate-gate removal, and by the test suite for miter-style exhaustive
equivalence on small blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from .bitsim import BitSimulator, exhaustive_patterns
from .seqsim import SequentialSimulator


@dataclass
class ComparisonResult:
    """Outcome of a pattern-based functional comparison."""

    equivalent: bool
    patterns_applied: int
    mismatches: int
    #: Up to ``max_witnesses`` (pattern index, output name) mismatch witnesses.
    witnesses: List[Tuple[int, str]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent


def _check_interfaces(golden: Circuit, candidate: Circuit) -> None:
    if tuple(golden.inputs) != tuple(candidate.inputs):
        raise ValueError(
            f"input interfaces differ: {golden.inputs[:4]}... vs {candidate.inputs[:4]}..."
        )
    if set(golden.outputs) != set(candidate.outputs):
        raise ValueError(
            f"output interfaces differ: {sorted(golden.outputs)[:4]} vs "
            f"{sorted(candidate.outputs)[:4]}"
        )


def compare_on_patterns(
    golden: Circuit,
    candidate: Circuit,
    patterns: np.ndarray,
    max_witnesses: int = 8,
) -> ComparisonResult:
    """Compare primary outputs of two combinational circuits on ``patterns``."""
    _check_interfaces(golden, candidate)
    patterns = np.atleast_2d(np.asarray(patterns))
    golden_out = BitSimulator(golden).run(patterns)
    # Align candidate output columns to the golden ordering.
    cand_sim = BitSimulator(candidate).run(patterns)
    col = {name: i for i, name in enumerate(candidate.outputs)}
    cand_out = cand_sim[:, [col[o] for o in golden.outputs]]
    diff = golden_out != cand_out
    mism = int(diff.sum())
    witnesses: List[Tuple[int, str]] = []
    if mism:
        rows, cols = np.nonzero(diff)
        for r, c in zip(rows[:max_witnesses], cols[:max_witnesses]):
            witnesses.append((int(r), golden.outputs[int(c)]))
    return ComparisonResult(mism == 0, patterns.shape[0], mism, witnesses)


def compare_sequential_on_patterns(
    golden: Circuit,
    candidate: Circuit,
    patterns: np.ndarray,
    max_witnesses: int = 8,
) -> ComparisonResult:
    """Compare a (possibly sequential) candidate against a combinational golden.

    The defender applies TPs one after another; a Trojan-infected circuit's
    counter state evolves across that sequence, which is exactly what decides
    whether the Trojan fires during test.  Patterns are therefore applied as
    one ordered sequence.
    """
    _check_interfaces(golden, candidate)
    patterns = np.atleast_2d(np.asarray(patterns))
    golden_out = BitSimulator(golden).run(patterns)
    seq = SequentialSimulator(candidate)
    cand_raw = seq.run_sequences(patterns[np.newaxis, :, :])[0]
    col = {name: i for i, name in enumerate(candidate.outputs)}
    cand_out = cand_raw[:, [col[o] for o in golden.outputs]]
    diff = golden_out != cand_out
    mism = int(diff.sum())
    witnesses: List[Tuple[int, str]] = []
    if mism:
        rows, cols = np.nonzero(diff)
        for r, c in zip(rows[:max_witnesses], cols[:max_witnesses]):
            witnesses.append((int(r), golden.outputs[int(c)]))
    return ComparisonResult(mism == 0, patterns.shape[0], mism, witnesses)


def compare_exhaustive(
    golden: Circuit, candidate: Circuit, max_inputs: int = 20
) -> ComparisonResult:
    """Miter-style exhaustive comparison for small circuits (tests only)."""
    if len(golden.inputs) > max_inputs:
        raise ValueError(
            f"{len(golden.inputs)} inputs is too many for exhaustive comparison"
        )
    return compare_on_patterns(golden, candidate, exhaustive_patterns(len(golden.inputs)))


def functional_test(
    candidate: Circuit,
    golden: Circuit,
    pattern_sets: Sequence[np.ndarray],
    sequential_aware: bool = True,
) -> bool:
    """Run the defender's q testing algorithms (pattern sets) — all must pass.

    Mirrors Algorithm 1 lines 17-22 / Algorithm 2 lines 3-8: iterate the
    defender's test algorithms, stop at the first failure.
    """
    for patterns in pattern_sets:
        if candidate.is_sequential and sequential_aware:
            result = compare_sequential_on_patterns(golden, candidate, patterns)
        else:
            result = compare_on_patterns(golden, candidate, patterns)
        if not result:
            return False
    return True
