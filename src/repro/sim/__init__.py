"""Logic simulation: bit-parallel combinational, sequential, and comparison."""

from .bitsim import (
    BitSimulator,
    exhaustive_patterns,
    pack_patterns,
    random_patterns,
    reference_run_packed,
    simulate,
    tail_mask,
    unpack_patterns,
)
from .compiled import (
    COMPILE_STATS,
    CompiledCircuit,
    CompileStats,
    GateGroup,
    compile_circuit,
)
from .equivalence import (
    ComparisonResult,
    compare_exhaustive,
    compare_on_patterns,
    compare_sequential_on_patterns,
    functional_test,
)
from .seqsim import (
    ReferenceSequentialSimulator,
    SequentialSimulator,
    reference_step_packed,
)

__all__ = [
    "BitSimulator",
    "COMPILE_STATS",
    "CompiledCircuit",
    "CompileStats",
    "GateGroup",
    "compile_circuit",
    "reference_run_packed",
    "reference_step_packed",
    "ReferenceSequentialSimulator",
    "SequentialSimulator",
    "simulate",
    "random_patterns",
    "exhaustive_patterns",
    "pack_patterns",
    "unpack_patterns",
    "tail_mask",
    "ComparisonResult",
    "compare_on_patterns",
    "compare_sequential_on_patterns",
    "compare_exhaustive",
    "functional_test",
]
