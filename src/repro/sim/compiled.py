"""Compiled levelized simulation core: array-based gate evaluation.

This module compiles a :class:`~repro.netlist.circuit.Circuit` **once** into
flat NumPy structures so that a full bit-parallel simulation pass is a handful
of vectorized operations per (level, gate-type) group instead of one Python
iteration per gate.  It is the engine behind :class:`repro.sim.BitSimulator`
and :class:`repro.atpg.FaultSimulator`; callers normally keep using those
public APIs and get the compiled path transparently.

Level-schedule layout
---------------------
Compilation assigns every net a dense integer row index (topological order)
and builds:

* ``values``: a ``(n_nets, n_words)`` uint64 matrix — row *i* holds the packed
  simulation words of net *i* (64 patterns per word, bit ``k`` of word ``w``
  is pattern ``w*64 + k``, matching :func:`repro.sim.bitsim.pack_patterns`).
* ``schedule``: an ordered list of :class:`GateGroup` records.  All gates that
  share the same ``(logic level, gate type, arity)`` are grouped together;
  groups are sorted by level, so by the time a group is evaluated every row it
  reads has already been written.  A group evaluates as

  ``values[out_idx] = reduce(op, values[in_idx], axis=1)``

  where ``in_idx`` has shape ``(n_gates_in_group, arity)`` — one fancy-indexed
  gather, one ufunc reduction, and one scatter per group, independent of the
  number of gates in the group.
* constant rows: ``TIE0``/``TIE1`` rows are pre-filled when the matrix is
  allocated and never revisited.

Fault-simulation support
------------------------
:meth:`CompiledCircuit.cone_schedule` extracts, per fault site, the sub-set of
groups restricted to the site's fanout cone (plus the row list to restore and
the primary-output rows to compare).  Injecting a stuck-at fault is then:
force the site row, re-evaluate only the cone groups, XOR the cone's output
rows against the good matrix.  Cone schedules are cached on the compiled
circuit, so every :class:`~repro.atpg.faultsim.FaultSimulator` built for the
same (unmutated) circuit shares them.

Compilation caching
-------------------
:func:`compile_circuit` memoizes the compiled form on the circuit object
itself; any structural mutation invalidates it (see
``Circuit._invalidate``).  Repeated simulator constructions — the pattern all
over :mod:`repro.prob.montecarlo`, :mod:`repro.atpg.mero`,
:mod:`repro.detect`, and :mod:`repro.core.pipeline` — therefore compile once
per circuit revision.

Only combinational circuits compile; sequential circuits are rejected exactly
like :class:`~repro.sim.bitsim.BitSimulator` does (levelizing the
combinational settle of :mod:`repro.sim.seqsim` is a ROADMAP item).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gate import GateType

_WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: numpy reduction ufunc per associative gate family.
_REDUCERS = {
    GateType.AND: np.bitwise_and,
    GateType.NAND: np.bitwise_and,
    GateType.OR: np.bitwise_or,
    GateType.NOR: np.bitwise_or,
    GateType.XOR: np.bitwise_xor,
    GateType.XNOR: np.bitwise_xor,
}

_INVERTING = frozenset({GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT})


@dataclass(frozen=True)
class GateGroup:
    """All gates of one type/arity on one logic level.

    ``out_idx`` has shape ``(n_gates,)``; ``in_idx`` has shape
    ``(n_gates, arity)``.  Both index rows of the value matrix.  ``out`` is
    the scatter target actually used during evaluation: row indexing assigns
    rows in schedule order, so full-schedule groups write one contiguous row
    *slice* (cheap basic indexing); cone-restricted subgroups fall back to an
    index array.
    """

    level: int
    gate_type: GateType
    out_idx: np.ndarray
    in_idx: np.ndarray
    out: object


@dataclass(frozen=True)
class ConeSchedule:
    """Fanout-cone sub-schedule for one fault site.

    ``rows`` lists every row the cone groups write (for cheap restore);
    ``po_rows`` lists the primary-output rows inside the cone (the detection
    frontier), excluding the site itself.
    """

    site: int
    groups: Tuple[GateGroup, ...]
    rows: np.ndarray
    po_rows: np.ndarray
    site_is_output: bool


def _evaluate_group(group: GateGroup, values: np.ndarray) -> None:
    """Evaluate one gate group in place on the ``(n_nets, n_words)`` matrix."""
    gt = group.gate_type
    in_idx = group.in_idx
    if gt in _REDUCERS:
        if in_idx.shape[1] == 2:
            acc = _REDUCERS[gt](values[in_idx[:, 0]], values[in_idx[:, 1]])
        else:
            acc = _REDUCERS[gt].reduce(values[in_idx], axis=1)
        if gt in _INVERTING:
            np.invert(acc, out=acc)
        values[group.out] = acc
        return
    if gt is GateType.NOT:
        values[group.out] = ~values[in_idx[:, 0]]
        return
    if gt is GateType.BUFF:
        values[group.out] = values[in_idx[:, 0]]
        return
    if gt is GateType.MUX:
        d0 = values[in_idx[:, 0]]
        # d0 XOR ((d0 XOR d1) AND sel): selects d1 where sel is set.
        acc = values[in_idx[:, 1]]
        np.bitwise_xor(acc, d0, out=acc)
        np.bitwise_and(acc, values[in_idx[:, 2]], out=acc)
        np.bitwise_xor(acc, d0, out=acc)
        values[group.out] = acc
        return
    raise NetlistError(f"cannot bit-simulate gate type {gt}")  # pragma: no cover


class CompiledCircuit:
    """A circuit lowered to index arrays and a levelized group schedule."""

    def __init__(self, circuit: Circuit) -> None:
        if circuit.is_sequential:
            raise NetlistError(
                f"{circuit.name!r} contains DFFs; the compiled core is combinational"
            )
        self.circuit = circuit
        levels = circuit.levels()

        # Bucket gates by (level, type, arity); sources (PIs/constants) are
        # kept apart because they have no evaluation step.
        sources: List[str] = []
        tie0_nets: List[str] = []
        tie1_nets: List[str] = []
        grouping: Dict[Tuple[int, GateType, int], List[str]] = {}
        for net in circuit.topological_order():
            gate = circuit.gate(net)
            gt = gate.gate_type
            if gt is GateType.INPUT:
                sources.append(net)
            elif gt is GateType.TIE0:
                sources.append(net)
                tie0_nets.append(net)
            elif gt is GateType.TIE1:
                sources.append(net)
                tie1_nets.append(net)
            else:
                grouping.setdefault((levels[net], gt, len(gate.inputs)), []).append(net)

        # Assign row indices in schedule order: sources first, then each group
        # as one contiguous run, so a group's scatter is a basic row slice.
        group_keys = sorted(
            grouping, key=lambda key: (key[0], key[1].value, key[2])
        )
        self.order: List[str] = list(sources)
        for key in group_keys:
            self.order.extend(grouping[key])
        self.index: Dict[str, int] = {net: i for i, net in enumerate(self.order)}
        self.n_nets = len(self.order)
        self.input_idx = np.array(
            [self.index[pi] for pi in circuit.inputs], dtype=np.intp
        )
        self.output_idx = np.array(
            [self.index[po] for po in circuit.outputs], dtype=np.intp
        )
        self.po_set = frozenset(self.output_idx.tolist())
        self.tie0_idx = np.array([self.index[n] for n in tie0_nets], dtype=np.intp)
        self.tie1_idx = np.array([self.index[n] for n in tie1_nets], dtype=np.intp)

        #: Per-net (gate_type, input row indices); None for INPUT/TIE rows.
        #: Used by scalar-word fallbacks (e.g. single-block fault simulation).
        self.node: List[object] = [None] * self.n_nets

        self.schedule: List[GateGroup] = []
        row = len(sources)
        for key in group_keys:
            level, gt, arity = key
            nets = grouping[key]
            in_rows = []
            for net in nets:
                rows = [self.index[src] for src in circuit.gate(net).inputs]
                in_rows.append(rows)
                self.node[self.index[net]] = (gt, tuple(rows))
            start, stop = row, row + len(nets)
            row = stop
            self.schedule.append(
                GateGroup(
                    level=level,
                    gate_type=gt,
                    out_idx=np.arange(start, stop, dtype=np.intp),
                    in_idx=np.array(in_rows, dtype=np.intp).reshape(len(nets), arity),
                    out=slice(start, stop),
                )
            )
        self._cone_cache: Dict[int, ConeSchedule] = {}
        self._cone_rows_cache: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # full-circuit evaluation
    # ------------------------------------------------------------------
    def new_matrix(self, n_words: int) -> np.ndarray:
        """Fresh ``(n_nets, n_words)`` value matrix with constant rows set.

        Every non-constant row is either a PI row (the caller fills it) or is
        written by the schedule, so the bulk allocation stays uninitialized.
        """
        values = np.empty((self.n_nets, n_words), dtype=np.uint64)
        if self.input_idx.size:
            values[self.input_idx] = 0
        if self.tie0_idx.size:
            values[self.tie0_idx] = 0
        if self.tie1_idx.size:
            values[self.tie1_idx] = _ALL_ONES
        return values

    def run_matrix(self, values: np.ndarray) -> np.ndarray:
        """Evaluate the whole schedule in place; PI/constant rows must be set."""
        for group in self.schedule:
            _evaluate_group(group, values)
        return values

    def simulate_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Simulate ``(n_inputs, n_words)`` packed PI words; returns the matrix."""
        packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
        if packed_inputs.ndim == 1:
            packed_inputs = packed_inputs.reshape(-1, 1)
        n_words = packed_inputs.shape[1]
        values = self.new_matrix(n_words)
        if self.input_idx.size:
            values[self.input_idx] = packed_inputs
        return self.run_matrix(values)

    # ------------------------------------------------------------------
    # fault-cone sub-schedules
    # ------------------------------------------------------------------
    def cone_rows(self, net: str) -> List[int]:
        """Topologically-sorted row indices of ``net``'s fanout cone (exclusive)."""
        return self.cone_rows_at(self.index[net])

    def cone_rows_at(self, site: int) -> List[int]:
        """Row-keyed variant of :meth:`cone_rows` (hot in fault simulation)."""
        cached = self._cone_rows_cache.get(site)
        if cached is None:
            net = self.order[site]
            cone = self.circuit.fanout_cone(net)
            cone.discard(net)
            cached = sorted(self.index[n] for n in cone)
            self._cone_rows_cache[site] = cached
        return cached

    def cone_schedule(self, net: str) -> ConeSchedule:
        """Cached fanout-cone sub-schedule for one fault site."""
        site = self.index[net]
        cached = self._cone_cache.get(site)
        if cached is None:
            rows = self.cone_rows(net)
            groups: List[GateGroup] = []
            for group in self.schedule:
                # Each full group owns one contiguous row run, so the cone's
                # (sorted) member rows inside it form one bisectable span.
                start, stop = group.out.start, group.out.stop
                lo = bisect_left(rows, start)
                hi = bisect_left(rows, stop)
                if hi == lo:
                    continue
                if hi - lo == stop - start:
                    groups.append(group)
                    continue
                keep = np.array(rows[lo:hi], dtype=np.intp) - start
                out_idx = group.out_idx[keep]
                groups.append(
                    GateGroup(
                        level=group.level,
                        gate_type=group.gate_type,
                        out_idx=out_idx,
                        in_idx=group.in_idx[keep],
                        out=out_idx,
                    )
                )
            cached = ConeSchedule(
                site=site,
                groups=tuple(groups),
                rows=np.array(rows, dtype=np.intp),
                po_rows=np.array(
                    [i for i in rows if i in self.po_set], dtype=np.intp
                ),
                site_is_output=site in self.po_set,
            )
            self._cone_cache[site] = cached
        return cached

    def run_cone(self, cone: ConeSchedule, values: np.ndarray) -> np.ndarray:
        """Re-evaluate only the cone's groups in place (site row pre-forced)."""
        for group in cone.groups:
            _evaluate_group(group, values)
        return values


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Compile ``circuit``, memoizing on the circuit until it is mutated."""
    cached = getattr(circuit, "_compiled_cache", None)
    if cached is None:
        cached = CompiledCircuit(circuit)
        circuit._compiled_cache = cached
    return cached
