"""Compiled levelized simulation core: array-based gate evaluation.

This module compiles a :class:`~repro.netlist.circuit.Circuit` **once** into
flat NumPy structures so that a full bit-parallel simulation pass is a handful
of vectorized operations per (level, gate-type) group instead of one Python
iteration per gate.  It is the engine behind :class:`repro.sim.BitSimulator`
and :class:`repro.atpg.FaultSimulator`; callers normally keep using those
public APIs and get the compiled path transparently.

Level-schedule layout
---------------------
Compilation assigns every net a dense integer row index (topological order)
and builds:

* ``values``: a ``(n_nets, n_words)`` uint64 matrix — row *i* holds the packed
  simulation words of net *i* (64 patterns per word, bit ``k`` of word ``w``
  is pattern ``w*64 + k``, matching :func:`repro.sim.bitsim.pack_patterns`).
* ``schedule``: an ordered list of :class:`GateGroup` records.  All gates that
  share the same ``(logic level, gate type, arity)`` are grouped together;
  groups are sorted by level, so by the time a group is evaluated every row it
  reads has already been written.  A group evaluates as

  ``values[out_idx] = reduce(op, values[in_idx], axis=1)``

  where ``in_idx`` has shape ``(n_gates_in_group, arity)`` — one fancy-indexed
  gather, one ufunc reduction, and one scatter per group, independent of the
  number of gates in the group.
* constant rows: ``TIE0``/``TIE1`` rows are pre-filled when the matrix is
  allocated and never revisited.

Fault-simulation support
------------------------
:meth:`CompiledCircuit.cone_schedule` extracts, per fault site, the sub-set of
groups restricted to the site's fanout cone (plus the row list to restore and
the primary-output rows to compare).  Injecting a stuck-at fault is then:
force the site row, re-evaluate only the cone groups, XOR the cone's output
rows against the good matrix.  Cone schedules are cached on the compiled
circuit, so every :class:`~repro.atpg.faultsim.FaultSimulator` built for the
same (unmutated) circuit shares them.

Sequential schedule
-------------------
Sequential circuits compile too: every DFF *output* net becomes an extra
source row alongside the PIs and TIE constants (it is a level-0 net — the
flip-flop breaks the timing loop), and the levelized group schedule covers
only the combinational fan-in.  One combinational *settle* of
:mod:`repro.sim.seqsim` is then a single :meth:`CompiledCircuit.run_matrix`
call with the state rows pre-loaded, and the edge-driven ripple update
(detect rising clock edges, latch ``d`` where they fired, re-settle) is a
handful of vectorized row operations over ``dff_clk_idx``/``dff_d_idx`` —
see :meth:`CompiledCircuit.step_sequential`.

Compilation caching
-------------------
:func:`compile_circuit` memoizes at three levels:

1. **attached** — the compiled form is stored on the circuit object itself;
   any structural mutation invalidates it (``Circuit._invalidate``), and
   ``Circuit.copy()`` carries it over, so unmutated copies share it.
2. **fingerprint** — a bounded LRU keyed by
   :meth:`Circuit.structural_fingerprint` catches structurally identical
   circuits that are *different objects* (edit/revert round-trips in
   :mod:`repro.core.salvage`, re-parsed netlists).
3. **patched** — when a circuit was :meth:`~Circuit.copy`-derived from one
   that is already compiled and differs only by gates tied to TIE0/TIE1
   (plus dead gates stripped), the ancestor's schedule is *patched*: row
   order and input-index arrays are shared, the tied rows move from their
   gate groups to the constant-row lists, and stripped rows simply keep
   evaluating harmlessly.  This is what makes salvage's per-candidate
   tie/strip/test trials run without a single cold compile.

``COMPILE_STATS`` counts hits per level so callers (and the perf harness)
can verify cache behaviour.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gate import GateType
from .backend import ALL_ONES, ArrayBackend, resolve_backend

#: Bound on the fired-DFF-set -> ripple sub-schedule cache (counters revisit
#: a handful of sets; an adversarial workload must not grow it unboundedly).
_FIRE_CACHE_MAX = 128

#: When the fired DFFs' cone union covers this fraction of the scheduled
#: rows, a full re-settle is cheaper (contiguous row slices instead of
#: gathered subgroups).
_FIRE_FULL_FRACTION = 0.6

_MISSING = object()

#: numpy reduction ufunc per associative gate family.
_REDUCERS = {
    GateType.AND: np.bitwise_and,
    GateType.NAND: np.bitwise_and,
    GateType.OR: np.bitwise_or,
    GateType.NOR: np.bitwise_or,
    GateType.XOR: np.bitwise_xor,
    GateType.XNOR: np.bitwise_xor,
}

_INVERTING = frozenset({GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT})


@dataclass(frozen=True)
class GateGroup:
    """All gates of one type/arity on one logic level.

    ``out_idx`` has shape ``(n_gates,)``; ``in_idx`` has shape
    ``(n_gates, arity)``.  Both index rows of the value matrix.  ``out`` is
    the scatter target actually used during evaluation: row indexing assigns
    rows in schedule order, so full-schedule groups write one contiguous row
    *slice* (cheap basic indexing); cone-restricted subgroups fall back to an
    index array.
    """

    level: int
    gate_type: GateType
    out_idx: np.ndarray
    in_idx: np.ndarray
    out: object


@dataclass(frozen=True)
class ConeSchedule:
    """Fanout-cone sub-schedule for one fault site.

    ``rows`` lists every row the cone groups write (for cheap restore);
    ``po_rows`` lists the primary-output rows inside the cone (the detection
    frontier), excluding the site itself.
    """

    site: int
    groups: Tuple[GateGroup, ...]
    rows: np.ndarray
    po_rows: np.ndarray
    site_is_output: bool


def _build_row_adjacency(
    n_nets: int, schedule: List[GateGroup]
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR (starts, dst) of the row-level reads-edges of a group schedule."""
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    for group in schedule:
        n_gates, arity = group.in_idx.shape
        src_parts.append(group.in_idx.ravel())
        dst_parts.append(np.repeat(group.out_idx, arity))
    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
        order = np.argsort(src, kind="stable")
        src = src[order]
        dst = dst[order].astype(np.intp)
    else:
        src = np.empty(0, dtype=np.intp)
        dst = np.empty(0, dtype=np.intp)
    starts = np.searchsorted(src, np.arange(n_nets + 1)).astype(np.intp)
    return starts, dst


def _evaluate_group(group: GateGroup, values: np.ndarray) -> None:
    """Evaluate one gate group in place on the ``(n_nets, n_words)`` matrix."""
    gt = group.gate_type
    in_idx = group.in_idx
    if in_idx.shape[0] == 1:
        # Single-gate group: basic row indexing (views) skips the gather
        # copies — these groups are ~half the schedule on real circuits, so
        # the per-group constant factor matters.
        row = in_idx[0]
        if gt in _REDUCERS:
            if row.size == 2:
                acc = _REDUCERS[gt](values[row[0]], values[row[1]])
            else:
                acc = _REDUCERS[gt].reduce(values[row], axis=0)
            if gt in _INVERTING:
                np.invert(acc, out=acc)
        elif gt is GateType.NOT:
            acc = ~values[row[0]]
        elif gt is GateType.BUFF:
            acc = values[row[0]]
        elif gt is GateType.MUX:
            d0 = values[row[0]]
            acc = ((values[row[1]] ^ d0) & values[row[2]]) ^ d0
        else:  # pragma: no cover - enum is closed
            raise NetlistError(f"cannot bit-simulate gate type {gt}")
        values[group.out] = acc
        return
    if gt in _REDUCERS:
        if in_idx.shape[1] == 2:
            acc = _REDUCERS[gt](values[in_idx[:, 0]], values[in_idx[:, 1]])
        else:
            acc = _REDUCERS[gt].reduce(values[in_idx], axis=1)
        if gt in _INVERTING:
            np.invert(acc, out=acc)
        values[group.out] = acc
        return
    if gt is GateType.NOT:
        values[group.out] = ~values[in_idx[:, 0]]
        return
    if gt is GateType.BUFF:
        values[group.out] = values[in_idx[:, 0]]
        return
    if gt is GateType.MUX:
        d0 = values[in_idx[:, 0]]
        # d0 XOR ((d0 XOR d1) AND sel): selects d1 where sel is set.
        acc = values[in_idx[:, 1]]
        np.bitwise_xor(acc, d0, out=acc)
        np.bitwise_and(acc, values[in_idx[:, 2]], out=acc)
        np.bitwise_xor(acc, d0, out=acc)
        values[group.out] = acc
        return
    raise NetlistError(f"cannot bit-simulate gate type {gt}")  # pragma: no cover


class CompiledCircuit:
    """A circuit lowered to index arrays and a levelized group schedule.

    Combinational circuits get a pure feed-forward schedule.  Sequential
    circuits compile as well: DFF output nets are extra *source* rows (the
    caller loads the flip-flop state before :meth:`run_matrix`), and
    ``dff_idx``/``dff_d_idx``/``dff_clk_idx`` expose the row triples the
    edge-driven state update of :meth:`step_sequential` needs.
    """

    def __init__(
        self, circuit: Circuit, backend: Union[str, ArrayBackend, None] = None
    ) -> None:
        # Deliberately no reference to ``circuit`` is kept: compiled forms
        # are shared across circuit objects (fingerprint cache, copies) and
        # must not pin their source object alive or observe its mutations —
        # everything needed at runtime is lowered into arrays here.
        #
        # The schedule's index arrays stay host-side (NumPy) regardless of
        # backend — they are tiny and both NumPy and CuPy accept host index
        # arrays in fancy indexing; only the *value matrices* live on the
        # backend (see :meth:`new_matrix`).
        self.backend: ArrayBackend = resolve_backend(backend)
        levels = circuit.levels()

        # Bucket gates by (level, type, arity); sources (PIs/constants/DFF
        # outputs) are kept apart because they have no evaluation step.
        sources: List[str] = []
        tie0_nets: List[str] = []
        tie1_nets: List[str] = []
        dff_nets: List[str] = []
        grouping: Dict[Tuple[int, GateType, int], List[str]] = {}
        for net in circuit.topological_order():
            gate = circuit.gate(net)
            gt = gate.gate_type
            if gt is GateType.INPUT:
                sources.append(net)
            elif gt is GateType.TIE0:
                sources.append(net)
                tie0_nets.append(net)
            elif gt is GateType.TIE1:
                sources.append(net)
                tie1_nets.append(net)
            elif gt is GateType.DFF:
                sources.append(net)
                dff_nets.append(net)
            else:
                grouping.setdefault((levels[net], gt, len(gate.inputs)), []).append(net)

        # Assign row indices in schedule order: sources first, then each group
        # as one contiguous run, so a group's scatter is a basic row slice.
        group_keys = sorted(
            grouping, key=lambda key: (key[0], key[1].value, key[2])
        )
        self.order: List[str] = list(sources)
        for key in group_keys:
            self.order.extend(grouping[key])
        self.index: Dict[str, int] = {net: i for i, net in enumerate(self.order)}
        self.n_nets = len(self.order)
        self.input_idx = np.array(
            [self.index[pi] for pi in circuit.inputs], dtype=np.intp
        )
        self.output_idx = np.array(
            [self.index[po] for po in circuit.outputs], dtype=np.intp
        )
        self.po_set = frozenset(self.output_idx.tolist())
        self.tie0_idx = np.array([self.index[n] for n in tie0_nets], dtype=np.intp)
        self.tie1_idx = np.array([self.index[n] for n in tie1_nets], dtype=np.intp)

        #: Sequential-schedule arrays: one entry per DFF, aligned.  State is a
        #: ``(n_dffs, n_words)`` matrix the caller owns; ``dff_idx`` are the
        #: rows the state is loaded into before a settle, ``dff_d_idx`` /
        #: ``dff_clk_idx`` are the settled rows the edge update reads.
        self.dff_names: Tuple[str, ...] = tuple(dff_nets)
        self.dff_idx = np.array([self.index[n] for n in dff_nets], dtype=np.intp)
        self.dff_d_idx = np.array(
            [self.index[circuit.gate(n).inputs[0]] for n in dff_nets], dtype=np.intp
        )
        self.dff_clk_idx = np.array(
            [self.index[circuit.gate(n).inputs[1]] for n in dff_nets], dtype=np.intp
        )
        self.is_sequential = bool(dff_nets)

        #: Per-net (gate_type, input row indices); None for INPUT/TIE rows.
        #: Used by scalar-word fallbacks (e.g. single-block fault simulation).
        self.node: List[object] = [None] * self.n_nets

        self.schedule: List[GateGroup] = []
        row = len(sources)
        for key in group_keys:
            level, gt, arity = key
            nets = grouping[key]
            in_rows = []
            for net in nets:
                rows = [self.index[src] for src in circuit.gate(net).inputs]
                in_rows.append(rows)
                self.node[self.index[net]] = (gt, tuple(rows))
            start, stop = row, row + len(nets)
            row = stop
            self.schedule.append(
                GateGroup(
                    level=level,
                    gate_type=gt,
                    out_idx=np.arange(start, stop, dtype=np.intp),
                    in_idx=np.array(in_rows, dtype=np.intp).reshape(len(nets), arity),
                    out=slice(start, stop),
                )
            )
        # Row-level fanout adjacency in CSR form (``_edge_starts[r] ..
        # _edge_starts[r+1]`` indexes ``_edge_dst``).  Cone extraction walks
        # this instead of the Circuit object, so a compiled form shared via
        # the fingerprint cache stays valid even if the circuit object it was
        # originally built from is mutated later.
        self._edge_starts, self._edge_dst = _build_row_adjacency(
            self.n_nets, self.schedule
        )
        self._cone_cache: Dict[int, ConeSchedule] = {}
        self._cone_rows_cache: Dict[int, List[int]] = {}
        self._fire_cache: Dict[Tuple[int, ...], Optional[Tuple[GateGroup, ...]]] = {}
        self._row_sched_pos: Optional[np.ndarray] = None
        self._cone_groups_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # full-circuit evaluation
    # ------------------------------------------------------------------
    def new_matrix(self, n_words: int) -> np.ndarray:
        """Fresh ``(n_nets, n_words)`` value matrix with constant rows set.

        Every non-constant row is either a PI row (the caller fills it) or is
        written by the schedule, so the bulk allocation stays uninitialized.
        The matrix is allocated on :attr:`backend` (host for NumPy, device
        for CuPy); the group schedule evaluates on it through the NumPy ufunc
        dispatch protocol either way.
        """
        values = self.backend.xp.empty((self.n_nets, n_words), dtype=np.uint64)
        if self.input_idx.size:
            values[self.input_idx] = 0
        if self.tie0_idx.size:
            values[self.tie0_idx] = 0
        if self.tie1_idx.size:
            values[self.tie1_idx] = ALL_ONES
        if self.dff_idx.size:
            values[self.dff_idx] = 0  # reset state; quiescent-settle default
        return values

    def run_matrix(self, values: np.ndarray) -> np.ndarray:
        """Evaluate the whole schedule in place; PI/constant rows must be set."""
        for group in self.schedule:
            _evaluate_group(group, values)
        return values

    def simulate_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Simulate ``(n_inputs, n_words)`` packed PI words; returns the matrix."""
        packed_inputs = self.backend.asarray(packed_inputs, dtype=np.uint64)
        if packed_inputs.ndim == 1:
            packed_inputs = packed_inputs.reshape(-1, 1)
        n_words = packed_inputs.shape[1]
        values = self.new_matrix(n_words)
        if self.input_idx.size:
            values[self.input_idx] = packed_inputs
        return self.run_matrix(values)

    # ------------------------------------------------------------------
    # sequential stepping
    # ------------------------------------------------------------------
    def step_sequential(
        self,
        values: np.ndarray,
        state: np.ndarray,
        prev_clk: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        """Apply one input vector to a sequential circuit, edge-driven.

        ``values`` is a full value matrix with the PI rows already set;
        ``state`` is the ``(n_dffs, n_words)`` flip-flop state (mutated in
        place); ``prev_clk`` is the clock snapshot from the previous step, or
        ``None`` for the first vector (which only establishes the baseline —
        no edges fire).  Returns the new clock snapshot.

        Semantics match the reference dict engine exactly: settle, then up to
        ``n_dffs + 2`` ripple passes of (detect rising edges vs. the snapshot,
        latch ``d`` where an edge fired, snapshot clocks, re-settle if
        anything fired).  Ripple re-settles are *cone-restricted*: only the
        fired DFFs' state rows changed, so only the union of their fanout
        cones (:meth:`dff_fire_schedule`) is re-evaluated — deep-counter
        workloads that fire an edge every cycle pay for the counter chain,
        not the whole schedule.
        """
        if state.size:
            values[self.dff_idx] = state
        self.run_matrix(values)
        if not self.dff_idx.size:
            return prev_clk
        if prev_clk is not None:
            for _ in range(self.dff_idx.size + 2):
                clk = values[self.dff_clk_idx]
                edge = ~prev_clk & clk
                prev_clk = clk  # fancy-indexed gather is already a fresh array
                if not edge.any():
                    break
                state &= ~edge
                state |= values[self.dff_d_idx] & edge
                values[self.dff_idx] = state
                fired = tuple(np.nonzero(edge.any(axis=1))[0].tolist())
                groups = self.dff_fire_schedule(fired)
                if groups is None:
                    self.run_matrix(values)
                else:
                    for group in groups:
                        _evaluate_group(group, values)
        return values[self.dff_clk_idx]

    # ------------------------------------------------------------------
    # fault-cone sub-schedules
    # ------------------------------------------------------------------
    def cone_rows(self, net: str) -> List[int]:
        """Topologically-sorted row indices of ``net``'s fanout cone (exclusive)."""
        return self.cone_rows_at(self.index[net])

    def cone_rows_at(self, site: int) -> List[int]:
        """Row-keyed variant of :meth:`cone_rows` (hot in fault simulation)."""
        cached = self._cone_rows_cache.get(site)
        if cached is None:
            starts, dst = self._edge_starts, self._edge_dst
            seen = {site}
            stack = [site]
            while stack:
                row = stack.pop()
                for nxt in dst[starts[row] : starts[row + 1]].tolist():
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            seen.discard(site)
            cached = sorted(seen)
            self._cone_rows_cache[site] = cached
        return cached

    def _subschedule_for_rows(self, rows: List[int]) -> Tuple[GateGroup, ...]:
        """Restrict the group schedule to the (sorted) member ``rows``."""
        return tuple(group for _, group in self._iter_subschedule(rows))

    def _iter_subschedule(self, rows: List[int]):
        """Yield ``(schedule_position, restricted_group)`` for member ``rows``."""
        for position, group in enumerate(self.schedule):
            if isinstance(group.out, slice):
                # Each full group owns one contiguous row run, so the
                # member rows inside it form one bisectable span.
                start, stop = group.out.start, group.out.stop
                lo = bisect_left(rows, start)
                hi = bisect_left(rows, stop)
                if hi == lo:
                    continue
                if hi - lo == stop - start:
                    yield position, group
                    continue
                keep = np.array(rows[lo:hi], dtype=np.intp) - start
            else:
                # Patched groups scatter through an index array; select
                # members by membership in the (sorted) row list.
                rows_arr = np.asarray(rows, dtype=np.intp)
                pos = np.searchsorted(rows_arr, group.out_idx)
                pos_clip = np.minimum(pos, rows_arr.size - 1)
                mask = (pos < rows_arr.size) & (
                    rows_arr[pos_clip] == group.out_idx
                ) if rows_arr.size else np.zeros(group.out_idx.size, dtype=bool)
                if not mask.any():
                    continue
                if mask.all():
                    yield position, group
                    continue
                keep = np.nonzero(mask)[0]
            out_idx = group.out_idx[keep]
            yield position, GateGroup(
                level=group.level,
                gate_type=group.gate_type,
                out_idx=out_idx,
                in_idx=group.in_idx[keep],
                out=out_idx,
            )

    def dff_fire_schedule(
        self, fired: Tuple[int, ...]
    ) -> Optional[Tuple[GateGroup, ...]]:
        """Sub-schedule for a ripple re-settle after ``fired`` DFFs latched.

        ``fired`` holds indices into ``dff_idx`` (sorted, as produced by
        ``np.nonzero``).  Only the union of the fired DFFs' fanout cones can
        change when their state rows are reloaded, so re-settling just those
        rows is exact.  Returns ``None`` when a full re-settle is cheaper
        (the union covers most of the schedule).  Cached per fired set —
        ripple workloads (counters) revisit a handful of sets.
        """
        cached = self._fire_cache.get(fired, _MISSING)
        if cached is _MISSING:
            rows: set = set()
            for i in fired:
                rows.update(self.cone_rows_at(int(self.dff_idx[i])))
            n_scheduled = sum(group.out_idx.size for group in self.schedule)
            if len(rows) >= _FIRE_FULL_FRACTION * max(n_scheduled, 1):
                cached = None
            else:
                cached = self._subschedule_for_rows(sorted(rows))
            if len(self._fire_cache) < _FIRE_CACHE_MAX:
                self._fire_cache[fired] = cached
        return cached

    def cone_schedule(self, net: str) -> ConeSchedule:
        """Cached fanout-cone sub-schedule for one fault site."""
        site = self.index[net]
        cached = self._cone_cache.get(site)
        if cached is None:
            rows = self.cone_rows(net)
            cached = ConeSchedule(
                site=site,
                groups=self._subschedule_for_rows(rows),
                rows=np.array(rows, dtype=np.intp),
                po_rows=np.array(
                    [i for i in rows if i in self.po_set], dtype=np.intp
                ),
                site_is_output=site in self.po_set,
            )
            self._cone_cache[site] = cached
        return cached

    def run_cone(self, cone: ConeSchedule, values: np.ndarray) -> np.ndarray:
        """Re-evaluate only the cone's groups in place (site row pre-forced)."""
        for group in cone.groups:
            _evaluate_group(group, values)
        return values

    def batch_cone_schedule(
        self, sites: Sequence[int]
    ) -> Tuple[Tuple[GateGroup, ...], np.ndarray, np.ndarray]:
        """Union-of-cones sub-schedule for a PPSFP fault batch.

        Returns ``(groups, positions, po_rows)``: the levelized sub-schedule
        restricted to the union of the sites' fanout cones, each group's
        position in the *full* schedule (so per-site group sets from
        :meth:`cone_group_positions_at` can be mapped onto the union), and
        the sorted primary-output rows that can carry a detection — the PO
        rows inside the union plus any site that is itself a PO.  Evaluating
        ``groups`` once on a matrix whose site rows are forced propagates
        *all* the batch's faults in one sweep (see :mod:`repro.atpg.ppsfp`,
        which owns the per-group site re-forcing this requires).
        """
        rows: set = set()
        for site in sites:
            rows.update(self.cone_rows_at(int(site)))
        pairs = list(self._iter_subschedule(sorted(rows)))
        groups = tuple(group for _, group in pairs)
        positions = np.array([pos for pos, _ in pairs], dtype=np.intp)
        po = {row for row in rows if row in self.po_set}
        po.update(int(site) for site in sites if int(site) in self.po_set)
        return groups, positions, np.array(sorted(po), dtype=np.intp)

    def row_schedule_positions(self) -> np.ndarray:
        """Row -> position of the full-schedule group that writes it (-1: none)."""
        if self._row_sched_pos is None:
            positions = np.full(self.n_nets, -1, dtype=np.intp)
            for gpos, group in enumerate(self.schedule):
                if isinstance(group.out, slice):
                    positions[group.out] = gpos
                else:
                    positions[group.out_idx] = gpos
            self._row_sched_pos = positions
        return self._row_sched_pos

    def cone_group_positions_at(self, site: int) -> np.ndarray:
        """Sorted full-schedule positions of the groups writing ``site``'s cone.

        Cached per site — this is the static half of PPSFP batch planning.
        """
        cached = self._cone_groups_cache.get(site)
        if cached is None:
            rows = np.asarray(self.cone_rows_at(site), dtype=np.intp)
            cached = np.unique(self.row_schedule_positions()[rows])
            self._cone_groups_cache[site] = cached
        return cached


@dataclass
class CompileStats:
    """Counters for the three compile-cache levels (see module docstring)."""

    full_compiles: int = 0
    patched_compiles: int = 0
    fingerprint_hits: int = 0
    attached_hits: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "full_compiles": self.full_compiles,
            "patched_compiles": self.patched_compiles,
            "fingerprint_hits": self.fingerprint_hits,
            "attached_hits": self.attached_hits,
        }

    def delta_since(self, before: Dict[str, int]) -> Dict[str, int]:
        return {k: v - before.get(k, 0) for k, v in self.snapshot().items()}


#: Process-wide compile counters; read with ``COMPILE_STATS.snapshot()``.
COMPILE_STATS = CompileStats()

#: (fingerprint, backend-name)-keyed LRU of compiled forms shared across
#: circuit *objects*.
_SHARED_CACHE: "OrderedDict[Tuple[str, str], CompiledCircuit]" = OrderedDict()
_SHARED_CACHE_MAX = 48

#: A patch inherits the ancestor's rows, dead ones included; recompile in
#: full once the live circuit shrinks below this fraction of the row count
#: (bounds the wasted evaluation across long accepted-edit chains).
_PATCH_MIN_LIVE_FRACTION = 0.7


def _tie_diff(circuit: Circuit, parent: Circuit) -> Optional[Dict[str, int]]:
    """Map of nets tied to constants if ``circuit`` is a tie/strip derivative
    of ``parent``; ``None`` when the edit is not patchable.

    Patchable means: no new nets, no PI changes, every changed driver became
    TIE0/TIE1, and nothing sequential was touched.  Removed (dead-stripped)
    nets are implicitly fine — their rows keep evaluating in the parent
    schedule without affecting any live net.
    """
    if circuit._inputs != parent._inputs:
        return None
    parent_gates = parent._gates
    tied: Dict[str, int] = {}
    for name, gate in circuit._gates.items():
        old = parent_gates.get(name)
        if old is None:
            return None  # new net: structure grew, no patch
        if old is gate or old == gate:
            continue
        if old.is_sequential or gate.is_sequential:
            return None  # DFF set changed; state rows would be wrong
        if gate.gate_type is GateType.TIE0:
            tied[name] = 0
        elif gate.gate_type is GateType.TIE1:
            tied[name] = 1
        else:
            return None
    return tied


def _build_patched(
    parent: CompiledCircuit, circuit: Circuit, tied: Dict[str, int]
) -> CompiledCircuit:
    """Derive a compiled form for ``circuit`` from an ancestor's schedule.

    Shares the row order, index map, and input-index arrays; the tied nets'
    rows move from their gate groups to the constant-row lists.  Rows of
    dead-stripped nets stay in the schedule (their evaluation is wasted but
    harmless — they read only rows that are still computed).
    """
    comp = CompiledCircuit.__new__(CompiledCircuit)
    comp.backend = parent.backend
    comp.order = parent.order
    comp.index = parent.index
    comp.n_nets = parent.n_nets
    comp.input_idx = parent.input_idx
    comp.output_idx = np.array(
        [parent.index[po] for po in circuit.outputs], dtype=np.intp
    )
    comp.po_set = frozenset(comp.output_idx.tolist())
    tie0_new = sorted(parent.index[n] for n, v in tied.items() if v == 0)
    tie1_new = sorted(parent.index[n] for n, v in tied.items() if v == 1)
    comp.tie0_idx = np.concatenate(
        [parent.tie0_idx, np.array(tie0_new, dtype=np.intp)]
    )
    comp.tie1_idx = np.concatenate(
        [parent.tie1_idx, np.array(tie1_new, dtype=np.intp)]
    )
    comp.dff_names = parent.dff_names
    comp.dff_idx = parent.dff_idx
    comp.dff_d_idx = parent.dff_d_idx
    comp.dff_clk_idx = parent.dff_clk_idx
    comp.is_sequential = parent.is_sequential

    drop = {parent.index[n] for n in tied}
    comp.node = list(parent.node)
    for row in drop:
        comp.node[row] = None  # now a constant source row

    comp.schedule = []
    for group in parent.schedule:
        if isinstance(group.out, slice):
            hits = [r for r in drop if group.out.start <= r < group.out.stop]
        else:
            members = set(group.out_idx.tolist())
            hits = [r for r in drop if r in members]
        if not hits:
            comp.schedule.append(group)
            continue
        keep_mask = ~np.isin(group.out_idx, np.array(sorted(hits), dtype=np.intp))
        if not keep_mask.any():
            continue
        out_idx = group.out_idx[keep_mask]
        comp.schedule.append(
            GateGroup(
                level=group.level,
                gate_type=group.gate_type,
                out_idx=out_idx,
                in_idx=group.in_idx[keep_mask],
                out=out_idx,
            )
        )

    # Cut the reads-edges into the tied rows so fault cones no longer pass
    # through them (edges *out of* a tied row stay — readers still exist).
    if drop:
        starts, dst = parent._edge_starts, parent._edge_dst
        src = np.repeat(np.arange(parent.n_nets, dtype=np.intp), np.diff(starts))
        keep = ~np.isin(dst, np.array(sorted(drop), dtype=np.intp))
        src, comp._edge_dst = src[keep], dst[keep]
        comp._edge_starts = np.searchsorted(
            src, np.arange(parent.n_nets + 1)
        ).astype(np.intp)
    else:
        comp._edge_starts, comp._edge_dst = parent._edge_starts, parent._edge_dst
    comp._cone_cache = {}
    comp._cone_rows_cache = {}
    comp._fire_cache = {}
    comp._row_sched_pos = None
    comp._cone_groups_cache = {}
    return comp


def _patch_from_ancestor(
    circuit: Circuit, backend: ArrayBackend
) -> Optional[CompiledCircuit]:
    """Try to derive a compiled form from the copy-ancestor chain."""
    parent = getattr(circuit, "_derived_from", None)
    for _ in range(8):  # accepted trials re-attach, so real chains are short
        if parent is None:
            return None
        if parent._compiled_cache is not None:
            break
        parent = getattr(parent, "_derived_from", None)
    else:
        return None
    parent_compiled: CompiledCircuit = parent._compiled_cache
    if parent_compiled is None:
        return None
    if parent_compiled.backend.name != backend.name:
        return None  # a patch shares the ancestor's arrays, backend included
    if len(circuit._gates) < _PATCH_MIN_LIVE_FRACTION * parent_compiled.n_nets:
        return None
    # The attached compiled form may be shared; diff against the gate map of
    # the circuit object it is attached to (structurally equal by invariant).
    tied = _tie_diff(circuit, parent)
    if tied is None:
        return None
    if any(po not in parent_compiled.index for po in circuit.outputs):
        return None
    return _build_patched(parent_compiled, circuit, tied)


def compile_circuit(
    circuit: Circuit, backend: Union[str, ArrayBackend, None] = None
) -> CompiledCircuit:
    """Compile ``circuit`` through the attached / fingerprint / patch caches.

    The result is memoized on the circuit object until it is mutated, and in
    a bounded fingerprint-keyed LRU shared across circuit objects, so copies
    and edit/revert round-trips never recompile cold.  Single-gate constant
    ties (salvage trials) reuse the ancestor's schedule via patching.

    ``backend`` selects the array backend the compiled form's value matrices
    run on (default: the process default — see :mod:`repro.sim.backend`);
    cache entries are keyed per backend, so mixed-backend use never aliases.
    """
    backend = resolve_backend(backend)
    cached = getattr(circuit, "_compiled_cache", None)
    if cached is not None and cached.backend.name == backend.name:
        COMPILE_STATS.attached_hits += 1
        return cached
    key = (circuit.structural_fingerprint(), backend.name)
    cached = _SHARED_CACHE.get(key)
    if cached is not None:
        COMPILE_STATS.fingerprint_hits += 1
        _SHARED_CACHE.move_to_end(key)
    else:
        cached = _patch_from_ancestor(circuit, backend)
        if cached is not None:
            COMPILE_STATS.patched_compiles += 1
        else:
            cached = CompiledCircuit(circuit, backend)
            COMPILE_STATS.full_compiles += 1
        _SHARED_CACHE[key] = cached
        while len(_SHARED_CACHE) > _SHARED_CACHE_MAX:
            _SHARED_CACHE.popitem(last=False)
    circuit._compiled_cache = cached
    # The ancestor link has served its purpose: patch walks stop at the
    # first compiled ancestor, so keeping it would only pin the whole copy
    # chain (one full Circuit per accepted salvage edit) in memory.
    circuit._derived_from = None
    return cached
