"""Columnar result store + query layer over campaign records.

Ad-hoc JSONL post-processing (grep + json.loads per line) stops scaling the
moment campaigns reach thousands of cells: every question re-parses every
record.  :class:`ResultStore` splits the path in two:

* **Ingest** is append-only JSONL (``<root>/ingest.jsonl``) — cheap, crash-
  tolerant, same format the campaign runner already streams, so a server
  can ingest on the hot path without ever blocking a record.
* **Compaction** folds the ingest log into *typed numpy column files*
  (``<root>/columns/<name>.npy`` + a JSON manifest), deduplicating
  last-record-wins on the canonical :func:`repro.api.spec.spec_hash` — the
  same fleet-wide primary key the result cache uses.  Queries then touch
  only the columns they project: a detection-rate aggregate over 10^5 rows
  loads two small arrays, not 10^5 JSON documents.

The query API is deliberately tiny — equality/membership filters, column
projection, and a detection-rate aggregate — because rows come back as
plain numpy arrays: anything fancier composes in user code with boolean
masks.

This module is the *declared numpy boundary* of the otherwise stdlib-only
service package (``repro lint`` RPR401): per-column ``.npy`` compaction is
the one place ``repro/service/`` may import numpy.

Example::

    store = ResultStore("results_store")
    for record in iter_records("campaign.jsonl", strict=False):
        store.ingest(record)
    hit = store.query(circuit="c432", columns=("pth", "evades"))
    rates = store.detection_rate(by="circuit")
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..api.runner import ExperimentRecord

#: Bump when the column schema changes incompatibly; compaction refuses to
#: merge into a store written by a different version.
STORE_SCHEMA_VERSION = 1

#: Sentinel for "no seed" in the integer seed column (spec seeds are
#: non-negative by convention across this repo).
NO_SEED = -1

#: Tri-state for the ``evades`` column: unknown / caught / evaded.
EVADES_UNKNOWN, EVADES_NO, EVADES_YES = -1, 0, 1


def _nan_mean(values: Dict[str, float]) -> float:
    vals = [float(v) for v in values.values()]
    return float(sum(vals) / len(vals)) if vals else math.nan


def _f(value: Optional[float]) -> float:
    return math.nan if value is None else float(value)


def _row(record: ExperimentRecord) -> Dict[str, Any]:
    """Flatten one record into the column schema (one value per column)."""
    spec = record.spec
    detection = record.detection or {}
    trigger = record.trigger or {}
    delta_tz = record.delta_tz or {}
    delta_salvage = record.delta_salvage or {}
    evades = detection.get("evades")
    return {
        "spec_hash": spec.spec_hash(),
        "circuit": spec.circuit,
        "design": spec.design or "",
        "detector": spec.detector or "",
        "pth": float(spec.pth),
        "seed": NO_SEED if spec.seed is None else int(spec.seed),
        "mc_sessions": int(spec.mc_sessions),
        "success": bool(record.success),
        "has_error": record.error is not None,
        "gates": int(record.gates),
        "inputs": int(record.inputs),
        "candidates": int(record.candidates),
        "expendable": int(record.expendable),
        "accepted_edits": int(record.accepted_edits),
        "pft_analytic": _f(trigger.get("pft_analytic")),
        "pft_monte_carlo": _f(trigger.get("pft_monte_carlo")),
        "delta_tz_total_uw": _f(delta_tz.get("total_uw")),
        "delta_tz_area_ge": _f(delta_tz.get("area_ge")),
        "delta_salvage_total_uw": _f(delta_salvage.get("total_uw")),
        "evades": (
            EVADES_UNKNOWN if evades is None
            else (EVADES_YES if evades else EVADES_NO)
        ),
        "tz_flag_rate": _nan_mean(detection.get("trojanzero_rates") or {}),
    }


#: name -> numpy dtype; ``None`` lets numpy size unicode columns to the data.
COLUMN_DTYPES: Dict[str, Optional[str]] = {
    "spec_hash": None,
    "circuit": None,
    "design": None,
    "detector": None,
    "pth": "f8",
    "seed": "i8",
    "mc_sessions": "i8",
    "success": "?",
    "has_error": "?",
    "gates": "i8",
    "inputs": "i8",
    "candidates": "i8",
    "expendable": "i8",
    "accepted_edits": "i8",
    "pft_analytic": "f8",
    "pft_monte_carlo": "f8",
    "delta_tz_total_uw": "f8",
    "delta_tz_area_ge": "f8",
    "delta_salvage_total_uw": "f8",
    "evades": "i1",
    "tz_flag_rate": "f8",
}

COLUMNS: Tuple[str, ...] = tuple(COLUMN_DTYPES)


@dataclass
class CompactionStats:
    """What one :meth:`ResultStore.compact` call did."""

    ingested: int = 0
    #: Ingest lines that failed to parse (skipped, not fatal — same
    #: last-record-wins tolerance as campaign resume).
    skipped: int = 0
    #: Ingested rows that replaced an existing row with the same spec hash.
    superseded: int = 0
    rows: int = 0

    def to_dict(self) -> dict:
        return {
            "ingested": self.ingested,
            "skipped": self.skipped,
            "superseded": self.superseded,
            "rows": self.rows,
        }


class ResultStore:
    """Append-JSONL ingest + compacted numpy column files + query API."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._columns_dir = self.root / "columns"
        self._ingest_path = self.root / "ingest.jsonl"
        self._manifest_path = self.root / "manifest.json"
        self._cache: Dict[str, np.ndarray] = {}

    # -- ingest ----------------------------------------------------------
    def ingest(self, record: ExperimentRecord) -> None:
        """Append one record to the ingest log (no compaction, no parsing
        cost beyond serialization — safe on a server's record hot path)."""
        with open(self._ingest_path, "a", encoding="utf-8") as handle:
            handle.write(record.to_json_line() + "\n")

    def ingest_many(self, records: Sequence[ExperimentRecord]) -> None:
        with open(self._ingest_path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(record.to_json_line() + "\n")

    @property
    def pending_ingest(self) -> bool:
        try:
            return self._ingest_path.stat().st_size > 0
        except OSError:
            return False

    # -- manifest / columns ------------------------------------------------
    def _read_manifest(self) -> Optional[dict]:
        try:
            manifest = json.loads(self._manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if manifest.get("version") != STORE_SCHEMA_VERSION:
            raise ValueError(
                f"store at {self.root} has schema version "
                f"{manifest.get('version')!r}, this build reads "
                f"{STORE_SCHEMA_VERSION}"
            )
        return manifest

    def __len__(self) -> int:
        manifest = self._read_manifest()
        rows = manifest["rows"] if manifest else 0
        if self.pending_ingest:
            self.compact()
            manifest = self._read_manifest()
            rows = manifest["rows"] if manifest else 0
        return rows

    def column(self, name: str) -> np.ndarray:
        """One typed column, loading only that column's file (compacting
        first if the ingest log has pending rows)."""
        if name not in COLUMN_DTYPES:
            raise KeyError(
                f"unknown column {name!r}; columns: {', '.join(COLUMNS)}"
            )
        if self.pending_ingest:
            self.compact()
        if name in self._cache:
            return self._cache[name]
        path = self._columns_dir / f"{name}.npy"
        if not path.exists():
            dtype = COLUMN_DTYPES[name] or "U1"
            return np.empty(0, dtype=dtype)
        array = np.load(path, allow_pickle=False)
        self._cache[name] = array
        return array

    # -- compaction --------------------------------------------------------
    def compact(self) -> CompactionStats:
        """Fold the ingest log into the column files.

        Dedup is last-record-wins on ``spec_hash`` — identical semantics to
        campaign ``--resume`` — with existing compacted rows counting as
        older than every ingest row.  Unparseable ingest lines (crash-
        truncated tails) are skipped, not fatal.  The ingest log is cleared
        only after the new columns and manifest are fully on disk.
        """
        stats = CompactionStats()
        rows: Dict[str, Dict[str, Any]] = {}
        manifest = self._read_manifest()
        if manifest is not None and manifest["rows"] > 0:
            existing = {
                name: np.load(self._columns_dir / f"{name}.npy",
                              allow_pickle=False)
                for name in COLUMNS
            }
            for i in range(manifest["rows"]):
                row = {name: existing[name][i].item() for name in COLUMNS}
                rows[row["spec_hash"]] = row
        if self._ingest_path.exists():
            with open(self._ingest_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    if not line.strip():
                        continue
                    try:
                        record = ExperimentRecord.from_json_line(line)
                    except (ValueError, TypeError, KeyError):
                        stats.skipped += 1
                        continue
                    row = _row(record)
                    if row["spec_hash"] in rows:
                        stats.superseded += 1
                    rows[row["spec_hash"]] = row
                    stats.ingested += 1

        self._columns_dir.mkdir(parents=True, exist_ok=True)
        ordered = list(rows.values())
        dtypes: Dict[str, str] = {}
        for name in COLUMNS:
            dtype = COLUMN_DTYPES[name]
            values = [row[name] for row in ordered]
            if dtype is None:
                array = np.array(values, dtype=np.str_) if values else (
                    np.empty(0, dtype="U1")
                )
            else:
                array = np.array(values, dtype=dtype)
            np.save(self._columns_dir / f"{name}.npy", array,
                    allow_pickle=False)
            dtypes[name] = str(array.dtype)
        stats.rows = len(ordered)
        self._manifest_path.write_text(
            json.dumps(
                {
                    "version": STORE_SCHEMA_VERSION,
                    "rows": stats.rows,
                    "columns": dtypes,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        # Columns + manifest are durable; now (and only now) drop the log.
        if self._ingest_path.exists():
            self._ingest_path.unlink()
        self._cache.clear()
        return stats

    # -- query ---------------------------------------------------------------
    def _mask(self, filters: Dict[str, Any]) -> np.ndarray:
        n = len(self)
        mask = np.ones(n, dtype=bool)
        for name, wanted in filters.items():
            col = self.column(name)
            if isinstance(wanted, (list, tuple, set, frozenset, np.ndarray)):
                mask &= np.isin(col, np.array(sorted(wanted), dtype=col.dtype))
            elif callable(wanted):
                mask &= np.asarray(wanted(col), dtype=bool)
            else:
                mask &= col == np.asarray(wanted, dtype=col.dtype)
        return mask

    def query(
        self,
        columns: Optional[Sequence[str]] = None,
        **filters: Any,
    ) -> Dict[str, np.ndarray]:
        """Filtered, projected view as ``{column: array}``.

        ``filters`` are keyed by column name; a scalar means equality, a
        list/tuple/set membership, and a callable is applied to the column
        array and must return a boolean mask (e.g. ``pth=lambda p: p >
        0.99``).  ``columns=None`` projects everything.
        """
        names = tuple(columns) if columns is not None else COLUMNS
        for name in names:
            if name not in COLUMN_DTYPES:
                raise KeyError(
                    f"unknown column {name!r}; columns: {', '.join(COLUMNS)}"
                )
        mask = self._mask(filters)
        return {name: self.column(name)[mask] for name in names}

    def detection_rate(
        self, by: str = "circuit", **filters: Any
    ) -> Dict[Any, float]:
        """Fraction of *evaluated* cells whose Trojan was caught, grouped by
        a column (cells without a detector verdict are excluded)."""
        mask = self._mask(filters) & (self.column("evades") != EVADES_UNKNOWN)
        groups = self.column(by)[mask]
        caught = self.column("evades")[mask] == EVADES_NO
        return {
            key.item() if hasattr(key, "item") else key: float(
                caught[groups == key].mean()
            )
            for key in np.unique(groups)
        }

    def summary(self) -> dict:
        """Row count plus per-circuit success/error tallies."""
        n = len(self)
        circuits = self.column("circuit")
        success = self.column("success")
        errors = self.column("has_error")
        return {
            "rows": n,
            "circuits": {
                c.item(): {
                    "rows": int((circuits == c).sum()),
                    "success": int(success[circuits == c].sum()),
                    "errors": int(errors[circuits == c].sum()),
                }
                for c in np.unique(circuits)
            },
        }
