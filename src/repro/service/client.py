"""Typed client for the fleet service (stdlib ``urllib`` transport).

:class:`FleetClient` mirrors the exemplar shape of circuit_training's
``plc_client_os`` — an expensive evaluator wrapped behind a small typed API:
the pure core stays ``run_experiment(spec) -> record``; the client only
moves specs one way and records the other.  Everything it returns is the
same typed object the local API hands out (:class:`~repro.api.runner.
ExperimentRecord`, :class:`~repro.service.protocol.JobStatus`), so code
written against a local :class:`~repro.api.runner.CampaignRunner` ports to
the service by swapping the call site::

    client = FleetClient("http://127.0.0.1:8732")
    job_id = client.submit(campaign, jobs=2)
    for record in client.stream(job_id):     # records as cells finish
        print(record.spec.circuit, record.success)
    status = client.status(job_id)           # terminal: done/cancelled/failed

Transport failures raise :class:`FleetServiceError` (carrying the HTTP
status when there is one); the server's one-line error envelope becomes the
exception message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, List, Optional, Union

from ..api.runner import ExperimentRecord
from ..api.spec import CampaignSpec, ExperimentSpec, FleetPolicy
from .protocol import JobStatus, RecordsPage, submit_payload


class FleetServiceError(RuntimeError):
    """A request the service refused or could not be delivered."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class FleetClient:
    """Typed HTTP client for :class:`~repro.service.server.FleetServer`.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8732``.
    timeout_s:
        Per-request socket timeout.
    poll_s:
        Default sleep between polls in :meth:`stream` / :meth:`wait`.
    """

    def __init__(
        self, base_url: str, timeout_s: float = 30.0, poll_s: float = 0.2
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.poll_s = poll_s

    # -- transport -------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get(
                    "error", exc.reason
                )
            except (ValueError, UnicodeDecodeError):
                detail = str(exc.reason)
            raise FleetServiceError(
                f"{method} {path} -> {exc.code}: {detail}", status=exc.code
            ) from None
        except (urllib.error.URLError, OSError) as exc:
            reason = getattr(exc, "reason", exc)
            raise FleetServiceError(
                f"{method} {path}: cannot reach fleet server at "
                f"{self.base_url} ({reason})"
            ) from None

    # -- API -------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def wait_ready(self, timeout_s: float = 10.0) -> dict:
        """Poll ``/healthz`` until the server answers (startup races)."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                return self.health()
            except FleetServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(min(self.poll_s, 0.1))

    def submit(
        self,
        campaign: Union[CampaignSpec, ExperimentSpec],
        jobs: Optional[int] = None,
        policy: Optional[FleetPolicy] = None,
    ) -> str:
        """Submit a campaign (or a single spec, wrapped into a one-cell
        campaign) and return its job id."""
        if isinstance(campaign, ExperimentSpec):
            campaign = CampaignSpec.of([campaign], name="single")
        payload = submit_payload(
            campaign.to_dict(),
            jobs=jobs,
            policy_dict=policy.to_dict() if policy is not None else None,
        )
        return self._request("POST", "/jobs", payload)["job_id"]

    def status(self, job_id: str) -> JobStatus:
        return JobStatus.from_dict(self._request("GET", f"/jobs/{job_id}"))

    def jobs(self) -> List[JobStatus]:
        data = self._request("GET", "/jobs")
        return [JobStatus.from_dict(d) for d in data["jobs"]]

    def records(self, job_id: str, since: int = 0) -> RecordsPage:
        """One page of records starting at the ``since`` cursor (does not
        block; pair with :attr:`RecordsPage.next` to resume)."""
        return RecordsPage.from_dict(
            self._request("GET", f"/jobs/{job_id}/records?since={since}")
        )

    def stream(
        self,
        job_id: str,
        since: int = 0,
        poll_s: Optional[float] = None,
        timeout_s: Optional[float] = None,
    ) -> Iterator[ExperimentRecord]:
        """Yield records as the server produces them, returning when the
        job reaches a terminal state (raises :class:`FleetServiceError` on
        ``timeout_s`` of total wall clock, ``None`` = wait forever)."""
        poll = self.poll_s if poll_s is None else poll_s
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        cursor = since
        while True:
            page = self.records(job_id, since=cursor)
            for rec_dict in page.records:
                yield ExperimentRecord.from_dict(rec_dict)
            cursor = page.next
            if page.done:
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise FleetServiceError(
                    f"job {job_id} still {page.state!r} after "
                    f"{timeout_s}s (records seen: {cursor})"
                )
            time.sleep(poll)

    def poll(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> List[ExperimentRecord]:
        """Block until the job finishes; return all its records."""
        return list(self.stream(job_id, timeout_s=timeout_s))

    def wait(self, job_id: str, timeout_s: Optional[float] = None) -> JobStatus:
        """Block until the job reaches a terminal state (ignores records)."""
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        while True:
            status = self.status(job_id)
            if status.done:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise FleetServiceError(
                    f"job {job_id} still {status.state!r} after {timeout_s}s"
                )
            time.sleep(self.poll_s)

    def cancel(self, job_id: str) -> JobStatus:
        """Request cancellation (effective at the next cell boundary)."""
        return JobStatus.from_dict(
            self._request("POST", f"/jobs/{job_id}/cancel")
        )
