"""Long-running campaign evaluation service (stdlib HTTP, no new deps).

:class:`FleetServer` is the queue + execution half of the fleet service:
clients POST :class:`~repro.api.spec.CampaignSpec` s, a single drain thread
pulls jobs off the FIFO and pushes their cells through the same supervised
machinery local campaigns use (:class:`~repro.api.fleet.CellSupervisor` —
worker-death recovery, per-cell timeouts, seeded retries), and every record
flows to three sinks as it lands: the job's in-memory stream (served
incrementally to polling clients), the fleet-wide spec-hash
:class:`~repro.service.cache.ResultCache` (a cell is never computed twice),
and the columnar :class:`~repro.service.store.ResultStore` ingest log.

Threading model (deliberately boring)::

    ThreadingHTTPServer        one thread per request; handlers only read/
        |                      mutate shared state under self._lock
    drain thread               executes jobs FIFO, one at a time (cells
        |                      within a job parallelize via the pool)
    producer thread (per job)  iterates CellSupervisor.iter_records() into
                               a Queue so the drain thread can tick the
                               job heartbeat every second even while a
                               long cell runs, and so cancellation takes
                               effect at the next cell boundary

``repro lint`` enforces both halves of this model statically: RPR401 keeps
the package stdlib-only (deployable on a bare interpreter; the columnar
store is the one declared numpy boundary) and RPR402 flags mutations of
lock-guarded attributes that happen outside ``with self._lock:``.

Graceful shutdown (:meth:`close` / SIGINT in the CLI): stop accepting
jobs, ask the running job to stop at its next cell boundary, drain the
producer, compact the store, then stop the HTTP listener.  Records already
produced stay durable in the per-job JSONL, the cache, and the store.

The HTTP surface is defined in :mod:`repro.service.protocol`; the payload
contract is that records are payload-bit-identical to a local serial
``CampaignRunner`` run of the same spec (asserted in CI's service smoke).
"""

from __future__ import annotations

import itertools
import json
import queue
import re
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Union
from urllib.parse import parse_qs, urlparse

from ..api.fleet import CellSupervisor
from ..api.runner import ExperimentRecord
from ..api.spec import CampaignSpec, FleetPolicy
from .cache import ResultCache
from .protocol import (
    CANCELLED,
    DONE,
    FAILED,
    PROTOCOL_VERSION,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobStatus,
    error_body,
    json_body,
)
from .store import ResultStore

#: Drain-thread wake-up period: the floor on heartbeat resolution and on
#: cancel/shutdown latency during a long cell.
HEARTBEAT_TICK_S = 1.0


class _EndOfJob:
    """Sentinel the producer enqueues after its last record."""


@dataclass
class _Job:
    """Server-side state of one submitted campaign."""

    job_id: str
    campaign: CampaignSpec
    jobs: int
    policy: Optional[FleetPolicy]
    state: str = QUEUED
    records: List[ExperimentRecord] = field(default_factory=list)
    n_cached: int = 0
    n_errors: int = 0
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    heartbeat_at: Optional[float] = None
    detail: Optional[str] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)

    def status(self, now: Optional[float] = None) -> JobStatus:
        now = time.time() if now is None else now
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            campaign=self.campaign.name,
            n_cells=len(self.campaign),
            n_records=len(self.records),
            n_cached=self.n_cached,
            n_errors=self.n_errors,
            created_at=self.created_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            heartbeat_at=self.heartbeat_at,
            heartbeat_age_s=(
                None if self.heartbeat_at is None
                else max(0.0, now - self.heartbeat_at)
            ),
            detail=self.detail,
        )


class FleetServer:
    """Job-queue server for campaign evaluation.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (the bound port is
        on :attr:`port` — tests and benchmarks rely on this).
    data_dir:
        Root for service state: ``cache/`` (spec-hash result cache),
        ``store/`` (columnar store), ``jobs/<job_id>.jsonl`` (per-job
        durable record log).
    jobs:
        Default worker processes per job (a submit may override).
    policy:
        Default :class:`~repro.api.spec.FleetPolicy` per job.
    use_cache:
        Disable to force recomputation (benchmarking cold paths).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        data_dir: Union[str, Path, None] = None,
        jobs: int = 1,
        policy: Optional[FleetPolicy] = None,
        use_cache: bool = True,
    ):
        self.data_dir = Path(data_dir) if data_dir is not None else Path(
            "fleet_data"
        )
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.jobs = jobs
        self.policy = policy
        self.use_cache = use_cache
        self.cache = ResultCache(self.data_dir / "cache")
        self.store = ResultStore(self.data_dir / "store")
        self.started_at = time.time()

        self._lock = threading.Lock()
        self._jobs: Dict[str, _Job] = {}
        self._job_counter = itertools.count(1)
        self._pending: "queue.Queue[Optional[str]]" = queue.Queue()
        self._stopping = threading.Event()
        self._drain_thread: Optional[threading.Thread] = None
        self._serve_thread: Optional[threading.Thread] = None

        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.host, self.port = self.httpd.server_address[:2]

    # -- lifecycle -------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FleetServer":
        """Start the drain thread and serve HTTP in the background
        (returns immediately; use :meth:`serve_forever` for a foreground
        server)."""
        self._start_drain()
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="fleet-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the HTTP loop in the calling thread (blocks until
        :meth:`close`; the CLI wraps this with SIGINT handling)."""
        self._start_drain()
        self.httpd.serve_forever(poll_interval=0.1)

    def _start_drain(self) -> None:
        if self._drain_thread is None:
            self._drain_thread = threading.Thread(
                target=self._drain_loop, name="fleet-drain", daemon=True
            )
            self._drain_thread.start()

    def close(self, timeout_s: float = 30.0) -> None:
        """Graceful shutdown: refuse new jobs, stop the running job at its
        next cell boundary, persist everything, stop serving."""
        self._stopping.set()
        with self._lock:
            for job in self._jobs.values():
                if job.state in (QUEUED, RUNNING):
                    job.cancel_event.set()
                    if job.state == QUEUED:
                        job.state = CANCELLED
                        job.detail = "server shutdown"
                        job.finished_at = time.time()
        self._pending.put(None)  # wake the drain thread
        if self._drain_thread is not None:
            self._drain_thread.join(timeout=timeout_s)
        try:
            if self.store.pending_ingest:
                self.store.compact()
        except ValueError:
            pass  # foreign-version store: leave the ingest log intact
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=timeout_s)

    # -- submission (called from handler threads) ------------------------
    def submit(self, payload: dict) -> str:
        if self._stopping.is_set():
            raise ValueError("server is shutting down; not accepting jobs")
        if not isinstance(payload, dict) or "campaign" not in payload:
            raise ValueError('submit body must be {"campaign": {...}, ...}')
        campaign = CampaignSpec.from_dict(payload["campaign"])
        if len(campaign) == 0:
            raise ValueError("campaign has no cells")
        jobs = int(payload.get("jobs", self.jobs))
        policy = self.policy
        if payload.get("policy") is not None:
            policy = FleetPolicy.from_dict(payload["policy"])
        with self._lock:
            job_id = f"job-{next(self._job_counter):04d}"
            self._jobs[job_id] = _Job(
                job_id=job_id, campaign=campaign, jobs=jobs, policy=policy
            )
        self._pending.put(job_id)
        return job_id

    def job(self, job_id: str) -> _Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"no such job: {job_id}")
        return job

    def cancel(self, job_id: str) -> JobStatus:
        job = self.job(job_id)
        with self._lock:
            if job.state == QUEUED:
                job.state = CANCELLED
                job.detail = "cancelled while queued"
                job.finished_at = time.time()
            elif job.state == RUNNING:
                job.cancel_event.set()
                job.detail = "cancel requested (next cell boundary)"
            job.cancel_event.set()
            return job.status()

    def records_page(self, job_id: str, since: int) -> dict:
        job = self.job(job_id)
        with self._lock:
            records = job.records[since:]
            state = job.state
        return {
            "records": [r.to_dict() for r in records],
            "next": since + len(records),
            "state": state,
            "done": state in TERMINAL_STATES,
        }

    def health(self) -> dict:
        with self._lock:
            states = [j.state for j in self._jobs.values()]
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.time() - self.started_at, 3),
            "jobs": {state: states.count(state) for state in set(states)},
            "queue_depth": states.count(QUEUED),
            "cache": self.cache.stats.to_dict(),
        }

    # -- execution (drain thread) ----------------------------------------
    def _drain_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                job_id = self._pending.get(timeout=HEARTBEAT_TICK_S)
            except queue.Empty:
                continue
            if job_id is None:
                break
            job = self.job(job_id)
            with self._lock:
                if job.state != QUEUED:
                    continue  # cancelled while queued
                job.state = RUNNING
                job.started_at = job.heartbeat_at = time.time()
            try:
                self._run_job(job)
            except Exception as exc:  # noqa: BLE001 — job machinery failure
                with self._lock:
                    job.state = FAILED
                    job.detail = f"{type(exc).__name__}: {exc}"
                    job.finished_at = time.time()

    def _sink_record(self, job: _Job, record: ExperimentRecord,
                     sink, cached: bool) -> None:
        """One record → job stream + durable JSONL + cache + store."""
        sink.write(record.to_json_line() + "\n")
        sink.flush()
        if not cached:
            if self.use_cache:
                self.cache.put(record)
            self.store.ingest(record)
        with self._lock:
            job.records.append(record)
            if cached:
                job.n_cached += 1
            if record.error is not None:
                job.n_errors += 1
            job.heartbeat_at = time.time()

    def _run_job(self, job: _Job) -> None:
        jobs_dir = self.data_dir / "jobs"
        jobs_dir.mkdir(parents=True, exist_ok=True)
        with open(jobs_dir / f"{job.job_id}.jsonl", "a",
                  encoding="utf-8") as sink:
            # Cache pass first: hits stream back immediately and never touch
            # the pool.  Order within the job is hits-then-computed; clients
            # that need campaign order key on record.spec.
            pending = []
            for spec in job.campaign:
                hit = self.cache.get(spec) if self.use_cache else None
                if hit is not None:
                    self._sink_record(job, hit, sink, cached=True)
                else:
                    pending.append(spec)

            interrupted = False
            if pending and not job.cancel_event.is_set():
                interrupted = self._run_pending(job, pending, sink)

        with self._lock:
            if job.cancel_event.is_set() and (
                interrupted or len(job.records) < len(job.campaign)
            ):
                job.state = CANCELLED
                job.detail = job.detail or "cancelled"
            else:
                job.state = DONE
            job.finished_at = job.heartbeat_at = time.time()

    def _run_pending(self, job: _Job, pending, sink) -> bool:
        """Drive uncached cells through the supervisor; True if the job
        stopped early on cancel/shutdown."""
        # Circuit-major submission keeps per-worker compile caches warm,
        # mirroring CampaignRunner's ordering policy.
        if job.jobs > 1 and len(pending) > 1:
            pending = sorted(pending, key=lambda s: s.circuit)
        supervisor = CellSupervisor(
            pending, jobs=job.jobs, policy=job.policy
        )
        out: "queue.Queue[Any]" = queue.Queue()

        def produce() -> None:
            try:
                for record in supervisor.iter_records():
                    out.put(record)
                    if job.cancel_event.is_set():
                        break
                out.put(_EndOfJob)
            except BaseException as exc:  # noqa: BLE001 — crosses threads
                out.put(exc)

        producer = threading.Thread(
            target=produce, name=f"fleet-{job.job_id}", daemon=True
        )
        producer.start()
        interrupted = False
        while True:
            try:
                item = out.get(timeout=HEARTBEAT_TICK_S)
            except queue.Empty:
                # A long cell is running: tick the heartbeat so clients can
                # distinguish "slow cell" from "dead server".
                with self._lock:
                    job.heartbeat_at = time.time()
                continue
            if item is _EndOfJob:
                break
            if isinstance(item, BaseException):
                raise item
            self._sink_record(job, item, sink, cached=False)
            if job.cancel_event.is_set():
                interrupted = True
        producer.join(timeout=HEARTBEAT_TICK_S)
        return interrupted or job.cancel_event.is_set()


# -- HTTP plumbing ---------------------------------------------------------

_ROUTES = {
    "health": re.compile(r"^/healthz$"),
    "jobs": re.compile(r"^/jobs$"),
    "job": re.compile(r"^/jobs/([A-Za-z0-9_-]+)$"),
    "records": re.compile(r"^/jobs/([A-Za-z0-9_-]+)/records$"),
    "cancel": re.compile(r"^/jobs/([A-Za-z0-9_-]+)/cancel$"),
}


def _make_handler(server: FleetServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-fleet/1"

        # Quiet by default; the CLI serve loop prints its own summary lines.
        def log_message(self, fmt, *args):  # noqa: A003 — stdlib signature
            pass

        def _send(self, code: int, body: bytes) -> None:
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, data: dict, code: int = 200) -> None:
            self._send(code, json_body(data))

        def _send_error_line(self, code: int, message: str) -> None:
            self._send(code, error_body(message))

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ValueError(f"request body is not valid JSON: {exc}")

        def do_GET(self) -> None:  # noqa: N802 — stdlib naming
            parsed = urlparse(self.path)
            path = parsed.path
            try:
                if _ROUTES["health"].match(path):
                    self._send_json(server.health())
                    return
                if _ROUTES["jobs"].match(path):
                    with server._lock:
                        statuses = [
                            j.status().to_dict()
                            for j in server._jobs.values()
                        ]
                    self._send_json({"jobs": statuses})
                    return
                m = _ROUTES["records"].match(path)
                if m:
                    qs = parse_qs(parsed.query)
                    since = int(qs.get("since", ["0"])[0])
                    if since < 0:
                        raise ValueError("since must be >= 0")
                    self._send_json(server.records_page(m.group(1), since))
                    return
                m = _ROUTES["job"].match(path)
                if m:
                    self._send_json(server.job(m.group(1)).status().to_dict())
                    return
                self._send_error_line(404, f"no such endpoint: {path}")
            except KeyError as exc:
                self._send_error_line(404, str(exc.args[0]))
            except ValueError as exc:
                self._send_error_line(400, str(exc))
            except Exception as exc:  # noqa: BLE001 — never kill the thread
                self._send_error_line(500, f"{type(exc).__name__}: {exc}")

        def do_POST(self) -> None:  # noqa: N802 — stdlib naming
            path = urlparse(self.path).path
            try:
                if _ROUTES["jobs"].match(path):
                    job_id = server.submit(self._read_body())
                    self._send_json({"job_id": job_id}, code=201)
                    return
                m = _ROUTES["cancel"].match(path)
                if m:
                    self._send_json(server.cancel(m.group(1)).to_dict())
                    return
                self._send_error_line(404, f"no such endpoint: {path}")
            except KeyError as exc:
                self._send_error_line(404, str(exc.args[0]))
            except (TypeError, ValueError) as exc:
                self._send_error_line(400, str(exc))
            except Exception as exc:  # noqa: BLE001 — never kill the thread
                self._send_error_line(500, f"{type(exc).__name__}: {exc}")

    return Handler
