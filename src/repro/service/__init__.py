"""Campaign fleet service: job queue, typed client, result cache, store.

The service layer turns the single-machine campaign machinery into a
long-running evaluation fleet while keeping the pure core untouched —
``run_experiment(spec) -> record`` stays the unit of work; this package
only adds transport, memoization, and storage around it:

:mod:`repro.service.server`
    :class:`FleetServer` — stdlib ``ThreadingHTTPServer`` job queue that
    expands submitted :class:`~repro.api.spec.CampaignSpec` s and drives
    them through :class:`~repro.api.fleet.CellSupervisor` (worker-death
    recovery, timeouts, seeded retries) with heartbeats and graceful
    shutdown.
:mod:`repro.service.client`
    :class:`FleetClient` — ``submit / status / stream / poll / cancel``
    over plain HTTP, returning the same typed records the local API does.
:mod:`repro.service.cache`
    :class:`ResultCache` — content-addressed records keyed on the
    canonical :func:`repro.api.spec.spec_hash`; payload-bit-identical
    records per spec make the cache sound, so no cell is ever computed
    twice fleet-wide.
:mod:`repro.service.store`
    :class:`ResultStore` — append-JSONL ingest compacted into typed numpy
    column files with a small filter/project/aggregate query API.

Quickstart::

    # terminal 1
    #   python -m repro serve --port 8732 --data fleet_data --jobs 2
    from repro.api import CampaignSpec
    from repro.service import FleetClient

    client = FleetClient("http://127.0.0.1:8732")
    job_id = client.submit(CampaignSpec.table1(seed=0))
    for record in client.stream(job_id):
        print(record.spec.circuit, record.success)
"""

from .cache import CacheStats, ResultCache
from .client import FleetClient, FleetServiceError
from .protocol import (
    JOB_STATES,
    PROTOCOL_VERSION,
    TERMINAL_STATES,
    JobStatus,
    RecordsPage,
)
from .server import FleetServer
from .store import (
    COLUMNS,
    STORE_SCHEMA_VERSION,
    CompactionStats,
    ResultStore,
)

__all__ = [
    "FleetServer",
    "FleetClient",
    "FleetServiceError",
    "ResultCache",
    "CacheStats",
    "ResultStore",
    "CompactionStats",
    "JobStatus",
    "RecordsPage",
    "JOB_STATES",
    "TERMINAL_STATES",
    "PROTOCOL_VERSION",
    "COLUMNS",
    "STORE_SCHEMA_VERSION",
]
