"""Spec-hash result cache: a campaign cell is never computed twice.

Every :class:`~repro.api.runner.ExperimentRecord` payload is a pure function
of its spec (one master seed drives every RNG via ``derive_seed``; parallel
and serial runs are payload-bit-identical), so the canonical
:func:`repro.api.spec.spec_hash` is a sound fleet-wide cache key: any record
ever produced for a spec is *the* record for that spec.  :class:`ResultCache`
is the content-addressed store the fleet server consults before dispatching
a cell — resubmitting a campaign costs file reads, not pipeline runs.

Layout is one JSON file per record, two-level fan-out to keep directories
small::

    <root>/ab/abcdef....json        # spec_hash[:2] / spec_hash

Writes go through a same-directory temp file + ``os.replace`` so concurrent
writers (multiple servers sharing a cache root over NFS, a server racing a
backfill script) can only ever publish complete records — a reader sees the
old entry or the new one, never a torn write.  Error records are not
cached: an error is not a value of the spec, it is an artifact of one run.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

from ..api.runner import ExperimentRecord
from ..api.spec import ExperimentSpec


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Entries that existed but failed to parse (treated as misses and
    #: overwritten by the next put).
    corrupt: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt": self.corrupt,
        }


@dataclass
class ResultCache:
    """Content-addressed record cache keyed on canonical spec hashes."""

    root: Union[str, Path]
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths -----------------------------------------------------------
    def path_for(self, spec_hash: str) -> Path:
        return Path(self.root) / spec_hash[:2] / f"{spec_hash}.json"

    @staticmethod
    def key(spec: ExperimentSpec) -> str:
        return spec.spec_hash()

    # -- operations --------------------------------------------------------
    def get(self, spec: ExperimentSpec) -> Optional[ExperimentRecord]:
        """The cached record for ``spec``, or ``None`` on a miss.

        A hit is returned with ``runtime["cache"] = "hit"`` so downstream
        consumers (job status counters, latency benchmarks) can tell served
        from computed without touching the deterministic payload —
        ``runtime`` is excluded from ``payload_dict()``.
        """
        path = self.path_for(self.key(spec))
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            self.stats.misses += 1
            return None
        try:
            record = ExperimentRecord.from_dict(json.loads(text))
        except (ValueError, TypeError, KeyError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        if record.spec != spec:
            # Hash collision or a foreign file dropped into the tree: the
            # payload would not be a value of *this* spec, so refuse it.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        runtime = dict(record.runtime)
        runtime["cache"] = "hit"
        rec_dict = record.to_dict()
        rec_dict["runtime"] = runtime
        return ExperimentRecord.from_dict(rec_dict)

    def put(self, record: ExperimentRecord) -> bool:
        """Publish a record; returns True if it was written.

        Error records are rejected (a retryable failure must stay
        retryable), and an existing entry is left in place — first write
        wins, which is equivalent to last write because payloads per spec
        are bit-identical.
        """
        if record.error is not None:
            return False
        path = self.path_for(self.key(record.spec))
        if path.exists():
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        rec_dict = record.to_dict()
        # The runtime section carries one run's wall-clock artifacts; keep
        # it (useful provenance) but drop any stale hit marker so a future
        # get() marks its own.
        runtime = dict(rec_dict.get("runtime") or {})
        runtime.pop("cache", None)
        rec_dict["runtime"] = runtime
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(rec_dict, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        return True

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.path_for(self.key(spec)).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_hashes())

    def iter_hashes(self) -> Iterator[str]:
        for shard in sorted(Path(self.root).iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem
