"""Wire protocol shared by the fleet server and the typed client.

Everything that crosses the HTTP boundary is JSON-native and defined here
once, so :mod:`repro.service.server` and :mod:`repro.service.client` cannot
drift apart: job lifecycle states, the :class:`JobStatus` snapshot shape,
submit/records/cancel payloads, and the error envelope.  The transport is
deliberately dumb — newline-free JSON bodies over plain HTTP/1.1 — because
the *records* are the contract: the payload of every
:class:`~repro.api.runner.ExperimentRecord` a job streams back is
bit-identical to what a local serial :class:`~repro.api.runner.
CampaignRunner` would produce for the same spec (asserted in CI).

Endpoints (all JSON in / JSON out)::

    GET  /healthz                 server liveness + queue depth + cache stats
    POST /jobs                    {"campaign": {...}, "jobs"?, "policy"?}
                                  -> {"job_id": ...}
    GET  /jobs                    {"jobs": [JobStatus, ...]}
    GET  /jobs/<id>               JobStatus
    GET  /jobs/<id>/records?since=N
                                  {"records": [...], "next": M,
                                   "state": ..., "done": bool}
    POST /jobs/<id>/cancel        JobStatus (cancellation is cooperative:
                                  it takes effect at the next cell boundary)

Errors use the envelope ``{"error": "<one line>"}`` with a 4xx/5xx status;
the client raises :class:`~repro.service.client.FleetServiceError` carrying
both.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

#: Bump when the wire shapes change incompatibly (checked in /healthz).
PROTOCOL_VERSION = 1

# -- job lifecycle -------------------------------------------------------

#: A submitted job waiting for the drain thread.
QUEUED = "queued"
#: The drain thread is executing the job's cells.
RUNNING = "running"
#: Every cell produced a record (possibly error records).
DONE = "done"
#: Cancelled before completion; records produced so far are retained.
CANCELLED = "cancelled"
#: The job machinery itself raised (not a cell error — those become
#: error records inside a ``done`` job).
FAILED = "failed"

JOB_STATES = (QUEUED, RUNNING, DONE, CANCELLED, FAILED)

#: States in which no further records can arrive.
TERMINAL_STATES = (DONE, CANCELLED, FAILED)


@dataclass
class JobStatus:
    """Snapshot of one job, as served by ``GET /jobs/<id>``.

    Counters are monotonic while the job runs; ``n_records`` is the
    high-water mark for the ``since`` cursor of the records endpoint.
    """

    job_id: str
    state: str
    campaign: str
    #: Cells in the submitted campaign.
    n_cells: int
    #: Records available to stream (cache hits + computed, in emit order).
    n_records: int = 0
    #: Records satisfied from the spec-hash result cache (never recomputed).
    n_cached: int = 0
    #: Records carrying a non-None ``error``.
    n_errors: int = 0
    #: Unix timestamps (server clock).
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Last sign of life from the executing worker (updated between cells
    #: and on a ~1 s tick during long cells).
    heartbeat_at: Optional[float] = None
    #: Seconds since ``heartbeat_at`` at response time (server-computed, so
    #: clients need not share the server's clock).
    heartbeat_age_s: Optional[float] = None
    #: One-line reason for ``failed`` / ``cancelled`` states.
    detail: Optional[str] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobStatus":
        known = {f for f in cls.__dataclass_fields__}  # tolerate additions
        return cls(**{k: v for k, v in data.items() if k in known})

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES


@dataclass
class RecordsPage:
    """One page of the record stream (``GET /jobs/<id>/records``)."""

    records: List[dict]
    #: Pass as the next ``since`` cursor.
    next: int
    state: str
    done: bool

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RecordsPage":
        return cls(
            records=list(data["records"]),
            next=int(data["next"]),
            state=data["state"],
            done=bool(data["done"]),
        )


def submit_payload(
    campaign_dict: dict,
    jobs: Optional[int] = None,
    policy_dict: Optional[dict] = None,
) -> dict:
    """Body of ``POST /jobs`` (client-side constructor)."""
    payload: Dict[str, Any] = {"campaign": campaign_dict}
    if jobs is not None:
        payload["jobs"] = jobs
    if policy_dict is not None:
        payload["policy"] = policy_dict
    return payload


def error_body(message: str) -> bytes:
    return json.dumps({"error": message}).encode("utf-8")


def json_body(data: dict) -> bytes:
    return json.dumps(data, sort_keys=True).encode("utf-8")
