"""Bit-parallel single-stuck-at fault simulation with fault dropping.

The production path runs on the compiled levelized engine of
:mod:`repro.sim.compiled`: the good circuit is simulated once for the whole
pattern set as a ``(n_nets, n_words)`` uint64 matrix, and each fault is
injected by forcing its row to the stuck value and re-evaluating only the
precomputed fanout-cone sub-schedule.  Detection is the OR over the cone's
primary-output rows of ``faulty XOR good``, so all patterns are judged in one
shot per fault (no per-64-pattern blocking, no Python-int bit twiddling).

This powers (a) the ATPG outer loop (drop every fault a fresh PODEM vector
detects), (b) coverage reporting, and (c) the reproduction's analysis of
*which* stuck-at faults the defender's TP set leaves uncovered — the holes
TrojanZero's removals hide in.

The pre-compiled implementation (64 patterns per arbitrary-precision Python
int, one block at a time) is retained as :func:`reference_fault_sim` for
differential testing and before/after benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gate import GateType
from ..sim.bitsim import ALL_ONES, FULL_MASK, WORD_BITS, pack_patterns, tail_mask
from ..sim.compiled import CompiledCircuit, compile_circuit
from .fault import StuckAtFault
from .ppsfp import ppsfp_detections

#: ``mode="auto"`` switches to PPSFP at this many faults (and > 64 patterns):
#: below it, the pre-drop word walk wins on constant factors.
PPSFP_MIN_FAULTS = 16


def _blocks(patterns: np.ndarray, inputs: Sequence[str]) -> Iterable[Tuple[Dict[str, int], int, int]]:
    """Yield (pi -> packed int, n_patterns_in_block, block_start) per 64-row block."""
    patterns = np.atleast_2d(np.asarray(patterns))
    n = patterns.shape[0]
    for start in range(0, n, WORD_BITS):
        chunk = patterns[start : start + WORD_BITS]
        packed = pack_patterns(chunk)  # (n_inputs, 1) — vectorized, no bit loop
        words = {pi: int(packed[col, 0]) for col, pi in enumerate(inputs)}
        yield words, chunk.shape[0], start


def _evaluate_packed_int(gate_type: GateType, ins: List[int], mask: int) -> int:
    if gate_type is GateType.AND or gate_type is GateType.NAND:
        acc = ins[0]
        for w in ins[1:]:
            acc &= w
        return (acc ^ mask) if gate_type is GateType.NAND else acc
    if gate_type is GateType.OR or gate_type is GateType.NOR:
        acc = ins[0]
        for w in ins[1:]:
            acc |= w
        return (acc ^ mask) if gate_type is GateType.NOR else acc
    if gate_type is GateType.XOR or gate_type is GateType.XNOR:
        acc = ins[0]
        for w in ins[1:]:
            acc ^= w
        return (acc ^ mask) if gate_type is GateType.XNOR else acc
    if gate_type is GateType.NOT:
        return ins[0] ^ mask
    if gate_type is GateType.BUFF:
        return ins[0]
    if gate_type is GateType.MUX:
        d0, d1, sel = ins
        return (d0 & (sel ^ mask)) | (d1 & sel)
    raise NetlistError(f"cannot fault-simulate gate type {gate_type}")


@dataclass
class FaultSimResult:
    """Outcome of simulating a fault set against a pattern set."""

    detected: Dict[StuckAtFault, int] = field(default_factory=dict)
    undetected: List[StuckAtFault] = field(default_factory=list)
    patterns_applied: int = 0

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


class FaultSimulator:
    """Cone-restricted, matrix-based stuck-at fault simulator."""

    def __init__(self, circuit: Circuit, backend=None) -> None:
        if circuit.is_sequential:
            raise NetlistError("fault simulation supports combinational circuits only")
        self.circuit = circuit
        self._compiled: CompiledCircuit = compile_circuit(circuit, backend)

    def _detect_mask_single_word(
        self, site: int, stuck: int, good: List[int], mask: int
    ) -> int:
        """Python-int cone walk for one 64-pattern word (low constant factor).

        For single-vector / single-block calls — the PODEM outer loop's
        dominant shape — per-gate Python int ops beat per-group numpy
        dispatch, so the compiled engine only computes the good values and
        the cone row order here.
        """
        cc = self._compiled
        if good[site] == stuck:
            return 0  # never excited in this block
        faulty: Dict[int, int] = {site: stuck}
        detect = 0
        for row in cc.cone_rows_at(site):
            gate_type, ins = cc.node[row]
            value = _evaluate_packed_int(
                gate_type, [faulty.get(i, good[i]) for i in ins], mask
            )
            if value == good[row]:
                continue  # effect masked at this gate for all patterns
            faulty[row] = value
            if row in cc.po_set:
                detect |= value ^ good[row]
        if site in cc.po_set:
            detect |= stuck ^ good[site]
        return detect & mask

    def _run_single_word(
        self,
        patterns: np.ndarray,
        faults: List[StuckAtFault],
        result: FaultSimResult,
    ) -> FaultSimResult:
        n_patterns = patterns.shape[0]
        matrix = self._compiled.simulate_packed(pack_patterns(patterns))
        mask = (1 << n_patterns) - 1
        # Inverting gates set the pad bits past n_patterns in the compiled
        # matrix; mask them off so the == early-exits below stay exact.
        column = self._compiled.backend.to_numpy(matrix[:, 0])
        good: List[int] = (column & np.uint64(mask)).tolist()
        for fault in faults:
            site = self._compiled.index[fault.net]
            detect = self._detect_mask_single_word(
                site, mask if fault.value else 0, good, mask
            )
            if detect:
                result.detected[fault] = (detect & -detect).bit_length() - 1
        result.undetected = [f for f in faults if f not in result.detected]
        return result

    def _first_detection(
        self,
        fault: StuckAtFault,
        good: np.ndarray,
        scratch: np.ndarray,
        masks: np.ndarray,
    ) -> Optional[int]:
        """Index of the first pattern detecting ``fault``, or ``None``.

        ``scratch`` is a working copy of ``good``; it is restored to the good
        values (cone rows only) before returning.
        """
        cc = self._compiled
        site = cc.index[fault.net]
        stuck = ALL_ONES if fault.value else np.uint64(0)
        excite = (good[site] ^ stuck) & masks
        if not excite.any():
            return None  # never excited by any pattern
        cone = cc.cone_schedule(fault.net)
        detect = cc.backend.xp.zeros(good.shape[1], dtype=np.uint64)
        if cone.po_rows.size:
            scratch[site] = stuck
            cc.run_cone(cone, scratch)
            detect = np.bitwise_or.reduce(
                scratch[cone.po_rows] ^ good[cone.po_rows], axis=0
            )
            scratch[cone.rows] = good[cone.rows]
            scratch[site] = good[site]
        if cone.site_is_output:
            detect = detect | excite
        detect = cc.backend.to_numpy(detect & masks)
        nonzero = np.flatnonzero(detect)
        if nonzero.size == 0:
            return None
        word = int(nonzero[0])
        bits = int(detect[word])
        return word * WORD_BITS + ((bits & -bits).bit_length() - 1)

    def run(
        self,
        patterns: np.ndarray,
        faults: Iterable[StuckAtFault],
        drop_detected: bool = True,
        mode: str = "auto",
    ) -> FaultSimResult:
        """Simulate ``faults`` against ``patterns`` (rows of 0/1).

        ``drop_detected`` is kept for API compatibility; the matrix engine
        judges every fault against the whole pattern set in one pass, so the
        reported detection index is always the *first* detecting pattern.

        ``mode`` selects the engine: ``"single"`` is the per-fault cone
        path, ``"ppsfp"`` batches up to 64 faults per levelized sweep
        (:mod:`repro.atpg.ppsfp`), and ``"auto"`` (default) picks PPSFP once
        the fault list is large enough to amortize the widened matrix.  All
        modes return bit-identical results.
        """
        if mode not in ("auto", "ppsfp", "single"):
            raise ValueError(f"unknown fault-sim mode {mode!r}")
        remaining: List[StuckAtFault] = list(faults)
        result = FaultSimResult()
        patterns = np.atleast_2d(np.asarray(patterns))
        n_patterns = patterns.shape[0]
        result.patterns_applied = n_patterns
        if n_patterns == 0 or not remaining:
            result.undetected = list(remaining)
            return result
        if mode == "auto":
            use_ppsfp = (
                n_patterns > WORD_BITS and len(remaining) >= PPSFP_MIN_FAULTS
            )
            mode = "ppsfp" if use_ppsfp else "single"
        if mode == "ppsfp":
            result.detected = ppsfp_detections(self._compiled, patterns, remaining)
            result.undetected = [f for f in remaining if f not in result.detected]
            return result
        if n_patterns <= WORD_BITS:
            return self._run_single_word(patterns, remaining, result)
        good = self._compiled.simulate_packed(pack_patterns(patterns))
        masks = self._compiled.backend.asarray(tail_mask(n_patterns))
        if drop_detected:
            # Pre-drop pass: most faults fall to the first 64 patterns, and the
            # Python-int cone walk on one word is far cheaper than a
            # whole-matrix cone evaluation.  Survivors pay the matrix cost.
            first_col: List[int] = self._compiled.backend.to_numpy(
                good[:, 0]
            ).tolist()
            survivors: List[StuckAtFault] = []
            for fault in remaining:
                site = self._compiled.index[fault.net]
                detect = self._detect_mask_single_word(
                    site, FULL_MASK if fault.value else 0, first_col, FULL_MASK
                )
                if detect:
                    result.detected[fault] = (detect & -detect).bit_length() - 1
                else:
                    survivors.append(fault)
            remaining = survivors
        if remaining:
            scratch = good.copy()
            for fault in remaining:
                first = self._first_detection(fault, good, scratch, masks)
                if first is not None:
                    result.detected[fault] = first
        result.undetected = [f for f in remaining if f not in result.detected]
        return result

    def detects(self, pattern: np.ndarray, fault: StuckAtFault) -> bool:
        """Does a single pattern detect ``fault``?"""
        outcome = self.run(np.atleast_2d(pattern), [fault])
        return fault in outcome.detected


def fault_coverage(
    circuit: Circuit, patterns: np.ndarray, faults: Iterable[StuckAtFault]
) -> float:
    """Fraction of ``faults`` detected by ``patterns``."""
    return FaultSimulator(circuit).run(patterns, faults).coverage


# ----------------------------------------------------------------------
# reference implementation (pre-compiled engine) for differential testing
# ----------------------------------------------------------------------
def _reference_good_values(
    circuit: Circuit, order: List[str], words: Dict[str, int], mask: int
) -> Dict[str, int]:
    values: Dict[str, int] = {}
    for net in order:
        gate = circuit.gate(net)
        gt = gate.gate_type
        if gt is GateType.INPUT:
            values[net] = words[net]
        elif gt is GateType.TIE0:
            values[net] = 0
        elif gt is GateType.TIE1:
            values[net] = mask
        else:
            values[net] = _evaluate_packed_int(
                gt, [values[i] for i in gate.inputs], mask
            )
    return values


def reference_fault_sim(
    circuit: Circuit,
    patterns: np.ndarray,
    faults: Iterable[StuckAtFault],
    drop_detected: bool = True,
) -> FaultSimResult:
    """The pre-compiled block/Python-int fault simulator, kept as an oracle.

    Processes 64 patterns at a time as arbitrary-precision ints and walks the
    fanout cone one gate per Python iteration.  Differential tests pin the
    compiled :class:`FaultSimulator` against it; benchmarks use it as the
    "before" measurement.

    One deliberate deviation from the historical implementation: with
    ``drop_detected=False`` the original overwrote a fault's detection index
    on every detecting block (so it reported the first index within the
    *last* detecting block).  Both this oracle (via ``setdefault``) and the
    compiled engine report the globally *first* detecting pattern in every
    mode, which is the meaningful quantity.
    """
    order = circuit.topological_order()
    order_index = {net: i for i, net in enumerate(order)}
    outputs = set(circuit.outputs)
    cone_cache: Dict[str, List[str]] = {}

    def cone_of(net: str) -> List[str]:
        cached = cone_cache.get(net)
        if cached is None:
            cone = circuit.fanout_cone(net)
            cone.discard(net)
            cached = sorted(cone, key=order_index.__getitem__)
            cone_cache[net] = cached
        return cached

    def detect_mask(fault: StuckAtFault, good: Dict[str, int], mask: int) -> int:
        stuck_word = mask if fault.value else 0
        if good[fault.net] == stuck_word:
            return 0
        faulty: Dict[str, int] = {fault.net: stuck_word}
        detect = 0
        for net in cone_of(fault.net):
            gate = circuit.gate(net)
            ins = [faulty.get(i, good[i]) for i in gate.inputs]
            value = _evaluate_packed_int(gate.gate_type, ins, mask)
            if value == good[net]:
                continue
            faulty[net] = value
            if net in outputs:
                detect |= value ^ good[net]
        if fault.net in outputs:
            detect |= stuck_word ^ good[fault.net]
        return detect & mask

    remaining: List[StuckAtFault] = list(faults)
    result = FaultSimResult()
    patterns = np.atleast_2d(np.asarray(patterns))
    result.patterns_applied = patterns.shape[0]
    for words, n_in_block, start in _blocks(patterns, circuit.inputs):
        if not remaining:
            break
        mask = (1 << n_in_block) - 1
        good = _reference_good_values(circuit, order, words, mask)
        still: List[StuckAtFault] = []
        for fault in remaining:
            detect = detect_mask(fault, good, mask)
            if detect:
                first = (detect & -detect).bit_length() - 1
                result.detected.setdefault(fault, start + first)
                if not drop_detected:
                    still.append(fault)
            else:
                still.append(fault)
        remaining = still
    result.undetected = [f for f in remaining if f not in result.detected]
    return result
