"""Bit-parallel single-stuck-at fault simulation with fault dropping.

Patterns are packed 64 per plain Python int (arbitrary-precision ints make
mask handling painless).  For each fault, only the fanout cone of the fault
site is re-simulated against the cached good-circuit values, and simulation
of a fault stops at the first detecting pattern block ("fault dropping").

This powers (a) the ATPG outer loop (drop every fault a fresh PODEM vector
detects), (b) coverage reporting, and (c) the reproduction's analysis of
*which* stuck-at faults the defender's TP set leaves uncovered — the holes
TrojanZero's removals hide in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gate import GateType
from .fault import StuckAtFault

_WORD = 64


def _blocks(patterns: np.ndarray, inputs: Sequence[str]) -> Iterable[Tuple[Dict[str, int], int, int]]:
    """Yield (pi -> packed int, n_patterns_in_block, block_start) per 64-row block."""
    patterns = np.atleast_2d(np.asarray(patterns))
    n = patterns.shape[0]
    for start in range(0, n, _WORD):
        chunk = patterns[start : start + _WORD]
        words: Dict[str, int] = {}
        for col, pi in enumerate(inputs):
            word = 0
            column = chunk[:, col]
            for k in range(chunk.shape[0]):
                if column[k]:
                    word |= 1 << k
            words[pi] = word
        yield words, chunk.shape[0], start


def _evaluate_packed_int(gate_type: GateType, ins: List[int], mask: int) -> int:
    if gate_type is GateType.AND or gate_type is GateType.NAND:
        acc = ins[0]
        for w in ins[1:]:
            acc &= w
        return (acc ^ mask) if gate_type is GateType.NAND else acc
    if gate_type is GateType.OR or gate_type is GateType.NOR:
        acc = ins[0]
        for w in ins[1:]:
            acc |= w
        return (acc ^ mask) if gate_type is GateType.NOR else acc
    if gate_type is GateType.XOR or gate_type is GateType.XNOR:
        acc = ins[0]
        for w in ins[1:]:
            acc ^= w
        return (acc ^ mask) if gate_type is GateType.XNOR else acc
    if gate_type is GateType.NOT:
        return ins[0] ^ mask
    if gate_type is GateType.BUFF:
        return ins[0]
    if gate_type is GateType.MUX:
        d0, d1, sel = ins
        return (d0 & (sel ^ mask)) | (d1 & sel)
    raise NetlistError(f"cannot fault-simulate gate type {gate_type}")


@dataclass
class FaultSimResult:
    """Outcome of simulating a fault set against a pattern set."""

    detected: Dict[StuckAtFault, int] = field(default_factory=dict)
    undetected: List[StuckAtFault] = field(default_factory=list)
    patterns_applied: int = 0

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


class FaultSimulator:
    """Cone-restricted, 64-way packed stuck-at fault simulator."""

    def __init__(self, circuit: Circuit) -> None:
        if circuit.is_sequential:
            raise NetlistError("fault simulation supports combinational circuits only")
        self.circuit = circuit
        self._order = circuit.topological_order()
        self._order_index = {net: i for i, net in enumerate(self._order)}
        self._outputs = set(circuit.outputs)
        self._cone_cache: Dict[str, List[str]] = {}

    def _cone(self, net: str) -> List[str]:
        """Fanout cone of ``net`` in topological order (excluding ``net``)."""
        cached = self._cone_cache.get(net)
        if cached is None:
            cone = self.circuit.fanout_cone(net)
            cone.discard(net)
            cached = sorted(cone, key=self._order_index.__getitem__)
            self._cone_cache[net] = cached
        return cached

    def _good_values(self, words: Dict[str, int], mask: int) -> Dict[str, int]:
        values: Dict[str, int] = {}
        for net in self._order:
            gate = self.circuit.gate(net)
            gt = gate.gate_type
            if gt is GateType.INPUT:
                values[net] = words[net]
            elif gt is GateType.TIE0:
                values[net] = 0
            elif gt is GateType.TIE1:
                values[net] = mask
            else:
                values[net] = _evaluate_packed_int(
                    gt, [values[i] for i in gate.inputs], mask
                )
        return values

    def _fault_detect_mask(
        self, fault: StuckAtFault, good: Dict[str, int], mask: int
    ) -> int:
        """Bitmask of patterns in the block that detect ``fault``."""
        stuck_word = mask if fault.value else 0
        if good[fault.net] == stuck_word:
            return 0  # never excited in this block
        faulty: Dict[str, int] = {fault.net: stuck_word}
        detect = 0
        for net in self._cone(fault.net):
            gate = self.circuit.gate(net)
            ins = [faulty.get(i, good[i]) for i in gate.inputs]
            value = _evaluate_packed_int(gate.gate_type, ins, mask)
            if value == good[net]:
                continue  # effect masked at this gate for all patterns
            faulty[net] = value
            if net in self._outputs:
                detect |= value ^ good[net]
        if fault.net in self._outputs:
            detect |= stuck_word ^ good[fault.net]
        return detect & mask

    def run(
        self,
        patterns: np.ndarray,
        faults: Iterable[StuckAtFault],
        drop_detected: bool = True,
    ) -> FaultSimResult:
        """Simulate ``faults`` against ``patterns`` (rows of 0/1)."""
        remaining: List[StuckAtFault] = list(faults)
        result = FaultSimResult()
        patterns = np.atleast_2d(np.asarray(patterns))
        result.patterns_applied = patterns.shape[0]
        for words, n_in_block, start in _blocks(patterns, self.circuit.inputs):
            if not remaining:
                break
            mask = (1 << n_in_block) - 1
            good = self._good_values(words, mask)
            still: List[StuckAtFault] = []
            for fault in remaining:
                detect = self._fault_detect_mask(fault, good, mask)
                if detect:
                    first = (detect & -detect).bit_length() - 1
                    result.detected[fault] = start + first
                    if not drop_detected:
                        still.append(fault)
                else:
                    still.append(fault)
            remaining = still
        result.undetected = [f for f in remaining if f not in result.detected]
        return result

    def detects(self, pattern: np.ndarray, fault: StuckAtFault) -> bool:
        """Does a single pattern detect ``fault``?"""
        outcome = self.run(np.atleast_2d(pattern), [fault])
        return fault in outcome.detected


def fault_coverage(
    circuit: Circuit, patterns: np.ndarray, faults: Iterable[StuckAtFault]
) -> float:
    """Fraction of ``faults`` detected by ``patterns``."""
    return FaultSimulator(circuit).run(patterns, faults).coverage
