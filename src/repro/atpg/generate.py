"""Full ATPG flow: the defender's test-pattern generation (TetraMAX substitute).

Mirrors industrial practice (Bushnell & Agrawal, ch. 7, which the paper cites
for the stuck-at testing model):

1. **Random phase** — simulate blocks of random patterns, keep each block
   only if it detects new faults (cheap coverage of the easy faults).
2. **Deterministic phase** — PODEM on every remaining collapsed fault with a
   backtrack budget; each new vector is fault-simulated against all remaining
   faults so secondary detections are dropped.
3. **Compaction** — reverse-order pass: a vector is kept only if removing it
   would lose coverage (simple but effective static compaction).

The resulting :class:`TestSet` is the defender's TP set: its coverage holes
(aborted + untestable faults) are exactly where Algorithm 1's removals and
Algorithm 2's trigger wiring must hide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..netlist.circuit import Circuit
from .fault import StuckAtFault, collapse_faults, full_fault_list
from .faultsim import FaultSimulator
from .podem import PodemEngine, PodemStatus
from .testability import compute_testability


@dataclass
class TestSet:
    """The defender's generated test patterns plus bookkeeping."""

    circuit_name: str
    patterns: np.ndarray  # (n_patterns, n_inputs) uint8, PI order = circuit.inputs
    total_faults: int
    detected_faults: int
    aborted: List[StuckAtFault] = field(default_factory=list)
    untestable: List[StuckAtFault] = field(default_factory=list)
    #: Faults never attempted because the coverage target / pattern budget
    #: was reached first (the hardest faults, under SCOAP ordering).
    not_attempted: List[StuckAtFault] = field(default_factory=list)
    #: Faults provably covered by the final compacted pattern set.
    covered: Set[StuckAtFault] = field(default_factory=set)

    @property
    def coverage(self) -> float:
        return self.detected_faults / self.total_faults if self.total_faults else 1.0

    @property
    def n_patterns(self) -> int:
        return int(self.patterns.shape[0])

    def covers(self, fault: StuckAtFault) -> bool:
        return fault in self.covered


@dataclass(frozen=True)
class AtpgConfig:
    """Effort knobs of the defender's ATPG run.

    ``target_coverage`` and ``max_patterns`` model the budgets every
    production test program runs under: once the deterministic phase reaches
    the coverage sign-off target (or the pattern budget), the remaining —
    by construction the *hardest*, i.e. rare-excitation — faults are left
    untested.  Those holes are exactly where TrojanZero's edits hide.
    """

    backtrack_limit: int = 50
    random_blocks: int = 8
    block_size: int = 64
    compaction: bool = True
    seed: int = 2019  # DATE 2019
    #: Stop deterministic generation once this fault coverage is reached.
    target_coverage: float = 1.0
    #: Hard cap on the final pattern count (None = unlimited).
    max_patterns: Optional[int] = None
    #: Target hardest faults last (SCOAP ordering), like industrial tools.
    order_by_testability: bool = True
    #: Fault-simulation engine: "auto" (PPSFP for large fault lists),
    #: "ppsfp", or "single" — all bit-identical (see repro.atpg.ppsfp).
    fault_sim_mode: str = "auto"


def generate_test_set(
    circuit: Circuit,
    config: Optional[AtpgConfig] = None,
    faults: Optional[Sequence[StuckAtFault]] = None,
) -> TestSet:
    """Run the full ATPG flow on a combinational circuit."""
    config = config or AtpgConfig()
    rng = np.random.default_rng(config.seed)
    target_faults = list(faults) if faults is not None else collapse_faults(circuit)
    total = len(target_faults)
    simulator = FaultSimulator(circuit)
    engine = PodemEngine(circuit, backtrack_limit=config.backtrack_limit)
    n_inputs = len(circuit.inputs)

    kept_patterns: List[np.ndarray] = []
    remaining: List[StuckAtFault] = list(target_faults)

    # ------------------------------------------------------------------
    # Phase 1: random patterns with fault dropping.
    for _ in range(config.random_blocks):
        if not remaining:
            break
        block = (rng.random((config.block_size, n_inputs)) < 0.5).astype(np.uint8)
        outcome = simulator.run(block, remaining, mode=config.fault_sim_mode)
        if outcome.detected:
            detecting_rows = sorted({idx for idx in outcome.detected.values()})
            kept_patterns.append(block[detecting_rows])
            remaining = outcome.undetected

    # ------------------------------------------------------------------
    # Phase 2: deterministic PODEM with cross-dropping, easiest faults first,
    # stopping at the coverage target / pattern budget.
    if config.order_by_testability and remaining:
        measures = compute_testability(circuit)
        remaining.sort(key=measures.fault_difficulty)
    aborted: List[StuckAtFault] = []
    untestable: List[StuckAtFault] = []
    not_attempted: List[StuckAtFault] = []
    index = 0
    while index < len(remaining):
        # Detected faults have been removed from ``remaining``; entries before
        # ``index`` are aborted/untestable.
        detected_so_far = total - len(remaining)
        if total and detected_so_far / total >= config.target_coverage:
            not_attempted = remaining[index:]
            break
        if (
            config.max_patterns is not None
            and sum(p.shape[0] for p in kept_patterns) >= config.max_patterns
        ):
            not_attempted = remaining[index:]
            break
        fault = remaining[index]
        result = engine.generate(fault)
        if result.status is PodemStatus.DETECTED:
            vector = np.array(
                [[result.test[pi] for pi in circuit.inputs]], dtype=np.uint8
            )
            kept_patterns.append(vector)
            outcome = simulator.run(
                vector, remaining[index:], mode=config.fault_sim_mode
            )
            if fault in outcome.undetected:
                # Defensive: PODEM claimed detection but simulation disagrees
                # (should not happen); avoid looping forever on this fault.
                aborted.append(fault)
                outcome.undetected.remove(fault)
            remaining = remaining[:index] + outcome.undetected
        else:
            if result.status is PodemStatus.ABORTED:
                aborted.append(fault)
            else:
                untestable.append(fault)
            index += 1
        # Faults before ``index`` are all aborted/untestable; detected ones
        # were removed from ``remaining`` by the cross-drop.
        index = len(aborted) + len(untestable)

    patterns = (
        np.concatenate(kept_patterns, axis=0)
        if kept_patterns
        else np.zeros((0, n_inputs), dtype=np.uint8)
    )

    # ------------------------------------------------------------------
    # Phase 3: reverse-order static compaction, then the pattern budget.
    if config.compaction and patterns.shape[0] > 1:
        patterns = _compact(
            simulator, patterns, target_faults, config.fault_sim_mode
        )
    if config.max_patterns is not None and patterns.shape[0] > config.max_patterns:
        patterns = patterns[: config.max_patterns]

    final = (
        simulator.run(patterns, target_faults, mode=config.fault_sim_mode)
        if patterns.size
        else None
    )
    covered = set(final.detected) if final else set()
    return TestSet(
        circuit_name=circuit.name,
        patterns=patterns,
        total_faults=total,
        detected_faults=len(covered),
        aborted=aborted,
        untestable=untestable,
        not_attempted=not_attempted,
        covered=covered,
    )


def _compact(
    simulator: FaultSimulator,
    patterns: np.ndarray,
    faults: Sequence[StuckAtFault],
    mode: str = "auto",
) -> np.ndarray:
    """Reverse-order static compaction: drop vectors that add no coverage."""
    full = simulator.run(patterns, faults, drop_detected=True, mode=mode)
    baseline = set(full.detected)
    keep = np.ones(patterns.shape[0], dtype=bool)
    for row in range(patterns.shape[0] - 1, -1, -1):
        keep[row] = False
        trial = simulator.run(
            patterns[keep], list(baseline), drop_detected=True, mode=mode
        )
        if set(trial.detected) != baseline:
            keep[row] = True
    return patterns[keep]


def uncovered_faults(test_set: TestSet, faults: Sequence[StuckAtFault]) -> List[StuckAtFault]:
    """Subset of ``faults`` the defender's TP set does not detect."""
    return [f for f in faults if f not in test_set.covered]
