"""Single stuck-at fault model and structural fault-list collapsing.

Faults are modelled at net granularity (stem faults): net ``s`` stuck-at
``v``.  This matches how TrojanZero's circuit edit maps onto the fault model —
tying net ``s`` to constant ``v`` *is* the fault ``s`` stuck-at ``v`` made
permanent — so the defender's stuck-at test set covers the edit exactly when
it covers that fault.

Equivalence collapsing uses the classic structural rules on fanout-free
connections (an AND input stuck-at-0 is equivalent to its output stuck-at-0,
a NAND input stuck-at-0 to the output stuck-at-1, inverters/buffers collapse
both polarities), implemented with union-find over (net, value) nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """Net ``net`` permanently at logic ``value``."""

    net: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"stuck value must be 0/1, got {self.value!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.net}/sa{self.value}"


def full_fault_list(circuit: Circuit, include_inputs: bool = True) -> List[StuckAtFault]:
    """Both polarities on every net (optionally excluding PI nets)."""
    faults: List[StuckAtFault] = []
    for net in circuit.nets:
        gate = circuit.gate(net)
        if gate.is_constant:
            continue
        if gate.is_input and not include_inputs:
            continue
        faults.append(StuckAtFault(net, 0))
        faults.append(StuckAtFault(net, 1))
    return faults


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Tuple[str, int], Tuple[str, int]] = {}

    def find(self, item: Tuple[str, int]) -> Tuple[str, int]:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            root = self.find(parent)
            self._parent[item] = root
            return root
        return item

    def union(self, a: Tuple[str, int], b: Tuple[str, int]) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


#: (gate type, controlling input value) -> resulting output value, for the
#: input-fault ≡ output-fault equivalence rule.
_EQUIV_RULES: Dict[GateType, Tuple[int, int]] = {
    GateType.AND: (0, 0),
    GateType.NAND: (0, 1),
    GateType.OR: (1, 1),
    GateType.NOR: (1, 0),
}


def collapse_faults(
    circuit: Circuit, faults: Optional[Iterable[StuckAtFault]] = None
) -> List[StuckAtFault]:
    """Collapse ``faults`` (default: the full list) into equivalence classes.

    Returns one representative per class, chosen as the fault closest to the
    primary outputs (largest logic level) so that test generation works on
    the most observable site of each class.
    """
    all_faults = list(faults) if faults is not None else full_fault_list(circuit)
    uf = _UnionFind()

    for gate in circuit.logic_gates():
        gt = gate.gate_type
        out = gate.name
        if gt in (GateType.NOT, GateType.BUFF):
            src = gate.inputs[0]
            if len(circuit.fanout(src)) == 1:
                invert = gt is GateType.NOT
                uf.union((src, 0), (out, 1 if invert else 0))
                uf.union((src, 1), (out, 0 if invert else 1))
        elif gt in _EQUIV_RULES:
            ctrl, result = _EQUIV_RULES[gt]
            for src in gate.inputs:
                if len(circuit.fanout(src)) == 1:
                    uf.union((src, ctrl), (out, result))

    levels = circuit.levels()
    by_class: Dict[Tuple[str, int], StuckAtFault] = {}
    requested: Set[Tuple[str, int]] = {(f.net, f.value) for f in all_faults}
    for fault in all_faults:
        root = uf.find((fault.net, fault.value))
        current = by_class.get(root)
        if current is None or levels.get(fault.net, 0) > levels.get(current.net, 0):
            by_class[root] = fault
    collapsed = sorted(by_class.values())
    return collapsed


def representative_of(
    circuit: Circuit, fault: StuckAtFault, collapsed: Iterable[StuckAtFault]
) -> Optional[StuckAtFault]:
    """Find the collapsed representative equivalent to ``fault`` (or None).

    Re-runs the same union-find construction; intended for analysis code, not
    inner loops.
    """
    uf = _UnionFind()
    for gate in circuit.logic_gates():
        gt = gate.gate_type
        out = gate.name
        if gt in (GateType.NOT, GateType.BUFF):
            src = gate.inputs[0]
            if len(circuit.fanout(src)) == 1:
                invert = gt is GateType.NOT
                uf.union((src, 0), (out, 1 if invert else 0))
                uf.union((src, 1), (out, 0 if invert else 1))
        elif gt in _EQUIV_RULES:
            ctrl, result = _EQUIV_RULES[gt]
            for src in gate.inputs:
                if len(circuit.fanout(src)) == 1:
                    uf.union((src, ctrl), (out, result))
    target = uf.find((fault.net, fault.value))
    for candidate in collapsed:
        if uf.find((candidate.net, candidate.value)) == target:
            return candidate
    return None
