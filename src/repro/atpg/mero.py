"""MERO-style N-detect test generation (Chakraborty et al., CHES 2009 [8]).

The paper's related work cites MERO as the statistical logic-testing defense:
generate vectors so that every *rare node* reaches its rare value at least N
times, maximizing the chance of exciting an unknown Trojan trigger.  This
module reproduces that defense so the reproduction can ask: **does TrojanZero
survive a MERO-equipped defender?**

Algorithm (faithful to the original's structure):

1. compute rare nodes (signal probability beyond a threshold);
2. simulate a large random vector pool, counting per-vector rare-node hits;
3. greedily keep vectors until every rare node has been excited N times (or
   the pool is exhausted — unreachable/contradictory nodes are reported).

The resulting vector set plugs into the defender's pattern sets like any
other "testing algorithm" (Algorithm 1/2 run against it), and
:func:`mero_trigger_exposure` measures how often a counter Trojan's clock
accumulates edges under it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..prob.propagate import rare_nodes
from ..sim.bitsim import BitSimulator


@dataclass
class MeroTestSet:
    """Vectors achieving N-detect excitation of the rare-node set."""

    patterns: np.ndarray
    n_target: int
    rare_node_list: List[Tuple[str, float]]
    #: Per-node excitation counts achieved by the kept vectors.
    excitations: Dict[str, int] = field(default_factory=dict)
    #: Rare nodes never excited by the whole candidate pool.
    unreached: List[str] = field(default_factory=list)

    @property
    def n_patterns(self) -> int:
        return int(self.patterns.shape[0])

    def satisfied(self) -> bool:
        return all(
            self.excitations.get(net, 0) >= self.n_target
            for net, _ in self.rare_node_list
            if net not in self.unreached
        )


def generate_mero_tests(
    circuit: Circuit,
    rare_threshold: float = 0.95,
    n_target: int = 5,
    pool_size: int = 4096,
    seed: int = 1337,
    max_kept: Optional[int] = None,
) -> MeroTestSet:
    """Generate an N-detect rare-node excitation test set."""
    rng = np.random.default_rng(seed)
    rare = rare_nodes(circuit, rare_threshold)
    if not rare:
        return MeroTestSet(
            patterns=np.zeros((0, len(circuit.inputs)), dtype=np.uint8),
            n_target=n_target,
            rare_node_list=[],
        )

    pool = (rng.random((pool_size, len(circuit.inputs))) < 0.5).astype(np.uint8)
    # Unpack only the rare-node rows of the compiled value matrix — the pool
    # simulation itself is one levelized pass shared across all rare nodes.
    values = BitSimulator(circuit).run_nets(pool, [net for net, _ in rare])

    # hits[v, r] = pool vector v drives rare node r to its rare value.
    rare_values = np.array(
        [1 if p_one < 0.5 else 0 for _, p_one in rare], dtype=np.uint8
    )
    hits = values == rare_values[np.newaxis, :]

    reachable = hits.any(axis=0)
    unreached = [rare[i][0] for i in range(len(rare)) if not reachable[i]]

    needed = np.where(reachable, n_target, 0).astype(np.int64)
    kept_rows: List[int] = []
    remaining = needed.copy()
    # Greedy set-cover-with-multiplicity: always take the vector covering the
    # most still-needed excitations.  ``hits`` is cast to int — a boolean
    # matmul would produce a boolean gain and break the argmax/termination.
    hits_int = hits.astype(np.int32)
    available = np.ones(pool_size, dtype=bool)
    while remaining.sum() > 0:
        gain = hits_int @ (remaining > 0).astype(np.int32)
        gain[~available] = -1  # never re-pick a kept vector
        best = int(np.argmax(gain))
        if gain[best] <= 0:
            break  # nothing available still helps (needs exceed the pool)
        kept_rows.append(best)
        available[best] = False
        remaining[hits[best]] = np.maximum(remaining[hits[best]] - 1, 0)
        if max_kept is not None and len(kept_rows) >= max_kept:
            break

    patterns = pool[kept_rows] if kept_rows else np.zeros(
        (0, len(circuit.inputs)), dtype=np.uint8
    )
    excitations = {
        rare[i][0]: int(hits[kept_rows, i].sum()) if kept_rows else 0
        for i in range(len(rare))
    }
    return MeroTestSet(
        patterns=patterns,
        n_target=n_target,
        rare_node_list=rare,
        excitations=excitations,
        unreached=unreached,
    )


def mero_trigger_exposure(
    infected: Circuit,
    clock_source: str,
    trigger_net: str,
    mero: MeroTestSet,
    shuffles: int = 16,
    seed: int = 5,
) -> float:
    """Fraction of shuffled MERO sessions in which the Trojan trigger fires.

    MERO vectors excite rare nodes often, so a counter clocked by a rare node
    accumulates edges far faster than under uniform random testing — this is
    the counter-defense the TrojanZero attacker must anticipate when sizing
    the counter.
    """
    from ..sim.seqsim import SequentialSimulator

    if mero.n_patterns == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    fired = 0
    sim = SequentialSimulator(infected)
    reset = np.zeros((1, mero.patterns.shape[1]), dtype=np.uint8)
    for _ in range(shuffles):
        order = rng.permutation(mero.n_patterns)
        # Start each session from the quiescent all-zero vector so the first
        # rare excitation produces a genuine rising edge on the clock net.
        seq = np.concatenate([reset, mero.patterns[order]], axis=0)
        traces = sim.run_sequence_tracking(seq, watch=[trigger_net])
        fired += int(traces[trigger_net].any())
    return fired / shuffles
