"""Defender-side test generation: stuck-at faults, PODEM, fault simulation."""

from .dcalc import X, d_symbol, evaluate3
from .fault import StuckAtFault, collapse_faults, full_fault_list
from .faultsim import FaultSimResult, FaultSimulator, fault_coverage
from .generate import AtpgConfig, TestSet, generate_test_set, uncovered_faults
from .mero import MeroTestSet, generate_mero_tests, mero_trigger_exposure
from .testability import Testability, compute_testability
from .podem import PodemEngine, PodemResult, PodemStatus, generate_test
from .random_patterns import (
    count_distinguishing_vectors,
    flat_random_vectors,
    untargeted_trigger_probability,
    weighted_random_vectors,
)

__all__ = [
    "StuckAtFault",
    "full_fault_list",
    "collapse_faults",
    "X",
    "evaluate3",
    "d_symbol",
    "PodemEngine",
    "PodemResult",
    "PodemStatus",
    "generate_test",
    "FaultSimulator",
    "FaultSimResult",
    "fault_coverage",
    "TestSet",
    "AtpgConfig",
    "generate_test_set",
    "uncovered_faults",
    "MeroTestSet",
    "generate_mero_tests",
    "mero_trigger_exposure",
    "Testability",
    "compute_testability",
    "flat_random_vectors",
    "weighted_random_vectors",
    "untargeted_trigger_probability",
    "count_distinguishing_vectors",
]
