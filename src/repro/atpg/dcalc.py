"""Three-valued logic kernel for the D-calculus.

PODEM tracks two parallel planes — the *good* circuit and the *faulty*
circuit — each in three-valued logic {0, 1, X}.  The classic five D-calculus
symbols fall out of the pair: D = (good 1, faulty 0), D̄ = (0, 1), and 0/1/X
when the planes agree.

Values are plain ints: 0, 1, and :data:`X` (= 2).
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..netlist.gate import GateType

#: The unknown value.
X = 2


def v_and(values: Sequence[int]) -> int:
    """3-valued AND: 0 dominates, then X, else 1."""
    saw_x = False
    for v in values:
        if v == 0:
            return 0
        if v == X:
            saw_x = True
    return X if saw_x else 1


def v_or(values: Sequence[int]) -> int:
    """3-valued OR: 1 dominates, then X, else 0."""
    saw_x = False
    for v in values:
        if v == 1:
            return 1
        if v == X:
            saw_x = True
    return X if saw_x else 0


def v_xor(values: Sequence[int]) -> int:
    """3-valued XOR: any X poisons the parity."""
    acc = 0
    for v in values:
        if v == X:
            return X
        acc ^= v
    return acc


def v_not(value: int) -> int:
    if value == X:
        return X
    return 1 - value


def v_mux(d0: int, d1: int, sel: int) -> int:
    if sel == 0:
        return d0
    if sel == 1:
        return d1
    if d0 == d1 and d0 != X:
        return d0
    return X


def evaluate3(gate_type: GateType, inputs: Sequence[int]) -> int:
    """3-valued evaluation of any combinational gate type."""
    if gate_type is GateType.AND:
        return v_and(inputs)
    if gate_type is GateType.NAND:
        return v_not(v_and(inputs))
    if gate_type is GateType.OR:
        return v_or(inputs)
    if gate_type is GateType.NOR:
        return v_not(v_or(inputs))
    if gate_type is GateType.XOR:
        return v_xor(inputs)
    if gate_type is GateType.XNOR:
        return v_not(v_xor(inputs))
    if gate_type is GateType.NOT:
        return v_not(inputs[0])
    if gate_type is GateType.BUFF:
        return inputs[0]
    if gate_type is GateType.MUX:
        return v_mux(inputs[0], inputs[1], inputs[2])
    if gate_type is GateType.TIE0:
        return 0
    if gate_type is GateType.TIE1:
        return 1
    raise ValueError(f"cannot evaluate {gate_type} in 3-valued logic")


#: Controlling input value per gate family (None when no single value controls).
CONTROLLING_VALUE: Dict[GateType, int] = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

#: Does the gate invert its natural AND/OR/XOR core?
INVERTS: Dict[GateType, bool] = {
    GateType.AND: False,
    GateType.NAND: True,
    GateType.OR: False,
    GateType.NOR: True,
    GateType.XOR: False,
    GateType.XNOR: True,
    GateType.NOT: True,
    GateType.BUFF: False,
}


def d_symbol(good: int, faulty: int) -> str:
    """Render a (good, faulty) pair as the classic five-valued symbol."""
    if good == X or faulty == X:
        return "X"
    if good == faulty:
        return str(good)
    return "D" if good == 1 else "D'"
