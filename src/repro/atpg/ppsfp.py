"""PPSFP — parallel-pattern, parallel-fault stuck-at simulation.

The single-fault matrix path of :class:`repro.atpg.faultsim.FaultSimulator`
pays one Python-level cone re-evaluation per fault: force the site row,
re-run the fanout-cone sub-schedule, XOR the PO rows.  For a fault list of
hundreds (the ATPG drop-loop, coverage-holes analysis, MERO sampling,
detector calibration) that per-fault Python dispatch is the dominant cost —
the numpy work per cone is tiny, the per-fault loop is not.

This module packs up to :data:`FAULT_BATCH` faults into extra uint64
word-columns of *one* widened value matrix and propagates all of them in a
single levelized sweep:

1. **Widen** — for a pattern chunk of ``w`` words, the good matrix
   ``(n_nets, w)`` is tiled to ``(n_nets, B*w)``: fault *b* owns the column
   slice ``[b*w, (b+1)*w)``, which starts as a copy of the good values.
2. **Force** — fault *b*'s site row is forced to its stuck word inside its
   slice only (the per-slice stuck mask).  Forcing is re-applied after every
   evaluated group that writes a site row, because one fault's site can lie
   inside *another* fault's cone: levelization guarantees readers of a row
   sit in strictly later groups, so re-forcing between groups is exact.
3. **Sweep** — the union of the batch's fanout cones is evaluated once
   through the levelized group schedule
   (:meth:`~repro.sim.compiled.CompiledCircuit.batch_cone_schedule`).  Each
   group is evaluated only over the contiguous range of fault slots whose
   cones contain its output rows (faults are batched in site-row order, so
   overlapping cones land in adjacent slots and the ranges stay tight).
   Covering extra slots inside the range is sound: a row outside fault
   *b*'s cone has only good-valued inputs in slot *b*, so re-evaluating it
   reproduces the good value.
4. **Reduce** — detection is one batched ``XOR`` of the PO rows against the
   good values and one ``OR`` reduction over the PO axis; per fault, the
   first set bit of its slice is the first detecting pattern — the same
   quantity the single-fault path and :func:`reference_fault_sim` report,
   bit-exactly (pinned by ``tests/test_ppsfp.py``).

Patterns are swept in geometrically growing word chunks (64 patterns, then
128, 256, ...) with fault dropping at chunk granularity: easy faults cost
one narrow sweep, survivors amortize the Python overhead over ever-wider
matrices, and because chunks are scanned in pattern order the recorded
index is still the *global* first detection.

Everything here runs on the compiled form's array backend
(:mod:`repro.sim.backend`), so a CuPy-compiled circuit propagates fault
batches on the GPU with no code changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.backend import ALL_ONES, WORD_BITS
from ..sim.bitsim import pack_patterns, tail_mask
from ..sim.compiled import CompiledCircuit, GateGroup, _evaluate_group
from .fault import StuckAtFault

#: Max faults packed into one widened matrix (one word-column slice each).
FAULT_BATCH = 64

#: Byte budget for the widened ``(n_nets, B*w)`` matrix; it caps the pattern
#: chunk width, so arbitrarily large pattern sets stay bounded in memory.
MATRIX_BUDGET_BYTES = 256 << 20

#: Max batch plans memoized per compiled circuit (ATPG drop-loops
#: re-simulate stable survivor sets, so plans repeat across calls).
_PLAN_CACHE_MAX = 256


def _plan_cache(compiled: CompiledCircuit) -> Dict:
    """Per-compiled-form plan memo (keyed by the batch's (site, value)s)."""
    cache = getattr(compiled, "_ppsfp_plans", None)
    if cache is None:
        cache = {}
        compiled._ppsfp_plans = cache
    return cache


def _first_pattern(detect_words: np.ndarray) -> Optional[int]:
    """Index of the first set bit across a fault's (host) detect words."""
    nonzero = np.flatnonzero(detect_words)
    if nonzero.size == 0:
        return None
    word = int(nonzero[0])
    bits = int(detect_words[word])
    return word * WORD_BITS + ((bits & -bits).bit_length() - 1)


@dataclass
class _BatchPlan:
    """Precomputed sweep for one fault batch (chunk-width independent).

    ``lo``/``hi`` give, per union-schedule group, the contiguous range of
    fault slots whose cones need that group; ``forces[g]`` lists the
    ``(site_row, slot)`` stuck re-forcings to apply right after group ``g``
    (groups that overwrite another fault's site row).  ``touched`` is every
    row the sweep reads or writes — the only rows whose good values need to
    be replicated into the widened matrix.
    """

    sites: List[int]
    stuck: List[np.uint64]
    groups: Tuple[GateGroup, ...]
    po_rows: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    forces: List[List[Tuple[int, int]]]
    touched: np.ndarray


def _build_plan(
    compiled: CompiledCircuit, batch: Sequence[StuckAtFault]
) -> _BatchPlan:
    sites = [compiled.index[fault.net] for fault in batch]
    stuck = [ALL_ONES if fault.value else np.uint64(0) for fault in batch]
    groups, positions, po_rows = compiled.batch_cone_schedule(sites)
    n_sched = len(compiled.schedule)
    n_faults = len(batch)
    # Per-group slot ranges, computed on full-schedule positions (the
    # per-site group sets are cached on the compiled form) and then mapped
    # onto the union sub-schedule via ``positions``.
    untouched = np.intp(n_faults)
    lo_full = np.full(n_sched, untouched, dtype=np.intp)
    hi_full = np.full(n_sched, -1, dtype=np.intp)
    for slot, site in enumerate(sites):
        cone_groups = compiled.cone_group_positions_at(site)
        # Slots ascend, so the first touch fixes lo and every touch lifts hi.
        lo_full[cone_groups] = np.where(
            lo_full[cone_groups] == untouched, slot, lo_full[cone_groups]
        )
        hi_full[cone_groups] = slot
    lo = lo_full[positions]
    hi = hi_full[positions]
    # Site rows recomputed by some union group need re-forcing after it.
    forces: List[List[Tuple[int, int]]] = [[] for _ in range(len(groups))]
    row_positions = compiled.row_schedule_positions()
    for slot, site in enumerate(sites):
        pos = int(row_positions[site])
        if pos < 0:
            continue
        gpos = int(np.searchsorted(positions, pos))
        if gpos < positions.size and positions[gpos] == pos:
            forces[gpos].append((site, slot))
    # Rows the sweep touches: group inputs and outputs, POs, fault sites.
    parts: List[np.ndarray] = [
        np.asarray(sites, dtype=np.intp),
        po_rows.astype(np.intp),
    ]
    for group in groups:
        parts.append(group.in_idx.ravel())
        parts.append(group.out_idx)
    touched = np.unique(np.concatenate(parts)) if parts else np.empty(0, np.intp)
    return _BatchPlan(sites, stuck, groups, po_rows, lo, hi, forces, touched)


def _run_batch(
    compiled: CompiledCircuit,
    plan: _BatchPlan,
    good: np.ndarray,
    masks,
) -> Dict[int, int]:
    """Propagate one fault batch against one pattern chunk.

    ``good`` is the chunk's settled ``(n_nets, w)`` matrix on the compiled
    backend; ``masks`` is the chunk's ``(w,)`` tail mask, already on the
    backend.  Returns slot -> first detecting pattern *within the chunk*.
    """
    xp = compiled.backend.xp
    n_words = good.shape[1]
    n_faults = len(plan.sites)

    # Widen: fault slot b owns columns [b*w, (b+1)*w).  Only the rows the
    # sweep touches get their good values replicated; the rest stay
    # uninitialized and are never read.
    values = xp.empty((compiled.n_nets, n_faults * n_words), dtype=np.uint64)
    cube = values.reshape(compiled.n_nets, n_faults, n_words)
    cube[plan.touched] = good[plan.touched][:, None, :]
    for slot, (site, word) in enumerate(zip(plan.sites, plan.stuck)):
        values[site, slot * n_words : (slot + 1) * n_words] = word

    for gpos, group in enumerate(plan.groups):
        view = values[:, plan.lo[gpos] * n_words : (plan.hi[gpos] + 1) * n_words]
        _evaluate_group(group, view)
        for row, slot in plan.forces[gpos]:
            values[row, slot * n_words : (slot + 1) * n_words] = plan.stuck[slot]

    detected: Dict[int, int] = {}
    if not plan.po_rows.size:
        return detected  # no PO in any cone and no site is a PO: undetectable
    # One batched XOR + OR over the PO axis: (n_po, B, w) -> (B, w).
    diff = cube[plan.po_rows] ^ good[plan.po_rows][:, None, :]
    detect = np.bitwise_or.reduce(diff, axis=0) & masks
    detect_host = compiled.backend.to_numpy(detect)
    for slot in np.flatnonzero(detect_host.any(axis=1)):
        detected[int(slot)] = _first_pattern(detect_host[slot])
    return detected


def _chunk_widths(n_words: int, max_words: int) -> List[int]:
    """Chunk schedule: 1 word, 4 words, then ``max_words`` repeats.

    The first chunk (64 patterns) drops the easy majority of faults before
    any wide matrix is built, the second catches the stragglers cheaply,
    and the remaining words go to survivors in as few wide sweeps as the
    memory budget allows (per-group Python dispatch amortizes over width).
    """
    widths: List[int] = []
    width = 1
    left = n_words
    while left > 0:
        take = min(width, max_words, left)
        widths.append(take)
        left -= take
        width = 4 if width == 1 else max_words
    return widths


def _cone_signature(compiled: CompiledCircuit, site: int) -> Tuple[int, ...]:
    """PO rows a site's cone reaches — the batch-clustering key (memoized).

    Faults with equal/similar signatures propagate through overlapping
    logic, so sorting by signature packs them into adjacent slots and keeps
    the per-group slot ranges tight.
    """
    cache = getattr(compiled, "_ppsfp_signatures", None)
    if cache is None:
        cache = {}
        compiled._ppsfp_signatures = cache
    signature = cache.get(site)
    if signature is None:
        rows = compiled.cone_rows_at(site)
        signature = tuple(row for row in rows if row in compiled.po_set)
        cache[site] = signature
    return signature


def ppsfp_detections(
    compiled: CompiledCircuit,
    patterns: np.ndarray,
    faults: Iterable[StuckAtFault],
    batch_size: int = FAULT_BATCH,
) -> Dict[StuckAtFault, int]:
    """Fault -> first detecting pattern index, PPSFP-batched.

    Bit-exact with the single-fault matrix path and
    :func:`repro.atpg.faultsim.reference_fault_sim`: every fault is judged
    against the pattern set in order, and the reported index is the globally
    first detecting pattern.
    """
    remaining: List[StuckAtFault] = list(faults)
    patterns = np.atleast_2d(np.asarray(patterns))
    n_patterns = patterns.shape[0]
    detected: Dict[StuckAtFault, int] = {}
    if n_patterns == 0 or not remaining:
        return detected
    batch_size = max(1, min(int(batch_size), FAULT_BATCH))
    packed = pack_patterns(patterns)
    masks_all = tail_mask(n_patterns)
    max_chunk = max(
        1, MATRIX_BUDGET_BYTES // (max(compiled.n_nets, 1) * batch_size * 8)
    )
    backend = compiled.backend
    # One good-circuit pass for the whole pattern set; chunks below are
    # column views into it (no schedule re-runs per chunk).
    good_all = compiled.simulate_packed(packed)
    # Excitation prefilter: a fault whose site never differs from its stuck
    # value under any pattern cannot be detected — skip its sweeps entirely.
    sites_arr = np.array(
        [compiled.index[f.net] for f in remaining], dtype=np.intp
    )
    stuck_col = np.where(
        np.array([f.value for f in remaining], dtype=bool)[:, None],
        ALL_ONES,
        np.uint64(0),
    )
    excitable = backend.to_numpy(
        ((good_all[sites_arr] ^ backend.asarray(stuck_col))
         & backend.asarray(masks_all)).any(axis=1)
    )
    remaining = [f for f, ok in zip(remaining, excitable) if ok]
    if not remaining:
        return detected
    batches: List[Tuple[List[StuckAtFault], _BatchPlan]] = []
    swept = 0  # faults covered by the current batch plans
    word0 = 0
    for width in _chunk_widths(masks_all.size, max_chunk):
        # Drop at chunk granularity: detected faults never re-enter.  Batch
        # plans are rebuilt only when enough faults dropped to pay for the
        # planning (always after the first chunk, which drops the easy
        # majority); in between, already-detected faults ride along in their
        # old slots and ``setdefault`` keeps the first-detection index exact.
        undetected = [f for f in remaining if f not in detected]
        if not undetected:
            break
        if not batches or 4 * (swept - len(undetected)) >= swept:
            remaining = undetected
            # Batch in cone-signature order so overlapping cones share
            # adjacent slots (tight per-group slot ranges); ``remaining``
            # keeps the caller's fault order for the undetected list.
            ordered = sorted(
                remaining,
                key=lambda f: (
                    _cone_signature(compiled, compiled.index[f.net]),
                    compiled.index[f.net],
                    f.value,
                ),
            )
            batches = []
            for start in range(0, len(ordered), batch_size):
                batch = ordered[start : start + batch_size]
                key = tuple((compiled.index[f.net], f.value) for f in batch)
                plan = _plan_cache(compiled).get(key)
                if plan is None:
                    plan = _build_plan(compiled, batch)
                    cache = _plan_cache(compiled)
                    if len(cache) >= _PLAN_CACHE_MAX:
                        cache.clear()
                    cache[key] = plan
                batches.append((batch, plan))
            swept = len(remaining)
        good = good_all[:, word0 : word0 + width]
        masks = backend.asarray(masks_all[word0 : word0 + width])
        for batch, plan in batches:
            for slot, first in _run_batch(compiled, plan, good, masks).items():
                detected.setdefault(batch[slot], word0 * WORD_BITS + first)
        word0 += width
    return detected
