"""PODEM test-pattern generation for single stuck-at faults.

This is the deterministic core of the defender model (Synopsys TetraMAX in
the paper's flow).  The implementation is a textbook PODEM:

* *imply*: two-plane (good/faulty) three-valued forward simulation from the
  current PI assignment, with the faulty plane forced to the stuck value at
  the fault site;
* *objective*: excite the fault if unexcited, otherwise advance a gate on the
  D-frontier by setting one of its X inputs to the non-controlling value;
* *backtrace*: map the objective to a single PI assignment through an X-path;
* *backtrack*: flip the most recent untried decision.

The crucial knob for TrojanZero is ``backtrack_limit``: faults whose
excitation requires rare, conflict-heavy justification exhaust the budget and
come back :data:`PodemStatus.ABORTED` — these are the coverage holes the
attacker's circuit edits hide in (paper Sec. II-B.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gate import GateType
from .dcalc import CONTROLLING_VALUE, INVERTS, X, evaluate3
from .fault import StuckAtFault


class PodemStatus(enum.Enum):
    DETECTED = "detected"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    status: PodemStatus
    fault: StuckAtFault
    #: Complete test vector (PI name -> 0/1) when status is DETECTED; unassigned
    #: PIs are filled with 0 for determinism.
    test: Optional[Dict[str, int]] = None
    backtracks: int = 0
    decisions: int = 0

    @property
    def detected(self) -> bool:
        return self.status is PodemStatus.DETECTED


class PodemEngine:
    """Reusable PODEM engine for one combinational circuit."""

    def __init__(self, circuit: Circuit, backtrack_limit: int = 50) -> None:
        if circuit.is_sequential:
            raise NetlistError("PODEM operates on combinational circuits only")
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self._order = circuit.topological_order()
        self._levels = circuit.levels()
        self._outputs = set(circuit.outputs)

    # ------------------------------------------------------------------
    def generate(self, fault: StuckAtFault) -> PodemResult:
        """Try to generate a test for ``fault``."""
        circuit = self.circuit
        if not circuit.has_net(fault.net):
            raise NetlistError(f"fault site {fault.net!r} not in circuit")

        assignment: Dict[str, int] = {}
        # Decision stack entries: [pi, first_value, tried_alternative]
        decisions: List[List] = []
        backtracks = 0
        n_decisions = 0

        while True:
            good, faulty = self._imply(assignment, fault)
            if self._error_at_output(good, faulty):
                test = {pi: assignment.get(pi, 0) for pi in circuit.inputs}
                return PodemResult(
                    PodemStatus.DETECTED, fault, test, backtracks, n_decisions
                )

            objective = self._objective(good, faulty, fault)
            pi_choice: Optional[Tuple[str, int]] = None
            if objective is not None:
                pi_choice = self._backtrace(objective, good, assignment)

            if pi_choice is not None:
                pi, value = pi_choice
                decisions.append([pi, value, False])
                assignment[pi] = value
                n_decisions += 1
                continue

            # Dead end: no objective or backtrace failed — backtrack.
            flipped = False
            while decisions:
                entry = decisions[-1]
                pi, value, tried = entry
                if not tried:
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return PodemResult(
                            PodemStatus.ABORTED, fault, None, backtracks, n_decisions
                        )
                    entry[2] = True
                    assignment[pi] = 1 - value
                    flipped = True
                    break
                decisions.pop()
                del assignment[pi]
            if not flipped:
                return PodemResult(
                    PodemStatus.UNTESTABLE, fault, None, backtracks, n_decisions
                )

    # ------------------------------------------------------------------
    def _imply(
        self, assignment: Dict[str, int], fault: StuckAtFault
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Two-plane 3-valued forward simulation."""
        good: Dict[str, int] = {}
        faulty: Dict[str, int] = {}
        for net in self._order:
            gate = self.circuit.gate(net)
            if gate.gate_type is GateType.INPUT:
                value = assignment.get(net, X)
                g_val, f_val = value, value
            else:
                g_val = evaluate3(gate.gate_type, [good[i] for i in gate.inputs])
                f_val = evaluate3(gate.gate_type, [faulty[i] for i in gate.inputs])
            if net == fault.net:
                f_val = fault.value  # the net is stuck, unconditionally
            good[net] = g_val
            faulty[net] = f_val
        return good, faulty

    def _error_at_output(self, good: Dict[str, int], faulty: Dict[str, int]) -> bool:
        for po in self._outputs:
            g, f = good[po], faulty[po]
            if g != X and f != X and g != f:
                return True
        return False

    def _objective(
        self,
        good: Dict[str, int],
        faulty: Dict[str, int],
        fault: StuckAtFault,
    ) -> Optional[Tuple[str, int]]:
        """Next (net, value) goal, or None if the search hit a dead end."""
        site_good = good[fault.net]
        if site_good == X:
            # Excite the fault: drive the site to the opposite of the stuck value.
            return (fault.net, 1 - fault.value)
        if site_good == fault.value:
            # Fault cannot be excited under this assignment — conflict.
            return None

        frontier = self._d_frontier(good, faulty)
        if not frontier:
            return None
        if not self._x_path_exists(good, faulty, frontier):
            return None
        # Advance the frontier gate closest to an output (smallest remaining
        # depth ≈ largest level is a decent proxy for "closest to PO").
        frontier.sort(key=lambda name: -self._levels[name])
        gate = self.circuit.gate(frontier[0])
        ctrl = CONTROLLING_VALUE.get(gate.gate_type)
        target = 1 - ctrl if ctrl is not None else 1
        for src in gate.inputs:
            if good[src] == X or faulty[src] == X:
                return (src, target)
        return None

    def _d_frontier(self, good: Dict[str, int], faulty: Dict[str, int]) -> List[str]:
        """Gates whose output is still X on either plane but carry a D input."""
        frontier = []
        for net in self._order:
            gate = self.circuit.gate(net)
            if gate.is_input or gate.is_constant:
                continue
            if good[net] != X and faulty[net] != X:
                continue
            for src in gate.inputs:
                g, f = good[src], faulty[src]
                if g != X and f != X and g != f:
                    frontier.append(net)
                    break
        return frontier

    def _x_path_exists(
        self,
        good: Dict[str, int],
        faulty: Dict[str, int],
        frontier: List[str],
    ) -> bool:
        """Can some frontier gate still reach a PO through undetermined nets?"""
        undetermined = {
            net for net in self._order if good[net] == X or faulty[net] == X
        }
        stack = [net for net in frontier]
        seen = set()
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            if net in self._outputs and net in undetermined:
                return True
            for reader in self.circuit.fanout(net):
                if reader in undetermined:
                    stack.append(reader)
        return False

    def _backtrace(
        self,
        objective: Tuple[str, int],
        good: Dict[str, int],
        assignment: Dict[str, int],
    ) -> Optional[Tuple[str, int]]:
        """Walk the objective back to an unassigned PI through X-valued nets."""
        net, value = objective
        guard = 0
        max_steps = len(self._order) + 8
        while True:
            guard += 1
            if guard > max_steps:
                return None
            gate = self.circuit.gate(net)
            if gate.gate_type is GateType.INPUT:
                if net in assignment:
                    return None  # objective asks to re-drive a decided PI
                return (net, value)
            gt = gate.gate_type
            if gt in (GateType.TIE0, GateType.TIE1):
                return None  # constants cannot be justified
            if gt in (GateType.NOT,):
                net, value = gate.inputs[0], 1 - value
                continue
            if gt is GateType.BUFF:
                net = gate.inputs[0]
                continue
            if gt is GateType.MUX:
                d0, d1, sel = gate.inputs
                if good[sel] == 0:
                    net = d0
                elif good[sel] == 1:
                    net = d1
                else:
                    # Decide the select first; pick the branch whose data is
                    # already compatible if visible, else branch 0.
                    net, value = sel, 0
                continue
            if gt in (GateType.XOR, GateType.XNOR):
                parity = 1 if gt is GateType.XNOR else 0
                unknown = None
                for src in gate.inputs:
                    if good[src] == X:
                        if unknown is None:
                            unknown = src
                    else:
                        parity ^= good[src]
                if unknown is None:
                    return None
                net, value = unknown, value ^ parity
                continue
            # AND/NAND/OR/NOR
            ctrl = CONTROLLING_VALUE[gt]
            inverts = INVERTS[gt]
            needed = (1 - value) if inverts else value
            x_inputs = [s for s in gate.inputs if good[s] == X]
            if not x_inputs:
                return None
            if needed == ctrl:
                # One controlling input suffices: take the easiest (lowest level).
                nxt = min(x_inputs, key=lambda s: self._levels[s])
                net, value = nxt, ctrl
            else:
                # All inputs must be non-controlling: justify the hardest first.
                nxt = max(x_inputs, key=lambda s: self._levels[s])
                net, value = nxt, 1 - ctrl


def generate_test(
    circuit: Circuit, fault: StuckAtFault, backtrack_limit: int = 50
) -> PodemResult:
    """One-shot convenience wrapper."""
    return PodemEngine(circuit, backtrack_limit).generate(fault)
