"""Random ("bespoke") defender vectors.

Beyond structured ATPG patterns, the paper's defender "may use a set of
random (bespoke) vectors for validation which are not known to the attacker"
(Sec. IV).  These generators produce flat and weighted random vector sets and
the paper's exposure probabilities against them:

* ``Pft`` — probability that the *targeted* HT triggers during random
  functional testing (Table I, last column);
* ``Pu = Nu / 2**n`` — probability that a random vector reveals an
  *untargeted* HT (Eq. 1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..netlist.circuit import Circuit


def flat_random_vectors(
    n_vectors: int, n_inputs: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Uniform random 0/1 vectors (each input at p = 0.5).

    With no ``rng`` the vectors come from a fixed-seed generator — library
    code never draws fresh OS entropy (seed discipline, ``repro lint``
    RPR102); pass a seeded Generator for independent draws.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    return (rng.random((n_vectors, n_inputs)) < 0.5).astype(np.uint8)


def weighted_random_vectors(
    n_vectors: int,
    weights: Sequence[float],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Per-input biased random vectors (weighted random testing).

    Unseeded calls draw from a fixed-seed generator, like
    :func:`flat_random_vectors`.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    weights_arr = np.asarray(weights, dtype=float)
    if np.any((weights_arr < 0) | (weights_arr > 1)):
        raise ValueError("weights must be probabilities in [0, 1]")
    return (rng.random((n_vectors, len(weights_arr))) < weights_arr).astype(np.uint8)


def untargeted_trigger_probability(n_triggering: int, n_inputs: int) -> float:
    """Eq. 1 of the paper: Pu = Nu / 2**n.

    ``n_triggering`` counts the input combinations that expose the untargeted
    modification; ``n_inputs`` is the circuit's PI count.
    """
    if n_inputs < 0 or n_triggering < 0:
        raise ValueError("counts must be non-negative")
    total = float(2**n_inputs)
    if n_triggering > total:
        raise ValueError("cannot have more triggering combinations than inputs")
    return n_triggering / total


def count_distinguishing_vectors(
    golden: Circuit, modified: Circuit, max_inputs: int = 20
) -> int:
    """Exhaustively count vectors on which two circuits differ (Nu of Eq. 1)."""
    from ..sim.bitsim import BitSimulator, exhaustive_patterns

    if len(golden.inputs) > max_inputs:
        raise ValueError("circuit too wide for exhaustive counting")
    patterns = exhaustive_patterns(len(golden.inputs))
    g = BitSimulator(golden).run(patterns)
    col = {name: i for i, name in enumerate(modified.outputs)}
    m = BitSimulator(modified).run(patterns)[:, [col[o] for o in golden.outputs]]
    return int(np.any(g != m, axis=1).sum())
