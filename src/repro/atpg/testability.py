"""SCOAP testability measures (Goldstein 1979; Bushnell & Agrawal ch. 6).

Combinational controllability CC0/CC1 (effort to set a net to 0/1) and
observability CO (effort to propagate a net to a primary output).  The ATPG
flow uses these to order faults easiest-first, so a coverage- or
pattern-budgeted run leaves exactly the hard faults untested — the
rare-excitation faults TrojanZero hides behind.

Conventions: primary inputs cost 1; every gate level adds 1; unreachable
values get :data:`INFINITY`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from .fault import StuckAtFault

#: Sentinel for uncontrollable/unobservable (kept finite for arithmetic).
INFINITY = 10**9


def _cap(value: float) -> int:
    return INFINITY if value >= INFINITY else int(value)


@dataclass(frozen=True)
class Testability:
    """SCOAP measures for one circuit."""

    cc0: Dict[str, int]
    cc1: Dict[str, int]
    co: Dict[str, int]

    def controllability(self, net: str, value: int) -> int:
        return self.cc1[net] if value else self.cc0[net]

    def fault_difficulty(self, fault: StuckAtFault) -> int:
        """Detection effort: excite to the opposite value, then observe."""
        excite = self.controllability(fault.net, 1 - fault.value)
        return _cap(excite + self.co[fault.net])


def compute_testability(circuit: Circuit) -> Testability:
    """SCOAP CC0/CC1/CO for every net of a combinational circuit."""
    cc0: Dict[str, int] = {}
    cc1: Dict[str, int] = {}

    for net in circuit.topological_order():
        gate = circuit.gate(net)
        gt = gate.gate_type
        if gt is GateType.INPUT:
            cc0[net], cc1[net] = 1, 1
        elif gt is GateType.TIE0:
            cc0[net], cc1[net] = 0, INFINITY
        elif gt is GateType.TIE1:
            cc0[net], cc1[net] = INFINITY, 0
        elif gt is GateType.DFF:
            # Treated as a pseudo-input for combinational measures.
            cc0[net], cc1[net] = 1, 1
        else:
            zeros = [cc0[i] for i in gate.inputs]
            ones = [cc1[i] for i in gate.inputs]
            c0, c1 = _gate_controllability(gt, zeros, ones)
            cc0[net], cc1[net] = _cap(c0), _cap(c1)

    co: Dict[str, int] = {net: INFINITY for net in circuit.nets}
    for po in circuit.outputs:
        co[po] = 0
    # Propagate observability backwards (reverse topological order).
    for net in reversed(circuit.topological_order()):
        gate = circuit.gate(net)
        if gate.is_input or gate.is_constant:
            continue
        out_co = co[net]
        if out_co >= INFINITY:
            continue
        for idx, src in enumerate(gate.inputs):
            cost = _input_observability(gate.gate_type, idx, gate.inputs, cc0, cc1)
            if cost >= INFINITY:
                continue
            candidate = _cap(out_co + cost + 1)
            if candidate < co[src]:
                co[src] = candidate
    return Testability(cc0=cc0, cc1=cc1, co=co)


def _gate_controllability(
    gt: GateType, zeros: List[int], ones: List[int]
) -> Tuple[float, float]:
    """(CC0, CC1) of a gate output from its inputs' measures."""
    if gt is GateType.AND:
        return min(zeros) + 1, sum(ones) + 1
    if gt is GateType.NAND:
        return sum(ones) + 1, min(zeros) + 1
    if gt is GateType.OR:
        return sum(zeros) + 1, min(ones) + 1
    if gt is GateType.NOR:
        return min(ones) + 1, sum(zeros) + 1
    if gt is GateType.NOT:
        return ones[0] + 1, zeros[0] + 1
    if gt is GateType.BUFF:
        return zeros[0] + 1, ones[0] + 1
    if gt in (GateType.XOR, GateType.XNOR):
        # Fold pairwise: cost of parity-0 / parity-1 over the inputs.
        c0, c1 = zeros[0], ones[0]
        for z, o in zip(zeros[1:], ones[1:]):
            even = min(c0 + z, c1 + o)
            odd = min(c0 + o, c1 + z)
            c0, c1 = even, odd
        if gt is GateType.XNOR:
            c0, c1 = c1, c0
        return c0 + 1, c1 + 1
    if gt is GateType.MUX:
        z0, z1, zs = zeros
        o0, o1, os_ = ones
        c0 = min(zs + z0, os_ + z1)
        c1 = min(zs + o0, os_ + o1)
        return c0 + 1, c1 + 1
    raise ValueError(f"no controllability rule for {gt}")


def _input_observability(
    gt: GateType,
    idx: int,
    inputs: Tuple[str, ...],
    cc0: Dict[str, int],
    cc1: Dict[str, int],
) -> float:
    """Side-input sensitization cost to observe ``inputs[idx]`` through a gate."""
    others = [s for i, s in enumerate(inputs) if i != idx]
    if gt in (GateType.AND, GateType.NAND):
        return sum(cc1[s] for s in others)
    if gt in (GateType.OR, GateType.NOR):
        return sum(cc0[s] for s in others)
    if gt in (GateType.NOT, GateType.BUFF):
        return 0
    if gt in (GateType.XOR, GateType.XNOR):
        return sum(min(cc0[s], cc1[s]) for s in others)
    if gt is GateType.MUX:
        d0, d1, sel = inputs
        if idx == 0:  # observe d0: select must be 0
            return cc0[sel]
        if idx == 1:  # observe d1: select must be 1
            return cc1[sel]
        # observe select: data inputs must differ.
        return min(cc0[d0] + cc1[d1], cc1[d0] + cc0[d1])
    if gt is GateType.DFF:
        return INFINITY  # no combinational observation through state
    raise ValueError(f"no observability rule for {gt}")
