"""The side-channel trace lab: populations, hypotheses, and the evasion verdict.

This is the trace analogue of :mod:`repro.detect.evaluate`'s
``evasion_experiment``: fabricate golden / additive-HT / TrojanZero chip
populations, *measure per-cycle power traces* from each (per-chip process
variation via :meth:`TraceGenerator.chip_weights`, then a configurable
sensor-noise chain), calibrate the trace detectors on golden chips, and
report detection rates in the same :class:`~repro.detect.evaluate.
EvasionReport` schema the aggregate suites use — so ``CampaignSpec`` cells
can request the trace suite by registry name (``detector="traces"``) with no
runner changes.

Defender model
--------------
The defender owns the golden netlist, so they can (a) generate the golden
reference traces' expected shape and (b) *predict trigger activity*: the
rarest internal nets are exactly Algorithm 1's candidate set, and simulating
the golden netlist over the applied stimuli tells the defender at which
cycles each candidate would fire.  The keyed detectors
(:class:`~repro.traces.detectors.DomTraceDetector`,
:class:`~repro.traces.detectors.CorrTraceDetector`) test the measured
residual energy against those per-cycle predictions — the question the
aggregate detectors cannot ask.

Determinism: every draw derives from the experiment seed through
:func:`repro.core.pipeline.derive_seed`, with fixed sub-seed indices per
population, so serial and multi-worker campaign runs produce bit-identical
payloads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pipeline import derive_seed
from ..detect.evaluate import EvasionReport
from ..detect.variation import VariationModel
from ..netlist.circuit import Circuit
from ..power.analysis import analyze
from ..power.library import CellLibrary
from ..prob.propagate import signal_probabilities
from ..sim.seqsim import SequentialSimulator
from ..trojan.combinational import insert_additive_burden
from .detectors import CorrTraceDetector, DomTraceDetector, TvlaTraceDetector
from .generator import TraceGenerator
from .noise import GaussianNoise, Jitter, NoiseChain, NoiseModel, Quantization

#: Sub-seed indices of the lab's master seed (one per independent stream).
_SEED_STIMULI = 0
_SEED_CALIBRATION = 1
_SEED_GOLDEN = 2
_SEED_ADDITIVE = 3
_SEED_TROJANZERO = 4


@dataclass(frozen=True)
class TraceLabConfig:
    """Acquisition and analysis parameters of one trace experiment."""

    #: Stimulus sequences applied to every chip (the defender's test plan).
    n_sequences: int = 24
    #: Vectors per sequence; traces carry ``n_vectors - 1`` cycle samples.
    n_vectors: int = 33
    #: Acquisitions per chip: every chip is measured this many times over the
    #: same stimuli, so trace samples align by (sequence, cycle) position and
    #: the t-test variance is measurement noise, not stimulus variance.
    n_repeats: int = 8
    #: Candidate trigger nets the keyed detectors hypothesize over.
    n_hypotheses: int = 8
    #: Process/measurement spread (shared with the aggregate detectors).
    variation: VariationModel = field(default_factory=VariationModel)
    #: Additive sensor noise as a fraction of the mean trace sample.
    noise_rel: float = 0.01
    #: ADC resolution; 0 disables quantization.
    adc_bits: int = 12
    #: Acquisition-trigger jitter in cycles; 0 disables misalignment.
    jitter_cycles: int = 0
    #: Gain-normalize each device's trace set to a common grand mean before
    #: analysis (standard side-channel preprocessing: a scalar amplifier/
    #: process gain carries no structural information, and removing it keeps
    #: the t-test sensitive to *temporal* deviations instead of chip-wide
    #: spread).
    normalize_gain: bool = True
    #: TVLA leakage bar.
    t_threshold: float = 4.5
    #: False-positive quantile for calibrated thresholds.
    calibration_quantile: float = 0.995

    def __post_init__(self) -> None:
        if self.n_sequences < 1:
            raise ValueError(f"need at least 1 sequence, got {self.n_sequences}")
        if self.n_vectors < 2:
            raise ValueError(f"need at least 2 vectors per sequence, got {self.n_vectors}")
        if self.n_repeats < 2:
            raise ValueError(
                f"need at least 2 acquisition repeats for the Welch t-test, "
                f"got {self.n_repeats}"
            )

    def noise_chain(self, full_scale_fj: float) -> NoiseChain:
        """The sensor chain after per-net chip variation: noise -> jitter -> ADC."""
        stages: List[NoiseModel] = []
        if self.noise_rel > 0.0:
            stages.append(GaussianNoise(sigma_rel=self.noise_rel))
        if self.jitter_cycles > 0:
            stages.append(Jitter(max_shift_cycles=self.jitter_cycles))
        if self.adc_bits > 0:
            stages.append(Quantization(bits=self.adc_bits, full_scale_fj=full_scale_fj))
        return NoiseChain(stages=tuple(stages))


def random_stimuli(
    circuit: Circuit, config: TraceLabConfig, rng: np.random.Generator
) -> np.ndarray:
    """The defender's stimulus block: ``(n_sequences, n_vectors, n_inputs)``."""
    return (
        rng.random((config.n_sequences, config.n_vectors, len(circuit.inputs))) < 0.5
    ).astype(np.uint8)


def defender_hypotheses(
    golden: Circuit, sequences: np.ndarray, n_hypotheses: int
) -> Tuple[List[str], np.ndarray]:
    """Candidate trigger nets and their predicted firing activity.

    Candidates are the golden netlist's rarest internal nets (most extreme
    signal probability — Algorithm 1's own selection criterion, which the
    defender can evaluate just as well as the attacker), restricted to nets
    whose predicted activity actually fires under the applied stimuli (a
    hypothesis that never fires cannot distinguish anything).  Activity is
    the predicted *rising edge* indicator of each candidate, flattened over
    (sequence, cycle) sample positions to ``(n_hypotheses, n_samples)`` —
    a ripple-counter trigger advances exactly on those edges.
    """
    probs = signal_probabilities(golden)
    candidates = [
        net
        for net in golden.internal_nets()
        if not golden.gate(net).is_constant and not golden.gate(net).is_sequential
    ]
    candidates.sort(key=lambda net: min(probs[net], 1.0 - probs[net]))
    n_samples = sequences.shape[0] * (sequences.shape[1] - 1)
    # Simulate a larger pool so all-quiet candidates can be dropped.
    pool = candidates[: max(4 * n_hypotheses, n_hypotheses)]
    if not pool:
        return [], np.zeros((0, n_samples))
    bits = SequentialSimulator(golden).run_sequences_nets(sequences, pool)
    rising = (1 - bits[:, :-1, :]) & bits[:, 1:, :]  # (S, T-1, K)
    flat = rising.transpose(2, 0, 1).reshape(len(pool), n_samples).astype(np.float64)
    fires = flat.sum(axis=1) > 0
    keep = [i for i in range(len(pool)) if fires[i]][:n_hypotheses]
    if not keep:  # degenerate stimuli: fall back to the rarest candidates
        keep = list(range(min(n_hypotheses, len(pool))))
    return [pool[i] for i in keep], np.ascontiguousarray(flat[keep])


def measure_chip(
    generator: TraceGenerator,
    toggles: np.ndarray,
    config: TraceLabConfig,
    noise: NoiseModel,
    rng: np.random.Generator,
) -> np.ndarray:
    """Fabricate one die and acquire its trace set.

    Per-net process variation realizes once per chip
    (:meth:`TraceGenerator.chip_weights`); the chip's noiseless trace is then
    acquired ``n_repeats`` times through the sensor chain.  Returns
    ``(n_repeats, n_samples)`` with samples flattened over (sequence, cycle)
    positions so sets align across chips.
    """
    weights = generator.chip_weights(config.variation, rng)
    nominal = generator.traces_from_toggles(toggles, weights).reshape(1, -1)
    repeats = np.repeat(nominal, config.n_repeats, axis=0)
    return noise.apply(repeats, rng)


def trace_population(
    generator: TraceGenerator,
    toggles: np.ndarray,
    n_chips: int,
    config: TraceLabConfig,
    noise: NoiseModel,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Measure ``n_chips`` fabricated dies of one netlist.

    The toggle tensor depends only on the netlist and stimuli, so it is
    computed once per circuit; each chip then costs one weight draw, one
    matmul, and the noise chain.
    """
    return [measure_chip(generator, toggles, config, noise, rng) for _ in range(n_chips)]


class TraceEvasionReport(EvasionReport):
    """An :class:`EvasionReport` plus trace-lab diagnostics.

    ``trace_diagnostics`` carries acquisition metadata and detector
    internals (per-population max statistics, hypothesis nets, timings) —
    surfaced by the campaign runner under the record's non-payload
    ``traces`` section.
    """

    def __init__(self, *args, trace_diagnostics: Optional[Dict[str, Any]] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace_diagnostics: Dict[str, Any] = trace_diagnostics or {}


def trace_evasion_experiment(
    golden_circuit: Circuit,
    trojanzero_circuit: Circuit,
    library: CellLibrary,
    additive_gates: int = 16,
    n_chips: int = 12,
    seed: int = 37,
    config: Optional[TraceLabConfig] = None,
) -> TraceEvasionReport:
    """The trace-lab evasion experiment, in the aggregate suites' schema.

    Calibrates the TVLA / difference-of-means / correlation trace detectors
    on one golden population, then scores fresh golden, additive-HT, and
    TrojanZero-infected populations measured under identical stimuli and
    noise.  Registered as the ``"traces"`` detector suite.
    """
    config = config or TraceLabConfig()
    t0 = time.perf_counter()
    stimuli_rng = np.random.default_rng(derive_seed(seed, _SEED_STIMULI))
    sequences = random_stimuli(golden_circuit, config, stimuli_rng)

    additive_circuit = golden_circuit.copy(f"{golden_circuit.name}_additive")
    insert_additive_burden(additive_circuit, additive_gates)

    circuits = {
        "golden": golden_circuit,
        "additive": additive_circuit,
        "trojanzero": trojanzero_circuit,
    }
    generators = {k: TraceGenerator(c, library) for k, c in circuits.items()}
    toggle_tensors = {k: g.toggles(sequences) for k, g in generators.items()}

    # One fixed ADC scale for every population: digitize additive/infected
    # chips exactly like golden ones (headroom for overheads + variation).
    nominal = generators["golden"].traces_from_toggles(toggle_tensors["golden"])
    full_scale = 1.5 * float(nominal.max()) if nominal.size else 1.0
    noise = config.noise_chain(full_scale)

    ref_mean = float(nominal.mean()) if nominal.size else 1.0

    def population(kind: str, seed_index: int) -> List[np.ndarray]:
        rng = np.random.default_rng(derive_seed(seed, seed_index))
        chips = trace_population(
            generators[kind], toggle_tensors[kind], n_chips, config, noise, rng
        )
        if config.normalize_gain:
            chips = [
                chip * (ref_mean / max(float(chip.mean()), 1e-12)) for chip in chips
            ]
        return chips

    calibration = population("golden", _SEED_CALIBRATION)
    golden_chips = population("golden", _SEED_GOLDEN)
    additive_chips = population("additive", _SEED_ADDITIVE)
    tz_chips = population("trojanzero", _SEED_TROJANZERO)

    hypothesis_nets, activity = defender_hypotheses(
        golden_circuit, sequences, config.n_hypotheses
    )
    detectors = {
        "tvla": TvlaTraceDetector(
            t_threshold=config.t_threshold,
            calibration_quantile=config.calibration_quantile,
        )
    }
    if activity.shape[0]:
        detectors["dom"] = DomTraceDetector(
            activity=activity, calibration_quantile=config.calibration_quantile
        )
        detectors["corr"] = CorrTraceDetector(
            activity=activity, calibration_quantile=config.calibration_quantile
        )
    for detector in detectors.values():
        detector.calibrate(calibration)

    def rates(chips: Sequence[np.ndarray]) -> Dict[str, float]:
        return {name: d.detection_rate(chips) for name, d in detectors.items()}

    def max_statistic(chips: Sequence[np.ndarray]) -> Dict[str, float]:
        return {
            name: float(max(d.statistic(c) for c in chips))
            for name, d in detectors.items()
        }

    golden_report = analyze(golden_circuit, library)
    additive_report = analyze(additive_circuit, library)
    tz_report = analyze(trojanzero_circuit, library)
    base_total = golden_report.total_uw

    diagnostics: Dict[str, Any] = {
        "config": {
            "n_sequences": config.n_sequences,
            "n_vectors": config.n_vectors,
            "n_repeats": config.n_repeats,
            "n_chips": n_chips,
            "noise_rel": config.noise_rel,
            "adc_bits": config.adc_bits,
            "jitter_cycles": config.jitter_cycles,
            "variation_dynamic_sigma": config.variation.dynamic_sigma,
        },
        "nets_watched": {k: len(g.nets) for k, g in generators.items()},
        "mean_cycle_energy_fj": {
            k: (
                float(nominal.mean())
                if k == "golden"  # already computed for the ADC scale
                else float(generators[k].traces_from_toggles(toggle_tensors[k]).mean())
            )
            for k in circuits
        },
        "hypothesis_nets": hypothesis_nets,
        "thresholds": {name: d.threshold for name, d in detectors.items()},
        "max_statistic": {
            "golden": max_statistic(golden_chips),
            "additive": max_statistic(additive_chips),
            "trojanzero": max_statistic(tz_chips),
        },
        "wall_s": round(time.perf_counter() - t0, 6),
    }
    return TraceEvasionReport(
        golden_rates=rates(golden_chips),
        additive_rates=rates(additive_chips),
        trojanzero_rates=rates(tz_chips),
        additive_overhead_pct=100.0 * (additive_report.total_uw - base_total) / base_total,
        trojanzero_overhead_pct=100.0 * (tz_report.total_uw - base_total) / base_total,
        trace_diagnostics=diagnostics,
    )


def trace_detector_suite(
    golden: Circuit,
    infected: Circuit,
    library: CellLibrary,
    *,
    additive_gates: int = 16,
    n_chips: int = 12,
    seed: int = 37,
) -> TraceEvasionReport:
    """Registry adapter: the ``"traces"`` detector suite for ``repro.api``."""
    return trace_evasion_experiment(
        golden,
        infected,
        library,
        additive_gates=additive_gates,
        n_chips=n_chips,
        seed=seed,
    )
