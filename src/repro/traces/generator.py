"""Per-cycle power-trace generation on the compiled levelized engine.

The aggregate detectors of :mod:`repro.detect` judge one number per chip
(total power); a side-channel tester sees a *trace* — switching energy per
clock cycle.  :class:`TraceGenerator` produces such traces directly from the
gate-level model: simulate the circuit over an input sequence on the compiled
engine (:class:`repro.sim.seqsim.SequentialSimulator`, which covers pure
combinational circuits too), XOR consecutive settles into per-net toggle
vectors (:func:`repro.sim.bitsim.toggle_matrix`, the kernel shared with
:func:`repro.prob.montecarlo.mc_toggle_rates`), and weight them with the
per-net switching energies of :func:`repro.power.analysis.switching_energy_fj`
— the *same* cost table the aggregate dynamic-power model integrates, so a
trace averaged over a long random sequence reproduces
:func:`repro.power.analysis.analyze`'s dynamic power exactly.

Everything is batched: one simulation pass per sequence block, one toggle
XOR over all watched rows, and one (chunked) toggle-matrix x energy-vector
product per trace batch.  No per-net Python loops anywhere in the hot path.

Trace flavours
--------------
* **sequential clocked traces** — ``generate(sequences)`` on a DFF-bearing
  circuit: sample *t* is the energy of the settle-to-settle transition when
  vector ``t+1`` is applied (flip-flop ripple included).
* **combinational pattern-pair traces** — the same call on a combinational
  circuit scores consecutive pattern pairs; :meth:`pattern_pair_trace` is
  the single-sequence convenience wrapper.
* **watched-cone restriction** — pass ``cone_roots`` to watch only the
  fanout cones of a few nets (e.g. a suspected trigger region) instead of
  the whole chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..detect.variation import VariationModel
from ..netlist.circuit import Circuit
from ..power.analysis import switching_energy_fj
from ..power.library import CellLibrary
from ..power.synthesis import MappedNetlist
from ..sim.bitsim import toggle_matrix
from ..sim.seqsim import SequentialSimulator

#: Cast-and-multiply chunk for the toggle-matrix x energy-vector product
#: (bounds the float64 copy of the uint8 toggle block to ~32 MB).
_MATMUL_CHUNK_FLOATS = 1 << 22


def cone_watch_nets(circuit: Circuit, roots: Sequence[str]) -> List[str]:
    """The roots plus every net in their fanout cones, in circuit net order."""
    member = set()
    for root in roots:
        member.add(root)
        member.update(circuit.fanout_cone(root))
    return [net for net in circuit.nets if net in member]


@dataclass(frozen=True)
class TraceBatch:
    """A batch of per-cycle energy traces plus its provenance."""

    #: ``(n_traces, n_cycles)`` float64, fJ of switching energy per cycle.
    traces: np.ndarray
    circuit_name: str
    nets_watched: int

    @property
    def n_traces(self) -> int:
        return int(self.traces.shape[0])

    @property
    def n_cycles(self) -> int:
        return int(self.traces.shape[1])

    def mean_energy_fj(self) -> float:
        """Mean per-cycle switching energy over the whole batch."""
        return float(self.traces.mean()) if self.traces.size else 0.0


class TraceGenerator:
    """Vectorized per-cycle switching-energy traces for one circuit.

    Parameters
    ----------
    nets:
        Watched nets (default: every net — total-chip power).  Order is
        preserved; energies align with it.
    cone_roots:
        Alternative to ``nets``: watch only the fanout cones of these nets
        (plus the roots themselves).
    mapped:
        Pre-computed technology mapping, forwarded to
        :func:`~repro.power.analysis.switching_energy_fj`.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        nets: Optional[Sequence[str]] = None,
        cone_roots: Optional[Sequence[str]] = None,
        mapped: Optional[MappedNetlist] = None,
        backend=None,
    ) -> None:
        if nets is not None and cone_roots is not None:
            raise ValueError("pass either nets or cone_roots, not both")
        if cone_roots is not None:
            nets = cone_watch_nets(circuit, cone_roots)
        self.circuit = circuit
        self.library = library
        self.nets: Tuple[str, ...] = tuple(nets if nets is not None else circuit.nets)
        energy = switching_energy_fj(circuit, library, mapped=mapped)
        #: Per-net energy per toggle (fJ), aligned with :attr:`nets`.
        self.energies_fj = np.array([energy[n] for n in self.nets], dtype=np.float64)
        self._sim = SequentialSimulator(circuit, backend)
        #: Array backend the simulation and the trace matmul run on
        #: (inherited from the compiled form; numpy unless selected).
        self._backend = self._sim._backend

    # ------------------------------------------------------------------
    def toggles(self, sequences: np.ndarray) -> np.ndarray:
        """Per-net toggle tensor for ``(n_seqs, n_steps, n_inputs)`` sequences.

        Returns ``(n_seqs, n_steps - 1, n_nets)`` uint8 — entry ``[s, t, i]``
        is 1 where watched net *i* changed between settles ``t`` and ``t+1``
        of sequence *s*.  One compiled-engine pass over the block, one
        batched XOR; toggles depend only on the netlist and the stimuli, so
        a chip population under process variation reuses one tensor.
        """
        sequences = np.asarray(sequences)
        values = self._sim.run_sequences_nets(sequences, list(self.nets))
        return toggle_matrix(values, axis=1)

    def traces_from_toggles(
        self, toggles: np.ndarray, weights: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Weight a toggle tensor into ``(n_seqs, n_cycles)`` energy traces.

        ``weights`` defaults to the nominal :attr:`energies_fj`; pass
        :meth:`chip_weights` output to realize one varied die.  The product
        is chunked so the float64 cast of the uint8 tensor stays bounded.
        """
        w = self.energies_fj if weights is None else np.asarray(weights, dtype=np.float64)
        n_seqs, n_cycles, n_nets = toggles.shape
        if w.shape != (n_nets,):
            raise ValueError(f"expected {n_nets} weights, got {w.shape}")
        flat = toggles.reshape(n_seqs * n_cycles, n_nets)
        out = np.empty(flat.shape[0], dtype=np.float64)
        step = max(1, _MATMUL_CHUNK_FLOATS // max(n_nets, 1))
        w_dev = self._backend.asarray(w)
        for start in range(0, flat.shape[0], step):
            block = self._backend.asarray(flat[start : start + step])
            product = block.astype(np.float64) @ w_dev
            out[start : start + block.shape[0]] = self._backend.to_numpy(product)
        return out.reshape(n_seqs, n_cycles)

    def generate(
        self, sequences: np.ndarray, weights: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Noiseless energy traces for a sequence block: ``(n_seqs, n_steps-1)``."""
        return self.traces_from_toggles(self.toggles(sequences), weights)

    def pattern_pair_trace(self, patterns: np.ndarray) -> np.ndarray:
        """Combinational pattern-pair trace: one sample per consecutive pair.

        ``patterns`` is ``(n_patterns, n_inputs)``; returns ``(n_patterns-1,)``.
        """
        patterns = np.atleast_2d(np.asarray(patterns))
        return self.generate(patterns[np.newaxis])[0]

    def batch(
        self, sequences: np.ndarray, weights: Optional[np.ndarray] = None
    ) -> TraceBatch:
        """Like :meth:`generate`, wrapped with provenance."""
        return TraceBatch(
            traces=self.generate(sequences, weights),
            circuit_name=self.circuit.name,
            nets_watched=len(self.nets),
        )

    # ------------------------------------------------------------------
    def chip_weights(
        self,
        model: VariationModel,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-net energy weights of one fabricated die.

        Reuses the per-net dynamic multiplier of
        :class:`repro.detect.variation.VariationModel` — Gaussian with
        ``dynamic_sigma``, clipped like
        :meth:`~repro.detect.variation.PopulationSampler.sample_chip` — so
        trace populations and aggregate-power populations model the same
        process spread.
        """
        mult = rng.normal(loc=1.0, scale=model.dynamic_sigma, size=self.energies_fj.shape)
        return self.energies_fj * np.clip(mult, 0.5, 1.5)
