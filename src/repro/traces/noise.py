"""Composable measurement models for power traces.

A :class:`NoiseModel` maps a ``(n_traces, n_cycles)`` energy-trace batch to
what the tester actually records.  Models compose through
:class:`NoiseChain` and are *pure* given an RNG — every draw comes from the
``numpy.random.Generator`` the caller passes, so campaign runs seeded
through :func:`repro.core.pipeline.derive_seed` stay bit-identical between
serial and sharded execution.

Convention: one ``apply`` call models one *acquisition* — typically all
traces captured from one die.  Chip-correlated effects
(:class:`ProcessVariation`'s gain) therefore draw once per call, while
sample noise draws per sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..detect.variation import VariationModel


class NoiseModel:
    """Base class: transform a trace batch, drawing from ``rng`` only."""

    def apply(self, traces: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


@dataclass(frozen=True)
class GaussianNoise(NoiseModel):
    """Additive sensor noise: absolute sigma plus a mean-relative component."""

    sigma_fj: float = 0.0
    #: Extra sigma as a fraction of the batch's mean sample (scales with the
    #: circuit instead of requiring per-circuit tuning).
    sigma_rel: float = 0.0

    def apply(self, traces: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        scale = self.sigma_fj + self.sigma_rel * float(np.mean(traces)) if traces.size else 0.0
        if scale <= 0.0:
            return np.array(traces, dtype=np.float64, copy=True)
        return traces + rng.normal(0.0, scale, size=traces.shape)


@dataclass(frozen=True)
class ProcessVariation(NoiseModel):
    """Trace-level process/measurement spread from a :class:`VariationModel`.

    One multiplicative gain per acquisition (``dynamic_sigma``, clipped like
    the aggregate sampler) models chip-wide capacitance/slew variation, plus
    per-sample relative measurement noise (``measurement_noise``) — the
    trace analogue of :meth:`PopulationSampler.sample_chip`'s ``noisy``.
    Prefer :meth:`TraceGenerator.chip_weights` when per-*net* variation is
    wanted; this model is for trace-only pipelines.
    """

    model: VariationModel = field(default_factory=VariationModel)

    def apply(self, traces: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        gain = float(np.clip(rng.normal(1.0, self.model.dynamic_sigma), 0.5, 1.5))
        out = traces * gain
        if self.model.measurement_noise > 0.0:
            out = out * (
                1.0 + rng.normal(0.0, self.model.measurement_noise, size=traces.shape)
            )
        return out


@dataclass(frozen=True)
class Quantization(NoiseModel):
    """ADC quantization to ``bits`` levels over ``[0, full_scale_fj]``.

    ``full_scale_fj=None`` scales to the batch maximum — fine for one-off
    analysis, but fix the scale when comparing populations so every chip is
    digitized identically.
    """

    bits: int = 12
    full_scale_fj: Optional[float] = None

    def apply(self, traces: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.bits <= 0:
            return np.array(traces, dtype=np.float64, copy=True)
        full_scale = self.full_scale_fj
        if full_scale is None:
            full_scale = float(traces.max()) if traces.size else 1.0
        if full_scale <= 0.0:
            return np.zeros_like(traces, dtype=np.float64)
        lsb = full_scale / float((1 << self.bits) - 1)
        clipped = np.clip(traces, 0.0, full_scale)
        return np.round(clipped / lsb) * lsb


@dataclass(frozen=True)
class Jitter(NoiseModel):
    """Trace misalignment: each trace circularly shifts by up to ``max_shift_cycles``.

    Models acquisition-trigger jitter.  Shifts draw uniformly from
    ``[-max_shift_cycles, +max_shift_cycles]``; traces sharing a shift are
    rolled together (one pass per distinct shift, not per trace).
    """

    max_shift_cycles: int = 1

    def apply(self, traces: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.max_shift_cycles <= 0:
            return np.array(traces, dtype=np.float64, copy=True)
        shifts = rng.integers(
            -self.max_shift_cycles, self.max_shift_cycles + 1, size=traces.shape[0]
        )
        out = np.empty_like(traces, dtype=np.float64)
        for shift in np.unique(shifts):
            mask = shifts == shift
            out[mask] = np.roll(traces[mask], int(shift), axis=1)
        return out


@dataclass(frozen=True)
class NoiseChain(NoiseModel):
    """Apply a sequence of noise models left to right."""

    stages: Tuple[NoiseModel, ...] = ()

    def apply(self, traces: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = np.array(traces, dtype=np.float64, copy=True)
        for stage in self.stages:
            out = stage.apply(out, rng)
        return out
