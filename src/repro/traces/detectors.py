"""Trace-based hardware-Trojan detectors.

Where the aggregate detectors of :mod:`repro.detect` see one number per
chip, these see per-cycle traces — temporal structure.  Three statistics,
all calibrated on a golden-chip population exactly like the aggregate
baselines (``calibrate`` / ``statistic`` / ``flags`` / ``detection_rate``),
so the evaluation harness reports the same verdict schema:

* :class:`TvlaTraceDetector` — Welch's t-test per cycle between a pooled
  golden reference and the device under test (TVLA-style leakage
  assessment); statistic is the largest absolute t over the trace.
* :class:`DomTraceDetector` — difference-of-means distinguisher *keyed on
  trigger activity*: the defender hypothesizes candidate trigger nets,
  predicts from the golden netlist at which cycles each candidate fires,
  and compares the residual energy of active vs. inactive samples.
* :class:`CorrTraceDetector` — Pearson-correlation distinguisher over the
  same hypotheses: residual energy vs. predicted activity across all
  samples.

The keyed detectors are the attack-on-the-paper instruments: a counter
Trojan's flip-flops draw energy exactly when the (rare) clock-source net
fires, and that temporal correlation survives even when the *total* power
increase is salvaged to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

_EPS = 1e-12

#: Minimum golden population for threshold calibration (matches the
#: aggregate detectors of :mod:`repro.detect`).
_MIN_GOLDEN = 8


def welch_t_statistic(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-cycle Welch t between two trace sets ``(n_a, T)`` and ``(n_b, T)``."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    na, nb = a.shape[0], b.shape[0]
    if na < 2 or nb < 2:
        raise ValueError("welch t needs at least 2 traces per set")
    var_a = a.var(axis=0, ddof=1)
    var_b = b.var(axis=0, ddof=1)
    denom = np.sqrt(var_a / na + var_b / nb)
    return (a.mean(axis=0) - b.mean(axis=0)) / np.maximum(denom, _EPS)


@dataclass(frozen=True)
class LeakageAssessment:
    """TVLA-style summary of one two-set comparison."""

    max_abs_t: float
    n_leaky_cycles: int
    t_threshold: float
    n_cycles: int

    @property
    def leaks(self) -> bool:
        return self.max_abs_t > self.t_threshold


def leakage_assessment(
    a: np.ndarray, b: np.ndarray, t_threshold: float = 4.5
) -> LeakageAssessment:
    """Assess two trace sets for leakage at the TVLA ``|t| > 4.5`` bar."""
    t = welch_t_statistic(a, b)
    return LeakageAssessment(
        max_abs_t=float(np.max(np.abs(t))) if t.size else 0.0,
        n_leaky_cycles=int(np.sum(np.abs(t) > t_threshold)),
        t_threshold=t_threshold,
        n_cycles=int(t.shape[0]),
    )


@dataclass
class _CalibratedTraceDetector:
    """Shared calibrate/flag plumbing (mirrors the aggregate detectors)."""

    calibration_quantile: float = 0.995
    #: Guard band on the calibrated quantile: with a small golden population
    #: the extreme quantile is estimated from the sample maximum, so fresh
    #: golden chips routinely exceed it.  The margin buys the specified
    #: false-positive rate at the cost of sensitivity, exactly like TVLA's
    #: conventional 4.5 bar sits well above the pointwise 99.9% level.
    threshold_margin: float = 1.25
    _threshold: float = field(default=float("inf"), repr=False)
    _calibrated: bool = field(default=False, repr=False)

    def statistic(self, traces: np.ndarray) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def _golden_statistics(self, golden: Sequence[np.ndarray]) -> List[float]:
        raise NotImplementedError  # pragma: no cover - abstract

    def _fit(self, golden: Sequence[np.ndarray]) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def calibrate(self, golden: Sequence[np.ndarray]) -> None:
        """Fit the null model and alarm threshold on golden-chip trace sets."""
        if len(golden) < _MIN_GOLDEN:
            raise ValueError(f"need at least {_MIN_GOLDEN} golden chips to calibrate")
        self._fit(golden)
        self._calibrated = True
        stats = self._golden_statistics(golden)
        self._threshold = max(
            self._floor_threshold(),
            self.threshold_margin
            * float(np.quantile(stats, self.calibration_quantile)),
        )

    def _floor_threshold(self) -> float:
        return 0.0

    @property
    def threshold(self) -> float:
        """The calibrated alarm threshold (``inf`` before calibration)."""
        return self._threshold

    def flags(self, traces: np.ndarray) -> bool:
        return self.statistic(traces) > self._threshold

    def detection_rate(self, chips: Sequence[np.ndarray]) -> float:
        return float(np.mean([self.flags(c) for c in chips]))


@dataclass
class TvlaTraceDetector(_CalibratedTraceDetector):
    """Welch t-test / TVLA leakage assessment against a pooled golden set."""

    #: TVLA's conventional leakage bar; the calibrated quantile can only
    #: raise the alarm threshold above it, never below.
    t_threshold: float = 4.5
    _pooled: Optional[np.ndarray] = field(default=None, repr=False)

    def _floor_threshold(self) -> float:
        return self.t_threshold

    def _fit(self, golden: Sequence[np.ndarray]) -> None:
        self._pooled = np.concatenate([np.atleast_2d(g) for g in golden], axis=0)

    def _golden_statistics(self, golden: Sequence[np.ndarray]) -> List[float]:
        # Leave-one-out: score each golden chip against the pool of the
        # others, so the null distribution is not biased by self-inclusion.
        stats = []
        for i, chip in enumerate(golden):
            others = np.concatenate(
                [np.atleast_2d(g) for j, g in enumerate(golden) if j != i], axis=0
            )
            t = welch_t_statistic(others, chip)
            stats.append(float(np.max(np.abs(t))) if t.size else 0.0)
        return stats

    def statistic(self, traces: np.ndarray) -> float:
        if not self._calibrated:
            raise RuntimeError("calibrate() first")
        t = welch_t_statistic(self._pooled, traces)
        return float(np.max(np.abs(t))) if t.size else 0.0

    def assessment(self, traces: np.ndarray) -> LeakageAssessment:
        """Full TVLA summary of one device against the golden pool."""
        if not self._calibrated:
            raise RuntimeError("calibrate() first")
        return leakage_assessment(self._pooled, traces, self.t_threshold)


@dataclass
class _KeyedResidualDetector(_CalibratedTraceDetector):
    """Base for distinguishers keyed on hypothesized trigger activity.

    ``activity`` has shape ``(n_hypotheses, n_samples)`` and must align with
    the sample axis of every scored trace set — entry ``[k, m]`` is the
    predicted activity of candidate trigger *k* at sample position *m*
    (computed from the golden netlist, which the defender has; positions are
    (sequence, cycle) pairs, so the prediction is stimulus-specific).
    Scoring averages a device's traces over its acquisition repeats, removes
    the golden per-position mean, and compares the residual against each
    hypothesis; the statistic is a z-score of the per-hypothesis score
    against its golden distribution, maximized over hypotheses.
    """

    activity: Optional[np.ndarray] = None
    #: Floor on the max-|z| alarm threshold (the keyed analogue of TVLA's
    #: 4.5 bar: a z maxed over hypotheses needs headroom over the pointwise
    #: normal quantiles).
    z_threshold: float = 4.0
    _golden_mean: Optional[np.ndarray] = field(default=None, repr=False)
    _score_mean: Optional[np.ndarray] = field(default=None, repr=False)
    _score_std: Optional[np.ndarray] = field(default=None, repr=False)

    def _floor_threshold(self) -> float:
        return self.z_threshold

    def _scores(self, residual: np.ndarray) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract

    def _residual(self, traces: np.ndarray) -> np.ndarray:
        """Repeat-averaged residual vector ``(n_samples,)`` of one device."""
        traces = np.atleast_2d(np.asarray(traces, dtype=np.float64))
        if traces.shape[1] != self._golden_mean.shape[0]:
            raise ValueError(
                f"trace length {traces.shape[1]} != calibrated {self._golden_mean.shape[0]}"
            )
        return traces.mean(axis=0) - self._golden_mean

    def _fit(self, golden: Sequence[np.ndarray]) -> None:
        if self.activity is None:
            raise ValueError("activity hypotheses required before calibration")
        self.activity = np.atleast_2d(np.asarray(self.activity, dtype=np.float64))
        pooled = np.concatenate([np.atleast_2d(g) for g in golden], axis=0)
        self._golden_mean = pooled.mean(axis=0)
        raw = np.stack([self._scores(self._residual(g)) for g in golden])
        self._score_mean = raw.mean(axis=0)
        self._score_std = np.maximum(raw.std(axis=0, ddof=1), _EPS)

    def _golden_statistics(self, golden: Sequence[np.ndarray]) -> List[float]:
        return [self.statistic(g) for g in golden]

    def statistic(self, traces: np.ndarray) -> float:
        if self._golden_mean is None:
            raise RuntimeError("calibrate() first")
        scores = self._scores(self._residual(traces))
        z = (scores - self._score_mean) / self._score_std
        return float(np.max(np.abs(z))) if z.size else 0.0


@dataclass
class DomTraceDetector(_KeyedResidualDetector):
    """Difference of means between predicted-active and inactive samples."""

    def _scores(self, residual: np.ndarray) -> np.ndarray:
        # activity: (K, M); residual: (M,).  Mean residual over the active
        # vs. inactive sample positions, all hypotheses at once.
        on = self.activity > 0.5
        n_on = on.sum(axis=1)
        n_off = on.shape[1] - n_on
        sum_on = on @ residual
        sum_all = residual.sum()
        scores = np.zeros(on.shape[0], dtype=np.float64)
        valid = (n_on > 0) & (n_off > 0)
        scores[valid] = sum_on[valid] / n_on[valid] - (
            sum_all - sum_on[valid]
        ) / n_off[valid]
        return scores


@dataclass
class CorrTraceDetector(_KeyedResidualDetector):
    """Pearson correlation of residual energy with predicted activity."""

    def _scores(self, residual: np.ndarray) -> np.ndarray:
        act = self.activity
        res_c = residual - residual.mean()
        act_c = act - act.mean(axis=1, keepdims=True)
        denom = np.sqrt((act_c * act_c).sum(axis=1) * (res_c * res_c).sum())
        return (act_c @ res_c) / np.maximum(denom, _EPS)
