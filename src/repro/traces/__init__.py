"""Side-channel trace lab: per-cycle power traces, noise models, detectors.

Four layers (see :mod:`repro.traces.generator`, :mod:`~repro.traces.noise`,
:mod:`~repro.traces.detectors`, :mod:`~repro.traces.lab`):

1. **generation** — :class:`TraceGenerator` turns compiled-engine toggle
   tensors into per-cycle switching-energy traces, weighted by the same
   per-net cell energies the aggregate power model integrates;
2. **measurement** — composable, seeded :class:`NoiseModel` s (sensor noise,
   process variation, ADC quantization, trigger jitter);
3. **detection** — TVLA-style Welch t-tests plus difference-of-means and
   Pearson-correlation distinguishers keyed on hypothesized trigger
   activity, calibrated like the aggregate baselines;
4. **evaluation** — :func:`trace_evasion_experiment`, the ``"traces"``
   detector suite of :mod:`repro.api`, reporting the standard
   :class:`~repro.detect.evaluate.EvasionReport` verdict schema.
"""

from .detectors import (
    CorrTraceDetector,
    DomTraceDetector,
    LeakageAssessment,
    TvlaTraceDetector,
    leakage_assessment,
    welch_t_statistic,
)
from .generator import TraceBatch, TraceGenerator, cone_watch_nets
from .lab import (
    TraceEvasionReport,
    TraceLabConfig,
    defender_hypotheses,
    measure_chip,
    random_stimuli,
    trace_detector_suite,
    trace_evasion_experiment,
    trace_population,
)
from .noise import (
    GaussianNoise,
    Jitter,
    NoiseChain,
    NoiseModel,
    ProcessVariation,
    Quantization,
)

__all__ = [
    "TraceGenerator",
    "TraceBatch",
    "cone_watch_nets",
    "NoiseModel",
    "GaussianNoise",
    "ProcessVariation",
    "Quantization",
    "Jitter",
    "NoiseChain",
    "welch_t_statistic",
    "leakage_assessment",
    "LeakageAssessment",
    "TvlaTraceDetector",
    "DomTraceDetector",
    "CorrTraceDetector",
    "TraceLabConfig",
    "TraceEvasionReport",
    "trace_evasion_experiment",
    "trace_detector_suite",
    "trace_population",
    "measure_chip",
    "random_stimuli",
    "defender_hypotheses",
]
