"""R2 — payload purity (RPR201..RPR202).

Everything in ``ExperimentRecord.payload_dict()`` must be a pure function
of the spec: that equality is what CI's service smoke byte-compares, what
makes the spec-hash result cache sound (PR 8), and what lets two fleets
share results.  Execution artifacts — wall clocks, env probes, host names
— belong in the ``runtime``/``traces`` diagnostics sections, which
``payload_dict()`` excludes.

The checker scopes itself to modules that construct records (a call to
``ExperimentRecord(...)``, one of its classmethod constructors, or
``cls(...)`` inside the record class) and uses one-hop taint tracking per
function: a name bound from a nondeterministic call — or from a dict
literal containing one — is tainted, and tainted expressions may only
reach the sanctioned non-payload arguments.

* **RPR201** — a nondeterministic value (``time.*``, ``os.environ``,
  ``platform.*``, ...) flows into a payload field of a record
  construction.
* **RPR202** — a ``runtime``/``traces`` diagnostics key is read back into
  a payload field (diagnostics must never round-trip into payloads).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .config import (
    NONDETERMINISTIC_CALLS,
    RECORD_CLASSES,
    RECORD_CONSTRUCTORS,
    RUNTIME_SECTION_KEYS,
)
from .context import ModuleContext, dotted_name
from .findings import Finding
from .registry import rule

_ND_EXACT = frozenset(n for n in NONDETERMINISTIC_CALLS if not n.endswith("."))
_ND_PREFIXES = tuple(n for n in NONDETERMINISTIC_CALLS if n.endswith("."))


def _is_nd_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None:
        return False
    return name in _ND_EXACT or name.startswith(_ND_PREFIXES)


def _contains_nd_call(node: ast.AST) -> Optional[ast.AST]:
    for sub in ast.walk(node):
        if _is_nd_call(sub):
            return sub
        # ``os.environ[...]`` reads are environment probes too.
        if isinstance(sub, ast.Subscript):
            if dotted_name(sub.value) in ("os.environ", "environ"):
                return sub
    return None


def _record_call_spec(
    ctx: ModuleContext, call: ast.Call
) -> Optional[Tuple[str, Dict[str, set]]]:
    """(constructor name, exempt-arg spec) when ``call`` builds a record."""
    name = dotted_name(call.func)
    if name is None:
        return None
    if name == "cls":
        cls_def = ctx.enclosing_class(call)
        if cls_def is None or cls_def.name not in RECORD_CLASSES:
            return None
        return name, RECORD_CONSTRUCTORS["cls"]
    # Match on the trailing components so `runner.ExperimentRecord.from_run`
    # and plain `ExperimentRecord.from_run` both resolve.
    for ctor, spec in RECORD_CONSTRUCTORS.items():
        if ctor == "cls":
            continue
        if name == ctor or name.endswith("." + ctor):
            return ctor, spec
    return None


def _payload_args(
    call: ast.Call, exempt: Dict[str, set]
) -> Iterator[ast.AST]:
    """The argument expressions that land in payload fields."""
    for idx, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        if idx not in exempt["positions"]:
            yield arg
    for kw in call.keywords:
        if kw.arg is None:  # **splat: opaque, skip
            continue
        if kw.arg not in exempt["kwargs"]:
            yield kw.value


def _tainted_names(fn: ast.AST) -> Set[str]:
    """Names bound (one hop, plus dict-literal aggregation) from
    nondeterministic calls within one function body."""
    tainted: Set[str] = set()
    # Two passes so a dict literal picks up names tainted later in pass 1
    # regardless of statement order quirks.
    for _ in range(2):
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            value_tainted = _contains_nd_call(node.value) is not None or any(
                isinstance(sub, ast.Name) and sub.id in tainted
                for sub in ast.walk(node.value)
            )
            if not value_tainted:
                continue
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        tainted.add(sub.id)
    return tainted


def _expr_taint(node: ast.AST, tainted: Set[str]) -> Optional[ast.AST]:
    nd = _contains_nd_call(node)
    if nd is not None:
        return nd
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in tainted:
            return sub
    return None


def _record_calls(
    ctx: ModuleContext,
) -> Iterator[Tuple[ast.Call, str, Dict[str, set], Set[str]]]:
    taint_cache: Dict[int, Set[str]] = {}
    for call in ctx.calls():
        matched = _record_call_spec(ctx, call)
        if matched is None:
            continue
        ctor, exempt = matched
        fn = ctx.enclosing_function(call)
        key = id(fn)
        if key not in taint_cache:
            taint_cache[key] = _tainted_names(fn if fn is not None else ctx.tree)
        yield call, ctor, exempt, taint_cache[key]


def _finding(ctx: ModuleContext, node: ast.AST, code: str, msg: str) -> Finding:
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=msg,
        snippet=ctx.snippet(node),
    )


@rule(
    "RPR201",
    "nondeterministic value in record payload",
    "payload-bit-parity (PR 3) / spec-hash cache soundness (PR 8): "
    "payloads must be pure functions of the spec",
)
def check_payload_purity(ctx: ModuleContext) -> Iterator[Finding]:
    for call, ctor, exempt, tainted in _record_calls(ctx):
        for arg in _payload_args(call, exempt):
            hit = _expr_taint(arg, tainted)
            if hit is not None:
                what = (
                    dotted_name(getattr(hit, "func", hit))
                    or getattr(hit, "id", None)
                    or "nondeterministic value"
                )
                yield _finding(
                    ctx, arg, "RPR201",
                    f"`{what}` flows into a payload field of `{ctor}`; "
                    "execution artifacts belong in the non-payload "
                    "`runtime=` section",
                )


@rule(
    "RPR202",
    "diagnostics key read into record payload",
    "runtime/traces sections are excluded from payload_dict(); copying "
    "them into payload fields breaks parallel==serial parity (PR 3)",
)
def check_runtime_readback(ctx: ModuleContext) -> Iterator[Finding]:
    for call, ctor, exempt, _tainted in _record_calls(ctx):
        for arg in _payload_args(call, exempt):
            for sub in ast.walk(arg):
                key: Optional[str] = None
                if isinstance(sub, ast.Subscript):
                    sl = sub.slice
                    if (
                        isinstance(sl, ast.Constant)
                        and isinstance(sl.value, str)
                        and sl.value in RUNTIME_SECTION_KEYS
                    ):
                        key = sl.value
                elif isinstance(sub, ast.Attribute):
                    if sub.attr in RUNTIME_SECTION_KEYS:
                        key = sub.attr
                elif isinstance(sub, ast.Call):
                    # ``rec.get("runtime")`` / ``rec_dict.get("traces")``
                    fn_name = dotted_name(sub.func) or ""
                    if fn_name.endswith(".get") and sub.args:
                        first: ast.AST = sub.args[0]
                        if (
                            isinstance(first, ast.Constant)
                            and isinstance(first.value, str)
                            and first.value in RUNTIME_SECTION_KEYS
                        ):
                            key = first.value
                if key is not None:
                    yield _finding(
                        ctx, sub, "RPR202",
                        f"diagnostics section `{key}` read into a payload "
                        f"field of `{ctor}`; payloads never include "
                        "runtime/diagnostics data",
                    )
