"""AST walking core shared by every rule.

:class:`ModuleContext` wraps one parsed source file with the bookkeeping
rules need over and over: a parent map (``ast`` has none), the dotted
module name (so rules can scope themselves to ``repro.sim`` vs
``repro.service``), dotted-name resolution for attribute chains
(``np.random.default_rng``), enclosing-scope queries, and
``with <...>._lock:`` block detection for the lock-discipline checker.

Everything here is stdlib-only and purely syntactic: no imports of the
checked code ever happen, so the linter can run in a bare interpreter and
can never be confused by import-time side effects.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Union

#: Attribute names treated as mutual-exclusion guards in ``with`` blocks.
LOCK_ATTR_NAMES = frozenset({"_lock", "lock"})

_PARENT_FIELD = "_repro_lint_parent"


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve ``Name``/``Attribute`` chains to a dotted string.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``; anything with
    a non-name base (calls, subscripts) resolves to ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ModuleContext:
    """One source file, parsed once, shared by all rules."""

    def __init__(
        self,
        source: str,
        path: Union[str, Path] = "<source>",
        module: Optional[str] = None,
    ):
        self.path = str(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.path)
        self.module = module if module is not None else self._infer_module()
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                setattr(child, _PARENT_FIELD, parent)

    # -- identity ------------------------------------------------------
    def _infer_module(self) -> str:
        """Dotted module name from the path: the part from the first
        ``repro`` component on (``.../src/repro/sim/bitsim.py`` ->
        ``repro.sim.bitsim``); files outside a ``repro`` tree keep their
        stem so scoped rules simply never match them."""
        parts = list(Path(self.path).with_suffix("").parts)
        if "repro" in parts:
            parts = parts[parts.index("repro"):]
        else:
            parts = parts[-1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def in_package(self, *packages: str) -> bool:
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    # -- navigation ----------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, _PARENT_FIELD, None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def functions(
        self,
    ) -> Iterator[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def calls(self) -> Iterator[ast.Call]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node

    # -- lock blocks ---------------------------------------------------
    @staticmethod
    def _is_lock_expr(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Attribute) and expr.attr in LOCK_ATTR_NAMES:
            return True
        return isinstance(expr, ast.Name) and expr.id in LOCK_ATTR_NAMES

    def is_lock_with(self, node: ast.AST) -> bool:
        """``with self._lock:`` / ``with server._lock:`` style blocks."""
        return isinstance(node, (ast.With, ast.AsyncWith)) and any(
            self._is_lock_expr(item.context_expr) for item in node.items
        )

    def inside_lock(self, node: ast.AST) -> bool:
        return any(self.is_lock_with(anc) for anc in self.ancestors(node))

    def has_lock_blocks(self) -> bool:
        return any(self.is_lock_with(n) for n in ast.walk(self.tree))

    # -- reporting helpers ---------------------------------------------
    def snippet(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""
