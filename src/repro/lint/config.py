"""Rule configuration: scopes, known-boundary sets, and the allowlist.

Two very different kinds of "allow" live here and must not be confused:

* **Structural boundaries** — frozen constants below that *define* the
  invariants (which packages are compute kernels, which numpy attributes
  are host-side, which service module is the declared numeric boundary).
  These are part of the rules themselves: changing them is changing the
  repo's contract and belongs in review.
* **The suppression :class:`Allowlist`** — per-site escape hatches loaded
  from ``--allow`` files or inline ``# lint: allow[CODE]`` comments.  The
  shipped tree carries an **empty** allowlist: ``repro lint src/`` passes
  with zero suppressions, and CI keeps it that way.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Set, Tuple, Union

from .findings import Finding

# --------------------------------------------------------------------------
# R1 — seed discipline (protects PR 3's parallel==serial payload-bit-parity
# and PR 8's spec-hash cache soundness: every payload is a pure function of
# the spec because all randomness flows from derive_seed).
# --------------------------------------------------------------------------

#: The legacy module-level numpy RandomState API: process-global hidden
#: state, unseedable per-experiment, banned everywhere in library code.
LEGACY_NP_RANDOM = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "bytes", "shuffle", "permutation", "normal",
    "uniform", "standard_normal", "binomial", "poisson", "exponential",
    "gamma", "beta", "lognormal", "laplace", "get_state", "set_state",
})

#: Names treated as RNG handles for the truthiness check.
RNG_NAME_RE = re.compile(r"^(rng|.*_rng)$")

# --------------------------------------------------------------------------
# R2 — payload purity (protects the same guarantees from the record side:
# nothing nondeterministic may reach ExperimentRecord payload fields).
# --------------------------------------------------------------------------

#: Dotted call names whose results differ between two runs of the same
#: spec.  Prefix entries ending in ``.`` match a whole namespace.
NONDETERMINISTIC_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow", "date.today",
    "os.getenv", "os.environ.get", "os.getpid", "os.getcwd", "os.uname",
    "socket.gethostname", "socket.getfqdn",
    "uuid.uuid1", "uuid.uuid4",
    "platform.", "secrets.",
})

#: Attribute/subscript keys that mark the *non-payload* diagnostics
#: sections of a record; copying them into payload fields is a violation.
RUNTIME_SECTION_KEYS = frozenset({"runtime", "traces"})

#: Record constructors and which of their arguments are the sanctioned
#: non-payload sinks.  ``cls`` covers classmethod bodies inside the record
#: class itself.  Positional indices are 0-based over the visible args.
RECORD_CONSTRUCTORS = {
    "ExperimentRecord": {"kwargs": {"runtime", "traces"}, "positions": set()},
    "ExperimentRecord.from_run": {"kwargs": {"runtime"}, "positions": {3}},
    "ExperimentRecord.failed": {"kwargs": set(), "positions": set()},
    "cls": {"kwargs": {"runtime", "traces"}, "positions": set()},
}

#: ``cls(...)`` only counts as a record construction inside these classes.
RECORD_CLASSES = frozenset({"ExperimentRecord"})

# --------------------------------------------------------------------------
# R3 — backend discipline (protects PR 7's bit-identity guarantee behind
# the ArrayBackend shim: kernels obtain the array namespace from
# repro.sim.backend; direct numpy use is confined to the host side).
# --------------------------------------------------------------------------

#: Packages whose modules are compute kernels riding the backend shim.
KERNEL_PACKAGES = ("repro.sim", "repro.atpg", "repro.traces")

#: The one module that *is* the numpy boundary: the backend shim itself.
BACKEND_BOUNDARY_MODULES = frozenset({"repro.sim.backend"})

#: Host-side numpy surface kernels may touch directly: dtype constants and
#: annotations, pack/unpack and host staging, index plumbing for the group
#: schedule, and host-side statistics on arrays already brought back via
#: ``backend.to_numpy``.  Deliberately absent: ``matmul``/``einsum``/
#: ``dot``/``tensordot`` (the trace-matmul class of work — must ride
#: ``compiled.backend.xp`` so one flag moves it to GPU), ``linalg``/
#: ``fft``, and file I/O (``save``/``load``/``memmap``).  Growing this set
#: is a reviewed contract change, not a local convenience.
HOST_SIDE_NP_ATTRS = frozenset({
    # dtypes, scalars, annotations
    "ndarray", "dtype", "generic", "integer", "floating",
    "uint8", "uint16", "uint32", "uint64", "int8", "int16", "int32",
    "int64", "intp", "float32", "float64", "bool_", "newaxis", "inf", "nan",
    # the seeded-RNG namespace (R1 governs how it is used)
    "random",
    # pack/unpack and host staging
    "packbits", "unpackbits", "asarray", "ascontiguousarray", "array",
    "atleast_2d", "stack", "concatenate", "arange", "zeros", "ones",
    "full", "empty", "zeros_like", "ones_like", "empty_like", "full_like",
    # schedule/index plumbing
    "where", "flatnonzero", "nonzero", "unique", "searchsorted", "isin",
    "repeat", "diff", "argsort", "lexsort", "split", "cumsum",
    # host-side elementwise/statistics (post to_numpy)
    "clip", "round", "roll", "mean", "std", "var", "abs", "sqrt", "sum",
    "max", "min", "maximum", "minimum", "quantile", "median", "argmax",
    "argmin", "any", "all", "count_nonzero", "isclose", "allclose",
    "array_equal",
    # word-level bit ops: numpy's ufunc protocol dispatches these to the
    # backend when operands live there (see repro.sim.backend docstring)
    "bitwise_xor", "bitwise_or", "bitwise_and", "invert", "left_shift",
    "right_shift",
    # error-state context manager around host reductions
    "errstate",
})

# --------------------------------------------------------------------------
# R4 — service hygiene (protects PR 8's deployability story — the fleet
# service runs on a bare interpreter — and its job-table consistency under
# the ThreadingHTTPServer handler threads).
# --------------------------------------------------------------------------

SERVICE_PACKAGE = "repro.service"

#: The columnar result store is the service's declared numeric boundary:
#: the only service module allowed to import numpy (per-column ``.npy``
#: compaction).  Everything else — server, client, protocol, cache — must
#: import stdlib and repro only, so ``repro serve`` deploys anywhere.
SERVICE_NUMERIC_BOUNDARY = frozenset({"repro.service.store"})

#: Third-party roots the numeric-boundary module may import.
SERVICE_BOUNDARY_IMPORTS = frozenset({"numpy"})

#: Method names that mutate their receiver in place (lock discipline
#: treats ``x.attr.append(...)`` as a store to ``attr``).
MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "pop",
    "popleft", "popitem", "remove", "clear", "update", "setdefault",
    "add", "discard", "sort", "reverse",
})

#: Functions whose bodies run before any thread can see the object.
LOCK_EXEMPT_FUNCTIONS = frozenset({"__init__", "__post_init__", "__new__"})

#: Stdlib roots, for the service import rule.
STDLIB_MODULES = frozenset(sys.stdlib_module_names)


# --------------------------------------------------------------------------
# Suppression allowlist (ships empty)
# --------------------------------------------------------------------------

#: Inline escape hatch: ``some_code()  # lint: allow[RPR302]``.
INLINE_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\[([A-Z0-9_,\s]+)\]")


@dataclass
class Allowlist:
    """Per-site suppressions: ``(path-suffix, code)`` pairs, optionally
    pinned to a line.  Loaded from a file of ``path:CODE`` /
    ``path:line:CODE`` lines (``#`` comments and blanks ignored)."""

    entries: Set[Tuple[str, str, int]] = field(default_factory=set)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "Allowlist":
        entries: Set[Tuple[str, str, int]] = set()
        for lineno, raw in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.rsplit(":", 2)
            if len(parts) == 3 and parts[1].isdigit():
                entries.add((parts[0], parts[2], int(parts[1])))
            elif len(parts) >= 2:
                file_part = ":".join(parts[:-1])
                entries.add((file_part, parts[-1], 0))
            else:
                raise ValueError(
                    f"{path}:{lineno}: allowlist lines are path:CODE or "
                    f"path:line:CODE, got {line!r}"
                )
        return cls(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def allows(self, finding: Finding) -> bool:
        norm = finding.path.replace("\\", "/")
        for file_part, code, line in self.entries:
            if code != finding.code:
                continue
            if line not in (0, finding.line):
                continue
            if norm == file_part or norm.endswith("/" + file_part):
                return True
        return False


def inline_allowed(finding: Finding, source_line: str) -> bool:
    """True when the finding's own line carries ``# lint: allow[CODE]``."""
    match = INLINE_ALLOW_RE.search(source_line)
    if not match:
        return False
    codes = {c.strip() for c in match.group(1).split(",")}
    return finding.code in codes
