"""Finding: one rule violation at one source location.

Findings render in the classic ``file:line: CODE message`` shape that CI
log-scrapers and editors already understand, and carry enough structure
(rule code, column, snippet) for the ``--json`` machine-readable mode that
pre-commit hooks and future tooling consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: sortable by (path, line, col, code) for stable output."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: The offending source line, stripped — context for humans and JSON
    #: consumers without re-reading the file.
    snippet: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }
