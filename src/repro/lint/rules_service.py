"""R4 — service hygiene (RPR401..RPR402).

The fleet service (PR 8) makes two structural promises:

* **Deployability** — ``repro/service/`` runs on a bare interpreter: the
  job-queue server, typed client, wire protocol, and result cache import
  stdlib and repro only.  The columnar :mod:`repro.service.store` is the
  one declared numeric boundary (per-column ``.npy`` compaction needs
  numpy); nothing else in the package may grow a third-party import.
* **Job-table consistency** — :class:`~repro.service.server.FleetServer`
  shares ``_Job`` state between ThreadingHTTPServer handler threads, the
  drain thread, and per-job producer threads; every mutation happens
  inside ``with self._lock:``.

* **RPR401** — non-stdlib, non-repro import in a service module (numpy
  allowed only in the declared store boundary).
* **RPR402** — lock discipline, lightweight and self-calibrating: in any
  module containing ``with <...>._lock:`` blocks, the set of attribute
  names ever *mutated inside* a lock block is the guarded shared state;
  mutating one of those attributes outside a lock block (anywhere but
  ``__init__``-family methods, which run before the object is shared) is
  a violation.  Covers plain stores, augmented stores, subscript stores,
  and in-place container mutations (``x.records.append(...)``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from .config import (
    LOCK_EXEMPT_FUNCTIONS,
    MUTATING_METHODS,
    SERVICE_BOUNDARY_IMPORTS,
    SERVICE_NUMERIC_BOUNDARY,
    SERVICE_PACKAGE,
    STDLIB_MODULES,
)
from .context import ModuleContext
from .findings import Finding
from .registry import rule


def _finding(ctx: ModuleContext, node: ast.AST, code: str, msg: str) -> Finding:
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=msg,
        snippet=ctx.snippet(node),
    )


@rule(
    "RPR401",
    "service modules import stdlib + repro only",
    "fleet-service deployability (PR 8): `repro serve` must run on a bare "
    "interpreter; the columnar store is the only numpy boundary",
)
def check_service_imports(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package(SERVICE_PACKAGE):
        return
    roots: List[Tuple[ast.AST, str]] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            roots.extend((node, alias.name.split(".")[0]) for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            roots.append((node, (node.module or "").split(".")[0]))
    for node, root in roots:
        if not root or root in STDLIB_MODULES or root == "repro":
            continue
        if (
            ctx.module in SERVICE_NUMERIC_BOUNDARY
            and root in SERVICE_BOUNDARY_IMPORTS
        ):
            continue
        yield _finding(
            ctx, node, "RPR401",
            f"third-party import `{root}` in a service module; "
            "repro/service/ is stdlib-only (the columnar store is the "
            "declared numpy boundary)",
        )


# -- RPR402: lock discipline ------------------------------------------------


def _mutated_attr(node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
    """(location, attribute-name) when ``node`` mutates ``<recv>.<attr>``.

    Recognized shapes: ``x.attr = v`` / ``x.attr += v`` / ``x.attr[k] = v``
    and ``x.attr.append(v)``-style in-place container mutation.
    """
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            for t in ast.walk(target):
                if isinstance(t, ast.Attribute):
                    return t, t.attr
                if isinstance(t, ast.Subscript) and isinstance(
                    t.value, ast.Attribute
                ):
                    return t, t.value.attr
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in MUTATING_METHODS and isinstance(
            node.func.value, ast.Attribute
        ):
            return node, node.func.value.attr
    return None


def _in_exempt_function(ctx: ModuleContext, node: ast.AST) -> bool:
    fn = ctx.enclosing_function(node)
    return fn is not None and fn.name in LOCK_EXEMPT_FUNCTIONS


@rule(
    "RPR402",
    "shared-state mutation outside the lock",
    "job-table consistency (PR 8): handler/drain/producer threads mutate "
    "FleetServer job state only inside `with self._lock:`",
)
def check_lock_discipline(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.has_lock_blocks():
        return
    # Pass 1: attribute names mutated under a lock anywhere in the module
    # define the guarded shared state.
    guarded: Set[str] = set()
    for node in ast.walk(ctx.tree):
        mut = _mutated_attr(node)
        if mut is not None and ctx.inside_lock(node):
            guarded.add(mut[1])
    if not guarded:
        return
    # Pass 2: mutations of guarded attributes outside any lock block.
    seen: Set[Tuple[int, int, str]] = set()
    for node in ast.walk(ctx.tree):
        mut = _mutated_attr(node)
        if mut is None:
            continue
        loc, attr = mut
        if attr not in guarded or ctx.inside_lock(node):
            continue
        if _in_exempt_function(ctx, node):
            continue
        key = (getattr(loc, "lineno", 0), getattr(loc, "col_offset", 0), attr)
        if key in seen:
            continue
        seen.add(key)
        yield _finding(
            ctx, loc, "RPR402",
            f"`{attr}` is lock-guarded shared state (mutated under "
            "`_lock` elsewhere in this module) but is mutated here "
            "outside any `with self._lock:` block",
        )
