"""``repro lint`` / ``python -m repro.lint`` — the CLI reporter.

Walks the given paths (default ``src/``), parses every ``*.py`` file,
runs the registered rules, filters the suppression allowlist (``--allow``
file plus inline ``# lint: allow[CODE]`` comments), and reports:

* default: one ``file:line: CODE message`` line per finding (the format
  CI consumes), a summary line, exit status 1 on any finding;
* ``--json``: a machine-readable document (rule, path, line, col,
  message, snippet) for pre-commit hooks and future tooling;
* ``--list-rules``: every rule code with the guarantee it protects.

A file that does not parse is itself a finding (``RPR000``) — the linter
gates CI and must never silently skip unreadable code.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .config import Allowlist, inline_allowed
from .context import ModuleContext
from .findings import Finding
from .registry import RULES, run_rules

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "node_modules"}


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    yield sub


def lint_file(
    path: Path, select: Optional[Sequence[str]] = None
) -> Tuple[List[Finding], Optional[ModuleContext]]:
    """All raw findings for one file (allowlist filtering is the caller's)."""
    source = path.read_text(encoding="utf-8")
    try:
        ctx = ModuleContext(source, path=path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=str(path),
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    code="RPR000",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            None,
        )
    return run_rules(ctx, select=select), ctx


def lint_paths(
    paths: Sequence[Path],
    allowlist: Optional[Allowlist] = None,
    select: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """(surviving findings, files checked) over a path set."""
    allowlist = allowlist if allowlist is not None else Allowlist()
    findings: List[Finding] = []
    n_files = 0
    for path in iter_python_files(paths):
        n_files += 1
        file_findings, ctx = lint_file(path, select=select)
        for finding in file_findings:
            if allowlist.allows(finding):
                continue
            if ctx is not None and 1 <= finding.line <= len(ctx.lines):
                if inline_allowed(finding, ctx.lines[finding.line - 1]):
                    continue
            findings.append(finding)
    return sorted(findings), n_files


def _default_paths() -> List[Path]:
    src = Path("src")
    return [src] if src.is_dir() else [Path(".")]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checker: seed discipline, payload "
        "purity, backend routing, service lock/import hygiene",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories (default: src/)"
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit machine-readable findings (rule, path, line, snippet)",
    )
    parser.add_argument(
        "--allow", metavar="FILE", default=None,
        help="suppression allowlist (path:CODE or path:line:CODE lines); "
        "the shipped tree needs none",
    )
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule code, name, and the guarantee it protects",
    )
    return parser


def run_lint(
    paths: Sequence[str],
    as_json: bool = False,
    allow: Optional[str] = None,
    select: Optional[str] = None,
    out=None,
) -> int:
    out = out if out is not None else sys.stdout
    allowlist = Allowlist.from_file(allow) if allow else Allowlist()
    selected = (
        [c.strip() for c in select.split(",") if c.strip()] if select else None
    )
    if selected:
        unknown = [c for c in selected if c not in RULES and c != "RPR000"]
        if unknown:
            print(f"error: unknown rule code(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    resolved = [Path(p) for p in paths] if paths else _default_paths()
    missing = [p for p in resolved if not p.exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2
    findings, n_files = lint_paths(resolved, allowlist=allowlist, select=selected)
    if as_json:
        out.write(json.dumps(
            {
                "version": 1,
                "checked_files": n_files,
                "findings": [f.to_dict() for f in findings],
            },
            indent=2, sort_keys=True,
        ) + "\n")
    else:
        for finding in findings:
            out.write(finding.format() + "\n")
        out.write(
            f"repro lint: {len(findings)} finding(s) in {n_files} file(s)\n"
        )
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rl in RULES.values():
            print(f"{rl.code}  {rl.name}")
            print(f"        {rl.rationale}")
        return 0
    return run_lint(
        args.paths, as_json=args.as_json, allow=args.allow, select=args.select
    )
