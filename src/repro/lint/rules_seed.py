"""R1 — seed discipline (RPR101..RPR103).

All randomness in this repo flows from one master seed through
``derive_seed``/``SeedSequence`` — that is what makes parallel and serial
campaign runs payload-bit-identical (PR 3) and what makes the fleet
service's spec-hash result cache sound (PR 8: a payload is a pure function
of its spec, so no cell is ever computed twice).  Three ways the codebase
has historically leaked entropy around that funnel, now machine-checked:

* **RPR101** — the legacy module-level ``np.random.*`` API (hidden
  process-global state, unseedable per experiment).
* **RPR102** — argless ``default_rng()`` (fresh OS entropy) and stdlib
  ``random`` imports in library code.
* **RPR103** — ``rng`` truthiness defaults (``rng = rng or ...``): the
  exact ``rng or``-bug class PR 7 had to hand-sweep across five packages.
  A Generator is always truthy and an ndarray raises, so truthiness is
  never the None-check it pretends to be; the idiom is ``if rng is None``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .config import LEGACY_NP_RANDOM, RNG_NAME_RE
from .context import ModuleContext, dotted_name
from .findings import Finding
from .registry import rule

#: Both the conventional alias and the full module path.
_NP_RANDOM_PREFIXES = ("np.random.", "numpy.random.")


def _finding(ctx: ModuleContext, node: ast.AST, code: str, msg: str) -> Finding:
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=msg,
        snippet=ctx.snippet(node),
    )


@rule(
    "RPR101",
    "legacy np.random global-state API",
    "payload-bit-parity (PR 3) / cache soundness (PR 8): module-level "
    "numpy RNG state cannot be derived from the experiment seed",
)
def check_legacy_np_random(ctx: ModuleContext) -> Iterator[Finding]:
    for call in ctx.calls():
        name = dotted_name(call.func)
        if name is None:
            continue
        for prefix in _NP_RANDOM_PREFIXES:
            if name.startswith(prefix):
                fn = name[len(prefix):]
                if fn in LEGACY_NP_RANDOM:
                    yield _finding(
                        ctx, call, "RPR101",
                        f"legacy global-state RNG call `{name}`; construct a "
                        "seeded Generator instead: "
                        "`np.random.default_rng(derive_seed(seed, idx))`",
                    )


@rule(
    "RPR102",
    "unseeded entropy source in library code",
    "payload-bit-parity (PR 3) / cache soundness (PR 8): fresh OS entropy "
    "makes the same spec produce different payloads",
)
def check_unseeded_entropy(ctx: ModuleContext) -> Iterator[Finding]:
    for call in ctx.calls():
        name = dotted_name(call.func)
        if name is None:
            continue
        if (
            name in ("np.random.default_rng", "numpy.random.default_rng")
            and not call.args
            and not call.keywords
        ):
            yield _finding(
                ctx, call, "RPR102",
                "argless `default_rng()` draws fresh OS entropy; seed it "
                "(via `derive_seed`/`SeedSequence`, or a documented "
                "deterministic default)",
            )
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    yield _finding(
                        ctx, node, "RPR102",
                        "stdlib `random` is process-global unseeded state; "
                        "use `np.random.default_rng(derive_seed(...))`",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and (node.module or "").split(".")[0] == "random":
                yield _finding(
                    ctx, node, "RPR102",
                    "stdlib `random` is process-global unseeded state; "
                    "use `np.random.default_rng(derive_seed(...))`",
                )


def _is_rng_name(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and RNG_NAME_RE.match(node.id) is not None


@rule(
    "RPR103",
    "rng truthiness default",
    "the PR 7 `rng or`-bug class: Generators are always truthy and arrays "
    "raise, so truthiness is not a None check",
)
def check_rng_truthiness(ctx: ModuleContext) -> Iterator[Finding]:
    def fixit(name: str) -> str:
        return (
            f"`{name}` used as a boolean; default it with "
            f"`if {name} is None:` — truthiness is not a None check"
        )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                if _is_rng_name(value):
                    yield _finding(ctx, value, "RPR103", fixit(value.id))
        elif isinstance(node, (ast.If, ast.While, ast.IfExp)):
            test = node.test
            if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
                test = test.operand
            if _is_rng_name(test):
                yield _finding(ctx, node.test, "RPR103", fixit(test.id))
