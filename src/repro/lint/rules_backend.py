"""R3 — backend discipline (RPR301..RPR302).

PR 7 put the compiled engine behind :mod:`repro.sim.backend`: one flag
moves bitsim, seqsim, PPSFP fault batches, toggle tensors, and the trace
matmul onto CuPy, and the numpy path stays bit-identical (pinned CI leg).
That only holds while kernels obtain the array namespace from the compiled
form (``compiled.backend.xp``) instead of hard-wiring numpy.  Direct
``np.`` use in kernel packages is confined to the *host side*: dtype
constants and annotations, pack/unpack (packing is deliberately host-bound
— ``np.packbits`` is memory-bound there), schedule/index plumbing, and
statistics on arrays already brought back via ``backend.to_numpy``.

* **RPR301** — import shape: kernel modules must spell numpy exactly
  ``import numpy as np``.  ``from numpy import ...`` and other aliases
  hide numpy touchpoints from this analyzer and from reviewers.
* **RPR302** — ``np.<attr>`` outside the explicit host-side surface
  (:data:`~repro.lint.config.HOST_SIDE_NP_ATTRS`).  ``np.matmul`` /
  ``einsum`` / ``linalg`` / file I/O are the canonical violations: that
  work must ride the backend namespace so the GPU flag keeps meaning
  something.  The backend shim itself (``repro.sim.backend``) is the one
  declared boundary module and is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .config import (
    BACKEND_BOUNDARY_MODULES,
    HOST_SIDE_NP_ATTRS,
    KERNEL_PACKAGES,
)
from .context import ModuleContext, dotted_name
from .findings import Finding
from .registry import rule


def _in_kernel_scope(ctx: ModuleContext) -> bool:
    return (
        ctx.in_package(*KERNEL_PACKAGES)
        and ctx.module not in BACKEND_BOUNDARY_MODULES
    )


def _finding(ctx: ModuleContext, node: ast.AST, code: str, msg: str) -> Finding:
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=msg,
        snippet=ctx.snippet(node),
    )


@rule(
    "RPR301",
    "numpy import shape in kernel modules",
    "backend bit-identity (PR 7): every numpy touchpoint in a kernel must "
    "be visible as `np.<attr>` to reviewers and to RPR302",
)
def check_numpy_import_shape(ctx: ModuleContext) -> Iterator[Finding]:
    if not _in_kernel_scope(ctx):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] != "numpy":
                    continue
                if alias.name == "numpy" and alias.asname == "np":
                    continue
                yield _finding(
                    ctx, node, "RPR301",
                    f"kernel modules import numpy exactly as `import numpy "
                    f"as np`, not `import {alias.name}"
                    + (f" as {alias.asname}`" if alias.asname else "`"),
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and (node.module or "").split(".")[0] == "numpy":
                yield _finding(
                    ctx, node, "RPR301",
                    "`from numpy import ...` hides numpy touchpoints in a "
                    "kernel module; use `import numpy as np` and qualify",
                )


@rule(
    "RPR302",
    "non-host-side numpy use in kernel modules",
    "backend bit-identity / GPU routing (PR 7): device-path work must "
    "obtain its array namespace from repro.sim.backend (compiled.backend.xp)",
)
def check_host_side_surface(ctx: ModuleContext) -> Iterator[Finding]:
    if not _in_kernel_scope(ctx):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Attribute):
            continue
        if not (isinstance(node.value, ast.Name) and node.value.id == "np"):
            continue
        if node.attr in HOST_SIDE_NP_ATTRS:
            continue
        yield _finding(
            ctx, node, "RPR302",
            f"`np.{node.attr}` is outside the host-side numpy surface for "
            "kernel modules; route it through the compiled form's backend "
            "namespace (`compiled.backend.xp`) or, if it is genuinely "
            "host-side, extend HOST_SIDE_NP_ATTRS in review",
        )
