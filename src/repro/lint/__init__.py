"""``repro.lint`` — AST-based checker for the repo's standing invariants.

Every headline guarantee this reproduction makes rests on code-shape
invariants that used to be enforced by reviewer vigilance alone.  This
package machine-checks them over ``src/`` as ``repro lint`` (or
``python -m repro.lint``), with one stable code per rule:

=========  ==============================================================
``RPR000`` file does not parse (the linter never silently skips code)
``RPR101`` legacy ``np.random.*`` global-state API call
``RPR102`` argless ``default_rng()`` / stdlib ``random`` import
``RPR103`` ``rng`` truthiness default (use ``if rng is None``)
``RPR201`` nondeterministic value flows into a record payload field
``RPR202`` ``runtime``/``traces`` diagnostics read back into a payload
``RPR301`` kernel module imports numpy other than ``import numpy as np``
``RPR302`` kernel ``np.<attr>`` outside the host-side surface
``RPR401`` third-party import in the stdlib-only service package
``RPR402`` lock-guarded shared state mutated outside ``with self._lock:``
=========  ==============================================================

R1 (101-103) protects seed discipline — all randomness flows from
``derive_seed``, the root of PR 3's parallel==serial payload-bit-parity.
R2 (201-202) protects payload purity — the soundness condition of PR 8's
fleet-wide spec-hash result cache.  R3 (301-302) protects PR 7's backend
bit-identity: kernels obtain their array namespace from
``repro.sim.backend``.  R4 (401-402) protects the fleet service's
stdlib-only deployability and its job-table lock discipline.

The checker is purely syntactic (stdlib ``ast``; checked code is never
imported) and ships with an **empty** suppression allowlist: the tree
passes with zero findings and CI keeps it that way.  Escape hatches for
the future: ``--allow`` files and inline ``# lint: allow[CODE]`` comments.

Programmatic use::

    from repro.lint import lint_source, lint_paths

    findings = lint_source(code, module="repro.sim.example")
    findings, n_files = lint_paths([Path("src")])
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from .config import Allowlist
from .context import ModuleContext
from .findings import Finding
from .registry import RULES, Rule, run_rules

# Importing the rule modules registers their checks.
from . import rules_seed  # noqa: F401,E402  (registration side effect)
from . import rules_payload  # noqa: F401,E402
from . import rules_backend  # noqa: F401,E402
from . import rules_service  # noqa: F401,E402

from .cli import lint_file, lint_paths, main, run_lint  # noqa: E402


def lint_source(
    source: str,
    module: Optional[str] = None,
    path: Union[str, Path] = "<source>",
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint an in-memory source string (the fixture-test entry point).

    ``module`` sets the dotted module name scoped rules key on (e.g.
    ``"repro.sim.example"`` puts the fixture inside the kernel scope);
    when omitted it is inferred from ``path``.
    """
    ctx = ModuleContext(source, path=path, module=module)
    return run_rules(ctx, select=select)


__all__ = [
    "Allowlist",
    "Finding",
    "ModuleContext",
    "RULES",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "run_lint",
    "run_rules",
]
