"""Rule registry: codes, rationales, and the dispatch loop.

Every rule is a function ``check(ctx) -> Iterator[Finding]`` registered
under a stable ``RPRxxx`` code with a one-line name and the rationale
naming the PR-era guarantee it protects.  ``run_rules`` executes a
(filtered) set of rules over one :class:`~repro.lint.context.ModuleContext`
and returns sorted findings; allowlist filtering happens in the CLI layer
so programmatic callers always see the raw truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from .context import ModuleContext
from .findings import Finding

CheckFn = Callable[[ModuleContext], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    #: Which guarantee this rule protects (shown by ``--list-rules``).
    rationale: str
    check: CheckFn


#: All registered rules, keyed by code (insertion-ordered).
RULES: Dict[str, Rule] = {}


def rule(code: str, name: str, rationale: str) -> Callable[[CheckFn], CheckFn]:
    """Register a check function under ``code``; re-registration is a bug."""

    def decorate(fn: CheckFn) -> CheckFn:
        if code in RULES:
            raise ValueError(f"duplicate lint rule code {code}")
        RULES[code] = Rule(code=code, name=name, rationale=rationale, check=fn)
        return fn

    return decorate


def run_rules(
    ctx: ModuleContext, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """All findings for one module, sorted by location then code."""
    selected = set(select) if select is not None else None
    findings: List[Finding] = []
    for code, rl in RULES.items():
        if selected is not None and code not in selected:
            continue
        findings.extend(rl.check(ctx))
    return sorted(findings)
