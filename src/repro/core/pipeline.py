"""End-to-end TrojanZero flow (Fig. 2): thresholds → salvage → insertion.

:class:`TrojanZeroPipeline` glues the three phases together and produces a
:class:`TrojanZeroResult` carrying everything Table I / Fig. 7 report: the
HT-free, modified, and TZ-infected circuits with their power/area
characterizations, candidate/expendable counts, the inserted design, and the
trigger probability Pft.

Every simulation in the flow — threshold fault-sims, salvage's functional
trials, the sequential functional tests of the infected N'', and the
Monte-Carlo Pft sessions — runs on the compiled levelized engine of
:mod:`repro.sim.compiled`, sharing schedules across circuit copies through
the structural-fingerprint cache (salvage's edit/revert trials compile by
patching, not from cold).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from ..netlist.circuit import Circuit
from ..power.analysis import PowerDelta, PowerReport
from ..power.library import CellLibrary
from ..power.tech65 import tech65_library
from ..trojan.counter import CounterTrojanInstance
from ..trojan.library import TrojanDesign, default_trojan_library
from ..trojan.trigger import TriggerReport, trigger_report
from .insertion import InsertionConfig, InsertionResult, insert_trojan_zero
from .salvage import SalvageResult, salvage
from .thresholds import DefenderModel, ThresholdReport, compute_thresholds


def derive_seed(seed: int, index: int) -> int:
    """Deterministic sub-seed ``index`` of a master ``seed``.

    One master seed must reach several independent RNG consumers (ATPG
    pattern fill, bespoke defender vectors, Monte-Carlo Pft sessions,
    detector variation models); spawning through :class:`numpy.random.
    SeedSequence` keeps the streams statistically independent while staying
    reproducible across processes.
    """
    return int(np.random.SeedSequence([seed, index]).generate_state(1)[0])


#: Fixed sub-seed indices of a master experiment seed.
SEED_ATPG = 0
SEED_BESPOKE = 1
SEED_TRIGGER_MC = 2
SEED_DETECT = 3


@dataclass
class TrojanZeroResult:
    """Everything one benchmark run produces."""

    benchmark: str
    p_threshold: float
    thresholds: ThresholdReport
    salvage: SalvageResult
    insertion: InsertionResult
    trigger: Optional[TriggerReport]

    # ------------------------------------------------------------------
    @property
    def success(self) -> bool:
        return self.insertion.success

    @property
    def power_free(self) -> PowerReport:
        """P/A of the HT-free circuit N."""
        return self.thresholds.power

    @property
    def power_modified(self) -> PowerReport:
        """P/A of the modified circuit N'."""
        return self.salvage.power_after

    @property
    def power_infected(self) -> Optional[PowerReport]:
        """P/A of the TZ-infected circuit N''."""
        return self.insertion.power_infected

    @property
    def delta_tz(self) -> Optional[PowerDelta]:
        """ΔP(TZ)/ΔA(TZ) = N − N'' (the paper's zero-footprint metric)."""
        return self.insertion.delta_tz

    @property
    def pft(self) -> Optional[float]:
        return self.trigger.pft_analytic if self.trigger else None

    def summary(self) -> str:
        """Human-readable run summary (Table-I-row style)."""
        n = self.power_free
        np_ = self.power_modified
        stats = self.salvage.compile_stats
        lines = [
            f"TrojanZero on {self.benchmark} (Pth = {self.p_threshold}):",
            f"  candidates |C| = {self.salvage.candidate_count}, "
            f"expendable Eg = {self.salvage.expendable_gates}",
            f"  salvage compiles: {stats.get('full_compiles', 0)} full, "
            f"{stats.get('patched_compiles', 0)} patched, "
            f"{stats.get('fingerprint_hits', 0)} fingerprint hits",
            f"  N : total {n.total_uw:8.2f} uW  area {n.area_ge:8.1f} GE",
            f"  N': total {np_.total_uw:8.2f} uW  area {np_.area_ge:8.1f} GE",
        ]
        if self.success:
            nn = self.power_infected
            d = self.delta_tz
            lines.append(
                f"  N'': total {nn.total_uw:8.2f} uW  area {nn.area_ge:8.1f} GE"
                f"  (HT: {self.insertion.design.name} on {self.insertion.victim})"
            )
            lines.append(
                f"  dTZ: total {d.total_uw:+.3f} uW  dynamic {d.dynamic_uw:+.3f} uW  "
                f"leakage {d.leakage_uw:+.4f} uW  area {d.area_ge:+.2f} GE"
            )
            if self.pft is not None:
                lines.append(f"  Pft = {self.pft:.3e}")
        else:
            lines.append("  insertion FAILED — see attempts log")
        return "\n".join(lines)


@dataclass
class TrojanZeroPipeline:
    """Configured end-to-end flow."""

    library: CellLibrary
    defender: DefenderModel = field(default_factory=DefenderModel)
    insertion_config: InsertionConfig = field(default_factory=InsertionConfig)

    @classmethod
    def default(cls) -> "TrojanZeroPipeline":
        """Pipeline with the shared 65nm-class library and default defender."""
        return cls(library=tech65_library())

    def run(
        self,
        circuit: Circuit,
        p_threshold: float,
        designs: Optional[Sequence[TrojanDesign]] = None,
        counter_bits: Optional[int] = None,
        max_candidates: Optional[int] = None,
        monte_carlo_sessions: int = 0,
        seed: Optional[int] = None,
    ) -> TrojanZeroResult:
        """Run the full TrojanZero flow on one HT-free circuit.

        Parameters
        ----------
        p_threshold:
            Algorithm 1's Pth (paper Table I gives per-benchmark values).
        counter_bits:
            Restrict the HT library to the n-bit counter design (Table I
            fixes the counter size per benchmark); default tries the whole
            library, largest first.
        seed:
            Master seed reaching every RNG draw of the run (ATPG, bespoke
            defender vectors, Monte-Carlo Pft sessions) via
            :func:`derive_seed`.  ``None`` keeps the legacy per-module fixed
            seeds, reproducing historical results exactly.
        """
        defender = self.defender
        trigger_rng: Optional[np.random.Generator] = None
        if seed is not None:
            defender = replace(
                defender,
                atpg=replace(defender.atpg, seed=derive_seed(seed, SEED_ATPG)),
                random_seed=derive_seed(seed, SEED_BESPOKE),
            )
            trigger_rng = np.random.default_rng(derive_seed(seed, SEED_TRIGGER_MC))
        thresholds = compute_thresholds(circuit, self.library, defender)
        salvage_result = salvage(
            thresholds.circuit,
            thresholds.pattern_sets,
            self.library,
            p_threshold,
            power_before=thresholds.power,
            max_candidates=max_candidates,
        )
        if designs is None:
            if counter_bits is not None:
                designs = [TrojanDesign(f"counter{counter_bits}", "counter", counter_bits)]
            else:
                designs = default_trojan_library()
        insertion = insert_trojan_zero(
            salvage_result,
            thresholds.circuit,
            thresholds.pattern_sets,
            thresholds.power,
            self.library,
            designs=designs,
            config=self.insertion_config,
            session_vectors=thresholds.n_test_vectors,
        )
        trig: Optional[TriggerReport] = None
        if insertion.success and isinstance(insertion.instance, CounterTrojanInstance):
            trig = trigger_report(
                insertion.infected,
                insertion.instance,
                n_test_vectors=thresholds.n_test_vectors,
                monte_carlo_sessions=monte_carlo_sessions,
                rng=trigger_rng,
            )
        return TrojanZeroResult(
            benchmark=circuit.name,
            p_threshold=p_threshold,
            thresholds=thresholds,
            salvage=salvage_result,
            insertion=insertion,
            trigger=trig,
        )
