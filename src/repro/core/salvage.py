"""Algorithm 1: Salvaging Power and Area.

Given the verified HT-free circuit ``N`` and the defender's test patterns,
find the candidate set ``C`` of nodes with near-constant signal probability
(``P ≥ Pth`` for either polarity), try tying each candidate to its dominant
constant, dead-strip the fan-in logic this strands, and keep each edit only
if *every* defender pattern set still passes.  The freed power and area are
the salvaged budget for HT insertion.

The edit/revert loop leans on the structural compile cache of
:mod:`repro.sim.compiled`: ``work.copy()`` shares the current compiled
schedule, each tie/strip trial compiles by *patching* its ancestor's
schedule instead of recompiling cold, and reverting (discarding the trial)
costs nothing because ``work`` keeps its attached form.
:attr:`SalvageResult.compile_stats` records the cache behaviour of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from ..netlist.transform import strip_dead_logic, tie_net_to_constant
from ..power.analysis import PowerDelta, PowerReport, analyze
from ..power.library import CellLibrary
from ..prob.propagate import rare_nodes, signal_probabilities
from ..sim.compiled import COMPILE_STATS
from ..sim.equivalence import functional_test


@dataclass(frozen=True)
class RemovalRecord:
    """Outcome of trying one candidate gate."""

    net: str
    p_one: float
    tied_value: int
    accepted: bool
    #: Gates dead-stripped as a consequence (empty when rejected).
    stripped_gates: Tuple[str, ...] = ()
    reason: str = ""


@dataclass
class SalvageResult:
    """Output of Algorithm 1."""

    original: Circuit
    modified: Circuit
    p_threshold: float
    candidates: List[Tuple[str, float]]
    removals: List[RemovalRecord]
    power_before: PowerReport
    power_after: PowerReport
    #: Compile-cache counter deltas over this run (full/patched/fingerprint/
    #: attached — see ``repro.sim.compiled.COMPILE_STATS``).
    compile_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def candidate_count(self) -> int:
        """|C| — paper Table I column C."""
        return len(self.candidates)

    @property
    def expendable_gates(self) -> int:
        """Eg — logic gates actually salvaged (removed or constant-tied)."""
        before = self.original.num_logic_gates
        after = sum(
            1 for g in self.modified.logic_gates() if not g.is_constant
        )
        ties_preexisting = sum(1 for g in self.original.logic_gates() if g.is_constant)
        return before - ties_preexisting - after

    @property
    def delta(self) -> PowerDelta:
        """ΔP / ΔA — the salvaged budget."""
        return self.power_before.delta(self.power_after)

    def accepted_removals(self) -> List[RemovalRecord]:
        return [r for r in self.removals if r.accepted]


def salvage(
    circuit: Circuit,
    pattern_sets: Sequence[np.ndarray],
    library: CellLibrary,
    p_threshold: float,
    power_before: Optional[PowerReport] = None,
    max_candidates: Optional[int] = None,
) -> SalvageResult:
    """Run Algorithm 1.

    Parameters
    ----------
    circuit:
        The verified HT-free circuit ``N`` (not mutated).
    pattern_sets:
        The defender's q testing algorithms' pattern arrays; an edit is kept
        only if all of them pass (Algorithm 1 lines 17-22).
    p_threshold:
        The attacker-specified ``Pth``; candidates have ``P(=1) ≥ Pth`` or
        ``P(=0) ≥ Pth``.
    max_candidates:
        Optional cap on how many candidates are attempted (largest extremity
        first), for bounded-effort runs.
    """
    stats_before = COMPILE_STATS.snapshot()
    golden = circuit.copy()
    work = circuit.copy(f"{circuit.name}_mod")
    if power_before is None:
        power_before = analyze(circuit, library)

    candidates = rare_nodes(work, p_threshold)
    if max_candidates is not None:
        candidates = candidates[:max_candidates]

    removals: List[RemovalRecord] = []
    for net, p_one in candidates:
        if not work.has_net(net):
            removals.append(
                RemovalRecord(net, p_one, -1, False, reason="already stripped")
            )
            continue
        gate = work.gate(net)
        if gate.is_constant or gate.is_input:
            removals.append(
                RemovalRecord(net, p_one, -1, False, reason="not a logic gate")
            )
            continue
        tied_value = 1 if p_one >= 0.5 else 0

        trial = work.copy()
        tie_net_to_constant(trial, net, tied_value)
        stripped = strip_dead_logic(trial)
        if functional_test(trial, golden, pattern_sets):
            work = trial
            removals.append(
                RemovalRecord(
                    net,
                    p_one,
                    tied_value,
                    True,
                    stripped_gates=tuple(stripped),
                    reason="passed all defender tests",
                )
            )
        else:
            removals.append(
                RemovalRecord(
                    net,
                    p_one,
                    tied_value,
                    False,
                    reason="defender test pattern detected the edit",
                )
            )

    power_after = analyze(work, library)
    return SalvageResult(
        original=circuit,
        modified=work,
        p_threshold=p_threshold,
        candidates=candidates,
        removals=removals,
        power_before=power_before,
        power_after=power_after,
        compile_stats=COMPILE_STATS.delta_since(stats_before),
    )
