"""Phase A of the TrojanZero flow (Fig. 2, Sec. II-A).

Verify the HT-free circuit, generate the defender's test patterns (stuck-at
ATPG plus optional bespoke random vectors), synthesize/characterize it, and
freeze the power and area *thresholds* that every later phase must respect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..atpg.generate import AtpgConfig, TestSet, generate_test_set
from ..atpg.random_patterns import flat_random_vectors
from ..netlist.circuit import Circuit
from ..netlist.validate import assert_valid
from ..power.analysis import PowerReport, analyze
from ..power.library import CellLibrary
from ..power.synthesis import optimize_netlist


@dataclass
class DefenderModel:
    """What the attacker knows about the defender's testing (attack model 2).

    The paper's attacker "acquires the knowledge of specific testing
    techniques that are used by the defender" — here, the ATPG effort knobs
    and how many bespoke random vectors are applied.

    The default profile models a production functional-test program: SCOAP
    easiest-first ordering, a moderate per-fault abort limit, sign-off at 97%
    stuck-at coverage, and a 64-vector pattern budget — the regime in which
    rare-excitation faults are the ones left uncovered (see AtpgConfig).
    """

    atpg: AtpgConfig = field(
        default_factory=lambda: AtpgConfig(
            backtrack_limit=20,
            random_blocks=4,
            target_coverage=0.97,
            max_patterns=64,
        )
    )
    n_random_vectors: int = 256
    random_seed: int = 7


@dataclass
class ThresholdReport:
    """Output of Phase A: the frozen baseline the attack must not exceed."""

    circuit: Circuit
    power: PowerReport
    test_set: TestSet
    #: The defender's q "testing algorithms" the attacker KNOWS (attack model
    #: assumption 2) — the ATPG stuck-at pattern sets.  Algorithms 1 and 2
    #: verify edits against these.
    pattern_sets: List[np.ndarray] = field(default_factory=list)
    #: Bespoke random vectors the defender may additionally apply and the
    #: attacker does NOT know (paper Sec. IV).  Never used for edit
    #: acceptance; only for post-hoc exposure evaluation (Pft / Pu).
    bespoke_sets: List[np.ndarray] = field(default_factory=list)

    @property
    def n_test_vectors(self) -> int:
        """Total defender session length (known + bespoke vectors)."""
        known = sum(int(p.shape[0]) for p in self.pattern_sets)
        bespoke = sum(int(p.shape[0]) for p in self.bespoke_sets)
        return known + bespoke


def compute_thresholds(
    circuit: Circuit,
    library: CellLibrary,
    defender: Optional[DefenderModel] = None,
    optimize: bool = True,
) -> ThresholdReport:
    """Run Phase A on the HT-free circuit ``N``.

    Returns the verified circuit (optionally synthesis-cleaned), its
    :class:`~repro.power.analysis.PowerReport` (the thresholds), the
    defender's ATPG test set, and the full list of defender pattern sets.
    """
    defender = defender or DefenderModel()
    assert_valid(circuit)
    baseline = optimize_netlist(circuit) if optimize else circuit.copy()
    assert_valid(baseline)

    test_set = generate_test_set(baseline, defender.atpg)
    pattern_sets: List[np.ndarray] = []
    if test_set.patterns.size:
        pattern_sets.append(test_set.patterns)
    bespoke_sets: List[np.ndarray] = []
    if defender.n_random_vectors > 0:
        rng = np.random.default_rng(defender.random_seed)
        bespoke_sets.append(
            flat_random_vectors(defender.n_random_vectors, len(baseline.inputs), rng)
        )

    power = analyze(baseline, library)
    return ThresholdReport(
        circuit=baseline,
        power=power,
        test_set=test_set,
        pattern_sets=pattern_sets,
        bespoke_sets=bespoke_sets,
    )
