"""The paper's contribution: thresholds, Algorithm 1, Algorithm 2, pipeline."""

from .insertion import (
    InsertionConfig,
    InsertionResult,
    PlacementAttempt,
    insert_trojan_zero,
    rank_trigger_sources,
    rank_victims,
)
from .pipeline import TrojanZeroPipeline, TrojanZeroResult, derive_seed
from .report import TableRow, format_row, format_table
from .salvage import RemovalRecord, SalvageResult, salvage
from .thresholds import DefenderModel, ThresholdReport, compute_thresholds

__all__ = [
    "DefenderModel",
    "ThresholdReport",
    "compute_thresholds",
    "SalvageResult",
    "RemovalRecord",
    "salvage",
    "InsertionConfig",
    "InsertionResult",
    "PlacementAttempt",
    "insert_trojan_zero",
    "rank_victims",
    "rank_trigger_sources",
    "TrojanZeroPipeline",
    "TrojanZeroResult",
    "derive_seed",
    "TableRow",
    "format_row",
    "format_table",
]
