"""Table-I-style reporting for TrojanZero runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .pipeline import TrojanZeroResult


@dataclass(frozen=True)
class TableRow:
    """One row of the paper's Table I."""

    circuit: str
    gates: int
    inputs: int
    p_threshold: float
    candidates: int
    expendable: int
    ht_design: str
    power_free_uw: float
    power_modified_uw: float
    power_infected_uw: Optional[float]
    area_free_ge: float
    area_modified_ge: float
    area_infected_ge: Optional[float]
    pft: Optional[float]

    @classmethod
    def from_result(cls, result: TrojanZeroResult) -> "TableRow":
        circuit = result.thresholds.circuit
        infected_power = result.power_infected
        return cls(
            circuit=result.benchmark,
            gates=result.salvage.original.num_logic_gates,
            inputs=len(circuit.inputs),
            p_threshold=result.p_threshold,
            candidates=result.salvage.candidate_count,
            expendable=result.salvage.expendable_gates,
            ht_design=result.insertion.design.name if result.success else "-",
            power_free_uw=result.power_free.total_uw,
            power_modified_uw=result.power_modified.total_uw,
            power_infected_uw=infected_power.total_uw if infected_power else None,
            area_free_ge=result.power_free.area_ge,
            area_modified_ge=result.power_modified.area_ge,
            area_infected_ge=infected_power.area_ge if infected_power else None,
            pft=result.pft,
        )

    @classmethod
    def from_record(cls, record) -> "TableRow":
        """Row from a serialized :class:`repro.api.ExperimentRecord`.

        Duck-typed (record attributes only) so the core reporting layer does
        not import the api layer that sits above it.
        """
        free = record.power["free"]
        modified = record.power["modified"]
        infected = record.power.get("infected")
        return cls(
            circuit=record.benchmark,
            gates=record.gates,
            inputs=record.inputs,
            p_threshold=record.spec.pth,
            candidates=record.candidates,
            expendable=record.expendable,
            ht_design=record.design if record.design else "-",
            power_free_uw=free["total_uw"],
            power_modified_uw=modified["total_uw"],
            power_infected_uw=infected["total_uw"] if infected else None,
            area_free_ge=free["area_ge"],
            area_modified_ge=modified["area_ge"],
            area_infected_ge=infected["area_ge"] if infected else None,
            pft=record.pft,
        )


_HEADER = (
    "Circuit  Gates  I/P   Pth     C   Eg  HT        "
    "P(N)     P(N')    P(N'')   A(N)    A(N')   A(N'')  Pft"
)


def format_row(row: TableRow) -> str:
    """Render one row in the layout of the paper's Table I."""
    def power(v: Optional[float]) -> str:
        return f"{v:8.1f}" if v is not None else "       -"

    def area(v: Optional[float]) -> str:
        return f"{v:7.1f}" if v is not None else "      -"

    pft = f"{row.pft:.1e}" if row.pft is not None else "-"
    return (
        f"{row.circuit:<8} {row.gates:>5} {row.inputs:>4} {row.p_threshold:7.4f} "
        f"{row.candidates:>3} {row.expendable:>4}  {row.ht_design:<9}"
        f"{power(row.power_free_uw)} {power(row.power_modified_uw)} "
        f"{power(row.power_infected_uw)}{area(row.area_free_ge)} "
        f"{area(row.area_modified_ge)} {area(row.area_infected_ge)}  {pft}"
    )


def format_table(rows: Sequence[TableRow]) -> str:
    """Render the full Table-I-style report."""
    lines: List[str] = [
        "TrojanZero Analysis for ISCAS85-class Benchmarks (Table I reproduction)",
        _HEADER,
        "-" * len(_HEADER),
    ]
    lines.extend(format_row(row) for row in rows)
    return "\n".join(lines)
