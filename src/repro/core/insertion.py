"""Algorithm 2: HT insertion using the TrojanZero methodology.

Iterate the HT library (largest design first), over candidate placement
locations, re-running the defender's functional tests after each placement.
A placement is accepted only when the TZ-infected circuit ``N''``

1. passes every defender pattern set (lines 3-8),
2. does not exceed the HT-free thresholds in *total power, each power
   component, and area* (lines 11-13), and
3. after optional dummy-gate padding, sits within tolerance of the
   thresholds so that neither an increase nor a suspicious decrease is
   measurable (Sec. IV.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.circuit import Circuit
from ..power.analysis import PowerDelta, PowerReport, analyze
from ..power.library import CellLibrary
from ..prob.propagate import rare_nodes, signal_probabilities
from ..sim.equivalence import functional_test
from ..trojan.library import (
    TrojanDesign,
    default_trojan_library,
    insert_dummy_gates,
    insert_filler_cells,
)
from .salvage import SalvageResult


@dataclass(frozen=True)
class InsertionConfig:
    """Tolerances and search effort for Algorithm 2."""

    #: Allowed overshoot of any power component, as a fraction of the HT-free
    #: value (the paper demands ≈ 0; a sub-percent band absorbs model noise).
    rel_power_tolerance: float = 0.01
    #: Allowed area overshoot as a fraction of HT-free area.
    rel_area_tolerance: float = 0.01
    #: How many victim locations to try per design (paper's m).
    max_locations: int = 8
    #: How many rare nets to try as counter clock / trigger sources.
    max_trigger_sources: int = 4
    #: Rarity threshold used when picking trigger sources.
    trigger_rarity: float = 0.95
    #: The attacker's stealth budget: predicted trigger probability over the
    #: defender's whole test session must stay below this (paper: < 1e-4).
    pft_budget: float = 1e-5
    #: Pad with dummy gates when the differential is negative (paper IV.4).
    dummy_padding: bool = True
    #: Stop padding when the remaining area deficit is below this many GE.
    padding_target_ge: float = 4.0


@dataclass(frozen=True)
class PlacementAttempt:
    """One (design, victim, trigger) trial and its outcome."""

    design: str
    victim: str
    trigger_source: str
    outcome: str


@dataclass
class InsertionResult:
    """Output of Algorithm 2."""

    success: bool
    infected: Optional[Circuit]
    design: Optional[TrojanDesign]
    instance: object
    victim: Optional[str]
    power_infected: Optional[PowerReport]
    #: ΔP(TZ)/ΔA(TZ) = thresholds − infected (positive = under threshold).
    delta_tz: Optional[PowerDelta]
    dummy_gates: List[str] = field(default_factory=list)
    attempts: List[PlacementAttempt] = field(default_factory=list)


def rank_victims(circuit: Circuit, limit: int) -> List[str]:
    """Placement locations ranked by payload impact (fan-out cone size).

    The paper's case study corrupts the ALU carry-in — a net whose fan-out
    cone covers many outputs.  Nets already near-constant are excluded (a
    payload there would rarely matter).
    """
    probs = signal_probabilities(circuit)
    scored: List[Tuple[int, str]] = []
    for net in circuit.internal_nets():
        gate = circuit.gate(net)
        if gate.is_constant:
            continue
        p = probs[net]
        if p < 0.05 or p > 0.95:
            continue
        cone = circuit.fanout_cone(net)
        reach = sum(1 for n in cone if n in circuit.outputs)
        if reach == 0:
            continue
        scored.append((len(cone) + 10 * reach, net))
    scored.sort(reverse=True)
    return [net for _, net in scored[:limit]]


def rank_trigger_sources(
    circuit: Circuit,
    rarity: float,
    limit: int,
    edges_to_fire: int = 7,
    session_vectors: int = 300,
    pft_budget: float = 1e-5,
) -> List[str]:
    """Rare internal nets suitable as counter clocks / trigger inputs.

    Rarely-*activated* nets have tiny rising-edge probability, so the counter
    cannot saturate during functional testing (paper Sec. III-C: "inputs to
    generate the trigger are provided from rarely-activated nodes").  But a
    node that is *too* extreme is useless to the attacker as well — a counter
    that can never accumulate edges never fires.  The attacker therefore
    maximizes the edge rate subject to a stealth budget: predicted
    ``Pft = P[Binomial(session_vectors, p_edge) >= edges_to_fire]`` must stay
    below ``pft_budget``.  Sources are ranked by edge rate, fastest first,
    among those meeting the budget (falling back to the stealthiest nodes if
    none qualify).
    """
    from ..trojan.trigger import binomial_tail_at_least

    rare = rare_nodes(circuit, rarity)
    qualifying = []
    fallback = []
    for net, p_one in rare:
        p_edge = p_one * (1.0 - p_one)
        if p_edge <= 0.0:
            continue  # structurally constant: the counter would never tick
        pft = binomial_tail_at_least(session_vectors, p_edge, edges_to_fire)
        if pft <= pft_budget:
            qualifying.append((-p_edge, net))
        else:
            fallback.append((pft, net))
    qualifying.sort()
    fallback.sort()
    ranked = [net for _, net in qualifying] + [net for _, net in fallback]
    return ranked[:limit]


def insert_trojan_zero(
    salvage_result: SalvageResult,
    golden: Circuit,
    pattern_sets: Sequence[np.ndarray],
    thresholds: PowerReport,
    library: CellLibrary,
    designs: Optional[Sequence[TrojanDesign]] = None,
    config: Optional[InsertionConfig] = None,
    session_vectors: int = 300,
) -> InsertionResult:
    """Run Algorithm 2 on the salvaged circuit ``N'``.

    Parameters
    ----------
    salvage_result:
        Output of Algorithm 1 (provides ``N'`` and the salvaged budget).
    golden:
        The HT-free reference ``N`` for functional testing.
    thresholds:
        Power/area of ``N`` — the caps ``N''`` must not exceed.
    session_vectors:
        Length of the defender's full test session (known + bespoke vectors),
        used to budget the predicted trigger probability.
    """
    config = config or InsertionConfig()
    designs = list(designs) if designs is not None else default_trojan_library()
    modified = salvage_result.modified

    budget = thresholds.delta(salvage_result.power_after)
    victims = rank_victims(modified, config.max_locations)
    attempts: List[PlacementAttempt] = []
    tol_power = config.rel_power_tolerance
    tol_area = config.rel_area_tolerance

    for design in designs:
        edges_needed = (1 << design.size) - 1 if design.kind == "counter" else 1
        triggers = rank_trigger_sources(
            modified,
            config.trigger_rarity,
            config.max_trigger_sources,
            edges_to_fire=edges_needed,
            session_vectors=session_vectors,
            pft_budget=config.pft_budget,
        )
        est_area, est_leak = design.estimated_cost(library)
        # Pre-filter: the HT may consume the salvaged area plus the allowed
        # tolerance band; anything bigger is guaranteed to bust the cap.
        area_headroom_ge = budget.area_ge + tol_area * thresholds.area_ge
        if est_area / library.ge_area_um2 > area_headroom_ge:
            attempts.append(
                PlacementAttempt(design.name, "-", "-", "skipped: exceeds salvaged budget")
            )
            continue
        for victim in victims:
            for trigger_source in triggers or ["-"]:
                if trigger_source == "-":
                    break
                if trigger_source == victim:
                    continue
                infected = modified.copy(f"{golden.name}_tz")
                try:
                    instance = design.instantiate(
                        infected, victim, [trigger_source], prefix="tz"
                    )
                except ValueError as exc:
                    attempts.append(
                        PlacementAttempt(design.name, victim, trigger_source, f"error: {exc}")
                    )
                    continue
                if not functional_test(infected, golden, pattern_sets):
                    attempts.append(
                        PlacementAttempt(
                            design.name, victim, trigger_source,
                            "rejected: defender tests detected the HT",
                        )
                    )
                    continue
                report = analyze(infected, library)
                delta = thresholds.delta(report)
                if _exceeds(delta, thresholds, tol_power, tol_area):
                    attempts.append(
                        PlacementAttempt(
                            design.name, victim, trigger_source,
                            "rejected: exceeds power/area threshold",
                        )
                    )
                    continue
                dummies: List[str] = []
                if config.dummy_padding:
                    report, delta, dummies = _pad_with_dummies(
                        infected, thresholds, library, config
                    )
                    if dummies and not functional_test(infected, golden, pattern_sets):
                        attempts.append(
                            PlacementAttempt(
                                design.name, victim, trigger_source,
                                "rejected: padding broke functional tests",
                            )
                        )
                        continue
                attempts.append(
                    PlacementAttempt(design.name, victim, trigger_source, "accepted")
                )
                return InsertionResult(
                    success=True,
                    infected=infected,
                    design=design,
                    instance=instance,
                    victim=victim,
                    power_infected=report,
                    delta_tz=delta,
                    dummy_gates=dummies,
                    attempts=attempts,
                )
    return InsertionResult(
        success=False,
        infected=None,
        design=None,
        instance=None,
        victim=None,
        power_infected=None,
        delta_tz=None,
        attempts=attempts,
    )


def _exceeds(
    delta: PowerDelta, thresholds: PowerReport, tol_power: float, tol_area: float
) -> bool:
    """True when N'' exceeds any threshold beyond tolerance (delta = N - N'')."""
    return (
        delta.total_uw < -tol_power * thresholds.total_uw
        or delta.dynamic_uw < -tol_power * max(thresholds.dynamic_uw, 1e-9)
        or delta.leakage_uw < -tol_power * max(thresholds.leakage_uw, 1e-9)
        or delta.area_ge < -tol_area * thresholds.area_ge
    )


def _pad_with_dummies(
    infected: Circuit,
    thresholds: PowerReport,
    library: CellLibrary,
    config: InsertionConfig,
    max_dummies: int = 512,
) -> Tuple[PowerReport, PowerDelta, List[str]]:
    """Greedily pad the differential toward ≈ 0 from below.

    Two padding media, applied in order:

    1. *dummy gates* on the primary inputs — add area, leakage, and dynamic
       power, used while all three have headroom;
    2. *filler cells* (tie-fed, non-switching) — add area and a little
       leakage only, used once dynamic/total power is at the cap but area is
       still visibly short (paper observation Z).
    """
    added: List[str] = []
    report = analyze(infected, library)
    delta = thresholds.delta(report)
    use_filler = False
    while len(added) < max_dummies and delta.area_ge > config.padding_target_ge:
        if use_filler or delta.total_uw <= 0 or delta.dynamic_uw <= 0:
            use_filler = True
            batch = insert_filler_cells(infected, 4, prefix=f"fill{len(added)}_")
        else:
            batch = insert_dummy_gates(infected, 1, prefix=f"dummy{len(added)}_")
        trial_report = analyze(infected, library)
        trial_delta = thresholds.delta(trial_report)
        if _exceeds(trial_delta, thresholds, config.rel_power_tolerance,
                    config.rel_area_tolerance):
            # Went over a cap — undo the last batch.
            for name in reversed(batch):
                infected.remove_gate(name)
            if use_filler:
                break  # even non-switching padding no longer fits
            use_filler = True  # dummies too hot; retry with fillers
            continue
        added.extend(batch)
        report, delta = trial_report, trial_delta
    return report, delta, added
