"""TrojanZero (DATE 2019) reproduction.

A complete Python toolkit for switching-activity-aware design of hardware
Trojans with zero power and area footprint, including every substrate the
paper's flow depends on: gate-level netlists, logic simulation, signal
probability analysis, stuck-at ATPG (PODEM + fault simulation), a 65nm-class
cell library with power/area models, a hardware-Trojan library, the
TrojanZero salvage/insertion algorithms, power-based detection baselines,
and a per-cycle side-channel trace lab (:mod:`repro.traces`).

Quickstart::

    from repro.bench import c880_like
    from repro.core import TrojanZeroPipeline

    pipeline = TrojanZeroPipeline.default()
    result = pipeline.run(c880_like(), p_threshold=0.992, counter_bits=3)
    print(result.summary())
"""

__version__ = "1.0.0"

from . import api, atpg, bench, lint, netlist, power, prob, sim, traces  # noqa: F401

__all__ = [
    "api",
    "atpg",
    "bench",
    "lint",
    "netlist",
    "power",
    "prob",
    "sim",
    "traces",
    "__version__",
]
