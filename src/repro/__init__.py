"""TrojanZero (DATE 2019) reproduction.

A complete Python toolkit for switching-activity-aware design of hardware
Trojans with zero power and area footprint, including every substrate the
paper's flow depends on: gate-level netlists, logic simulation, signal
probability analysis, stuck-at ATPG (PODEM + fault simulation), a 65nm-class
cell library with power/area models, a hardware-Trojan library, the
TrojanZero salvage/insertion algorithms, and power-based detection baselines.

Quickstart::

    from repro.bench import c880_like
    from repro.core import TrojanZeroPipeline

    pipeline = TrojanZeroPipeline.default()
    result = pipeline.run(c880_like(), p_threshold=0.992, counter_bits=3)
    print(result.summary())
"""

__version__ = "1.0.0"

from . import api, atpg, bench, netlist, power, prob, sim  # noqa: F401

__all__ = ["api", "atpg", "bench", "netlist", "power", "prob", "sim", "__version__"]
