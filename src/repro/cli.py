"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``attack``     run the full TrojanZero flow on a benchmark (or .bench file)
``table1``     regenerate the paper's Table I across all five benchmarks
``atpg``       run the defender's ATPG on a circuit and report coverage
``prob``       report rare nodes at a probability threshold
``power``      report power/area of a circuit under the 65nm-class model
``detect``     run the evasion experiment on a benchmark
``equiv``      SAT equivalence check between two .bench files

Every command accepts either a built-in benchmark name (c432, c499, c880,
c1355, c1908, c3540, c6288) or a path to an ISCAS ``.bench`` file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from .bench import BENCHMARKS, c17, c1355_like, c6288_like, load_bench, save_bench
from .core import TableRow, TrojanZeroPipeline, format_table
from .power import analyze, optimize_netlist, tech65_library

_EXTRA_BENCHMARKS = {"c17": c17, "c1355": c1355_like, "c6288": c6288_like}

#: Paper Table I parameters for the ``table1`` command.
_PAPER_PARAMETERS = {
    "c432": (0.975, 2),
    "c499": (0.993, 3),
    "c880": (0.992, 3),
    "c1908": (0.9986, 5),
    "c3540": (0.992, 5),
}


def _resolve_circuit(spec: str):
    if spec in BENCHMARKS:
        return BENCHMARKS[spec]()
    if spec in _EXTRA_BENCHMARKS:
        return _EXTRA_BENCHMARKS[spec]()
    path = Path(spec)
    if path.exists():
        return load_bench(path)
    raise SystemExit(
        f"unknown circuit {spec!r}: not a built-in benchmark "
        f"({', '.join(sorted(BENCHMARKS) + sorted(_EXTRA_BENCHMARKS))}) "
        "and no such file"
    )


def _cmd_attack(args: argparse.Namespace) -> int:
    circuit = _resolve_circuit(args.circuit)
    pipeline = TrojanZeroPipeline.default()
    result = pipeline.run(
        circuit,
        p_threshold=args.pth,
        counter_bits=args.counter_bits,
    )
    print(result.summary())
    if result.success and args.output:
        save_bench(result.insertion.infected, args.output)
        print(f"TZ-infected netlist written to {args.output}")
    return 0 if result.success else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    pipeline = TrojanZeroPipeline.default()
    rows = []
    for name, (pth, bits) in _PAPER_PARAMETERS.items():
        result = pipeline.run(BENCHMARKS[name](), p_threshold=pth, counter_bits=bits)
        rows.append(TableRow.from_result(result))
        print(f"  {name}: {'ok' if result.success else 'FAILED'}", file=sys.stderr)
    print(format_table(rows))
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    from .atpg import AtpgConfig, generate_test_set

    circuit = optimize_netlist(_resolve_circuit(args.circuit))
    config = AtpgConfig(
        backtrack_limit=args.backtrack_limit,
        target_coverage=args.target_coverage,
        max_patterns=args.max_patterns,
    )
    ts = generate_test_set(circuit, config)
    print(f"circuit:   {circuit.name} ({circuit.num_logic_gates} gates)")
    print(f"patterns:  {ts.n_patterns}")
    print(f"coverage:  {100 * ts.coverage:.2f}% of {ts.total_faults} collapsed faults")
    print(
        f"holes:     {len(ts.aborted)} aborted, {len(ts.untestable)} untestable, "
        f"{len(ts.not_attempted)} beyond budget"
    )
    return 0


def _cmd_prob(args: argparse.Namespace) -> int:
    from .prob import rare_nodes

    circuit = _resolve_circuit(args.circuit)
    rare = rare_nodes(circuit, args.pth)
    print(f"{len(rare)} candidate nodes at Pth = {args.pth}:")
    for net, p_one in rare[: args.limit]:
        polarity = f"P1={p_one:.5f}" if p_one > 0.5 else f"P0={1 - p_one:.5f}"
        print(f"  {circuit.gate(net).gate_type.value:<5} {net:<20} {polarity}")
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    circuit = _resolve_circuit(args.circuit)
    if args.synthesize:
        circuit = optimize_netlist(circuit)
    report = analyze(circuit, tech65_library())
    print(f"circuit:  {circuit.name} ({circuit.num_logic_gates} gates)")
    print(f"total:    {report.total_uw:.2f} uW")
    print(f"dynamic:  {report.dynamic_uw:.2f} uW")
    print(f"leakage:  {report.leakage_uw:.3f} uW")
    print(f"area:     {report.area_ge:.1f} GE ({report.area_um2:.1f} um2)")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from .detect import evasion_experiment

    circuit = _resolve_circuit(args.circuit)
    pipeline = TrojanZeroPipeline.default()
    result = pipeline.run(circuit, p_threshold=args.pth, counter_bits=args.counter_bits)
    if not result.success:
        print("TrojanZero insertion failed; nothing to detect")
        return 1
    report = evasion_experiment(
        result.thresholds.circuit,
        result.insertion.infected,
        tech65_library(),
        additive_gates=args.additive_gates,
        n_chips=args.chips,
        mode=args.mode,
    )
    print(f"golden flagged:     {report.golden_rates}")
    print(f"additive flagged:   {report.additive_rates}")
    print(f"TrojanZero flagged: {report.trojanzero_rates}")
    verdict = "EVADES" if report.trojanzero_evades() else "is CAUGHT by"
    print(f"TrojanZero {verdict} the {args.mode}-mode detectors")
    return 0


def _cmd_equiv(args: argparse.Namespace) -> int:
    from .verify import check_equivalence

    golden = _resolve_circuit(args.golden)
    candidate = _resolve_circuit(args.candidate)
    result = check_equivalence(golden, candidate, random_vectors=args.random_vectors)
    print(f"status: {result.status.value}")
    if result.counterexample:
        print(f"differing output: {result.differing_output}")
        print(f"witness: {result.counterexample}")
    return 0 if bool(result) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TrojanZero (DATE 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("attack", help="run the full TrojanZero flow")
    p.add_argument("circuit")
    p.add_argument("--pth", type=float, default=0.992)
    p.add_argument("--counter-bits", type=int, default=None)
    p.add_argument("--output", help="write the TZ-infected .bench here")
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser("table1", help="regenerate the paper's Table I")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("atpg", help="run defender ATPG, report coverage")
    p.add_argument("circuit")
    p.add_argument("--backtrack-limit", type=int, default=20)
    p.add_argument("--target-coverage", type=float, default=0.97)
    p.add_argument("--max-patterns", type=int, default=64)
    p.set_defaults(func=_cmd_atpg)

    p = sub.add_parser("prob", help="list rare nodes at a threshold")
    p.add_argument("circuit")
    p.add_argument("--pth", type=float, default=0.992)
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(func=_cmd_prob)

    p = sub.add_parser("power", help="power/area report")
    p.add_argument("circuit")
    p.add_argument("--synthesize", action="store_true")
    p.set_defaults(func=_cmd_power)

    p = sub.add_parser("detect", help="run the evasion experiment")
    p.add_argument("circuit")
    p.add_argument("--pth", type=float, default=0.992)
    p.add_argument("--counter-bits", type=int, default=3)
    p.add_argument("--additive-gates", type=int, default=16)
    p.add_argument("--chips", type=int, default=30)
    p.add_argument("--mode", choices=("paper", "structural"), default="paper")
    p.set_defaults(func=_cmd_detect)

    p = sub.add_parser("equiv", help="SAT equivalence check of two circuits")
    p.add_argument("golden")
    p.add_argument("candidate")
    p.add_argument("--random-vectors", type=int, default=512)
    p.set_defaults(func=_cmd_equiv)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
