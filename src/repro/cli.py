"""Command-line interface: ``python -m repro <command>``.

The CLI is a thin layer over the declarative experiment API of
:mod:`repro.api`: each attack-flow command builds an
:class:`~repro.api.ExperimentSpec` (or a :class:`~repro.api.CampaignSpec`
grid), hands it to the runner, and formats the returned
:class:`~repro.api.ExperimentRecord`.  Any cell the CLI can run is therefore
also available programmatically, serializable to JSON, and shardable across
worker processes.

Commands
--------
``attack``     run the full TrojanZero flow on one benchmark (one spec)
``campaign``   run a benchmark x Pth x design grid, serially or ``--jobs N``
               in parallel, streaming JSONL records with ``--resume`` support
               (``--server URL`` routes the grid through a fleet server)
``serve``      run the campaign fleet service (job queue + spec-hash result
               cache + columnar store) until interrupted
``table1``     regenerate the paper's Table I across all five benchmarks
``detect``     run the evasion experiment on a benchmark (``--mode traces``
               selects the per-cycle trace suite)
``traces``     run the side-channel trace lab with configurable acquisition
               (sequences, repeats, sensor noise, ADC bits, jitter)
``atpg``       run the defender's ATPG on a circuit and report coverage
``prob``       report rare nodes at a probability threshold
``power``      report power/area of a circuit under the 65nm-class model
``equiv``      SAT equivalence check between two .bench files
``lint``       AST-based invariant checker over the source tree (seed
               discipline, payload purity, backend routing, service
               lock/import hygiene); ``--json`` for machine findings

Circuit arguments accept any name in the :data:`repro.api.CIRCUITS` registry
(c17, c432, c499, c880, c1355, c1908, c3540, c6288, plus anything registered
at runtime) or a path to an ISCAS ``.bench`` file.  ``attack``, ``detect``
and ``campaign`` take ``--seed`` for end-to-end deterministic reruns and
``--json`` to emit the structured record instead of the human report.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .api import (
    CampaignRunner,
    CampaignSpec,
    DETECTORS,
    ExperimentRecord,
    ExperimentSpec,
    FleetPolicy,
    RetryPolicy,
    detect_seed_for,
    execute_experiment,
    resolve_circuit,
    resolve_designs,
)
from .api.registry import ensure_circuit_ref
from .bench import save_bench
from .core import TableRow, format_table
from .power import analyze, optimize_netlist, tech65_library


def _resolve_circuit(ref: str):
    try:
        return resolve_circuit(ref)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _check_circuit_ref(ref: str) -> None:
    """Fail fast on a bad circuit reference without building the circuit."""
    try:
        ensure_circuit_ref(ref)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _build_spec(**fields) -> ExperimentSpec:
    """Spec construction with argparse-style errors instead of tracebacks."""
    try:
        return ExperimentSpec(**fields)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _design_ref(counter_bits: Optional[int]) -> Optional[str]:
    return f"counter{counter_bits}" if counter_bits is not None else None


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _cmd_attack(args: argparse.Namespace) -> int:
    spec = _build_spec(
        circuit=args.circuit,
        pth=args.pth,
        design=_design_ref(args.counter_bits),
        seed=args.seed,
        mc_sessions=args.mc_sessions,
    )
    _check_circuit_ref(args.circuit)
    outcome = execute_experiment(spec)
    if args.json:
        print(outcome.record.to_json_line())
    else:
        print(outcome.result.summary())
        if args.mc_sessions > 0 and outcome.record.pft_monte_carlo is not None:
            print(
                f"  Pft (Monte-Carlo, {args.mc_sessions} sessions) = "
                f"{outcome.record.pft_monte_carlo:.3e}"
            )
    if outcome.result.success and args.output:
        save_bench(outcome.result.insertion.infected, args.output)
        if not args.json:
            print(f"TZ-infected netlist written to {args.output}")
    return 0 if outcome.result.success else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    campaign = CampaignSpec.table1(seed=args.seed)
    rows = []
    for spec in campaign:
        record = execute_experiment(spec).record
        rows.append(TableRow.from_record(record))
        status = "ok" if record.success else "FAILED"
        print(f"  {spec.circuit}: {status}", file=sys.stderr)
    print(format_table(rows))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    spec = _build_spec(
        circuit=args.circuit,
        pth=args.pth,
        design=_design_ref(args.counter_bits),
        seed=args.seed,
        detector=args.mode,
        detector_chips=args.chips,
        additive_gates=args.additive_gates,
    )
    _check_circuit_ref(args.circuit)
    outcome = execute_experiment(spec)
    if args.json:
        # Always JSON on stdout, even when insertion fails (success: false).
        print(outcome.record.to_json_line())
        return 0 if outcome.result.success else 1
    if not outcome.result.success:
        print("TrojanZero insertion failed; nothing to detect")
        return 1
    report = outcome.evasion
    print(f"golden flagged:     {report.golden_rates}")
    print(f"additive flagged:   {report.additive_rates}")
    print(f"TrojanZero flagged: {report.trojanzero_rates}")
    verdict = "EVADES" if report.trojanzero_evades() else "is CAUGHT by"
    print(f"TrojanZero {verdict} the {args.mode}-mode detectors")
    return 0


def _validate_campaign(campaign: CampaignSpec) -> None:
    """Fail fast on unresolvable references before any cell runs."""
    for spec in campaign:
        try:
            ensure_circuit_ref(spec.circuit)
            resolve_designs(spec.design)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        if spec.detector is not None and spec.detector not in DETECTORS:
            raise SystemExit(
                f"unknown detector suite {spec.detector!r}; "
                f"registered: {DETECTORS.names()}"
            )


def _cmd_campaign(args: argparse.Namespace) -> int:
    try:
        if args.table1:
            if args.circuits or args.pths is not None or args.designs:
                raise SystemExit(
                    "--table1 is a fixed grid; it cannot be combined with "
                    "--circuits/--pths/--designs"
                )
            campaign = CampaignSpec.table1(
                seed=args.seed,
                mc_sessions=args.mc_sessions,
                detector=args.detector,
                detector_chips=args.chips,
                additive_gates=args.additive_gates,
            )
        else:
            if not args.circuits:
                raise SystemExit("campaign needs --circuits (or --table1)")
            campaign = CampaignSpec.sweep(
                circuits=_csv(args.circuits),
                pths=[float(p) for p in _csv(args.pths or "0.992")],
                designs=_csv(args.designs) if args.designs else (None,),
                seeds=(args.seed,),
                detectors=(args.detector,),
                mc_sessions=args.mc_sessions,
                detector_chips=args.chips,
                additive_gates=args.additive_gates,
            )
    except ValueError as exc:  # bad --pths / --mc-sessions values
        raise SystemExit(str(exc)) from None
    _validate_campaign(campaign)
    if args.resume and not args.out:
        raise SystemExit("--resume requires --out")
    if args.server and args.resume:
        raise SystemExit(
            "--resume is a local-mode flag; the fleet server already "
            "dedups by canonical spec hash (no cell is computed twice)"
        )

    start = time.perf_counter()

    def progress(record: ExperimentRecord) -> None:
        took = record.runtime.get("timings_s", {}).get("total")
        took_s = f" [{took:.1f}s]" if took is not None else ""
        if record.error is not None:
            status = f"error: {record.error}"
        elif record.success:
            status = "ok"
        else:
            status = "no insertion"
        print(
            f"  {record.spec.circuit} pth={record.spec.pth:g}"
            f"{' ' + record.spec.design if record.spec.design else ''}: "
            f"{status}{took_s}",
            file=sys.stderr,
        )

    try:
        policy = FleetPolicy(
            timeout_s=args.timeout,
            retry=RetryPolicy(max_retries=args.retries),
            max_errors=args.max_errors,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.server:
        return _campaign_via_server(args, campaign, policy, progress, start)
    runner = CampaignRunner(
        campaign, jobs=args.jobs, out=args.out, resume=args.resume, policy=policy
    )
    result = runner.run(progress)
    if args.json:
        print(json.dumps([r.to_dict() for r in result.records], sort_keys=True))
    else:
        elapsed = time.perf_counter() - start
        print(f"campaign {campaign.name!r}: {result.summary()} [{elapsed:.1f}s]")
    return 1 if result.errors else 0


def _campaign_via_server(args, campaign, policy, progress, start) -> int:
    """Route a campaign grid through a running fleet server: submit the
    spec, stream records back (optionally appending to ``--out``), and
    mirror the local command's output and exit-code behavior."""
    from .service import FleetClient, FleetServiceError

    client = FleetClient(args.server)
    records = []
    sink = None
    try:
        client.wait_ready()  # tolerate a server that is still binding
        job_id = client.submit(campaign, jobs=args.jobs, policy=policy)
        if args.out:
            sink = open(args.out, "a", encoding="utf-8")
        for record in client.stream(job_id):
            records.append(record)
            if sink is not None:
                sink.write(record.to_json_line() + "\n")
                sink.flush()
            progress(record)
        status = client.status(job_id)
    except FleetServiceError as exc:
        raise SystemExit(str(exc)) from None
    finally:
        if sink is not None:
            sink.close()
    errors = [r for r in records if r.error is not None]
    if args.json:
        print(json.dumps([r.to_dict() for r in records], sort_keys=True))
    else:
        elapsed = time.perf_counter() - start
        parts = [
            f"{len(records)} records from {args.server} ({status.state})",
            f"{sum(1 for r in records if r.error is None and r.success)} "
            "insertions succeeded",
            f"{len(errors)} errors",
        ]
        if status.n_cached:
            parts.append(f"{status.n_cached} served from cache")
        if args.out:
            parts.append(f"records -> {args.out}")
        print(f"campaign {campaign.name!r}: {', '.join(parts)} [{elapsed:.1f}s]")
    return 1 if errors or status.state != "done" else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .api.chaos import ChaosConfigError, ChaosSpec
    from .service import FleetServer

    try:
        ChaosSpec.from_env()  # surface a malformed REPRO_CHAOS before binding
        policy = FleetPolicy(
            timeout_s=args.timeout,
            retry=RetryPolicy(max_retries=args.retries),
            max_errors=args.max_errors,
        )
        server = FleetServer(
            host=args.host,
            port=args.port,
            data_dir=args.data,
            jobs=args.jobs,
            policy=policy,
            use_cache=not args.no_cache,
        )
    except (ValueError, OSError) as exc:
        raise SystemExit(str(exc)) from None
    print(
        f"fleet server on {server.url} (data: {server.data_dir}, "
        f"{args.jobs} worker{'s' if args.jobs != 1 else ''}/job, cache "
        f"{'off' if args.no_cache else 'on'}); Ctrl-C for graceful shutdown",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (draining running job)...", file=sys.stderr)
        server.close()
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    from .power import tech65_library
    from .traces import TraceLabConfig, trace_evasion_experiment

    try:
        config = TraceLabConfig(
            n_sequences=args.sequences,
            n_vectors=args.vectors,
            n_repeats=args.repeats,
            noise_rel=args.noise,
            adc_bits=args.adc_bits,
            jitter_cycles=args.jitter,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    spec = _build_spec(
        circuit=args.circuit,
        pth=args.pth,
        design=_design_ref(args.counter_bits),
        seed=args.seed,
    )
    _check_circuit_ref(args.circuit)
    outcome = execute_experiment(spec)
    if not outcome.result.success:
        if args.json:
            print(outcome.record.to_json_line())
        else:
            print("TrojanZero insertion failed; nothing to trace")
        return 1
    report = trace_evasion_experiment(
        outcome.result.thresholds.circuit,
        outcome.result.insertion.infected,
        tech65_library(),
        additive_gates=args.additive_gates,
        n_chips=args.chips,
        seed=detect_seed_for(args.seed),
        config=config,
    )
    if args.json:
        if config == TraceLabConfig():
            # Default acquisition: the record is exactly what a campaign cell
            # with detector="traces" would produce, and its payload is
            # reproducible from its own spec.
            record_spec = spec.with_(
                detector="traces",
                detector_chips=args.chips,
                additive_gates=args.additive_gates,
            )
            record = ExperimentRecord.from_run(
                record_spec, outcome.result, report, outcome.record.runtime
            )
        else:
            # Custom acquisition flags are not expressible in a spec, so the
            # verdicts must not enter the spec-reproducible detection payload;
            # they ride in the non-payload traces section alongside the
            # acquisition config instead.
            import dataclasses

            record = ExperimentRecord.from_run(
                spec, outcome.result, None, outcome.record.runtime
            )
            extra = dict(report.trace_diagnostics)
            extra["rates"] = {
                "golden": report.golden_rates,
                "additive": report.additive_rates,
                "trojanzero": report.trojanzero_rates,
            }
            extra["evades"] = report.trojanzero_evades()
            record = dataclasses.replace(record, traces=extra)
        print(record.to_json_line())
        return 0
    diag = report.trace_diagnostics
    cfg = diag["config"]
    print(
        f"trace lab on {args.circuit}: {cfg['n_sequences']} sequences x "
        f"{cfg['n_vectors']} vectors x {cfg['n_repeats']} repeats, "
        f"{args.chips} chips/population"
    )
    print(
        f"  noise {cfg['noise_rel']:.3f} rel, ADC {cfg['adc_bits']} bits, "
        f"jitter {cfg['jitter_cycles']} cycles"
    )
    print(f"  hypothesis nets: {', '.join(diag['hypothesis_nets'])}")
    print(f"golden flagged:     {report.golden_rates}")
    print(f"additive flagged:   {report.additive_rates}")
    print(f"TrojanZero flagged: {report.trojanzero_rates}")
    stats = diag["max_statistic"]
    print(f"max statistics (golden / additive / TZ):")
    for name in sorted(stats["golden"]):
        print(
            f"  {name:<5} {stats['golden'][name]:8.2f} "
            f"{stats['additive'][name]:8.2f} {stats['trojanzero'][name]:8.2f}"
            f"   (threshold {diag['thresholds'][name]:.2f})"
        )
    verdict = "EVADES" if report.trojanzero_evades() else "is CAUGHT by"
    print(f"TrojanZero {verdict} the trace detectors")
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    from .atpg import AtpgConfig, generate_test_set

    circuit = optimize_netlist(_resolve_circuit(args.circuit))
    config = AtpgConfig(
        backtrack_limit=args.backtrack_limit,
        target_coverage=args.target_coverage,
        max_patterns=args.max_patterns,
    )
    ts = generate_test_set(circuit, config)
    print(f"circuit:   {circuit.name} ({circuit.num_logic_gates} gates)")
    print(f"patterns:  {ts.n_patterns}")
    print(f"coverage:  {100 * ts.coverage:.2f}% of {ts.total_faults} collapsed faults")
    print(
        f"holes:     {len(ts.aborted)} aborted, {len(ts.untestable)} untestable, "
        f"{len(ts.not_attempted)} beyond budget"
    )
    return 0


def _cmd_prob(args: argparse.Namespace) -> int:
    from .prob import rare_nodes

    circuit = _resolve_circuit(args.circuit)
    rare = rare_nodes(circuit, args.pth)
    print(f"{len(rare)} candidate nodes at Pth = {args.pth}:")
    for net, p_one in rare[: args.limit]:
        polarity = f"P1={p_one:.5f}" if p_one > 0.5 else f"P0={1 - p_one:.5f}"
        print(f"  {circuit.gate(net).gate_type.value:<5} {net:<20} {polarity}")
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    circuit = _resolve_circuit(args.circuit)
    if args.synthesize:
        circuit = optimize_netlist(circuit)
    report = analyze(circuit, tech65_library())
    print(f"circuit:  {circuit.name} ({circuit.num_logic_gates} gates)")
    print(f"total:    {report.total_uw:.2f} uW")
    print(f"dynamic:  {report.dynamic_uw:.2f} uW")
    print(f"leakage:  {report.leakage_uw:.3f} uW")
    print(f"area:     {report.area_ge:.1f} GE ({report.area_um2:.1f} um2)")
    return 0


def _cmd_equiv(args: argparse.Namespace) -> int:
    from .verify import check_equivalence

    golden = _resolve_circuit(args.golden)
    candidate = _resolve_circuit(args.candidate)
    result = check_equivalence(golden, candidate, random_vectors=args.random_vectors)
    print(f"status: {result.status.value}")
    if result.counterexample:
        print(f"differing output: {result.differing_output}")
        print(f"witness: {result.counterexample}")
    return 0 if bool(result) else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import run_lint

    return run_lint(
        args.paths, as_json=args.json, allow=args.allow, select=args.select
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TrojanZero (DATE 2019) reproduction toolkit",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="array backend for the simulation engine (numpy, cupy); "
        "defaults to $REPRO_ARRAY_BACKEND or numpy",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("attack", help="run the full TrojanZero flow")
    p.add_argument("circuit")
    p.add_argument("--pth", type=float, default=0.992)
    p.add_argument("--counter-bits", type=int, default=None)
    p.add_argument("--seed", type=int, default=None,
                   help="master seed for a fully deterministic rerun")
    p.add_argument("--mc-sessions", type=int, default=0,
                   help="Monte-Carlo Pft validation sessions (0 = analytic only)")
    p.add_argument("--output", help="write the TZ-infected .bench here")
    p.add_argument("--json", action="store_true",
                   help="emit the structured ExperimentRecord as JSON")
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser(
        "campaign",
        help="run a benchmark x Pth x design grid with JSONL records",
    )
    p.add_argument("--circuits", help="comma-separated circuit refs (names or .bench paths)")
    p.add_argument("--pths", default=None,
                   help="comma-separated Pth values (default: 0.992)")
    p.add_argument("--designs", default=None,
                   help="comma-separated design refs (default: full HT library per cell)")
    p.add_argument("--table1", action="store_true",
                   help="use the paper's Table I grid instead of --circuits/--pths")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--mc-sessions", type=int, default=0)
    p.add_argument("--detector", default=None,
                   help="detector suite to run on successful insertions "
                        f"({'|'.join(DETECTORS.names())})")
    p.add_argument("--chips", type=int, default=30)
    p.add_argument("--additive-gates", type=int, default=16)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = in-process, campaign order preserved)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall-clock timeout in seconds; a cell past "
                        "its deadline errors out and its worker pool is "
                        "recycled (pool mode only)")
    p.add_argument("--retries", type=int, default=2,
                   help="max retries per cell for transient failures "
                        "(worker death, timeout, I/O); deterministic "
                        "pipeline errors never retry")
    p.add_argument("--max-errors", type=int, default=None,
                   help="circuit breaker: stop submitting new cells after "
                        "this many error records (the JSONL sink is still "
                        "flushed and finalized)")
    p.add_argument("--out", help="append one JSON record per cell to this JSONL file")
    p.add_argument("--resume", action="store_true",
                   help="skip cells whose records already exist in --out; "
                        "dedup is last-record-wins per cell (keyed on the "
                        "canonical spec hash), so a cell whose latest record "
                        "is an error re-runs while an older error followed "
                        "by a success stays done")
    p.add_argument("--server", default=None, metavar="URL",
                   help="submit the grid to a running fleet server "
                        "(see `repro serve`) instead of executing locally; "
                        "records stream back as cells finish and repeated "
                        "submissions are served from the spec-hash cache")
    p.add_argument("--json", action="store_true",
                   help="print all records as a JSON array on stdout")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="run the campaign fleet service (job queue + result cache + "
             "columnar store)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8732,
                   help="bind port (0 picks an ephemeral port)")
    p.add_argument("--data", default="fleet_data",
                   help="service state directory (cache/, store/, jobs/)")
    p.add_argument("--jobs", type=int, default=1,
                   help="default worker processes per submitted job")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall-clock timeout in seconds")
    p.add_argument("--retries", type=int, default=2,
                   help="max retries per cell for transient failures")
    p.add_argument("--max-errors", type=int, default=None,
                   help="per-job circuit breaker on error records")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the spec-hash result cache (recompute "
                        "every cell)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("table1", help="regenerate the paper's Table I")
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("atpg", help="run defender ATPG, report coverage")
    p.add_argument("circuit")
    p.add_argument("--backtrack-limit", type=int, default=20)
    p.add_argument("--target-coverage", type=float, default=0.97)
    p.add_argument("--max-patterns", type=int, default=64)
    p.set_defaults(func=_cmd_atpg)

    p = sub.add_parser("prob", help="list rare nodes at a threshold")
    p.add_argument("circuit")
    p.add_argument("--pth", type=float, default=0.992)
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(func=_cmd_prob)

    p = sub.add_parser("power", help="power/area report")
    p.add_argument("circuit")
    p.add_argument("--synthesize", action="store_true")
    p.set_defaults(func=_cmd_power)

    p = sub.add_parser("detect", help="run the evasion experiment")
    p.add_argument("circuit")
    p.add_argument("--pth", type=float, default=0.992)
    p.add_argument("--counter-bits", type=int, default=3)
    p.add_argument("--additive-gates", type=int, default=16)
    p.add_argument("--chips", type=int, default=30)
    p.add_argument("--mode", choices=tuple(DETECTORS.names()), default="paper")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--json", action="store_true",
                   help="emit the structured ExperimentRecord as JSON")
    p.set_defaults(func=_cmd_detect)

    p = sub.add_parser(
        "traces", help="run the side-channel trace lab (per-cycle power traces)"
    )
    p.add_argument("circuit")
    p.add_argument("--pth", type=float, default=0.992)
    p.add_argument("--counter-bits", type=int, default=3)
    p.add_argument("--additive-gates", type=int, default=16)
    p.add_argument("--chips", type=int, default=16)
    p.add_argument("--sequences", type=int, default=24,
                   help="stimulus sequences per acquisition")
    p.add_argument("--vectors", type=int, default=33,
                   help="vectors per sequence (trace has vectors-1 cycles)")
    p.add_argument("--repeats", type=int, default=8,
                   help="acquisitions per chip over the same stimuli")
    p.add_argument("--noise", type=float, default=0.01,
                   help="sensor noise sigma relative to the mean trace sample")
    p.add_argument("--adc-bits", type=int, default=12,
                   help="ADC quantization bits (0 = disabled)")
    p.add_argument("--jitter", type=int, default=0,
                   help="acquisition-trigger jitter in cycles")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--json", action="store_true",
                   help="emit the structured ExperimentRecord as JSON")
    p.set_defaults(func=_cmd_traces)

    p = sub.add_parser("equiv", help="SAT equivalence check of two circuits")
    p.add_argument("golden")
    p.add_argument("candidate")
    p.add_argument("--random-vectors", type=int, default=512)
    p.set_defaults(func=_cmd_equiv)

    p = sub.add_parser(
        "lint",
        help="AST-based invariant checker (seed discipline, payload "
             "purity, backend routing, service hygiene); exits 1 on "
             "any finding",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories to check (default: src/)")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable findings "
                        "(rule, path, line, snippet)")
    p.add_argument("--allow", metavar="FILE", default=None,
                   help="suppression allowlist file (path:CODE or "
                        "path:line:CODE per line); the shipped tree "
                        "needs none")
    p.add_argument("--select", metavar="CODES", default=None,
                   help="comma-separated rule codes to run (default: all)")
    p.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[list] = None) -> int:
    from .api.chaos import ChaosConfigError

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.backend is not None:
        from .sim.backend import ENV_VAR, set_default_backend

        set_default_backend(args.backend)  # fails loudly on unknown names
        # Campaign workers are separate processes; they inherit the choice
        # through the environment.
        os.environ[ENV_VAR] = args.backend
    try:
        return args.func(args)
    except ChaosConfigError as exc:
        # A malformed REPRO_CHAOS is a usage error, not a crash: one line,
        # no traceback from inside campaign/pool startup.
        raise SystemExit(f"error: {exc}") from None


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
