"""ISCAS85 ``.bench`` netlist reader/writer.

The classic format (from the ISCAS85/89 benchmark distributions)::

    # c17
    INPUT(1)
    INPUT(2)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)

The parser is tolerant: case-insensitive keywords, flexible whitespace,
``BUF``/``BUFF`` synonyms, and ``DFF(d, clk)`` as an extension (the stock
ISCAS89 one-argument DFF is accepted too and given an explicit global
``CLK`` input).  Real ISCAS85 files drop straight in; the same writer is used
to export Trojan-infected netlists for external tools.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..netlist.circuit import Circuit, NetlistError
from ..netlist.gate import GateType

_TYPE_ALIASES: Dict[str, GateType] = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUFF,
    "BUFF": GateType.BUFF,
    "MUX": GateType.MUX,
    "TIE0": GateType.TIE0,
    "TIE1": GateType.TIE1,
    "DFF": GateType.DFF,
}

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z0-9]+)\s*\(\s*([^)]*)\s*\)$")


class BenchParseError(NetlistError):
    """Raised with file/line context on malformed ``.bench`` input."""


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a :class:`Circuit`."""
    circuit = Circuit(name)
    outputs: List[str] = []
    pending: List[Tuple[int, str, GateType, Tuple[str, ...]]] = []
    needs_clk = False

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            keyword, net = io_match.group(1).upper(), io_match.group(2).strip()
            if keyword == "INPUT":
                if circuit.has_net(net):
                    raise BenchParseError(f"line {lineno}: duplicate INPUT({net})")
                circuit.add_input(net)
            else:
                outputs.append(net)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            out = gate_match.group(1).strip()
            type_name = gate_match.group(2).upper()
            gate_type = _TYPE_ALIASES.get(type_name)
            if gate_type is None:
                raise BenchParseError(f"line {lineno}: unknown gate type {type_name!r}")
            args = tuple(
                a.strip() for a in gate_match.group(3).split(",") if a.strip()
            )
            if gate_type is GateType.DFF and len(args) == 1:
                # ISCAS89 style: single-argument DFF with an implicit clock.
                args = (args[0], "CLK")
                needs_clk = True
            pending.append((lineno, out, gate_type, args))
            continue
        raise BenchParseError(f"line {lineno}: cannot parse {line!r}")

    if needs_clk and not circuit.has_net("CLK"):
        circuit.add_input("CLK")
    for lineno, out, gate_type, args in pending:
        try:
            circuit.add_gate(out, gate_type, args)
        except (NetlistError, ValueError) as exc:
            raise BenchParseError(f"line {lineno}: {exc}") from exc
    for net in outputs:
        if not circuit.has_net(net):
            raise BenchParseError(f"OUTPUT({net}) is never driven")
        circuit.set_output(net)
    # Force fanout construction so undriven-net errors surface here.
    try:
        circuit.topological_order()
    except NetlistError as exc:
        raise BenchParseError(str(exc)) from exc
    return circuit


def load_bench(path: Union[str, Path]) -> Circuit:
    """Load a ``.bench`` file; the circuit name is the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(circuit: Circuit) -> str:
    """Serialize a circuit to ``.bench`` source text."""
    lines: List[str] = [f"# {circuit.name} — written by repro.bench"]
    for pi in circuit.inputs:
        lines.append(f"INPUT({pi})")
    for po in circuit.outputs:
        lines.append(f"OUTPUT({po})")
    for net in circuit.topological_order():
        gate = circuit.gate(net)
        if gate.is_input:
            continue
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.name} = {gate.gate_type.value}({args})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: Circuit, path: Union[str, Path]) -> None:
    Path(path).write_text(write_bench(circuit))
