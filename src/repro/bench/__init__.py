"""ISCAS85 `.bench` I/O, the exact c17, and ISCAS85-class circuit generators."""

from .c17 import C17_BENCH, c17
from .generators import Builder, declare_inputs
from .iscas_extra import c1355_like, c6288_like
from .iscas_like import (
    BENCHMARKS,
    build_benchmark,
    c432_like,
    c499_like,
    c880_like,
    c1908_like,
    c3540_like,
)
from .parser import BenchParseError, load_bench, parse_bench, save_bench, write_bench

# The full benchmark registry: the five Table-I circuits (registered in
# iscas_like) plus the exact c17 and the extension circuits.  These used to
# live in a CLI-private dict, invisible to library users; every consumer
# (CLI, repro.api registries, build_benchmark) now resolves through here.
BENCHMARKS.update({"c17": c17, "c1355": c1355_like, "c6288": c6288_like})

__all__ = [
    "parse_bench",
    "load_bench",
    "write_bench",
    "save_bench",
    "BenchParseError",
    "c17",
    "C17_BENCH",
    "Builder",
    "declare_inputs",
    "BENCHMARKS",
    "build_benchmark",
    "c432_like",
    "c499_like",
    "c880_like",
    "c1908_like",
    "c3540_like",
    "c1355_like",
    "c6288_like",
]
