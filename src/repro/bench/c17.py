"""The exact ISCAS85 c17 benchmark (6 NAND gates), embedded verbatim.

c17 is small enough to reproduce from the published netlist; it anchors the
parser, simulator, ATPG, and pipeline tests to a historically exact circuit.
"""

from __future__ import annotations

from ..netlist.circuit import Circuit
from .parser import parse_bench

C17_BENCH = """\
# c17 — ISCAS85
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
"""


def c17() -> Circuit:
    """The ISCAS85 c17 circuit (5 PIs, 2 POs, 6 NAND gates)."""
    return parse_bench(C17_BENCH, name="c17")
