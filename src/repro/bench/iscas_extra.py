"""Extension benchmarks: c1355-class and c6288-class circuits.

The paper evaluates on five ISCAS85 circuits; these two more let the
reproduction stress the pipeline beyond Table I:

* **c1355** is, historically, exactly c499 with every XOR macro expanded into
  its 4-NAND lattice (546 gates).  :func:`c1355_like` applies the same
  expansion to our c499-class SEC decoder — and the test suite proves the
  two functionally equivalent, the same relationship the real pair has.
* **c6288** is a 16x16 parallel array multiplier (2406 gates, 32 PIs, 32
  POs).  :func:`c6288_like` builds a NAND-mapped partial-product array
  multiplier of the same interface and size class.  Multipliers are famously
  ATPG-hard, making this the stress case for the defender model.
"""

from __future__ import annotations

from typing import List

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from ..netlist.validate import assert_valid
from .generators import Builder, declare_inputs
from .iscas_like import _c499_signatures


def c1355_like() -> Circuit:
    """32-bit SEC decoder, NAND-mapped (the c499 function in c1355 clothing).

    Interface matches :func:`~repro.bench.iscas_like.c499_like` exactly:
    D0..D31, C0..C7, EN in; 32 corrected bits out.  Every XOR is the 4-NAND
    lattice and every decode minterm is NAND+INV, reproducing the historical
    c499 -> c1355 expansion.
    """
    circuit = Circuit("c1355_like")
    b = Builder(circuit, prefix="g")
    data = declare_inputs(circuit, "D", 32)
    checks = declare_inputs(circuit, "C", 8)
    enable = circuit.add_input("EN")
    signatures = _c499_signatures()

    syndrome: List[str] = []
    for j in range(8):
        members = [data[i] for i in range(32) if (signatures[i] >> j) & 1]
        members.append(checks[j])
        syndrome.append(b.xor_tree_nand(members))
    inv_syndrome = [b.NOT(s, hint=f"ns{j}") for j, s in enumerate(syndrome)]

    corrected: List[str] = []
    for i in range(32):
        literals = [
            syndrome[j] if (signatures[i] >> j) & 1 else inv_syndrome[j]
            for j in range(8)
        ]
        nmatch = b.NAND(*literals, hint=f"nm{i}")
        match = b.NOT(nmatch, hint=f"e{i}")
        fire_n = b.NAND(match, enable, hint=f"fn{i}")
        fire = b.NOT(fire_n, hint=f"f{i}")
        corrected.append(b.xor_nand(data[i], fire))

    for i, net in enumerate(corrected):
        circuit.rename_net(net, f"O{i}")
        circuit.set_output(f"O{i}")
    assert_valid(circuit)
    return circuit


def c6288_like(width: int = 16) -> Circuit:
    """NAND-mapped ``width x width`` array multiplier (c6288 class).

    P = A * B over ``2*width`` product outputs, built as a partial-product
    array with one ripple accumulation row per multiplier bit.  The row-r
    adder is only ``width`` bits wide plus a carry into position
    ``r + width`` — exact because the running sum above that position is
    still zero when row r lands.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    circuit = Circuit(f"c6288_like" if width == 16 else f"c6288_like_{width}")
    b = Builder(circuit, prefix="g")
    a = declare_inputs(circuit, "A", width)
    bb = declare_inputs(circuit, "B", width)

    # Row 0 partial products seed the low bits of the accumulator.
    product: List[str] = [
        b.AND(a[i], bb[0], hint=f"pp0_{i}") for i in range(width)
    ]
    zero = b.gate(GateType.TIE0, (), hint="z")
    product += [zero] * width  # positions width .. 2*width-1, filled by carries

    for row in range(1, width):
        pp = [b.AND(a[i], bb[row], hint=f"pp{row}_{i}") for i in range(width)]
        window = product[row : row + width]
        sums, carry = b.ripple_adder(window, pp, zero, nand_mapped=True)
        product[row : row + width] = sums
        product[row + width] = carry

    for net in product:
        circuit.set_output(net)
    assert_valid(circuit)
    return circuit
