"""ISCAS85-class benchmark circuit generators.

The paper evaluates on the historical ISCAS85 netlists c432, c499, c880,
c1908 and c3540.  Those exact netlists cannot be fetched in this offline
environment, so each generator below constructs a *functionally real* circuit
of the same class and approximate size (see DESIGN.md §2 for the substitution
argument):

========  =====================================  ======  =======
paper     function class                          PIs    ~gates
========  =====================================  ======  =======
c432      27-channel interrupt controller          32      160
c499      32-bit single-error-correcting code      41      202
c880      8-bit ALU                                60      383
c1908     16-bit SEC/DED error code                33      880
c3540     8-bit ALU with BCD/shift/compare         50     1669
========  =====================================  ======  =======

What the TrojanZero experiments need from these circuits — and what the
generators deliberately provide, because the real benchmarks have it — is:

* wide AND/NOR decode and match logic whose outputs sit at signal
  probabilities beyond the paper's Pth values (candidate gates);
* reconvergent fan-out (NAND-mapped XOR lattices, shared operands) that makes
  a realistic fraction of stuck-at faults backtrack-heavy for ATPG;
* genuine function (adders add, ECC corrects) so functional tests and
  equivalence checks are meaningful.

Every generator is deterministic: same circuit, bit for bit, every call.
"""

from __future__ import annotations

from typing import Dict, List

from ..netlist.circuit import Circuit
from ..netlist.gate import GateType
from ..netlist.validate import assert_valid
from .generators import Builder, declare_inputs

# ----------------------------------------------------------------------
# c432-like: 27-channel-style interrupt controller (32 PIs, ~160 gates)
# ----------------------------------------------------------------------


def c432_like() -> Circuit:
    """Priority interrupt controller: 24 request lines in 3 banks + 8 enables.

    Outputs: 5-bit encoded grant index, per-bank any-request flags omitted in
    favour of the historical 7-output interface: enc[5], any, parity.
    """
    circuit = Circuit("c432_like")
    b = Builder(circuit, prefix="g")
    requests = declare_inputs(circuit, "R", 24)
    enables = declare_inputs(circuit, "E", 8)

    # Bank masking: requests arrive in 3 banks of 8; bank k is armed when
    # E[k] is high and the global mask E[7] is low.
    nmask = b.NOT(enables[7], hint="nmask")
    armed: List[str] = []
    for k in range(3):
        armed.append(b.AND(enables[k], nmask, hint=f"arm{k}"))
    masked: List[str] = []
    for i, req in enumerate(requests):
        masked.append(b.AND(req, armed[i // 8], hint=f"m{i}"))

    # Priority: lowest index wins across the 24 masked requests.
    grants = b.priority_chain(masked)

    # Binary encode the one-hot grant vector (5 bits for 24 lines).
    encoded = b.encoder_onehot(grants, width=5)

    # Summary flags.
    any_request = b.or_tree(masked)
    parity = b.xor_tree(grants)

    # Spurious-state detector: all enables up while no request pending —
    # a deep, rarely-true conjunction (the c432-style expendable candidates).
    all_enables = b.and_tree(enables[:7])
    no_request = b.NOT(any_request, hint="noreq")
    idle_armed = b.AND(all_enables, no_request, hint="idlearm")
    ghost = b.AND(idle_armed, enables[7], hint="ghost")

    # Trace/snapshot debug port: when the controller is armed yet fully idle
    # (a deep conjunction, P(=1) ≈ 2⁻⁸), expose a scrambled snapshot of the
    # encoder state.  Every gate behind the trace arm inherits the rare
    # probability — the c432-style expendable-gate population of Fig. 5.
    trace_arm = b.AND(idle_armed, b.NOT(enables[7], hint="ne7t"), hint="trarm")
    snapshot = [b.XOR(e, parity, hint=f"snap{j}") for j, e in enumerate(encoded)]
    gated = [b.AND(trace_arm, s, hint=f"tg{j}") for j, s in enumerate(snapshot)]
    trace_mix: List[str] = []
    for j in range(len(gated)):
        trace_mix.append(b.OR(gated[j], gated[(j + 1) % len(gated)], hint=f"tm{j}"))
    trace_out = b.or_tree(trace_mix)

    for net in encoded:
        circuit.set_output(net)
    circuit.set_output(any_request)
    circuit.set_output(parity)
    circuit.set_output(ghost)
    circuit.set_output(trace_out)
    assert_valid(circuit)
    return circuit


# ----------------------------------------------------------------------
# c499-like: 32-bit SEC code (41 PIs, ~202 gates)
# ----------------------------------------------------------------------

#: Bit position -> 8-bit syndrome signature.  Signatures are distinct,
#: non-zero, and distinct from the single-bit check signatures (1 << j).
_C499_SIGNATURES: List[int] = []


def _c499_signatures() -> List[int]:
    if not _C499_SIGNATURES:
        value = 3  # skip 0, 1, 2 (1 and 2 are check-bit columns)
        while len(_C499_SIGNATURES) < 32:
            if bin(value).count("1") >= 2:  # Hamming-style multi-bit columns
                _C499_SIGNATURES.append(value)
            value += 1
    return _C499_SIGNATURES


def c499_like() -> Circuit:
    """32-bit single-error-correcting decoder.

    Inputs: D0..D31 data, C0..C7 received check bits, EN correction enable.
    Outputs: the 32 corrected data bits.  A single flipped data bit makes the
    syndrome equal that bit's signature; the matching 8-input decode AND then
    flips the bit back.  The decode ANDs sit at P(=1) ≈ 2⁻⁸ — the paper's
    candidate gates for c499.
    """
    circuit = Circuit("c499_like")
    b = Builder(circuit, prefix="g")
    data = declare_inputs(circuit, "D", 32)
    checks = declare_inputs(circuit, "C", 8)
    enable = circuit.add_input("EN")
    signatures = _c499_signatures()

    # Syndrome: S_j = parity(data bits whose signature has bit j) XOR C_j.
    syndrome: List[str] = []
    for j in range(8):
        members = [data[i] for i in range(32) if (signatures[i] >> j) & 1]
        members.append(checks[j])
        syndrome.append(b.xor_tree(members))
    inv_syndrome = [b.NOT(s, hint=f"ns{j}") for j, s in enumerate(syndrome)]

    # Per-position decode: 8-literal match of the signature.
    corrected: List[str] = []
    for i in range(32):
        literals = [
            syndrome[j] if (signatures[i] >> j) & 1 else inv_syndrome[j]
            for j in range(8)
        ]
        match = b.AND(*literals, hint=f"e{i}")
        fire = b.AND(match, enable, hint=f"f{i}")
        corrected.append(b.XOR(data[i], fire, hint=f"o{i}"))

    for i, net in enumerate(corrected):
        circuit.rename_net(net, f"O{i}")
        circuit.set_output(f"O{i}")
    assert_valid(circuit)
    return circuit


# ----------------------------------------------------------------------
# c880-like: 8-bit ALU (60 PIs, ~383 gates)
# ----------------------------------------------------------------------


def c880_like() -> Circuit:
    """8-bit ALU with dual operand banks, add/logic ops, shift, and flags.

    Inputs (60): A[8] B[8] C[8] D[8] operand banks, K[8] mask, SEL[4] op
    select, MODE[8] mode requests, EN[3] enables, T[4] test hooks, CIN.
    Outputs (26): F[8] result, SH[8] shifted result, carry, zero, overflow,
    parity, eq, mode-grant-valid, 4 exception flags.
    """
    circuit = Circuit("c880_like")
    b = Builder(circuit, prefix="g")
    a = declare_inputs(circuit, "A", 8)
    bb = declare_inputs(circuit, "B", 8)
    c = declare_inputs(circuit, "C", 8)
    d = declare_inputs(circuit, "D", 8)
    k = declare_inputs(circuit, "K", 8)
    sel = declare_inputs(circuit, "SEL", 4)
    mode = declare_inputs(circuit, "MODE", 8)
    en = declare_inputs(circuit, "EN", 3)
    t = declare_inputs(circuit, "T", 4)
    cin = circuit.add_input("CIN")

    # Operand selection and masking.
    op1 = [b.MUX(a[i], c[i], sel[0], hint=f"op1_{i}") for i in range(8)]
    op2raw = [b.MUX(bb[i], d[i], sel[1], hint=f"op2_{i}") for i in range(8)]
    op2 = [b.AND(op2raw[i], k[i], hint=f"mk{i}") for i in range(8)]

    # Arithmetic unit (NAND-mapped ripple adder) and incrementer.
    sums, carry_out = b.ripple_adder(op1, op2, cin, nand_mapped=True)
    one = b.gate(GateType.TIE1, (), hint="c1")
    zero_net = b.gate(GateType.TIE0, (), hint="c0")
    inc_b = [zero_net] * 8
    incs, _inc_co = b.ripple_adder(op2, inc_b, one, nand_mapped=True)

    # Logic unit.
    ands = [b.AND(op1[i], op2[i], hint=f"lu_and{i}") for i in range(8)]
    ors = [b.OR(op1[i], op2[i], hint=f"lu_or{i}") for i in range(8)]
    xors = [b.XOR(op1[i], op2[i], hint=f"lu_xor{i}") for i in range(8)]

    # Result select: one-hot minterms of SEL[2..3].
    minterms = b.decoder(sel[2:4])
    result: List[str] = []
    for i in range(8):
        picks = [
            b.AND(sums[i], minterms[0], hint=f"p0_{i}"),
            b.AND(ands[i], minterms[1], hint=f"p1_{i}"),
            b.AND(ors[i], minterms[2], hint=f"p2_{i}"),
            b.AND(xors[i], minterms[3], hint=f"p3_{i}"),
        ]
        result.append(b.OR(*picks, hint=f"f{i}"))

    # Shift/rotate stage over the incremented operand.
    shifted_left = [incs[7]] + incs[:7]
    shifted = b.mux_word(incs, shifted_left, sel[2], nand_mapped=True)

    # Flags.
    zero_flag = b.NOR(*result, hint="zflag")
    parity = b.xor_tree(result)
    overflow = b.XOR(carry_out, sums[7], hint="ovf")
    eq = b.equality(a, bb)

    # Mode grant section (priority over MODE requests, gated by EN).
    grants = b.priority_chain(mode)
    grant_valid = b.or_tree(grants)
    en_all = b.and_tree(en)
    grant_ok = b.AND(grant_valid, en_all, hint="gok")

    # Exception detectors — the paper's Fig. 5 segment-A analogue: four AND
    # gates at P(=1) ≈ 2⁻⁹ feeding NOR gates.
    exception_nors: List[str] = []
    excs: List[str] = []
    for j in range(4):
        exc = b.AND(eq, t[j], hint=f"exc{j}")
        excs.append(exc)
        exception_nors.append(b.NOR(exc, grants[j], hint=f"xn{j}"))

    # Trace/snapshot debug port (segment-B analogue): armed only when the
    # operands compare equal AND every test hook is raised — a deep positive
    # conjunction that deterministic test vectors (0-filled on unconstrained
    # inputs) never produce, and whose private snapshot cone is therefore
    # expendable.
    trace_arm = b.AND(eq, t[0], t[1], t[2], t[3], hint="trarm")
    snapshot = [b.XOR(result[i], incs[i], hint=f"snap{i}") for i in range(8)]
    tgates = [b.AND(trace_arm, s, hint=f"tg{i}") for i, s in enumerate(snapshot)]
    trace_pairs = [
        b.OR(tgates[i], tgates[(i + 1) % 8], hint=f"tp{i}") for i in range(8)
    ]
    trace_out = b.or_tree(trace_pairs)

    for net in result:
        circuit.set_output(net)
    for net in shifted:
        circuit.set_output(net)
    for net in (carry_out, zero_flag, overflow, parity, eq, grant_ok):
        circuit.set_output(net)
    for net in exception_nors:
        circuit.set_output(net)
    circuit.set_output(trace_out)
    assert_valid(circuit)
    return circuit


# ----------------------------------------------------------------------
# c1908-like: 16-bit SEC/DED (33 PIs, ~880 gates)
# ----------------------------------------------------------------------


def _c1908_signatures() -> List[int]:
    """16 weight-3 6-bit data signatures (odd-weight Hamming construction).

    Check bits implicitly use the single-bit columns, so data signatures are
    distinct from them, every syndrome bit is covered by several data
    columns, and single check-bit errors decode to no data position.
    """
    signatures = [v for v in range(64) if bin(v).count("1") == 3]
    return signatures[:16]


def c1908_like() -> Circuit:
    """16-bit SEC/DED decoder + re-encoder, NAND-mapped throughout.

    Inputs (33): D0..D15 data, C0..C5 check, P overall parity, CTL0..CTL7,
    RST, EN, DBG.  Outputs (25): 16 corrected bits, 6 re-encoded check bits,
    single-error flag, double-error flag, status.
    """
    circuit = Circuit("c1908_like")
    b = Builder(circuit, prefix="g")
    data = declare_inputs(circuit, "D", 16)
    checks = declare_inputs(circuit, "C", 6)
    par_in = circuit.add_input("P")
    ctl = declare_inputs(circuit, "CTL", 8)
    rst = circuit.add_input("RST")
    en = circuit.add_input("EN")
    data_sigs = _c1908_signatures()

    # Syndrome: NAND-mapped XOR trees (the reconvergent ISCAS texture).
    syndrome: List[str] = []
    for j in range(6):
        members = [data[i] for i in range(16) if (data_sigs[i] >> j) & 1]
        members.append(checks[j])
        syndrome.append(b.xor_tree_nand(members))
    inv_syndrome = [b.NOT(s, hint=f"ns{j}") for j, s in enumerate(syndrome)]

    # Overall parity across data + checks + stored parity bit.
    parity_all = b.xor_tree_nand(list(data) + list(checks) + [par_in])

    # Per-position decode (NAND-mapped minterms).
    corrected: List[str] = []
    error_hits: List[str] = []
    for i in range(16):
        literals = [
            syndrome[j] if (data_sigs[i] >> j) & 1 else inv_syndrome[j]
            for j in range(6)
        ]
        nmatch = b.NAND(*literals, hint=f"nm{i}")
        match = b.NOT(nmatch, hint=f"e{i}")
        error_hits.append(match)
        fire = b.AND(match, en, hint=f"fr{i}")
        corrected.append(b.xor_nand(data[i], fire))

    # Error classification: syndrome non-zero?
    syn_nonzero = b.or_tree(syndrome)
    single_error = b.AND(syn_nonzero, parity_all, hint="serr")
    double_error = b.AND(syn_nonzero, b.NOT(parity_all, hint="npar"), hint="derr")

    # Re-encode corrected data and compare against stored checks.
    recoded: List[str] = []
    for j in range(6):
        members = [corrected[i] for i in range(16) if (data_sigs[i] >> j) & 1]
        recoded.append(b.xor_tree_nand(members))
    recheck_bits = [b.xnor_nand(recoded[j], checks[j]) for j in range(6)]
    recheck_ok = b.and_tree(recheck_bits)

    # Check-bit error decode: single-bit syndrome patterns (check column hit).
    check_corrected: List[str] = []
    for j in range(6):
        literals = [
            syndrome[jj] if jj == j else inv_syndrome[jj] for jj in range(6)
        ]
        nmatch = b.NAND(*literals, hint=f"cm{j}")
        cmatch = b.NOT(nmatch, hint=f"ce{j}")
        cfire = b.AND(cmatch, en, hint=f"cf{j}")
        check_corrected.append(b.xor_nand(checks[j], cfire))

    # Output crossbar: CTL6 selects raw-corrected vs re-encoded view.
    crossbar = b.mux_word(corrected, data, ctl[6], nand_mapped=True)
    xbar_parity = b.xor_tree_nand(crossbar)

    # Control/status section: a diagnostic snoop bank that only operates in
    # a deep debug mode (three positive control literals).  Ordinary decode
    # tests never raise all of ctl[3..5], so the defender's deterministic
    # vectors (0-filled on unconstrained inputs) never excite these lanes —
    # the c1908-style expendable-gate population.
    armed = b.AND(en, b.NOT(rst, hint="nrst"), hint="armd")
    debug_mode = b.AND(ctl[3], ctl[4], ctl[5], armed, hint="dbgmode")
    ctl_minterms = b.decoder(ctl[:3], nand_mapped=True)
    status_terms: List[str] = []
    for idx, minterm in enumerate(ctl_minterms):
        lane_a = error_hits[idx * 2]
        lane_b = error_hits[idx * 2 + 1]
        lane = b.OR(lane_a, lane_b, hint=f"lane{idx}")
        status_terms.append(b.AND(minterm, lane, debug_mode, hint=f"st{idx}"))
    status = b.or_tree(status_terms)
    sticky = b.AND(status, ctl[6], hint="sticky")

    # Deep rare conjunction: every decode lane quiet while in debug mode.
    no_hits = b.NOR(*error_hits[:8], hint="nh0")
    no_hits2 = b.NOR(*error_hits[8:], hint="nh1")
    all_quiet = b.AND(no_hits, no_hits2, recheck_ok, armed, hint="quiet")
    ghost = b.AND(all_quiet, ctl[4], ctl[5], hint="ghost")

    for net in crossbar:
        circuit.set_output(net)
    for net in recoded:
        circuit.set_output(net)
    for net in check_corrected[:2]:
        circuit.set_output(net)
    for net in (single_error, double_error, sticky, xbar_parity):
        circuit.set_output(net)
    # ghost joins the status outputs, totalling 25 + 1 diagnostics output.
    circuit.set_output(ghost)
    assert_valid(circuit)
    return circuit


# ----------------------------------------------------------------------
# c3540-like: 8-bit ALU with BCD / shifter / comparator (50 PIs, ~1669 gates)
# ----------------------------------------------------------------------


def c3540_like() -> Circuit:
    """Wide-function 8-bit ALU, NAND-mapped, with duplicated checking datapath.

    Inputs (50): A[8] B[8] operands, K[8] mask, CTL[8] opcode field, M[8]
    interrupt/mask requests, SEL[4], EN[3], T[2], CIN.
    Outputs: F[8] result, R[8] rotated, BCD[8] adjusted sum, flags and check
    bits (22 total).
    """
    circuit = Circuit("c3540_like")
    b = Builder(circuit, prefix="g")
    a = declare_inputs(circuit, "A", 8)
    bb = declare_inputs(circuit, "B", 8)
    k = declare_inputs(circuit, "K", 8)
    ctl = declare_inputs(circuit, "CTL", 8)
    m = declare_inputs(circuit, "M", 8)
    sel = declare_inputs(circuit, "SEL", 4)
    en = declare_inputs(circuit, "EN", 3)
    t = declare_inputs(circuit, "T", 2)
    cin = circuit.add_input("CIN")

    # ------------------------------------------------------------------
    # Operand conditioning: masking and optional inversion (for subtract).
    masked_b = [b.AND(bb[i], k[i], hint=f"mb{i}") for i in range(8)]
    inv_b = [b.NOT(masked_b[i], hint=f"ib{i}") for i in range(8)]
    sub_mode = b.AND(sel[0], en[0], hint="submode")
    op_b = b.mux_word(masked_b, inv_b, sub_mode, nand_mapped=True)
    carry_in = b.OR(cin, sub_mode, hint="cineff")

    # Main adder plus a second arithmetic path (A + K) with a comparator —
    # reconvergent with the main path through A, but functionally distinct.
    sums, carry_out = b.ripple_adder(a, op_b, carry_in, nand_mapped=True)
    sums2, carry_out2 = b.ripple_adder(a, k, cin, nand_mapped=True)
    path_match_bits = [b.xnor_nand(sums[i], sums2[i]) for i in range(8)]
    paths_match = b.and_tree(path_match_bits + [b.xnor_nand(carry_out, carry_out2)])

    # ------------------------------------------------------------------
    # BCD adjust: per nibble, add 6 when the nibble exceeds 9.
    def bcd_adjust(nibble: List[str], tag: str) -> List[str]:
        hi = nibble[3]
        mid = b.OR(nibble[2], nibble[1], hint=f"bm{tag}")
        gt9 = b.AND(hi, mid, hint=f"g9{tag}")
        zero = b.gate(GateType.TIE0, (), hint=f"zz{tag}")
        # Adding 6 = 0b0110 when the nibble exceeds 9 (gated by EN[1]).
        plus = b.AND(gt9, en[1], hint=f"sx{tag}")
        addend = [zero, plus, plus, zero]
        adjusted, _ = b.ripple_adder(nibble, addend, zero, nand_mapped=True)
        return adjusted

    bcd_low = bcd_adjust(sums[:4], "lo")
    bcd_high = bcd_adjust(sums[4:], "hi")
    bcd = bcd_low + bcd_high

    # ------------------------------------------------------------------
    # Logic unit, fully gated per op (NAND-mapped XOR).
    lu_and = [b.AND(a[i], op_b[i], hint=f"la{i}") for i in range(8)]
    lu_or = [b.OR(a[i], op_b[i], hint=f"lo{i}") for i in range(8)]
    lu_xor = [b.xor_nand(a[i], op_b[i]) for i in range(8)]
    lu_xnor = [b.NOT(lu_xor[i], hint=f"lxn{i}") for i in range(8)]

    # ------------------------------------------------------------------
    # Barrel rotate (3 stages of NAND-mapped muxes) over the sum.
    def rotate_left(word: List[str], amount: int) -> List[str]:
        return word[-amount:] + word[:-amount]

    stage1 = b.mux_word(sums, rotate_left(sums, 1), sel[1], nand_mapped=True)
    stage2 = b.mux_word(stage1, rotate_left(stage1, 2), sel[2], nand_mapped=True)
    rotated = b.mux_word(stage2, rotate_left(stage2, 4), sel[3], nand_mapped=True)

    # ------------------------------------------------------------------
    # 8x8 multiplier, low byte (partial-product array, NAND-mapped adders).
    zero_pp = b.gate(GateType.TIE0, (), hint="mz")
    acc = [b.AND(a[i], masked_b[0], hint=f"pp0_{i}") for i in range(8)]
    for row in range(1, 8):
        pp = [b.AND(a[i], masked_b[row], hint=f"pp{row}_{i}") for i in range(8)]
        # Accumulate pp << row into the running sum (low 8 bits kept).
        acc, _ = b.ripple_adder(acc, [zero_pp] * row + pp[: 8 - row], zero_pp,
                                nand_mapped=True)
    product = acc

    # Saturating add: result clamps to 0xFF on carry-out.
    sat = [b.OR(sums[i], carry_out, hint=f"sat{i}") for i in range(8)]

    # ------------------------------------------------------------------
    # Opcode decode (4 -> 16 NAND-mapped minterms) and result selection.
    minterms = b.decoder(ctl[:4], nand_mapped=True)
    unit_by_minterm = [
        sums, lu_and, lu_or, lu_xor, lu_xnor, bcd, rotated, sums2,
        product, sat,
    ]
    result: List[str] = []
    for i in range(8):
        picks: List[str] = []
        for op_idx, word in enumerate(unit_by_minterm):
            picks.append(b.AND(word[i], minterms[op_idx], hint=f"pk{op_idx}_{i}"))
        result.append(b.or_tree(picks))

    # ------------------------------------------------------------------
    # Comparator: A vs masked B magnitude (ripple greater-than).
    gt = None
    for i in range(8):
        nb = b.NOT(op_b[i], hint=f"cgn{i}")
        a_gt_b = b.AND(a[i], nb, hint=f"cg{i}")
        eq_bit = b.xnor_nand(a[i], op_b[i])
        if gt is None:
            gt = a_gt_b
        else:
            keep = b.AND(eq_bit, gt, hint=f"ck{i}")
            gt = b.OR(a_gt_b, keep, hint=f"cgt{i}")
    eq_ab = b.equality(a, bb, nand_mapped=True)

    # ------------------------------------------------------------------
    # Interrupt/mask section over M (priority chain + encode + rare detect).
    grants = b.priority_chain(m)
    enc = b.encoder_onehot(grants, width=3)
    any_m = b.or_tree(m)

    # Flags.
    zero_flag = b.NOR(*result, hint="zf")
    parity = b.xor_tree_nand(result)
    sign = b.BUFF(result[7], hint="sgn")
    overflow = b.xor_nand(carry_out, sums[7])

    # Rare exception lattice (segment-B analogue: OR gates at P(=1) ≈ 1).
    exc_ors: List[str] = []
    for j in range(4):
        neq = b.NOT(eq_ab, hint=f"xne{j}")
        exc_ors.append(b.OR(neq, minterms[8 + j], t[j % 2], hint=f"xo{j}"))
    exc_all = b.and_tree(exc_ors)
    trap = b.AND(eq_ab, gt, hint="trap")  # contradiction: equal AND greater — P≈0
    alarm = b.NOR(exc_all, trap, hint="alarm")

    # Self-check rollup: both arithmetic paths agreeing is a rare event
    # (requires op_b == K), gated by an enable — a deep Fig.5-style candidate.
    selfcheck = b.AND(paths_match, en[2], hint="selfck")

    for net in result:
        circuit.set_output(net)
    for net in rotated:
        circuit.set_output(net)
    for net in (carry_out, zero_flag, parity, sign, overflow, eq_ab, gt):
        circuit.set_output(net)
    for net in enc:
        circuit.set_output(net)
    for net in (any_m, alarm, selfcheck):
        circuit.set_output(net)
    assert_valid(circuit)
    return circuit


#: Registry used by the evaluation harness — paper benchmark name -> builder.
BENCHMARKS = {
    "c432": c432_like,
    "c499": c499_like,
    "c880": c880_like,
    "c1908": c1908_like,
    "c3540": c3540_like,
}


def build_benchmark(name: str) -> Circuit:
    """Construct the generator circuit standing in for paper benchmark ``name``."""
    try:
        builder = BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        ) from None
    return builder()
